"""Text tables and ASCII plots."""

import pytest

from repro.analysis.planes import log_grid
from repro.report.ascii_plot import ascii_curves, ascii_plane
from repro.report.tables import format_resistance, render_table


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        # header and separator equal width per column
        assert lines[1].startswith("---")

    def test_handles_non_strings(self):
        text = render_table(["x"], [[42], [3.5]])
        assert "42" in text
        assert "3.5" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestFormatResistance:
    @pytest.mark.parametrize("ohms,expect", [
        (None, "-"),
        (213e3, "213k"),
        (1.5e6, "1.5M"),
        (2e9, "2G"),
        (470.0, "470"),
    ])
    def test_engineering_units(self, ohms, expect):
        assert format_resistance(ohms) == expect


class TestAsciiCurves:
    def test_renders_bounds(self):
        x = [1e4, 1e5, 1e6]
        text = ascii_curves(x, {"alpha": [0.0, 1.0, 2.0]}, width=20,
                            height=6, title="demo")
        assert "demo" in text
        assert "2.00" in text
        assert "0.00" in text

    def test_skips_none_samples(self):
        x = [1e4, 1e5, 1e6]
        text = ascii_curves(x, {"alpha": [0.5, None, 1.5]})
        assert "alpha" in text

    def test_multiple_curves_in_legend(self):
        x = [1.0, 2.0]
        text = ascii_curves(x, {"one": [0, 1], "two": [1, 0]},
                            logx=False)
        assert "one" in text
        assert "two" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_curves([], {})

    def test_rejects_all_none(self):
        with pytest.raises(ValueError):
            ascii_curves([1.0], {"a": [None]})


class TestAsciiPlane:
    @pytest.fixture(scope="class")
    def planes(self):
        from repro.analysis import result_planes
        from repro.behav import behavioral_model
        from repro.defects import Defect, DefectKind
        model = behavioral_model(Defect(DefectKind.O3, resistance=2e5))
        return result_planes(model, log_grid(5e4, 1e6, 5), n_writes=2)

    def test_w0_plane_renders(self, planes):
        text = ascii_plane(planes, "w0")
        assert "Plane of w0" in text

    def test_r_plane_renders(self, planes):
        text = ascii_plane(planes, "r")
        assert "Vsa" in text

    def test_unknown_plane_rejected(self, planes):
        with pytest.raises(ValueError):
            ascii_plane(planes, "zz")
