"""Experiment entry points (behavioral backend for speed).

These check that each figure/table reproduction produces the paper's
qualitative shape; the benchmarks run the same entry points at full
(electrical) fidelity.
"""

import pytest

from repro.experiments import (
    fig2_result_planes,
    fig3_timing_panels,
    fig4_temperature_panels,
    fig5_voltage_panels,
    fig6_stressed_planes,
    march_coverage_comparison,
    shmoo_baseline,
    table1_optimization,
)
from repro.defects import DefectKind, Placement
from repro.core import StressKind


class TestFig2:
    @pytest.fixture(scope="class")
    def study(self):
        return fig2_result_planes(backend="behavioral", points=7)

    def test_border_near_nominal(self, study):
        assert study.border is not None
        assert 8e4 < study.border < 6e5

    def test_render_contains_planes(self, study):
        text = study.render()
        for token in ("Plane of w0", "Plane of w1", "Vsa"):
            assert token in text


class TestFig3:
    def test_shorter_tcyc_weakens_write(self):
        study = fig3_timing_panels(backend="behavioral")
        assert study.w0_residuals[1] > study.w0_residuals[0]

    def test_vsa_nearly_unchanged(self):
        study = fig3_timing_panels(backend="behavioral")
        assert abs(study.vsa[0] - study.vsa[1]) < 0.05


class TestFig4:
    @pytest.fixture(scope="class")
    def study(self):
        return fig4_temperature_panels(backend="behavioral")

    def test_write_weakens_with_temperature(self, study):
        assert study.w0_residuals == sorted(study.w0_residuals)

    def test_vsa_non_monotonic(self, study):
        cold, room, hot = study.vsa
        assert cold > room
        assert hot > room


class TestFig5:
    @pytest.fixture(scope="class")
    def study(self):
        return fig5_voltage_panels(backend="behavioral")

    def test_write_weakens_with_vdd(self, study):
        assert study.w0_residuals == sorted(study.w0_residuals)

    def test_read_threshold_scales_with_vdd(self, study):
        assert study.vsa == sorted(study.vsa)


class TestFig6:
    def test_border_shrinks_under_sc(self):
        nominal = fig2_result_planes(backend="behavioral", points=7)
        stressed = fig6_stressed_planes(backend="behavioral", points=7)
        assert stressed.border < nominal.border


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.defects import Defect
        subset = (Defect(DefectKind.O3, Placement.TRUE),
                  Defect(DefectKind.SG, Placement.TRUE))
        return table1_optimization(defects=subset)

    def test_rows_rendered(self, table):
        text = table.render()
        assert "O3 (true)" in text
        assert "Sg (true)" in text

    def test_temperature_up(self, table):
        for row in table.rows:
            assert row.directions[StressKind.TEMP].arrow == "↑"


class TestShmooBaseline:
    def test_boundary_visible(self):
        study = shmoo_baseline(nx=6, ny=5)
        assert study.plot.pass_count > 0
        assert study.plot.fail_count > 0
        assert "Shmoo" in study.render()


class TestMarchCoverage:
    def test_optimized_never_worse(self):
        from repro.march import MARCH_CMINUS, PMOVI
        study = march_coverage_comparison(tests=(MARCH_CMINUS, PMOVI),
                                          r_points=8)
        for name, nom, opt in study.rows:
            assert opt >= nom, name

    def test_render_table(self):
        from repro.march import MATS_PLUS
        study = march_coverage_comparison(tests=(MATS_PLUS,), r_points=6)
        assert "MATS+" in study.render()
