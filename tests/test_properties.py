"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold across the whole parameter space, not just the
paper's operating points.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import border_resistance, sense_threshold
from repro.analysis.planes import log_grid
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement
from repro.spice.mosfet import NMOS_DEFAULT, mosfet_curves
from repro.stress import NOMINAL_STRESS, StressConditions


class TestMosfetInvariants:
    @given(st.floats(0.0, 4.0), st.floats(0.0, 4.0),
           st.floats(-40.0, 120.0))
    @settings(max_examples=60)
    def test_current_nonnegative_and_finite(self, vgs, vds, temp):
        ids, gm, gds = mosfet_curves(NMOS_DEFAULT, 2.0, vgs, vds, temp)
        assert ids >= 0.0
        assert math.isfinite(ids)
        assert math.isfinite(gm)
        assert math.isfinite(gds)

    @given(st.floats(0.2, 3.5), st.floats(0.01, 3.0))
    @settings(max_examples=40)
    def test_gm_is_actual_derivative(self, vgs, vds):
        eps = 1e-5
        i0, gm, _ = mosfet_curves(NMOS_DEFAULT, 2.0, vgs, vds, 27.0)
        i1, _, _ = mosfet_curves(NMOS_DEFAULT, 2.0, vgs + eps, vds, 27.0)
        assert (i1 - i0) / eps == pytest.approx(gm, rel=0.05, abs=1e-9)

    @given(st.floats(0.8, 3.5), st.floats(0.01, 3.0))
    @settings(max_examples=40)
    def test_gds_is_actual_derivative(self, vgs, vds):
        eps = 1e-5
        i0, _, gds = mosfet_curves(NMOS_DEFAULT, 2.0, vgs, vds, 27.0)
        i1, _, _ = mosfet_curves(NMOS_DEFAULT, 2.0, vgs, vds + eps, 27.0)
        assert (i1 - i0) / eps == pytest.approx(gds, rel=0.05, abs=1e-9)


class TestStressInvariants:
    @given(st.floats(50e-9, 70e-9), st.floats(0.3, 0.7),
           st.floats(-40.0, 100.0), st.floats(1.8, 3.0))
    @settings(max_examples=30)
    def test_roundtrip_construction(self, tcyc, duty, temp, vdd):
        sc = StressConditions(tcyc=tcyc, duty=duty, temp_c=temp, vdd=vdd)
        assert sc.with_().__eq__(sc)
        assert "Vdd" in sc.describe()


class TestColumnInvariants:
    @given(st.floats(3e4, 5e6))
    @settings(max_examples=20, deadline=None)
    def test_read_monotone_in_initial_voltage(self, r_ohm):
        """Single reads are monotone: a higher stored voltage never
        senses lower (no inversions across the threshold)."""
        model = behavioral_model(Defect(DefectKind.O3, resistance=r_ohm))
        outputs = [model.run_sequence("r", init_vc=v).outputs[0]
                   for v in (0.0, 0.8, 1.6, 2.4)]
        assert outputs == sorted(outputs)

    @given(st.sampled_from([DefectKind.O1, DefectKind.O3]),
           st.floats(1e5, 2e6))
    @settings(max_examples=12, deadline=None)
    def test_true_comp_physical_symmetry(self, kind, r_ohm):
        """The stored *physical* voltage trace is placement-independent
        when the logical data is interchanged (the paper's Table 1
        symmetry)."""
        t = behavioral_model(Defect(kind, Placement.TRUE, r_ohm))
        c = behavioral_model(Defect(kind, Placement.COMP, r_ohm))
        st_t = t.run_sequence("w1 w1 w0", init_vc=0.0)
        st_c = c.run_sequence("w0 w0 w1", init_vc=0.0)
        for vt, vc in zip(st_t.vc_after, st_c.vc_after):
            assert vt == pytest.approx(vc, abs=0.02)

    @given(st.floats(0.35, 0.65))
    @settings(max_examples=10, deadline=None)
    def test_longer_duty_writes_more(self, duty):
        model = behavioral_model(Defect(DefectKind.O3, resistance=4e5))
        model.set_stress(NOMINAL_STRESS.with_(duty=duty))
        lo = model.run_sequence("w1", init_vc=0.0).vc_after[0]
        model.set_stress(NOMINAL_STRESS.with_(duty=min(duty + 0.1,
                                                       0.75)))
        hi = model.run_sequence("w1", init_vc=0.0).vc_after[0]
        assert hi >= lo - 1e-6


class TestAnalysisInvariants:
    @given(st.floats(6e4, 8e5))
    @settings(max_examples=10, deadline=None)
    def test_border_separates_outcomes(self, r_probe):
        """Any probed resistance sits on the side of the border its
        fault verdict says it should."""
        model = behavioral_model(Defect(DefectKind.O3, resistance=1e5))
        border = border_resistance(model, fails_high=True, r_lo=3e4,
                                   r_hi=5e6, rel_tol=0.05,
                                   sequences=("w1^6 w0 r0",))
        model.set_defect_resistance(r_probe)
        faulty = model.run_sequence("w1^6 w0 r0", init_vc=0.0).any_fault
        if faulty:
            assert r_probe > border.resistance * 0.9
        else:
            assert r_probe < border.resistance * 1.1

    def test_vsa_descends_along_grid(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=1e5))
        values = []
        for r_ohm in log_grid(6e4, 2e6, 6):
            model.set_defect_resistance(r_ohm)
            values.append(sense_threshold(model, tol=0.01))
        usable = [v for v in values if v is not None]
        assert all(b <= a + 0.02 for a, b in zip(usable, usable[1:]))
