"""Newton solver and MNA assembly behaviour."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    Constant,
    Diode,
    Resistor,
    SingularMatrixError,
    VoltageSource,
    dc_operating_point,
)
from repro.spice.mna import System
from repro.spice.netlist import AnalysisContext
from repro.spice.solver import newton_solve


def _linear_circuit():
    c = Circuit()
    c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(1.0)))
    c.add(Resistor("R1", c.node("in"), c.node("out"), 1e3))
    c.add(Resistor("R2", c.node("out"), c.node("0"), 1e3))
    return c


class TestSystem:
    def test_linear_solved_in_one_shot(self):
        c = _linear_circuit()
        sys = System(c)
        assert not sys.has_nonlinear
        ctx = AnalysisContext(x=np.zeros(sys.size),
                              x_prev=np.zeros(sys.size))
        A, b = sys.build_step(ctx)
        x = newton_solve(sys, A, b, ctx, np.zeros(sys.size))
        assert x[c.node("out").index] == pytest.approx(0.5)

    def test_nonlinear_detected(self):
        c = _linear_circuit()
        c.add(Diode("D", c.node("out"), c.node("0")))
        assert System(c).has_nonlinear

    def test_gmin_on_diagonal(self):
        c = _linear_circuit()
        sys = System(c, gmin=1e-9)
        # diagonal of a node with 2 conductances + gmin
        i = c.node("out").index
        assert sys._A_static[i, i] == pytest.approx(2e-3 + 1e-9)

    def test_source_waveforms_collected(self):
        c = _linear_circuit()
        sys = System(c)
        assert len(sys.source_waveforms()) == 1


class TestNewton:
    def test_diode_resistor_converges(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(5.0)))
        c.add(Resistor("R", c.node("in"), c.node("a"), 1e3))
        c.add(Diode("D", c.node("a"), c.node("0"), isat=1e-14))
        op = dc_operating_point(c)
        v = op["a"]
        # KCL at the junction: (5 - v)/1k == diode current
        i_r = (5.0 - v) / 1e3
        i_d, _ = c["D"].iv(v, 27.0)
        assert i_r == pytest.approx(i_d, rel=1e-3)

    def test_back_to_back_diodes(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(1.0)))
        c.add(Diode("D1", c.node("in"), c.node("mid")))
        c.add(Diode("D2", c.node("0"), c.node("mid")))
        op = dc_operating_point(c)
        # Reverse-biased D2 blocks: mid sits roughly a diode drop below in
        assert 0.0 < op["mid"] < 1.0

    def test_singular_matrix_detected(self):
        c = Circuit()
        # Two voltage sources forcing the same node differently -> the
        # MNA matrix is singular.
        c.add(VoltageSource("V1", c.node("a"), c.node("0"), Constant(1.0)))
        c.add(VoltageSource("V2", c.node("a"), c.node("0"), Constant(2.0)))
        sys = System(c, gmin=0.0)
        ctx = AnalysisContext(x=np.zeros(sys.size),
                              x_prev=np.zeros(sys.size))
        A, b = sys.build_step(ctx)
        with pytest.raises(SingularMatrixError):
            newton_solve(sys, A, b, ctx, np.zeros(sys.size))


class TestDCOperatingPoint:
    def test_initial_guess_accepted(self):
        c = _linear_circuit()
        op = dc_operating_point(c, initial={"out": 0.4})
        assert op["out"] == pytest.approx(0.5)

    def test_includes_every_node(self):
        c = _linear_circuit()
        op = dc_operating_point(c)
        assert set(op) == {"in", "out"}

    def test_temperature_passed_to_devices(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(2.0)))
        c.add(Resistor("R", c.node("in"), c.node("a"), 1e5))
        c.add(Diode("D", c.node("a"), c.node("0"), isat=1e-14,
                    isat_tdouble=10.0))
        v_room = dc_operating_point(c, temp_c=27.0)["a"]
        v_hot = dc_operating_point(c, temp_c=87.0)["a"]
        # the isat doubling beats the thermal-voltage growth: a hotter
        # diode conducts at a lower forward drop than at room temperature
        assert v_hot < v_room


class TestFailingNodes:
    """Defensive bounds in convergence-failure reporting."""

    def _system(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(1.0)))
        c.add(Resistor("R1", c.node("in"), c.node("out"), 1e3))
        c.add(Resistor("R2", c.node("out"), c.node("0"), 1e3))
        return System(c)

    def test_short_dx_does_not_blow_up(self):
        from repro.spice.solver import _failing_nodes
        sys_ = self._system()
        # dx shorter than the node count (e.g. a truncated vector)
        names = _failing_nodes(sys_, np.array([1.0]), vtol=1e-6)
        assert names == [sys_.circuit.node_names[0]]

    def test_short_names_fall_back_to_index(self):
        import types

        from repro.spice.solver import _failing_nodes
        sys_ = self._system()
        # a circuit whose name list is shorter than the node count
        sys_.circuit = types.SimpleNamespace(node_names=["in"])
        dx = np.full(sys_.size, 1.0)
        names = _failing_nodes(sys_, dx, vtol=1e-6)
        assert "in" in names
        assert any(n.startswith("node#") for n in names)

    def test_oversized_dx_ignores_branch_rows(self):
        from repro.spice.solver import _failing_nodes
        sys_ = self._system()
        dx = np.zeros(sys_.size + 3)
        dx[sys_.num_nodes:] = 99.0  # branch rows move, nodes do not
        assert _failing_nodes(sys_, dx, vtol=1e-6) == []
