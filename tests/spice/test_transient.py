"""Transient engine: analytic RC/RL-free checks, breakpoints, chaining."""

import importlib
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import (
    Capacitor,
    Circuit,
    Constant,
    Mosfet,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    PWL,
    Pulse,
    Resistor,
    SpiceError,
    VoltageSource,
    transient,
)
from repro.spice.errors import ConvergenceError

# The package re-exports the transient() function under the same name as
# its module; resolve the module itself for monkeypatching.
transient_module = importlib.import_module("repro.spice.transient")


def _rc(r=1e3, cap=1e-9, v=2.4, t_step=1e-9):
    c = Circuit()
    c.add(VoltageSource("V", c.node("in"), c.node("0"),
                        PWL([(0.0, 0.0), (t_step, v)])))
    c.add(Resistor("R", c.node("in"), c.node("out"), r))
    c.add(Capacitor("C", c.node("out"), c.node("0"), cap))
    return c


class TestRC:
    def test_charging_matches_analytic(self):
        res = transient(_rc(), 5e-6, 1e-8)
        tau = 1e-6
        for t in (0.5e-6, 1e-6, 3e-6):
            expect = 2.4 * (1 - math.exp(-(t - 1e-9) / tau))
            assert res.at("out", t) == pytest.approx(expect, abs=0.02)

    def test_trapezoidal_more_accurate_than_be(self):
        tau = 1e-6
        t_probe = 1e-6
        expect = 2.4 * (1 - math.exp(-(t_probe - 1e-9) / tau))
        err_be = abs(transient(_rc(), 2e-6, 4e-8).at("out", t_probe)
                     - expect)
        err_tr = abs(transient(_rc(), 2e-6, 4e-8,
                               method="trap").at("out", t_probe) - expect)
        assert err_tr < err_be

    def test_discharge_from_initial_condition(self):
        c = Circuit()
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        c.add(Capacitor("C", c.node("a"), c.node("0"), 1e-9))
        res = transient(c, 3e-6, 1e-8, initial={"a": 1.0})
        assert res.at("a", 1e-6) == pytest.approx(math.exp(-1.0),
                                                  abs=0.01)

    @given(st.floats(100.0, 1e5), st.floats(1e-12, 1e-9))
    @settings(max_examples=15, deadline=None)
    def test_final_value_reaches_source(self, r, cap):
        tau = r * cap
        res = transient(_rc(r=r, cap=cap), 8 * tau + 2e-9,
                        max(tau / 50, 1e-12))
        assert res.final("out") == pytest.approx(2.4, abs=0.02)


class TestBreakpoints:
    def test_pulse_edges_land_on_grid(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("a"), c.node("0"),
                            Pulse(0, 1, delay=3.3e-9, rise=0.1e-9,
                                  width=2e-9, fall=0.1e-9)))
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        res = transient(c, 10e-9, 1e-9)
        # the rising-edge corner must be an exact time point
        assert any(abs(t - 3.3e-9) < 1e-15 for t in res.time)

    def test_sharp_edge_not_smeared(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("a"), c.node("0"),
                            PWL([(5e-9, 0.0), (5.05e-9, 2.0)])))
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        res = transient(c, 10e-9, 1e-9)
        assert res.at("a", 4.9e-9) == pytest.approx(0.0, abs=1e-6)
        assert res.at("a", 5.2e-9) == pytest.approx(2.0, abs=1e-6)


class TestResultAPI:
    def test_len_and_nodes(self):
        res = transient(_rc(), 1e-7, 1e-8)
        assert len(res) >= 10
        assert res.has_node("out")
        assert not res.has_node("nope")

    def test_unknown_node_raises(self):
        res = transient(_rc(), 1e-7, 1e-8)
        with pytest.raises(SpiceError):
            res.v("nope")

    def test_at_clamps_to_ends(self):
        res = transient(_rc(), 1e-7, 1e-8)
        assert res.at("out", -1.0) == res.v("out")[0]
        assert res.at("out", 1.0) == res.v("out")[-1]

    def test_final_state_roundtrip(self):
        res = transient(_rc(), 1e-6, 1e-8)
        state = res.final_state()
        assert state["out"] == pytest.approx(res.final("out"))
        # chaining: drive the same level from t=0 and restart from the
        # final state — the output must stay where it was left
        c2 = Circuit()
        c2.add(VoltageSource("V", c2.node("in"), c2.node("0"),
                             Constant(state["in"])))
        c2.add(Resistor("R", c2.node("in"), c2.node("out"), 1e3))
        c2.add(Capacitor("C", c2.node("out"), c2.node("0"), 1e-9))
        res2 = transient(c2, 1e-7, 1e-8, initial=state)
        assert res2.v("out")[0] == pytest.approx(state["out"], abs=1e-9)
        assert res2.final("out") >= state["out"] - 1e-6

    def test_times_strictly_increasing(self):
        res = transient(_rc(), 1e-6, 1e-8)
        assert np.all(np.diff(res.time) > 0)


class TestValidation:
    def test_rejects_bad_tstop(self):
        with pytest.raises(SpiceError):
            transient(_rc(), -1.0, 1e-9)

    def test_rejects_bad_method(self):
        with pytest.raises(SpiceError):
            transient(_rc(), 1e-6, 1e-9, method="gear")

    def test_rejects_unknown_initial_node(self):
        with pytest.raises(SpiceError):
            transient(_rc(), 1e-6, 1e-9, initial={"zzz": 1.0})

    def test_ground_initial_ignored(self):
        res = transient(_rc(), 1e-7, 1e-8, initial={"gnd": 5.0})
        assert res.final("out") >= 0.0


class TestNonlinearTransient:
    def test_inverter_switches(self):
        c = Circuit()
        vdd = c.node("vdd")
        c.add(VoltageSource("VDD", vdd, c.node("0"), Constant(2.4)))
        c.add(VoltageSource("VIN", c.node("i"), c.node("0"),
                            PWL([(0, 0.0), (5e-9, 0.0), (6e-9, 2.4)])))
        c.add(Mosfet("MP", c.node("o"), c.node("i"), vdd, PMOS_DEFAULT,
                     w=2e-6))
        c.add(Mosfet("MN", c.node("o"), c.node("i"), c.node("0"),
                     NMOS_DEFAULT, w=1e-6))
        c.add(Capacitor("CL", c.node("o"), c.node("0"), 10e-15))
        res = transient(c, 20e-9, 0.1e-9, initial={"o": 2.4, "vdd": 2.4})
        assert res.at("o", 4e-9) == pytest.approx(2.4, abs=0.05)
        assert res.at("o", 15e-9) == pytest.approx(0.0, abs=0.05)

    def test_cross_coupled_latch_regenerates(self):
        """A sense-amp-like latch amplifies a small imbalance to rails."""
        c = Circuit()
        vdd = c.node("vdd")
        a, b = c.node("a"), c.node("b")
        c.add(VoltageSource("VDD", vdd, c.node("0"), Constant(2.4)))
        for name, out, inp in (("N1", a, b), ("N2", b, a)):
            c.add(Mosfet(f"M{name}n", out, inp, c.node("0"),
                         NMOS_DEFAULT, w=1e-6))
            c.add(Mosfet(f"M{name}p", out, inp, vdd, PMOS_DEFAULT,
                         w=2e-6))
        c.add(Capacitor("Ca", a, c.node("0"), 50e-15))
        c.add(Capacitor("Cb", b, c.node("0"), 50e-15))
        res = transient(c, 30e-9, 0.05e-9,
                        initial={"a": 1.25, "b": 1.15, "vdd": 2.4})
        assert res.final("a") > 2.2
        assert res.final("b") < 0.2


def _inverter():
    """A nonlinear (MOSFET + diode-free) circuit exercising swaps."""
    c = Circuit()
    vdd = c.node("vdd")
    c.add(VoltageSource("VDD", vdd, c.node("0"), Constant(2.4)))
    c.add(VoltageSource("VIN", c.node("i"), c.node("0"),
                        PWL([(0, 0.0), (3e-9, 0.0), (4e-9, 2.4),
                             (8e-9, 2.4), (9e-9, 0.0)])))
    c.add(Mosfet("MP", c.node("o"), c.node("i"), vdd, PMOS_DEFAULT,
                 w=2e-6))
    c.add(Mosfet("MN", c.node("o"), c.node("i"), c.node("0"),
                 NMOS_DEFAULT, w=1e-6))
    c.add(Capacitor("CL", c.node("o"), c.node("0"), 10e-15))
    return c


def _compare(res_a, res_b, *, bitwise):
    assert len(res_a) == len(res_b)
    if bitwise:
        assert np.array_equal(res_a.time, res_b.time)
        assert np.array_equal(res_a.final_x, res_b.final_x)
    else:
        assert res_a.time == pytest.approx(res_b.time, rel=1e-12)
        assert res_a.final_x == pytest.approx(res_b.final_x, rel=1e-9,
                                              abs=1e-12)
    for name in res_a.node_names:
        if bitwise:
            assert np.array_equal(res_a.v(name), res_b.v(name)), name
        else:
            assert res_a.v(name) == pytest.approx(res_b.v(name),
                                                  rel=1e-9, abs=1e-12)


class TestKernelParity:
    """Kernel fast path vs the legacy per-device loop."""

    def test_nonlinear_transient_is_bitwise_identical(self):
        kw = dict(tstop=12e-9, dt=0.1e-9,
                  initial={"o": 2.4, "vdd": 2.4})
        fast = transient(_inverter(), use_kernels=True, **kw)
        legacy = transient(_inverter(), use_kernels=False, **kw)
        _compare(fast, legacy, bitwise=True)

    def test_trap_method_is_bitwise_identical(self):
        kw = dict(tstop=6e-9, dt=0.1e-9, method="trap",
                  initial={"o": 2.4, "vdd": 2.4})
        fast = transient(_inverter(), use_kernels=True, **kw)
        legacy = transient(_inverter(), use_kernels=False, **kw)
        _compare(fast, legacy, bitwise=True)

    def test_linear_transient_matches_to_machine_precision(self):
        # Linear circuits route through the cached LU inverse on the
        # kernel path — same result to machine precision, not bitwise.
        kw = dict(tstop=2e-6, dt=1e-8)
        fast = transient(_rc(), use_kernels=True, **kw)
        legacy = transient(_rc(), use_kernels=False, **kw)
        _compare(fast, legacy, bitwise=False)

    def test_bisection_walk_is_bitwise_identical(self, monkeypatch):
        """Regression for the O(n^2) step queue replacement.

        The cursor + bisection-stack walk must visit exactly the time
        points the legacy ``pending.insert(0)/pop(0)`` queue visited.
        Injected failures force two levels of bisection over a window,
        identically for both loops, so any walk-order divergence shows
        up as a result mismatch.
        """
        real = transient_module.newton_solve

        def flaky(system, A_step, b_step, ctx, x0, **kw):
            if ctx.dt >= 0.26e-9 and 0.9e-9 <= ctx.time <= 2.1e-9:
                raise ConvergenceError("injected", iterations=1)
            return real(system, A_step, b_step, ctx, x0, **kw)

        monkeypatch.setattr(transient_module, "newton_solve", flaky)
        kw = dict(tstop=4e-9, dt=1e-9, initial={"o": 2.4, "vdd": 2.4})
        fast = transient(_inverter(), use_kernels=True, **kw)
        legacy = transient(_inverter(), use_kernels=False, **kw)
        assert len(fast) > 6  # bisection actually added time points
        _compare(fast, legacy, bitwise=True)

    def test_modified_newton_converges_to_same_waveform(self):
        kw = dict(tstop=12e-9, dt=0.1e-9,
                  initial={"o": 2.4, "vdd": 2.4})
        full = transient(_inverter(), use_kernels=True, **kw)
        modified = transient(_inverter(), use_kernels=True,
                             newton="modified", **kw)
        # Same grid; iterates agree to the Newton voltage tolerance
        # (modified Newton stops at the same vtol, not the same bits).
        assert np.array_equal(full.time, modified.time)
        for name in full.node_names:
            assert full.v(name) == pytest.approx(modified.v(name),
                                                 abs=1e-5), name

    def test_modified_newton_reuses_jacobians(self):
        from repro.diagnostics import reset_diagnostics
        diag = reset_diagnostics()
        # Cover the input transition so steps take multiple iterations.
        transient(_inverter(), tstop=6e-9, dt=0.1e-9,
                  use_kernels=True, newton="modified",
                  initial={"o": 2.4, "vdd": 2.4})
        assert diag.solver_kernels.get("newton_jacobian_reuse", 0) > 0

    def test_rejects_unknown_newton_mode(self):
        with pytest.raises(SpiceError):
            transient(_rc(), 1e-6, 1e-9, newton="chord")

    def test_kernel_default_toggle_roundtrip(self):
        from repro.spice.transient import (kernels_enabled,
                                           set_kernels_default)
        prev = set_kernels_default(False)
        try:
            assert kernels_enabled() is False
        finally:
            set_kernels_default(prev)
        assert kernels_enabled() is prev

    def test_prebuilt_system_is_reused(self):
        from repro.spice.mna import System
        c = _inverter()
        c.finalize()
        system = System(c, use_plans=True)
        r1 = transient(c, 3e-9, 0.1e-9, system=system,
                       initial={"o": 2.4, "vdd": 2.4})
        r2 = transient(c, 3e-9, 0.1e-9, system=system,
                       initial={"o": 2.4, "vdd": 2.4})
        _compare(r1, r2, bitwise=True)
