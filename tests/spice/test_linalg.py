"""Dense linear-algebra kernels: LU reuse, fast solves, singular paths."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.errors import SingularMatrixError
from repro.spice.linalg import (
    FactorizationCache,
    LUFactorization,
    dense_errstate,
    lu_factor,
    lu_solve,
    solve_dense,
    solve_dense_nocheck,
)


@st.composite
def well_conditioned(draw):
    """A diagonally-dominated random system (A, b)."""
    n = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n)) + n * np.eye(n)
    b = rng.uniform(-1.0, 1.0, n)
    return a, b


class TestLU:
    @given(ab=well_conditioned())
    @settings(max_examples=80, deadline=None)
    def test_lu_solve_matches_numpy(self, ab):
        a, b = ab
        fact = lu_factor(a)
        want = np.linalg.solve(a, b)
        assert lu_solve(fact, b) == pytest.approx(want, rel=1e-9,
                                                  abs=1e-12)
        assert fact.solve_fast(b) == pytest.approx(want, rel=1e-9,
                                                   abs=1e-12)

    @given(ab=well_conditioned())
    @settings(max_examples=40, deadline=None)
    def test_matrix_rhs_solve(self, ab):
        a, _ = ab
        inv = lu_factor(a).solve(np.eye(a.shape[0]))
        assert a @ inv == pytest.approx(np.eye(a.shape[0]), abs=1e-9)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert lu_factor(a).solve(np.array([2.0, 3.0])) \
            == pytest.approx([3.0, 2.0])

    def test_singular_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            lu_factor(np.zeros((3, 3)))
        with pytest.raises(SingularMatrixError):
            lu_factor(np.array([[1.0, 2.0], [2.0, 4.0]]))

    def test_last_pivot_zero_raises(self):
        with pytest.raises(SingularMatrixError):
            lu_factor(np.array([[1.0, 0.0], [0.0, 0.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(SingularMatrixError):
            lu_factor(np.ones((2, 3)))

    def test_inverse_is_cached(self):
        fact = lu_factor(np.eye(3) * 2.0)
        assert fact._inv is None
        inv1 = fact.inverse
        assert fact.inverse is inv1


class TestSolveDense:
    @given(ab=well_conditioned())
    @settings(max_examples=60, deadline=None)
    def test_bitwise_identical_to_numpy(self, ab):
        a, b = ab
        want = np.linalg.solve(a, b)
        assert np.array_equal(solve_dense(a, b), want)
        with dense_errstate():
            assert np.array_equal(solve_dense_nocheck(a, b), want)

    def test_singular_raises(self):
        a = np.zeros((2, 2))
        b = np.ones(2)
        with pytest.raises(SingularMatrixError):
            solve_dense(a, b)
        with dense_errstate(), pytest.raises(SingularMatrixError):
            solve_dense_nocheck(a, b)


class TestFactorizationCache:
    def test_hit_miss_accounting(self):
        cache = FactorizationCache()
        a = np.eye(2) * 3.0
        f1 = cache.get(("dt", "be"), a)
        f2 = cache.get(("dt", "be"), a)
        assert f1 is f2
        assert isinstance(f1, LUFactorization)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_overflow_evicts_lru(self):
        cache = FactorizationCache(max_entries=4)
        a = np.eye(2)
        for i in range(5):
            cache.get(i, a)
        # Bounded at capacity: only the oldest entry was evicted.
        assert len(cache) == 4
        assert cache.evictions == 1
        f4 = cache.get(4, a)
        assert cache.get(4, a) is f4  # newest entry survived
        cache.clear()
        assert len(cache) == 0

    def test_hit_refreshes_recency(self):
        cache = FactorizationCache(max_entries=2)
        a = np.eye(2)
        f0 = cache.get(0, a)
        cache.get(1, a)
        assert cache.get(0, a) is f0  # hit: key 0 becomes most recent
        cache.get(2, a)               # evicts key 1, not key 0
        assert cache.evictions == 1
        assert cache.get(0, a) is f0
        assert (cache.hits, cache.misses) == (2, 3)

    def test_custom_factor_callable(self):
        cache = FactorizationCache()
        calls = []

        def factor(matrix):
            calls.append(matrix)
            return lu_factor(matrix)

        a = np.eye(2)
        f1 = cache.get("k", a, factor=factor)
        f2 = cache.get("k", a, factor=factor)
        assert f1 is f2
        assert len(calls) == 1
