"""Solver backends: registry, auto policy, sparse parity, degradation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.spice.backends as backends
from repro.spice.backends import (
    BackendError,
    DENSE,
    DenseBackend,
    SPARSE_AUTO_MIN_SIZE,
    SparseBackend,
    SparsityPattern,
    available_backends,
    backend_default,
    resolve_backend,
    scipy_available,
    set_backend_default,
)
from repro.spice.devices import (
    Capacitor,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.spice.errors import SingularMatrixError
from repro.spice.mna import System
from repro.spice.netlist import Circuit
from repro.spice.transient import transient
from repro.spice.waveforms import Pulse

needs_scipy = pytest.mark.skipif(not scipy_available(),
                                 reason="scipy not installed")


def _ladder_circuit(n: int, with_diodes: bool = False) -> Circuit:
    """A resistive/capacitive ladder with ``n`` interior nodes."""
    c = Circuit(f"ladder{n}")
    gnd = c.node("0")
    prev = c.node("in")
    c.add(VoltageSource("vin", prev, gnd,
                        Pulse(0.0, 1.0, delay=1e-9, width=1e-6)))
    for i in range(n):
        node = c.node(f"n{i}")
        c.add(Resistor(f"r{i}", prev, node, 1e3 * (1 + i % 3)))
        c.add(Capacitor(f"c{i}", node, gnd, 1e-12))
        if with_diodes and i % 4 == 0:
            c.add(Diode(f"d{i}", gnd, node))
        prev = node
    return c


@pytest.fixture(autouse=True)
def _restore_backend_default():
    prev = backend_default()
    yield
    set_backend_default(prev)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"dense", "sparse"}

    def test_dense_resolution_is_shared_instance(self):
        system = System(_ladder_circuit(3))
        assert resolve_backend("dense", system) is DENSE

    def test_unknown_backend_raises(self):
        system = System(_ladder_circuit(3))
        with pytest.raises(BackendError):
            resolve_backend("fft", system)
        with pytest.raises(BackendError):
            set_backend_default("fft")

    def test_default_roundtrip(self):
        assert backend_default() == "auto"
        prev = set_backend_default("dense")
        assert prev == "auto"
        assert backend_default() == "dense"
        system = System(_ladder_circuit(3))
        assert resolve_backend(None, system) is DENSE

    def test_custom_backend_factory(self):
        sentinel = DenseBackend()
        backends.register_backend("custom-test", lambda system: sentinel)
        try:
            system = System(_ladder_circuit(3))
            assert resolve_backend("custom-test", system) is sentinel
        finally:
            backends._REGISTRY.pop("custom-test")


class TestAutoPolicy:
    def test_small_system_stays_dense(self):
        system = System(_ladder_circuit(5))
        assert not resolve_backend("auto", system).sparse

    @needs_scipy
    def test_threshold_boundary(self, monkeypatch):
        system = System(_ladder_circuit(20))
        monkeypatch.setattr(backends, "SPARSE_AUTO_MIN_SIZE",
                            system.size + 1)
        assert not resolve_backend("auto", system).sparse
        monkeypatch.setattr(backends, "SPARSE_AUTO_MIN_SIZE", system.size)
        assert resolve_backend("auto", system).sparse

    @needs_scipy
    def test_dense_pattern_rejected_on_auto(self, monkeypatch):
        system = System(_ladder_circuit(20))
        monkeypatch.setattr(backends, "SPARSE_AUTO_MIN_SIZE", 1)
        monkeypatch.setattr(backends, "SPARSE_AUTO_MAX_DENSITY", 0.0)
        assert not resolve_backend("auto", system).sparse
        # Forcing sparse skips the density gate.
        assert resolve_backend("sparse", system).sparse

    @needs_scipy
    def test_array_crosses_threshold(self):
        from repro.dram.array import build_array
        arr = build_array(8, 8)
        system = System(arr.circuit)
        assert system.size >= SPARSE_AUTO_MIN_SIZE
        assert resolve_backend("auto", system).sparse


class TestDegradation:
    def test_scipy_missing_falls_back_dense(self, monkeypatch):
        monkeypatch.setattr(backends, "_SCIPY", False)
        assert not scipy_available()
        system = System(_ladder_circuit(20))
        resolved = resolve_backend("sparse", system)
        assert not resolved.sparse
        assert system.kernel_counters.get("backend_sparse_degraded") == 1
        assert not resolve_backend("auto", system).sparse

    @needs_scipy
    def test_no_plans_falls_back_dense(self):
        system = System(_ladder_circuit(20), use_plans=False)
        assert not resolve_backend("sparse", system).sparse

    @needs_scipy
    def test_transient_runs_under_forced_sparse_small_circuit(self):
        # Forcing sparse on a tiny circuit must work, not just degrade.
        c = _ladder_circuit(6, with_diodes=True)
        res = transient(c, 5e-9, 0.5e-9, backend="sparse")
        ref = transient(_ladder_circuit(6, with_diodes=True), 5e-9,
                        0.5e-9, backend="dense")
        for i in range(6):
            assert res.final(f"n{i}") == pytest.approx(
                ref.final(f"n{i}"), abs=1e-9)

    @needs_scipy
    def test_backend_cached_per_system(self):
        system = System(_ladder_circuit(20))
        b1 = resolve_backend("sparse", system)
        b2 = resolve_backend("sparse", system)
        assert b1 is b2


class TestSparsityPattern:
    def test_scrap_slots_excluded(self):
        pat = SparsityPattern(3, np.array([0, 4, 8, 9, 4]))
        # 9 == size*size is the scrap slot; duplicates deduped.
        assert pat.nnz == 3
        assert pat.gather.tolist() == [0, 4, 8]
        assert pat.indptr.tolist() == [0, 1, 2, 3]
        assert pat.indices.tolist() == [0, 1, 2]

    def test_csr_structure_matches_rows(self):
        flat = np.array([1, 3, 5, 7])  # (0,1) (1,0) (1,2) (2,1) at size 3
        pat = SparsityPattern(3, flat)
        assert pat.indptr.tolist() == [0, 1, 3, 4]
        assert pat.indices.tolist() == [1, 0, 2, 1]

    @needs_scipy
    def test_pattern_covers_every_plan_slot(self):
        """Assembled iteration matrices never write outside the pattern."""
        from repro.spice.netlist import AnalysisContext
        c = _ladder_circuit(12, with_diodes=True)
        system = System(c)
        backend = SparseBackend.from_system(system)
        assert backend is not None
        mask = np.zeros(system.size * system.size, dtype=bool)
        mask[backend.pattern.gather] = True
        x = np.full(system.size, 0.3)
        ctx = AnalysisContext(time=1e-9, dt=1e-10, temp_c=27.0, x=x,
                              x_prev=x, method="be")
        A_step, b_step = system.build_step(ctx)
        A, _ = system.build_iteration(A_step, b_step, ctx)
        outside = A.reshape(-1)[~mask]
        assert not np.any(outside != 0.0)


@needs_scipy
class TestSparseSolves:
    def test_solve_matches_dense(self):
        system = System(_ladder_circuit(20, with_diodes=True))
        backend = SparseBackend.from_system(system)
        rng = np.random.default_rng(7)
        A = system._A_static.copy()
        b = rng.uniform(-1, 1, system.size)
        want = np.linalg.solve(A, b)
        assert backend.solve(A, b) == pytest.approx(want, rel=1e-9,
                                                    abs=1e-12)

    def test_factorization_reuse(self):
        system = System(_ladder_circuit(10))
        backend = SparseBackend.from_system(system)
        A = system._A_static.copy()
        fact = backend.factorize(A)
        b = np.arange(float(system.size))
        assert fact.solve(b) == pytest.approx(np.linalg.solve(A, b),
                                              rel=1e-9, abs=1e-12)
        assert fact.solve_fast(b) == pytest.approx(fact.solve(b))

    def test_singular_raises_same_error_shape(self):
        """Both backends raise SingularMatrixError on a singular system."""
        c = Circuit("floating")
        gnd = c.node("0")
        a = c.node("a")
        b_node = c.node("b")
        c.add(Resistor("r1", a, b_node, 1e3))
        c.add(Capacitor("c1", b_node, gnd, 1e-12))
        # gmin=0: nothing ties the pair to ground -> singular matrix.
        system = System(c, gmin=0.0)
        A = system._A_static.copy()
        rhs = np.zeros(system.size)
        backend = SparseBackend.from_system(system)
        with pytest.raises(SingularMatrixError):
            DENSE.solve(A, rhs)
        with pytest.raises(SingularMatrixError):
            backend.solve(A, rhs)

    def test_step_factorization_keys_by_backend(self):
        system = System(_ladder_circuit(10))
        backend = SparseBackend.from_system(system)
        dense_f = system.step_factorization(1e-10, "be")
        sparse_f = system.step_factorization(1e-10, "be", backend)
        assert dense_f is not sparse_f
        assert system.step_factorization(1e-10, "be") is dense_f
        assert system.step_factorization(1e-10, "be", backend) is sparse_f


@needs_scipy
class TestDenseSparseAgreement:
    @given(n=st.integers(4, 24), seed=st.integers(0, 2**32 - 1),
           diodes=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_random_ladder_transient_agrees(self, n, seed, diodes):
        """Dense and sparse transients agree within the documented
        tolerance on randomly-sized plan-compiled circuits."""
        rng = np.random.default_rng(seed)
        c1 = _ladder_circuit(n, with_diodes=diodes)
        c2 = _ladder_circuit(n, with_diodes=diodes)
        # Randomize one resistor value identically in both copies.
        k = int(rng.integers(0, n))
        r = float(rng.uniform(0.5e3, 5e3))
        c1[f"r{k}"].resistance = r
        c2[f"r{k}"].resistance = r
        rd = transient(c1, 4e-9, 0.5e-9, backend="dense")
        rs = transient(c2, 4e-9, 0.5e-9, backend="sparse")
        for i in range(n):
            assert rs.final(f"n{i}") == pytest.approx(
                rd.final(f"n{i}"), abs=1e-7)

    def test_dc_operating_point_agrees(self):
        from repro.spice.dc import dc_operating_point
        c1 = _ladder_circuit(16, with_diodes=True)
        c2 = _ladder_circuit(16, with_diodes=True)
        vd = dc_operating_point(c1, backend="dense")
        vs = dc_operating_point(c2, backend="sparse")
        for name, v in vd.items():
            assert vs[name] == pytest.approx(v, abs=1e-7)


class TestDefaultParity:
    def test_default_transient_bitwise_matches_dense(self):
        """`auto` on a sub-threshold circuit is bitwise the dense path."""
        c1 = _ladder_circuit(8, with_diodes=True)
        c2 = _ladder_circuit(8, with_diodes=True)
        r_auto = transient(c1, 5e-9, 0.5e-9)
        r_dense = transient(c2, 5e-9, 0.5e-9, backend="dense")
        assert np.array_equal(r_auto.time, r_dense.time)
        for i in range(8):
            assert np.array_equal(r_auto.v(f"n{i}"), r_dense.v(f"n{i}"))
