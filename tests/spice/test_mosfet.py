"""Level-1 MOSFET model: regions, symmetry, temperature dependence."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spice.errors import NetlistError
from repro.spice.mosfet import (
    Mosfet,
    MosfetParams,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    mosfet_curves,
)
from repro.spice.netlist import Circuit


def _nmos(w=1e-6, l=0.25e-6, params=NMOS_DEFAULT):
    c = Circuit()
    return Mosfet("M", c.node("d"), c.node("g"), c.node("s"), params,
                  w=w, l=l)


def _pmos(w=1e-6, l=0.25e-6):
    c = Circuit()
    return Mosfet("M", c.node("d"), c.node("g"), c.node("s"),
                  PMOS_DEFAULT, w=w, l=l)


class TestParams:
    def test_rejects_bad_polarity(self):
        with pytest.raises(NetlistError):
            MosfetParams(polarity="x")

    def test_rejects_nonpositive_kp(self):
        with pytest.raises(NetlistError):
            MosfetParams(kp=0.0)

    def test_kp_falls_with_temperature(self):
        p = NMOS_DEFAULT
        assert p.kp_at(87.0) < p.kp_at(27.0) < p.kp_at(-33.0)

    def test_kp_nominal_unchanged(self):
        assert NMOS_DEFAULT.kp_at(27.0) == pytest.approx(NMOS_DEFAULT.kp)

    def test_vth_falls_with_temperature(self):
        p = NMOS_DEFAULT
        assert p.vth_at(87.0) < p.vth_at(27.0) < p.vth_at(-33.0)

    def test_vth_clamped_positive(self):
        p = NMOS_DEFAULT.with_(vth0=0.06, vth_tc=-1e-2)
        assert p.vth_at(200.0) == pytest.approx(0.05)

    def test_with_replaces_fields(self):
        p = NMOS_DEFAULT.with_(vth0=0.7)
        assert p.vth0 == 0.7
        assert p.kp == NMOS_DEFAULT.kp


class TestRegions:
    def test_off_below_threshold(self):
        m = _nmos()
        # Deep subthreshold: orders below on-current
        i_off = m.ids(vgs=0.0, vds=1.0)
        i_on = m.ids(vgs=2.0, vds=1.0)
        assert i_off < i_on * 1e-6

    def test_subthreshold_exponential(self):
        m = _nmos()
        i1 = m.ids(vgs=0.30, vds=1.0)
        i2 = m.ids(vgs=0.20, vds=1.0)
        assert i1 / i2 > 5.0   # decade-ish per ~100 mV at n=1.5

    def test_triode_linear_in_small_vds(self):
        m = _nmos()
        i1 = m.ids(vgs=2.0, vds=0.01)
        i2 = m.ids(vgs=2.0, vds=0.02)
        assert i2 / i1 == pytest.approx(2.0, rel=0.02)

    def test_saturation_weakly_depends_on_vds(self):
        m = _nmos(params=NMOS_DEFAULT.with_(lam=0.0))
        i1 = m.ids(vgs=1.5, vds=1.5)
        i2 = m.ids(vgs=1.5, vds=2.5)
        assert i2 == pytest.approx(i1, rel=1e-6)

    def test_channel_length_modulation(self):
        m = _nmos()
        i1 = m.ids(vgs=1.5, vds=1.5)
        i2 = m.ids(vgs=1.5, vds=2.5)
        assert i2 > i1

    def test_square_law_in_overdrive(self):
        m = _nmos(params=NMOS_DEFAULT.with_(lam=0.0))
        i1 = m.ids(vgs=NMOS_DEFAULT.vth0 + 0.5, vds=3.0)
        i2 = m.ids(vgs=NMOS_DEFAULT.vth0 + 1.0, vds=3.0)
        assert i2 / i1 == pytest.approx(4.0, rel=0.05)

    def test_width_scaling(self):
        i1 = _nmos(w=1e-6).ids(2.0, 1.0)
        i2 = _nmos(w=2e-6).ids(2.0, 1.0)
        assert i2 / i1 == pytest.approx(2.0, rel=1e-9)

    def test_continuity_at_saturation_edge(self):
        params = NMOS_DEFAULT
        w_over_l = 4.0
        vgs = 1.5
        veff = vgs - params.vth0
        i_lo, _, _ = mosfet_curves(params, w_over_l, vgs, veff - 1e-6,
                                   27.0)
        i_hi, _, _ = mosfet_curves(params, w_over_l, vgs, veff + 1e-6,
                                   27.0)
        assert i_lo == pytest.approx(i_hi, rel=1e-4)


class TestSymmetryAndPolarity:
    def test_source_drain_swap_antisymmetric(self):
        m = _nmos()
        # Swap the physical terminals (vg = 2.0 fixed): (vd, vs) = (1, 0)
        # gives vgs = 2, vds = 1; swapped (vd, vs) = (0, 1) gives vgs = 1,
        # vds = -1 and the same magnitude of current, reversed.
        i_fwd = m.ids(vgs=2.0, vds=1.0)
        i_rev = m.ids(vgs=1.0, vds=-1.0)
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_pmos_mirrors_nmos_shape(self):
        m = _pmos()
        i = m.ids(vgs=-2.0, vds=-1.0)
        assert i < 0
        assert abs(i) > 1e-6

    def test_pmos_off_at_zero_vgs(self):
        m = _pmos()
        assert abs(m.ids(vgs=0.0, vds=-1.0)) < 1e-9

    def test_zero_vds_zero_current(self):
        m = _nmos()
        assert m.ids(vgs=2.0, vds=0.0) == pytest.approx(0.0, abs=1e-15)


class TestTemperature:
    def test_on_current_falls_with_temperature(self):
        m = _nmos()
        assert m.ids(2.0, 1.0, temp_c=87.0) < m.ids(2.0, 1.0, temp_c=27.0)

    def test_subthreshold_rises_with_temperature(self):
        m = _nmos()
        # Lower vth + higher vt -> more leakage at fixed low vgs.
        assert m.ids(0.2, 1.0, temp_c=87.0) > m.ids(0.2, 1.0, temp_c=27.0)

    @given(st.floats(-40.0, 120.0))
    def test_current_finite_over_temperature(self, temp):
        m = _nmos()
        i = m.ids(1.5, 1.0, temp_c=temp)
        assert math.isfinite(i)
        assert i >= 0.0


class TestGeometryValidation:
    def test_rejects_bad_geometry(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            Mosfet("M", c.node("d"), c.node("g"), c.node("s"),
                   NMOS_DEFAULT, w=0.0)

    @given(st.floats(0.5, 3.0), st.floats(0.05, 3.5))
    def test_monotone_in_vgs(self, vgs_base, dv):
        m = _nmos()
        assert m.ids(vgs_base + dv, 1.0) >= m.ids(vgs_base, 1.0)
