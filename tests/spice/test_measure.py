"""Waveform measurement utilities."""

import math

import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    PWL,
    Resistor,
    SpiceError,
    VoltageSource,
    transient,
)
from repro.spice.measure import (
    average,
    cross_time,
    edge_time,
    extremum,
    settle_time,
)


@pytest.fixture(scope="module")
def rc_result():
    """RC charge to 2.0 V with tau = 100 ns, step at t = 0."""
    c = Circuit()
    c.add(VoltageSource("V", c.node("in"), c.node("0"),
                        PWL([(0.0, 0.0), (1e-10, 2.0)])))
    c.add(Resistor("R", c.node("in"), c.node("out"), 1e3))
    c.add(Capacitor("C", c.node("out"), c.node("0"), 100e-12))
    return transient(c, 800e-9, 1e-9)


class TestCrossTime:
    def test_rc_half_level(self, rc_result):
        t = cross_time(rc_result, "out", 1.0, direction="rise")
        assert t == pytest.approx(100e-9 * math.log(2), rel=0.05)

    def test_no_crossing_returns_none(self, rc_result):
        assert cross_time(rc_result, "out", 5.0) is None

    def test_fall_direction_filters(self, rc_result):
        assert cross_time(rc_result, "out", 1.0,
                          direction="fall") is None

    def test_occurrence_selection(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("a"), c.node("0"),
                            PWL([(0, 0), (10e-9, 2), (20e-9, 0),
                                 (30e-9, 2)])))
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        res = transient(c, 40e-9, 0.5e-9)
        t1 = cross_time(res, "a", 1.0, direction="rise", occurrence=1)
        t2 = cross_time(res, "a", 1.0, direction="rise", occurrence=2)
        assert t1 == pytest.approx(5e-9, rel=0.05)
        assert t2 == pytest.approx(25e-9, rel=0.05)

    def test_bad_arguments(self, rc_result):
        with pytest.raises(SpiceError):
            cross_time(rc_result, "out", 1.0, direction="sideways")
        with pytest.raises(SpiceError):
            cross_time(rc_result, "out", 1.0, occurrence=0)


class TestEdgeTime:
    def test_rc_10_90_rise(self, rc_result):
        t = edge_time(rc_result, "out")
        # analytic 10-90% of an RC step: tau * ln(9)
        assert t == pytest.approx(100e-9 * math.log(9), rel=0.10)

    def test_flat_waveform_none(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("a"), c.node("0"), 1.0))
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        res = transient(c, 10e-9, 1e-9, initial={"a": 1.0})
        assert edge_time(res, "a") is None


class TestSettleTime:
    def test_rc_settles_within_tolerance(self, rc_result):
        t = settle_time(rc_result, "out", final=2.0, tolerance=0.05)
        # settles to 2.5% band at ~ tau*ln(40)
        assert t == pytest.approx(100e-9 * math.log(2.0 / 0.05),
                                  rel=0.15)

    def test_never_settles(self, rc_result):
        assert settle_time(rc_result, "out", final=0.0,
                           tolerance=0.01) is None

    def test_already_settled(self, rc_result):
        t = settle_time(rc_result, "out", final=2.0, tolerance=3.0)
        assert t == pytest.approx(0.0, abs=1e-12)


class TestExtremumAndAverage:
    def test_extremum_of_rc(self, rc_result):
        v_min, t_min, v_max, t_max = extremum(rc_result, "out")
        assert v_min == pytest.approx(0.0, abs=1e-6)
        assert v_max == pytest.approx(2.0, abs=0.02)
        assert t_min < t_max

    def test_extremum_window(self, rc_result):
        with pytest.raises(SpiceError):
            extremum(rc_result, "out", t_start=1.0, t_stop=2.0)

    def test_average_of_constant(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("a"), c.node("0"), 1.5))
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        res = transient(c, 10e-9, 1e-9, initial={"a": 1.5})
        assert average(res, "a") == pytest.approx(1.5, rel=1e-6)

    def test_average_of_ramp(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("a"), c.node("0"),
                            PWL([(0.0, 0.0), (10e-9, 2.0)])))
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        res = transient(c, 10e-9, 0.5e-9)
        assert average(res, "a") == pytest.approx(1.0, rel=0.02)

    def test_average_bad_window(self, rc_result):
        with pytest.raises(SpiceError):
            average(rc_result, "out", t_start=5e-9, t_stop=5e-9)
