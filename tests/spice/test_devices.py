"""Linear devices and the diode junction model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
    thermal_voltage,
)
from repro.spice.errors import NetlistError
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Constant
from repro.spice import dc_operating_point, transient


class TestResistor:
    def test_rejects_nonpositive(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            Resistor("R", c.node("a"), c.node("0"), 0.0)
        with pytest.raises(NetlistError):
            Resistor("R", c.node("a"), c.node("0"), -5.0)

    def test_divider_dc(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(3.0)))
        c.add(Resistor("R1", c.node("in"), c.node("mid"), 1e3))
        c.add(Resistor("R2", c.node("mid"), c.node("0"), 2e3))
        op = dc_operating_point(c)
        assert op["mid"] == pytest.approx(2.0, rel=1e-6)

    @given(st.floats(1.0, 1e6), st.floats(1.0, 1e6))
    def test_divider_ratio_property(self, r1, r2):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(1.0)))
        c.add(Resistor("R1", c.node("in"), c.node("mid"), r1))
        c.add(Resistor("R2", c.node("mid"), c.node("0"), r2))
        op = dc_operating_point(c)
        assert op["mid"] == pytest.approx(r2 / (r1 + r2), rel=1e-4)


class TestCapacitor:
    def test_rejects_nonpositive(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            Capacitor("C", c.node("a"), c.node("0"), -1e-12)

    def test_open_in_dc(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(2.0)))
        c.add(Resistor("R", c.node("in"), c.node("out"), 1e3))
        c.add(Capacitor("C", c.node("out"), c.node("0"), 1e-9))
        op = dc_operating_point(c)
        # No DC path to ground besides gmin -> output floats to the input.
        assert op["out"] == pytest.approx(2.0, rel=1e-3)

    def test_holds_initial_condition(self):
        c = Circuit()
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e12))
        c.add(Capacitor("C", c.node("a"), c.node("0"), 1e-9))
        res = transient(c, 1e-6, 1e-8, initial={"a": 1.7})
        assert res.final("a") == pytest.approx(1.7, abs=1e-3)


class TestSources:
    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add(CurrentSource("I", c.node("0"), c.node("a"), Constant(1e-3)))
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        op = dc_operating_point(c)
        assert op["a"] == pytest.approx(1.0, rel=1e-6)

    def test_voltage_source_forces_node(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("a"), c.node("0"), Constant(-1.2)))
        c.add(Resistor("R", c.node("a"), c.node("0"), 50.0))
        op = dc_operating_point(c)
        assert op["a"] == pytest.approx(-1.2)

    def test_floating_differential_source(self):
        c = Circuit()
        c.add(VoltageSource("V1", c.node("a"), c.node("0"), Constant(2.0)))
        c.add(VoltageSource("V2", c.node("b"), c.node("a"), Constant(0.5)))
        c.add(Resistor("R", c.node("b"), c.node("0"), 1e3))
        op = dc_operating_point(c)
        assert op["b"] == pytest.approx(2.5)


class TestDiode:
    def test_forward_conduction(self):
        d = Diode("D", Circuit().node("a"), Circuit().node("0"),
                  isat=1e-14)
        i, g = d.iv(0.7, 27.0)
        assert i > 1e-4
        assert g > 0

    def test_reverse_saturation(self):
        c = Circuit()
        d = Diode("D", c.node("a"), c.node("0"), isat=1e-12)
        i, _ = d.iv(-1.0, 27.0)
        assert i == pytest.approx(-1e-12, rel=1e-3)

    def test_temperature_doubling(self):
        c = Circuit()
        d = Diode("D", c.node("a"), c.node("0"), isat=1e-12,
                  isat_tdouble=10.0, temp_nom_c=27.0)
        assert d.isat_at(37.0) == pytest.approx(2e-12)
        assert d.isat_at(27.0) == pytest.approx(1e-12)
        assert d.isat_at(17.0) == pytest.approx(0.5e-12)

    def test_exp_clamp_no_overflow(self):
        c = Circuit()
        d = Diode("D", c.node("a"), c.node("0"))
        i, g = d.iv(100.0, 27.0)   # absurd forward bias
        assert math.isfinite(i)
        assert math.isfinite(g)

    def test_rejects_bad_isat(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            Diode("D", c.node("a"), c.node("0"), isat=0.0)

    def test_dc_forward_drop(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(2.0)))
        c.add(Resistor("R", c.node("in"), c.node("a"), 1e3))
        c.add(Diode("D", c.node("a"), c.node("0"), isat=1e-14))
        op = dc_operating_point(c)
        assert 0.5 < op["a"] < 0.8    # a silicon-ish forward drop


class TestThermalVoltage:
    def test_room_temperature(self):
        assert thermal_voltage(27.0) == pytest.approx(0.02585, rel=1e-3)

    def test_monotone_in_temperature(self):
        assert thermal_voltage(87.0) > thermal_voltage(27.0) > \
            thermal_voltage(-33.0)
