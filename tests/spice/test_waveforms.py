"""Waveform evaluation and breakpoint enumeration."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spice.waveforms import (
    Constant,
    PWL,
    Pulse,
    merge_breakpoints,
    step,
)


class TestConstant:
    def test_value_everywhere(self):
        wf = Constant(2.4)
        assert wf.value(0.0) == 2.4
        assert wf.value(1e-3) == 2.4
        assert wf.value(-1.0) == 2.4

    def test_no_breakpoints(self):
        assert Constant(1.0).breakpoints(0, 1) == []

    def test_callable(self):
        assert Constant(3.3)(0.5) == 3.3


class TestPWL:
    def test_holds_before_first_point(self):
        wf = PWL([(1e-9, 1.0), (2e-9, 2.0)])
        assert wf.value(0.0) == 1.0

    def test_holds_after_last_point(self):
        wf = PWL([(1e-9, 1.0), (2e-9, 2.0)])
        assert wf.value(5e-9) == 2.0

    def test_linear_interpolation(self):
        wf = PWL([(0.0, 0.0), (1.0, 2.0)])
        assert wf.value(0.5) == pytest.approx(1.0)
        assert wf.value(0.25) == pytest.approx(0.5)

    def test_exact_points(self):
        wf = PWL([(0.0, 0.0), (1.0, 2.0), (2.0, -1.0)])
        assert wf.value(1.0) == pytest.approx(2.0)
        assert wf.value(2.0) == pytest.approx(-1.0)

    def test_ideal_step_coincident_points(self):
        wf = PWL([(0.0, 0.0), (1.0, 0.0), (1.0, 5.0)])
        assert wf.value(0.999999) == pytest.approx(0.0, abs=1e-4)
        assert wf.value(1.0) == 5.0

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PWL([(1.0, 0.0), (0.5, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PWL([])

    def test_breakpoints_interior_only(self):
        wf = PWL([(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)])
        assert wf.breakpoints(0.0, 2.0) == [1.0]
        assert wf.breakpoints(0.0, 3.0) == [1.0, 2.0]

    @given(st.lists(st.tuples(st.floats(0, 1e-6),
                              st.floats(-5, 5)),
                    min_size=1, max_size=8))
    def test_value_bounded_by_samples(self, points):
        points = sorted(points, key=lambda p: p[0])
        wf = PWL(points)
        values = [v for _, v in points]
        lo, hi = min(values), max(values)
        for frac in (0.0, 0.3, 0.7, 1.0):
            t = points[0][0] + frac * (points[-1][0] - points[0][0])
            assert lo - 1e-9 <= wf.value(t) <= hi + 1e-9


class TestPulse:
    def test_level_before_delay(self):
        wf = Pulse(0.0, 1.0, delay=10e-9, rise=1e-9, width=5e-9)
        assert wf.value(5e-9) == 0.0

    def test_plateau(self):
        wf = Pulse(0.0, 1.0, delay=0.0, rise=1e-9, width=5e-9, fall=1e-9)
        assert wf.value(3e-9) == 1.0

    def test_edges_interpolate(self):
        wf = Pulse(0.0, 2.0, delay=0.0, rise=2e-9, width=5e-9)
        assert wf.value(1e-9) == pytest.approx(1.0)

    def test_returns_to_v1(self):
        wf = Pulse(0.0, 1.0, delay=0.0, rise=1e-9, width=2e-9, fall=1e-9)
        assert wf.value(10e-9) == 0.0

    def test_periodic_repeats(self):
        wf = Pulse(0.0, 1.0, delay=0.0, rise=1e-9, width=2e-9, fall=1e-9,
                   period=10e-9)
        assert wf.value(12e-9) == pytest.approx(wf.value(2e-9))

    def test_rejects_zero_rise(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, rise=0.0)

    def test_rejects_period_shorter_than_pulse(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, rise=1e-9, width=5e-9, fall=1e-9, period=3e-9)

    def test_breakpoints_single(self):
        wf = Pulse(0.0, 1.0, delay=1e-9, rise=1e-9, width=2e-9, fall=1e-9)
        bps = wf.breakpoints(0.0, 10e-9)
        assert bps == pytest.approx([1e-9, 2e-9, 4e-9, 5e-9])

    def test_breakpoints_periodic_count(self):
        wf = Pulse(0.0, 1.0, rise=1e-9, width=2e-9, fall=1e-9,
                   period=10e-9)
        bps = wf.breakpoints(0.0, 25e-9)
        # ~2.5 periods x 4 corners, minus those at exactly 0
        assert len(bps) >= 8
        assert bps == sorted(bps)

    @given(st.floats(0, 100e-9))
    def test_periodic_value_in_range(self, t):
        wf = Pulse(-1.0, 2.0, rise=1e-9, width=3e-9, fall=2e-9,
                   period=12e-9)
        assert -1.0 <= wf.value(t) <= 2.0


class TestHelpers:
    def test_step_levels(self):
        wf = step(1e-9, 0.0, 2.4)
        assert wf.value(0.0) == 0.0
        assert wf.value(2e-9) == 2.4

    def test_merge_breakpoints_sorted_unique(self):
        a = PWL([(0.0, 0), (1.0, 1), (2.0, 0)])
        b = PWL([(0.0, 0), (1.0, 2), (3.0, 0)])
        merged = merge_breakpoints([a, b], 0.0, 5.0)
        assert merged == [1.0, 2.0, 3.0]

    def test_merge_respects_window(self):
        a = PWL([(0.0, 0), (1.0, 1), (9.0, 0)])
        assert merge_breakpoints([a], 0.0, 5.0) == [1.0]

    def test_merge_dedup_tolerance(self):
        a = PWL([(1.0, 0), (2.0, 1)])
        b = PWL([(1.0 + 1e-16, 0), (2.0, 1)])
        merged = merge_breakpoints([a, b], 0.5, 3.0)
        assert merged == [1.0, 2.0]   # 1.0+1e-16 collapses into 1.0
