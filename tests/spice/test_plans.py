"""Compiled stamp plans: bitwise parity with the per-device stamp walk.

The kernel layer's hard requirement is that a plan-assembled system is
*bitwise* equal to the legacy per-device assembly — not merely close.
These property tests draw random circuits over every plannable device
class and compare the assembled matrices of the two paths exactly, for
both nonlinear evaluation kernels (fused scalar loop and array pass).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import (
    Capacitor,
    Circuit,
    Constant,
    CurrentSource,
    Diode,
    Mosfet,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    Resistor,
    VoltageSource,
)
from repro.spice.mna import System
from repro.spice.netlist import AnalysisContext, Device
from repro.spice.plans import compile_nonlinear, compile_sources

NODE_NAMES = ("0", "a", "b", "c", "d")


@st.composite
def circuits(draw):
    """A random finalizable circuit over the plannable device classes."""
    c = Circuit()
    nodes = [c.node(n) for n in NODE_NAMES]
    pick = st.sampled_from(nodes)

    for i in range(draw(st.integers(1, 3))):
        c.add(Resistor(f"R{i}", draw(pick), draw(pick),
                       draw(st.floats(10.0, 1e6))))
    for i in range(draw(st.integers(0, 2))):
        c.add(Capacitor(f"C{i}", draw(pick), draw(pick),
                        draw(st.floats(1e-15, 1e-9))))
    for i in range(draw(st.integers(0, 2))):
        c.add(VoltageSource(f"V{i}", draw(pick), draw(pick),
                            Constant(draw(st.floats(-3.0, 3.0)))))
    for i in range(draw(st.integers(0, 1))):
        c.add(CurrentSource(f"I{i}", draw(pick), draw(pick),
                            Constant(draw(st.floats(-1e-3, 1e-3)))))
    for i in range(draw(st.integers(0, 3))):
        d, g, s = draw(pick), draw(pick), draw(pick)
        if d.index == s.index:
            continue  # degenerate: compiler falls back by design
        params = NMOS_DEFAULT if draw(st.booleans()) else PMOS_DEFAULT
        c.add(Mosfet(f"M{i}", d, g, s, params,
                     w=draw(st.floats(2e-7, 5e-6))))
    for i in range(draw(st.integers(0, 2))):
        a, k = draw(pick), draw(pick)
        c.add(Diode(f"D{i}", a, k, isat=draw(st.floats(1e-16, 1e-12))))
    return c


def _assemble_both(circuit, x_vals, dt, method, temp_c):
    """(A, b) step and iteration layers from the plan and legacy paths."""
    sys_p = System(circuit, use_plans=True)
    sys_f = System(circuit, use_plans=False)
    size = sys_p.size
    x = np.resize(np.asarray(x_vals, dtype=float), size)
    ctx = AnalysisContext(time=1e-9, dt=dt, temp_c=temp_c, x=x,
                          x_prev=x, method=method)
    out = {}
    for tag, system in (("plan", sys_p), ("legacy", sys_f)):
        A_step, b_step = system.build_step(ctx)
        A_it, b_it = system.build_iteration(A_step, b_step, ctx)
        out[tag] = (A_step.copy(), b_step.copy(), A_it.copy(), b_it.copy())
    return sys_p, out


class TestAssemblyParity:
    @given(circuit=circuits(),
           x_vals=st.lists(st.floats(-2.5, 2.5), min_size=1, max_size=12),
           dt=st.sampled_from([1e-12, 1e-10, 2.5e-9]),
           method=st.sampled_from(["be", "trap"]),
           temp_c=st.sampled_from([-10.0, 27.0, 85.0]))
    @settings(max_examples=60, deadline=None)
    def test_plan_assembly_is_bitwise_equal(self, circuit, x_vals, dt,
                                            method, temp_c):
        sys_p, out = _assemble_both(circuit, x_vals, dt, method, temp_c)
        for got, want in zip(out["plan"], out["legacy"]):
            assert np.array_equal(got, want)  # bitwise, not approx

    @given(circuit=circuits(),
           x_vals=st.lists(st.floats(-2.5, 2.5), min_size=1, max_size=12),
           temp_c=st.sampled_from([27.0, 85.0]))
    @settings(max_examples=40, deadline=None)
    def test_vec_kernel_matches_scalar_loop_bitwise(self, circuit, x_vals,
                                                    temp_c):
        """The array pass and the fused scalar loop agree bit for bit."""
        sys_p = System(circuit, use_plans=True)
        nl = sys_p.plans.nonlinear
        if nl is None or not (nl.mosfets or nl.diodes):
            return
        size = sys_p.size
        x = np.resize(np.asarray(x_vals, dtype=float), size)
        flat_loop = np.zeros(size * size + size + 2)
        flat_vec = np.zeros_like(flat_loop)
        nl._apply_loop(flat_loop, x, temp_c)
        nl._apply_vec(flat_vec, x, temp_c)
        assert np.array_equal(flat_loop, flat_vec)

    @given(circuit=circuits(),
           x_vals=st.lists(st.floats(-2.5, 2.5), min_size=1, max_size=12),
           dt=st.sampled_from([1e-12, 1e-10]),
           method=st.sampled_from(["be", "trap"]))
    @settings(max_examples=30, deadline=None)
    def test_forced_vec_paths_stay_bitwise(self, circuit, x_vals, dt,
                                           method):
        """Forcing ``_use_vec`` (large-count path) changes nothing."""
        sys_p = System(circuit, use_plans=True)
        sys_f = System(circuit, use_plans=False)
        if sys_p.plans.nonlinear is not None:
            sys_p.plans.nonlinear._use_vec = True
        if sys_p.plans.dynamic is not None:
            sys_p.plans.dynamic._use_vec = True
        size = sys_p.size
        x = np.resize(np.asarray(x_vals, dtype=float), size)
        ctx = AnalysisContext(time=0.5e-9, dt=dt, temp_c=27.0, x=x,
                              x_prev=x, method=method)
        A_p, b_p = sys_p.build_step(ctx)
        A_it_p, b_it_p = sys_p.build_iteration(A_p, b_p, ctx)
        A_it_p, b_it_p = A_it_p.copy(), b_it_p.copy()
        A_f, b_f = sys_f.build_step(ctx)
        A_it_f, b_it_f = sys_f.build_iteration(A_f, b_f, ctx)
        assert np.array_equal(A_it_p, A_it_f)
        assert np.array_equal(b_it_p, b_it_f)


class TestCompilerFallbacks:
    def test_drain_tied_source_mosfet_falls_back(self):
        c = Circuit()
        n = c.node("n")
        m = Mosfet("M", n, c.node("g"), n, NMOS_DEFAULT)
        assert compile_nonlinear([m], 4) is None

    def test_unknown_nonlinear_device_falls_back(self):
        class Odd(Device):
            def stamp_nonlinear(self, st):  # pragma: no cover
                pass

        c = Circuit()
        dev = Odd("X", (c.node("a"),))
        assert compile_nonlinear([dev], 4) is None

    def test_unknown_source_device_falls_back(self):
        class OddSource(Device):
            def stamp_source(self, st):  # pragma: no cover
                pass

        c = Circuit()
        dev = OddSource("X", (c.node("a"),))
        assert compile_sources([dev], 2) is None

    def test_fallback_system_still_assembles(self):
        """A circuit with an unplannable device uses the stamp walk."""
        class ExtraGround(Device):
            def stamp_nonlinear(self, st):
                st.conductance(self.node_list[0], self.node_list[1], 1e-9)

        c = Circuit()
        c.add(Resistor("R", c.node("a"), c.node("0"), 1e3))
        c.add(ExtraGround("X", (c.node("a"), c.node("0"))))
        system = System(c, use_plans=True)
        assert system._nl_plan is None
        x = np.zeros(system.size)
        ctx = AnalysisContext(time=0.0, dt=None, temp_c=27.0, x=x,
                              x_prev=x)
        A_step, b_step = system.build_step(ctx)
        A, _ = system.build_iteration(A_step, b_step, ctx)
        assert A[0, 0] == pytest.approx(1e-3 + 1e-9, rel=1e-12)


class TestSwapCache:
    def test_swap_cache_is_bounded(self):
        c = Circuit()
        c.add(Mosfet("M", c.node("d"), c.node("g"), c.node("s"),
                     NMOS_DEFAULT))
        c.add(Resistor("R", c.node("d"), c.node("0"), 1e3))
        system = System(c, use_plans=True)
        nl = system.plans.nonlinear
        for i in range(200):
            nl._cache_swap_idx(("fake", i), np.empty(0, dtype=np.intp))
        assert len(nl._swap_idx_cache) <= 129
