"""Circuit construction, node management and stamping primitives."""

import numpy as np
import pytest

from repro.spice.devices import Resistor, VoltageSource
from repro.spice.errors import NetlistError
from repro.spice.netlist import (
    AnalysisContext,
    Circuit,
    GROUND,
    Stamper,
)
from repro.spice.waveforms import Constant


class TestNodes:
    def test_ground_aliases(self):
        c = Circuit()
        for name in ("0", "gnd", "GND", "ground"):
            assert c.node(name) is GROUND

    def test_node_identity_per_name(self):
        c = Circuit()
        assert c.node("a") is c.node("a")

    def test_distinct_names_distinct_nodes(self):
        c = Circuit()
        assert c.node("a") is not c.node("b")

    def test_ground_not_counted(self):
        c = Circuit()
        c.node("0")
        assert c.num_nodes == 0

    def test_indices_sequential(self):
        c = Circuit()
        assert c.node("a").index == 0
        assert c.node("b").index == 1

    def test_has_node(self):
        c = Circuit()
        c.node("x")
        assert c.has_node("x")
        assert c.has_node("gnd")
        assert not c.has_node("y")


class TestDevices:
    def test_add_and_lookup(self):
        c = Circuit()
        r = c.add(Resistor("R1", c.node("a"), c.node("0"), 1e3))
        assert c["R1"] is r
        assert "R1" in c

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.add(Resistor("R1", c.node("a"), c.node("0"), 1e3))
        with pytest.raises(NetlistError):
            c.add(Resistor("R1", c.node("b"), c.node("0"), 1e3))

    def test_foreign_node_rejected(self):
        c1, c2 = Circuit(), Circuit()
        alien = c2.node("x")
        with pytest.raises(NetlistError):
            c1.add(Resistor("R1", alien, c1.node("0"), 1e3))

    def test_remove(self):
        c = Circuit()
        c.add(Resistor("R1", c.node("a"), c.node("0"), 1e3))
        c.remove("R1")
        assert "R1" not in c

    def test_remove_missing_raises(self):
        with pytest.raises(NetlistError):
            Circuit().remove("nope")

    def test_lookup_missing_raises(self):
        with pytest.raises(NetlistError):
            Circuit()["nope"]


class TestFinalize:
    def test_branch_indices_for_vsources(self):
        c = Circuit()
        c.add(VoltageSource("V1", c.node("a"), c.node("0"), Constant(1)))
        c.add(Resistor("R1", c.node("a"), c.node("0"), 1e3))
        c.add(VoltageSource("V2", c.node("b"), c.node("0"), Constant(2)))
        assert c.branch_index("V1") == 0
        assert c.branch_index("V2") == 1
        assert c.num_branches == 2

    def test_system_size(self):
        c = Circuit()
        c.add(VoltageSource("V1", c.node("a"), c.node("0"), Constant(1)))
        c.add(Resistor("R1", c.node("a"), c.node("b"), 1e3))
        assert c.system_size == 2 + 1

    def test_resistor_has_no_branch(self):
        c = Circuit()
        c.add(Resistor("R1", c.node("a"), c.node("0"), 1e3))
        with pytest.raises(NetlistError):
            c.branch_index("R1")

    def test_adding_after_finalize_refinalizes(self):
        c = Circuit()
        c.add(VoltageSource("V1", c.node("a"), c.node("0"), Constant(1)))
        c.finalize()
        c.add(VoltageSource("V2", c.node("b"), c.node("0"), Constant(2)))
        assert c.branch_index("V2") == 1


class TestStamper:
    def _stamper(self, n):
        A = np.zeros((n, n))
        b = np.zeros(n)
        return Stamper(A, b, n, AnalysisContext()), A, b

    def test_conductance_two_nodes(self):
        c = Circuit()
        a, b_node = c.node("a"), c.node("b")
        st, A, _ = self._stamper(2)
        st.conductance(a, b_node, 0.5)
        assert A[0, 0] == 0.5
        assert A[1, 1] == 0.5
        assert A[0, 1] == -0.5
        assert A[1, 0] == -0.5

    def test_conductance_to_ground(self):
        c = Circuit()
        a = c.node("a")
        st, A, _ = self._stamper(1)
        st.conductance(a, GROUND, 2.0)
        assert A[0, 0] == 2.0

    def test_current_directions(self):
        c = Circuit()
        a, b_node = c.node("a"), c.node("b")
        st, _, rhs = self._stamper(2)
        st.current(a, b_node, 1e-3)
        assert rhs[0] == -1e-3
        assert rhs[1] == 1e-3

    def test_transconductance_pattern(self):
        c = Circuit()
        d, g, s = c.node("d"), c.node("g"), c.node("s")
        st, A, _ = self._stamper(3)
        st.transconductance(d, s, g, s, 1e-3)
        assert A[d.index, g.index] == pytest.approx(1e-3)
        assert A[d.index, s.index] == pytest.approx(-1e-3)
        assert A[s.index, g.index] == pytest.approx(-1e-3)
        assert A[s.index, s.index] == pytest.approx(1e-3)

    def test_voltage_reads(self):
        c = Circuit()
        a = c.node("a")
        ctx = AnalysisContext(x=np.array([1.5]), x_prev=np.array([0.5]))
        st = Stamper(np.zeros((1, 1)), np.zeros(1), 1, ctx)
        assert st.v(a) == 1.5
        assert st.v_prev(a) == 0.5
        assert st.v(GROUND) == 0.0
