"""Sparse lane system: parity, policy resolution, degradation, guards.

The sparse lane kernel (:class:`repro.spice.lanes.SparseLaneSystem` +
:func:`repro.spice.solver.newton_solve_lanes_sparse`) batches the CSR
backend the way :class:`~repro.spice.lanes.LaneSystem` batches the
dense one: every lane shares the plan-derived sparsity pattern (one
symbolic factorization) and keeps per-lane SuperLU numeric
factorizations, refreshed only on quasi-Newton stagnation.  These tests
pin the contract: trajectories within the documented lane tolerance of
the dense kernel, policy resolution mirroring the serial backend
choice, and a clean :class:`~repro.spice.lanes.LaneError` degradation
(engine falls back to the serial sparse path) whenever the batched
kernel cannot stack a system.
"""

import numpy as np
import pytest

from repro.dram.array import build_array
from repro.dram.column import DEFECT_DEVICE, DefectSite
from repro.spice.backends import (resolve_lane_mode, scipy_available,
                                  set_backend_default)
from repro.spice.lanes import (LaneError, LaneSystem, SparseLaneSystem,
                               lane_transient, make_lane_system)
from repro.spice.mna import System

#: The documented lane-vs-serial tolerance (DESIGN.md sections 5d/5h).
LANE_TOL = 1e-5

needs_scipy = pytest.mark.skipif(not scipy_available(),
                                 reason="scipy required for sparse lanes")

RESISTANCES = (1e4, 3e5, 1e7)


def _activation_setup(n: int = 4, kind: str = "open_sn"):
    """A defective n×n array with row-activation stimulus applied."""
    cell = (n // 2) * n + n // 2
    arr = build_array(n, n, defect=DefectSite(kind, cell, RESISTANCES[0]))
    arr.set_waveforms(arr.activation_waveforms(n // 2))
    return arr, System(arr.circuit)


def _run_lanes(lanes, system):
    x0 = np.zeros((len(lanes.resistances), system.size))
    return lane_transient(lanes, 20e-9, 0.5e-9, x0=x0)


@needs_scipy
class TestSparseParity:
    def test_sparse_lanes_match_dense_lanes(self):
        """Same stacked transient through both kernels: every storage
        node stays within the documented lane tolerance."""
        arr, system = _activation_setup()
        dense = LaneSystem(system, RESISTANCES, DEFECT_DEVICE)
        sparse = SparseLaneSystem(system, RESISTANCES, DEFECT_DEVICE)
        assert sparse.sparse and not dense.sparse

        res_d = _run_lanes(dense, system)
        res_s = _run_lanes(sparse, system)
        assert res_d.counters["lanes_isolated"] == 0
        assert res_s.counters["lanes_isolated"] == 0
        worst = 0.0
        for a, b in zip(res_d.results, res_s.results):
            assert a is not None and b is not None
            assert np.array_equal(a.time, b.time)
            for name in arr.storage_nodes:
                worst = max(worst,
                            float(np.abs(a.v(name) - b.v(name)).max()))
        assert worst <= LANE_TOL

    def test_counters_report_sparse_group_and_symbolic_reuse(self):
        """Each numeric refactorization reuses the one shared symbolic
        pattern, and the batch tags itself as a sparse group."""
        _, system = _activation_setup()
        sparse = SparseLaneSystem(system, RESISTANCES, DEFECT_DEVICE)
        res = _run_lanes(sparse, system)
        assert res.counters["lane_sparse_groups"] == 1
        # Every lane factors at least once (the initial chord matrix).
        assert res.counters["lane_symbolic_reuse"] >= len(RESISTANCES)
        # Drained into the batch counters, not left on the system.
        assert sparse.counters == {}


class TestPolicyResolution:
    def test_lane_mode_serial_below_two_lanes(self):
        _, system = _activation_setup()
        assert resolve_lane_mode(system, 0) == "serial"
        assert resolve_lane_mode(system, 1) == "serial"

    def test_lane_mode_mirrors_backend_resolution(self):
        """Forced backends flip the lane mode with them."""
        _, system = _activation_setup()
        assert resolve_lane_mode(system, 4, "dense") == "dense"
        expect = "sparse" if scipy_available() else "dense"
        assert resolve_lane_mode(system, 4, "sparse") == expect

    def test_make_lane_system_follows_policy(self):
        """The factory builds whatever kernel the serial path resolved."""
        _, system = _activation_setup()
        prev = set_backend_default("dense")
        try:
            lanes = make_lane_system(system, RESISTANCES, DEFECT_DEVICE)
            assert type(lanes) is LaneSystem
            if scipy_available():
                set_backend_default("sparse")
                lanes = make_lane_system(system, RESISTANCES,
                                         DEFECT_DEVICE)
                assert type(lanes) is SparseLaneSystem
        finally:
            set_backend_default(prev)


class TestDegradation:
    def test_scipy_missing_degrades_to_dense_lanes(self, monkeypatch):
        """A numpy-only install must still lane-batch, on the dense
        kernel, even under a forced-sparse default."""
        from repro.spice import backends as backends_mod
        _, system = _activation_setup()
        monkeypatch.setattr(backends_mod.SparseBackend, "from_system",
                            classmethod(lambda cls, s: None))
        system.kernel_counters.clear()
        prev = set_backend_default("sparse")
        try:
            lanes = make_lane_system(system, RESISTANCES, DEFECT_DEVICE)
        finally:
            set_backend_default(prev)
        assert type(lanes) is LaneSystem

    def test_sparse_system_without_backend_raises(self, monkeypatch):
        from repro.spice import backends as backends_mod
        _, system = _activation_setup()
        monkeypatch.setattr(backends_mod.SparseBackend, "from_system",
                            classmethod(lambda cls, s: None))
        with pytest.raises(LaneError):
            SparseLaneSystem(system, RESISTANCES, DEFECT_DEVICE)

    def test_empty_row_pattern_refused(self):
        """np.add.reduceat mis-sums empty CSR segments, so a pattern
        with an empty matrix row must be refused up front."""
        _, system = _activation_setup()

        class _Pattern:
            indptr = np.array([0, 0, 2])
            indices = np.array([0, 1])
            nnz = 2

        class _Backend:
            sparse = True
            pattern = _Pattern()

        with pytest.raises(LaneError, match="empty"):
            SparseLaneSystem(system, RESISTANCES, DEFECT_DEVICE,
                             backend=_Backend())
