"""Convergence-rescue ladder: Gmin stepping, source stepping, trails."""

import importlib

import numpy as np
import pytest

from repro.diagnostics import reset_diagnostics
from repro.spice import (
    Capacitor,
    Circuit,
    Constant,
    ConvergenceError,
    Diode,
    Mosfet,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    Resistor,
    VoltageSource,
    dc_operating_point,
)
# The package re-exports functions named like their modules
# (repro.spice.transient is the *function* there), so fetch the module
# objects for monkeypatching via importlib.
dc_module = importlib.import_module("repro.spice.dc")
transient_module = importlib.import_module("repro.spice.transient")
from repro.spice.mna import System
from repro.spice.netlist import AnalysisContext
from repro.spice.solver import (
    gmin_step_solve,
    newton_solve,
    rescue_solve,
    source_step_solve,
)
from repro.spice.transient import transient


def _ring_oscillator(n=3, vdd=2.4):
    """An n-stage inverter ring: regenerative feedback, DC-solvable."""
    c = Circuit()
    vdd_n, gnd = c.node("vdd"), c.node("0")
    c.add(VoltageSource("V", vdd_n, gnd, Constant(vdd)))
    nodes = [c.node(f"n{i}") for i in range(n)]
    for i in range(n):
        inp, out = nodes[i], nodes[(i + 1) % n]
        c.add(Mosfet(f"MP{i}", out, inp, vdd_n, PMOS_DEFAULT))
        c.add(Mosfet(f"MN{i}", out, inp, gnd, NMOS_DEFAULT))
    return c, nodes


def _diode_divider():
    """Forward diode behind a resistor — stiff exponential from 0 V."""
    c = Circuit()
    c.add(VoltageSource("V", c.node("in"), c.node("0"), Constant(5.0)))
    c.add(Resistor("R", c.node("in"), c.node("a"), 1e3))
    c.add(Diode("D", c.node("a"), c.node("0"), isat=1e-14))
    return c


def _system(circuit):
    sys_ = System(circuit)
    ctx = AnalysisContext(x=np.zeros(sys_.size),
                          x_prev=np.zeros(sys_.size))
    A, b = sys_.build_step(ctx)
    return sys_, ctx, A, b


class TestGminStepping:
    # Budget at which plain Newton oscillates on the ring but the
    # regularised first rung converges and warm-starts the exact solve.
    BUDGET = 10

    def test_plain_newton_fails_on_ring(self):
        c, nodes = _ring_oscillator()
        sys_, ctx, A, b = _system(c)
        x0 = np.zeros(sys_.size)
        x0[nodes[0].index] = 2.4
        with pytest.raises(ConvergenceError):
            newton_solve(sys_, A, b, ctx, x0, max_iter=self.BUDGET)

    def test_gmin_stepping_rescues_the_same_solve(self):
        c, nodes = _ring_oscillator()
        sys_, ctx, A, b = _system(c)
        x0 = np.zeros(sys_.size)
        x0[nodes[0].index] = 2.4
        x = gmin_step_solve(sys_, A, b, ctx, x0, max_iter=self.BUDGET)
        # The final rung solves the exact system: verify against an
        # unconstrained plain solve from the rescued point.
        x_exact = newton_solve(sys_, A, b, ctx, x.copy(), max_iter=100)
        assert np.allclose(x, x_exact, atol=1e-5)

    def test_rescue_solve_reports_gmin_trail(self):
        c, nodes = _ring_oscillator()
        sys_, ctx, A, b = _system(c)
        x0 = np.zeros(sys_.size)
        x0[nodes[0].index] = 2.4
        _, trail = rescue_solve(sys_, A, b, ctx, x0,
                                max_iter=self.BUDGET)
        assert trail == ("gmin",)

    def test_rescue_solve_trail_empty_when_plain_newton_suffices(self):
        c, nodes = _ring_oscillator()
        sys_, ctx, A, b = _system(c)
        x0 = np.zeros(sys_.size)
        x0[nodes[0].index] = 2.4
        _, trail = rescue_solve(sys_, A, b, ctx, x0, max_iter=100)
        assert trail == ()


class TestSourceStepping:
    def test_fine_ramp_solves_the_stiff_diode(self):
        # At this budget plain Newton and the Gmin ladder both fail
        # (shunt conductance does not tame a forward exponential), but
        # a fine source ramp walks the diode up its curve.
        c = _diode_divider()
        sys_, ctx, A, b = _system(c)
        z = np.zeros(sys_.size)
        with pytest.raises(ConvergenceError):
            newton_solve(sys_, A, b, ctx, z.copy(), max_iter=16)
        with pytest.raises(ConvergenceError):
            gmin_step_solve(sys_, A, b, ctx, z.copy(), max_iter=16)
        steps = tuple(np.linspace(0.05, 1.0, 20))
        x = source_step_solve(sys_, A, b, ctx, z.copy(), steps=steps,
                              max_iter=16)
        assert x[c.node("a").index] == pytest.approx(0.693, abs=0.01)

    def test_total_failure_carries_rescue_trail(self):
        c = _diode_divider()
        sys_, ctx, A, b = _system(c)
        with pytest.raises(ConvergenceError) as err:
            rescue_solve(sys_, A, b, ctx, np.zeros(sys_.size),
                         max_iter=12)
        assert err.value.rescue_trail == ("gmin", "source")


class TestConvergenceErrorFields:
    def test_fields_and_failing_nodes_in_message(self):
        c = _diode_divider()
        sys_, ctx, A, b = _system(c)
        with pytest.raises(ConvergenceError) as err:
            newton_solve(sys_, A, b, ctx, np.zeros(sys_.size),
                         max_iter=10)
        exc = err.value
        assert exc.time == 0.0
        assert exc.iterations == 10
        assert exc.nodes == ("a",)
        assert "a" in str(exc)

    def test_transient_stall_reports_time_and_nodes(self, monkeypatch):
        # Force every solve to fail so bisection hits the floor and the
        # Gmin last resort fails too: the terminal error must say when,
        # where and what was tried.
        def always_fails(*args, **kwargs):
            raise ConvergenceError("injected", iterations=7,
                                   nodes=("out",))

        monkeypatch.setattr(transient_module, "newton_solve",
                            always_fails)
        monkeypatch.setattr(transient_module, "gmin_step_solve",
                            always_fails)
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"),
                            Constant(1.0)))
        c.add(Resistor("R", c.node("in"), c.node("out"), 1e3))
        c.add(Capacitor("C", c.node("out"), c.node("0"), 1e-12))
        with pytest.raises(ConvergenceError) as err:
            transient(c, tstop=1e-9, dt=0.5e-9, max_step_halvings=3)
        exc = err.value
        assert exc.time is not None
        assert exc.iterations == 7
        assert exc.nodes == ("out",)
        assert exc.rescue_trail == ("bisect", "gmin")
        assert "out" in str(exc)


class TestTransientRescue:
    def test_gmin_ramp_rescues_a_stalled_step(self, monkeypatch):
        # The plain per-step solve is sabotaged; bisection then drives
        # the step to the floor, where the (unpatched) Gmin ramp must
        # take over and produce the correct waveform.
        def sabotaged(*args, **kwargs):
            raise ConvergenceError("injected step failure")

        monkeypatch.setattr(transient_module, "newton_solve", sabotaged)
        diag = reset_diagnostics()
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"),
                            Constant(1.0)))
        c.add(Resistor("R", c.node("in"), c.node("out"), 1e3))
        c.add(Capacitor("C", c.node("out"), c.node("0"), 1e-15))
        result = transient(c, tstop=2e-9, dt=1e-9, max_step_halvings=2)
        assert result.rescues, "expected at least one rescued step"
        assert all(ev.stage == "gmin" for ev in result.rescues)
        # tau = 1 fs: the output has fully settled to the source value.
        assert result.final("out") == pytest.approx(1.0, abs=1e-3)
        assert diag.rescues == len(result.rescues)
        assert diag.rescue_stages.get("gmin") == len(result.rescues)

    def test_clean_transient_records_no_rescues(self):
        c = Circuit()
        c.add(VoltageSource("V", c.node("in"), c.node("0"),
                            Constant(1.0)))
        c.add(Resistor("R", c.node("in"), c.node("out"), 1e3))
        c.add(Capacitor("C", c.node("out"), c.node("0"), 1e-15))
        result = transient(c, tstop=2e-9, dt=1e-9)
        assert result.rescues == []


class TestDCRescue:
    def test_source_stepping_rescue_is_recorded(self, monkeypatch):
        # Sabotage the DC gmin ladder only: dc's own newton_solve
        # reference fails, while source_step_solve (solver namespace)
        # still solves the real circuit.
        def sabotaged(*args, **kwargs):
            raise ConvergenceError("injected ladder failure")

        monkeypatch.setattr(dc_module, "newton_solve", sabotaged)
        diag = reset_diagnostics()
        c = _diode_divider()
        rescues: list[str] = []
        op = dc_operating_point(c, rescues=rescues)
        assert rescues == ["source"]
        assert op["a"] == pytest.approx(0.693, abs=0.01)
        assert diag.rescue_stages.get("source") == 1

    def test_clean_dc_reports_no_rescues(self):
        c = _diode_divider()
        rescues: list[str] = []
        dc_operating_point(c, rescues=rescues)
        assert rescues == []
