"""Sharded store: layout, integrity verification, eviction, reclamation."""

import hashlib
import os
import pickle
import struct

import pytest

from repro.store import FORMAT_VERSION, ShardedStore, StoreStats
from repro.store.sharded import _HEADER, MAGIC


def _key(i: int) -> str:
    return hashlib.sha256(f"entry-{i}".encode()).hexdigest()


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ShardedStore(tmp_path)
        key = _key(0)
        store.put(key, {"value": [1, 2, 3]})
        assert store.get(key) == {"value": [1, 2, 3]}
        assert store.stats.writes == 1
        assert store.stats.hits == 1

    def test_miss(self, tmp_path):
        store = ShardedStore(tmp_path)
        assert store.get(_key(1)) is None
        assert store.stats.misses == 1

    def test_sharded_layout(self, tmp_path):
        store = ShardedStore(tmp_path)
        key = _key(2)
        store.put(key, "x")
        path = store.path_for(key)
        assert path.parent == tmp_path / key[:2]
        assert path.name == f"{key}.pkl"
        assert path.is_file()

    def test_overwrite_last_writer_wins(self, tmp_path):
        store = ShardedStore(tmp_path)
        key = _key(3)
        store.put(key, "first")
        store.put(key, "second")
        assert store.get(key) == "second"
        assert len(store) == 1

    def test_contains_len_keys(self, tmp_path):
        store = ShardedStore(tmp_path)
        keys = [_key(i) for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, i)
        assert len(store) == 5
        assert all(k in store for k in keys)
        assert _key(99) not in store
        assert sorted(store.keys()) == sorted(keys)

    def test_survives_reopen(self, tmp_path):
        ShardedStore(tmp_path).put(_key(4), ("a", 1))
        assert ShardedStore(tmp_path).get(_key(4)) == ("a", 1)

    def test_header_layout(self, tmp_path):
        store = ShardedStore(tmp_path)
        key = _key(5)
        store.put(key, "payload")
        raw = store.path_for(key).read_bytes()
        magic, version, length, digest = _HEADER.unpack_from(raw)
        payload = raw[_HEADER.size:]
        assert magic == MAGIC
        assert version == FORMAT_VERSION
        assert length == len(payload)
        assert hashlib.sha256(payload).digest() == digest
        assert pickle.loads(payload) == "payload"


class TestIntegrity:
    def _stored(self, tmp_path, value="v"):
        store = ShardedStore(tmp_path)
        key = _key(10)
        store.put(key, value)
        return store, key, store.path_for(key)

    def test_truncated_entry_quarantined(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        assert store.get(key) is None
        assert not path.exists()
        assert store.stats.quarantined == 1
        names = [p.name for p in store.corrupt_dir.iterdir()]
        assert any("truncated" in n for n in names)

    def test_bitflip_quarantined_as_digest_mismatch(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x40
        path.write_bytes(bytes(raw))
        assert store.get(key) is None
        names = [p.name for p in store.corrupt_dir.iterdir()]
        assert any("digest-mismatch" in n for n in names)

    def test_foreign_version_quarantined(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<H", raw, 4, FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        assert store.get(key) is None
        names = [p.name for p in store.corrupt_dir.iterdir()]
        assert any(f"version-{FORMAT_VERSION + 1}" in n for n in names)

    def test_garbage_quarantined(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        path.write_bytes(b"Z" * 200)
        assert store.get(key) is None
        assert store.stats.quarantined == 1

    def test_valid_header_bad_pickle_quarantined(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        payload = b"\x80\x05not really a pickle"
        header = _HEADER.pack(MAGIC, FORMAT_VERSION, len(payload),
                              hashlib.sha256(payload).digest())
        path.write_bytes(header + payload)
        assert store.get(key) is None
        names = [p.name for p in store.corrupt_dir.iterdir()]
        assert any("unpicklable" in n for n in names)

    def test_quarantine_records_diagnostics(self, tmp_path):
        from repro.diagnostics import reset_diagnostics
        store, key, path = self._stored(tmp_path)
        path.write_bytes(b"junk")
        diag = reset_diagnostics()
        store.get(key)
        assert diag.cache_quarantined == 1
        assert diag.eventful

    def test_slot_reusable_after_quarantine(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        path.write_bytes(b"junk")
        assert store.get(key) is None
        store.put(key, "fresh")
        assert store.get(key) == "fresh"


class TestTmpReclamation:
    def test_old_orphans_swept(self, tmp_path):
        first = ShardedStore(tmp_path)
        first.put(_key(20), "keep")
        orphan = tmp_path / "aa" / "orphan.tmp"
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_bytes(b"torn")
        os.utime(orphan, (0, 0))
        store = ShardedStore(tmp_path)
        assert not orphan.exists()
        assert store.stats.tmp_reclaimed == 1
        assert store.get(_key(20)) == "keep"

    def test_young_tmp_kept(self, tmp_path):
        (tmp_path / "aa").mkdir(parents=True)
        live = tmp_path / "aa" / "live.tmp"
        live.write_bytes(b"in flight")
        store = ShardedStore(tmp_path)
        assert live.exists()
        assert store.stats.tmp_reclaimed == 0

    def test_age_gate_configurable(self, tmp_path):
        (tmp_path / "aa").mkdir(parents=True)
        (tmp_path / "aa" / "x.tmp").write_bytes(b"?")
        store = ShardedStore(tmp_path, tmp_max_age=0.0)
        assert store.stats.tmp_reclaimed == 1


class TestEviction:
    def test_count_bound(self, tmp_path):
        store = ShardedStore(tmp_path, max_entries=10)
        for i in range(15):
            store.put(_key(i), i)
        assert len(store) <= 10
        assert store.stats.evictions >= 5

    def test_lru_order(self, tmp_path):
        store = ShardedStore(tmp_path, max_entries=4)
        for i in range(4):
            store.put(_key(i), i)
            os.utime(store.path_for(_key(i)), (i, i))  # force ordering
        store.put(_key(4), 4)                          # push past bound
        # The oldest entries went; the newest survives.
        assert store.get(_key(4)) == 4
        assert store.get(_key(0)) is None

    def test_byte_bound(self, tmp_path):
        store = ShardedStore(tmp_path, max_bytes=4096)
        for i in range(40):
            store.put(_key(i), "x" * 200)
        total = sum(s for _, s, _ in store._entries())
        assert total <= 4096
        assert store.stats.evictions > 0

    def test_unbounded_by_default(self, tmp_path):
        store = ShardedStore(tmp_path)
        for i in range(50):
            store.put(_key(i), i)
        assert len(store) == 50
        assert store.stats.evictions == 0

    def test_rejects_degenerate_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ShardedStore(tmp_path, max_bytes=0)


class TestStoreStats:
    def test_describe(self):
        stats = StoreStats(hits=3, misses=1, writes=4, evictions=2,
                           quarantined=1, tmp_reclaimed=5)
        text = stats.describe()
        assert "3 hits" in text
        assert "2 evicted" in text
        assert "1 quarantined" in text
        assert "5 tmp reclaimed" in text

    def test_eventful(self):
        assert not StoreStats(hits=9, misses=9, writes=9).eventful
        assert StoreStats(quarantined=1).eventful
        assert StoreStats(evictions=1).eventful
        assert StoreStats(tmp_reclaimed=1).eventful
