"""Technology parameter derivations."""

import pytest

from repro.dram.tech import TechnologyParams, default_tech


class TestLevels:
    def test_vpp_tracks_supply(self):
        tech = default_tech()
        assert tech.vpp(2.4) == pytest.approx(2.4 + tech.vpp_boost)
        assert tech.vpp(2.1) == pytest.approx(2.1 + tech.vpp_boost)

    def test_precharge_is_half_vdd(self):
        tech = default_tech()
        assert tech.vbl_pre(2.4) == pytest.approx(1.2)

    def test_reference_below_precharge(self):
        tech = default_tech()
        assert tech.v_ref(2.4) < tech.vbl_pre(2.4)

    def test_reference_offset_nominal(self):
        tech = default_tech()
        offset = tech.vbl_pre(2.4) - tech.v_ref(2.4, 27.0)
        assert offset == pytest.approx(tech.v_ref_offset)


class TestReferenceTracking:
    def test_flat_above_room_temperature(self):
        tech = default_tech()
        assert tech.v_ref(2.4, 87.0) == pytest.approx(
            tech.v_ref(2.4, 27.0))

    def test_tracks_up_below_room_temperature(self):
        """Colder -> higher reference level (smaller offset)."""
        tech = default_tech()
        assert tech.v_ref(2.4, -33.0) > tech.v_ref(2.4, 27.0)

    def test_offset_never_collapses(self):
        tech = default_tech().with_(v_ref_tc=1.0)   # absurd tracking
        assert tech.v_ref(2.4, -33.0) < tech.vbl_pre(2.4)


class TestDerivedDevices:
    def test_access_device_raised_threshold(self):
        tech = default_tech()
        assert tech.access_params.vth0 == tech.access_vth0
        assert tech.access_params.vth0 > tech.nmos.vth0

    def test_access_device_stronger_mu_exponent(self):
        tech = default_tech()
        assert tech.access_params.mu_exp < tech.nmos.mu_exp

    def test_sa_devices_milder_mu_exponent(self):
        tech = default_tech()
        assert tech.sa_nmos.mu_exp > tech.nmos.mu_exp
        assert tech.sa_pmos.mu_exp > tech.pmos.mu_exp

    def test_with_returns_modified_copy(self):
        tech = default_tech()
        other = tech.with_(cs=99e-15)
        assert other.cs == 99e-15
        assert tech.cs != 99e-15

    def test_default_shared_instance(self):
        assert default_tech() is default_tech()
