"""Electrical details of the precharge / sense / restore path.

These inspect recorded waveforms inside a cycle — the observability the
paper's method has over Shmoo plots.
"""

import numpy as np
import pytest

from repro.dram import ColumnRunner
from repro.dram.timing import EQ_OFF_FRAC, plan_cycle
from repro.dram.ops import Op
from repro.stress import NOMINAL_STRESS
from repro.spice.measure import cross_time


@pytest.fixture(scope="module")
def read_trace():
    """A recorded healthy read of a stored 1."""
    runner = ColumnRunner(record=True)
    seq = runner.run_sequence("r", init_vc=2.4)
    return seq.results[0]


class TestPrecharge:
    def test_bitlines_equalised_after_precharge(self):
        runner = ColumnRunner(record=True)
        # start from a badly imbalanced pair
        state = runner.idle_state(0.0)
        state["blt"], state["blc"] = 2.4, 0.0
        result, _ = runner.run_op(Op.parse("nop"), state)
        t_eq_end = EQ_OFF_FRAC * NOMINAL_STRESS.tcyc
        i = np.searchsorted(result.times, t_eq_end)
        blt = result.extra["blt"][i]
        blc = result.extra["blc"][i]
        assert blt == pytest.approx(blc, abs=0.05)
        assert blt == pytest.approx(1.2, abs=0.1)


class TestSenseAndRestore:
    def test_bitlines_split_to_rails(self, read_trace):
        blt_end = read_trace.extra["blt"][-1]
        blc_end = read_trace.extra["blc"][-1]
        # reading a 1: blt high, reference line driven low — checked
        # near the word-line turn-off (before any post-cycle float)
        assert blt_end > 2.0 or max(read_trace.extra["blt"]) > 2.0
        assert min(read_trace.extra["blc"]) < 0.4
        assert blt_end - blc_end > 1.0

    def test_cell_restored_during_read(self, read_trace):
        assert read_trace.vc_end > 2.0

    def test_dout_switches_after_sense(self, read_trace):
        from repro.spice.transient import TransientResult
        # build a lightweight result to reuse the measurement helpers
        times = np.asarray(read_trace.times)
        data = np.column_stack([read_trace.extra["dout"]])
        res = TransientResult(times, data, ["dout"], None)
        plan = plan_cycle(Op.parse("r"), NOMINAL_STRESS,
                          ColumnRunner().tech)
        t_rise = cross_time(res, "dout", 1.2, direction="rise")
        assert t_rise is not None
        assert t_rise > plan.t_sense

    def test_timing_instants_ordered(self):
        plan = plan_cycle(Op.parse("r"), NOMINAL_STRESS,
                          ColumnRunner().tech)
        assert 0 < plan.t_wl_on < plan.t_sense < plan.t_sample \
            < plan.t_wl_off + 1e-9


class TestDummyCells:
    def test_dummy_recharged_every_cycle(self):
        runner = ColumnRunner(record=True)
        state = runner.idle_state(2.4)
        state["snd_c"] = 0.0     # corrupt the reference cell
        result, new_state = runner.run_op(Op.parse("nop"), state)
        v_ref = runner.tech.v_ref(2.4, 27.0)
        assert new_state["snd_c"] == pytest.approx(v_ref, abs=0.08)

    def test_read_fires_only_opposite_dummy(self):
        runner = ColumnRunner(record=True)
        state = runner.idle_state(2.4)
        before_t = state["snd_t"]
        result, new_state = runner.run_op(Op.parse("r"), state)
        # dummy on the true line was not fired (target is on true)
        assert new_state["snd_t"] == pytest.approx(before_t, abs=0.1)
