"""Active-window netlist trimming: plans, boundary loads, parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.array import DEFECT_KINDS, DefectSite, build_array
from repro.dram.runner import ArrayRunner
from repro.dram.trim import (
    TRIM_CHOICES,
    TrimmedArrayNetlist,
    build_trimmed_array,
    default_address,
    plan_trim,
    pruned_cell_conductance,
    resolve_trim,
    set_trim_default,
    trim_array,
    trim_default,
)
from repro.dram.tech import default_tech
from repro.spice.errors import NetlistError
from repro.spice.mna import System


class TestTrimPlan:
    def test_accessed_address_always_kept(self):
        plan = plan_trim(6, 6, (2, 3))
        assert plan.kept_rows == (2,)
        assert plan.kept_cols == (3,)
        assert plan.keeps_cell(2, 3)
        assert plan.cells_kept == 1
        assert plan.cells_pruned == 35

    def test_defect_halo_kept(self):
        defect = DefectSite("bridge_wl", 14, 1e5)  # (2, 2) in 6x6
        plan = plan_trim(6, 6, (0, 0), defect, halo=1)
        assert plan.kept_rows == (0, 1, 2, 3)
        assert plan.kept_cols == (0, 1, 2, 3)

    def test_corner_defect_halo_clips(self):
        plan = plan_trim(4, 4, (0, 0), DefectSite("open_sn", 0, 1e5))
        assert plan.kept_rows == (0, 1)
        assert plan.kept_cols == (0, 1)
        plan = plan_trim(4, 4, (3, 3), DefectSite("open_sn", 15, 1e5))
        assert plan.kept_rows == (2, 3)
        assert plan.kept_cols == (2, 3)

    def test_bad_inputs_rejected(self):
        with pytest.raises(NetlistError):
            plan_trim(4, 4, (4, 0))
        with pytest.raises(NetlistError):
            plan_trim(4, 4, (0, 0), halo=-1)
        with pytest.raises(NetlistError):
            plan_trim(2, 2, (0, 0), DefectSite("open_sn", 4, 1e5))

    def test_default_address_is_victim(self):
        assert default_address(4, 4, DefectSite("open_sn", 9, 1e5)) == (2, 1)
        assert default_address(4, 4, None) == (0, 0)

    @given(rows=st.integers(1, 8), cols=st.integers(1, 8),
           halo=st.integers(0, 2), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_plan_invariants(self, rows, cols, halo, data):
        arow = data.draw(st.integers(0, rows - 1))
        acol = data.draw(st.integers(0, cols - 1))
        cell = data.draw(st.integers(0, rows * cols - 1))
        kind = data.draw(st.sampled_from(DEFECT_KINDS))
        plan = plan_trim(rows, cols, (arow, acol),
                         DefectSite(kind, cell, 1e5), halo=halo)
        # Sorted, deduplicated, in range.
        assert list(plan.kept_rows) == sorted(set(plan.kept_rows))
        assert all(0 <= r < rows for r in plan.kept_rows)
        assert all(0 <= c < cols for c in plan.kept_cols)
        # Address and victim always inside the window.
        assert plan.keeps_cell(arow, acol)
        assert plan.keeps_cell(*divmod(cell, cols))
        assert plan.cells_kept + plan.cells_pruned == rows * cols


class TestBoundaryLoads:
    def test_pruned_cell_conductance_is_subthreshold(self):
        g = pruned_cell_conductance(default_tech())
        assert 0.0 <= g < 1e-12  # far below the solver's gmin

    def test_boundary_devices_counted(self):
        arr = build_trimmed_array(6, 6, defect=DefectSite("open_sn", 14, 1e5))
        # Kept rows each carry one gate cap per pruned column; kept
        # columns one leak per pruned row (when above the floor).
        pruned_cols = 6 - len(arr.plan.kept_cols)
        assert arr.boundary_caps == len(arr.plan.kept_rows) * pruned_cols
        names = [d.name for d in arr.circuit.devices]
        assert sum(1 for n in names if n.startswith("c_trimg")) \
            == arr.boundary_caps
        assert sum(1 for n in names if n.startswith("r_trimleak")) \
            == arr.boundary_leaks

    def test_trimmed_is_smaller(self):
        full = build_array(16, 16)
        trim = build_trimmed_array(16, 16,
                                   defect=DefectSite("open_sn", 100, 1e5))
        assert trim.circuit.num_nodes < full.circuit.num_nodes / 4
        assert System(trim.circuit).size < 192  # under the sparse gate

    def test_circuit_is_flagged(self):
        arr = build_trimmed_array(4, 4)
        assert arr.circuit.trimmed is True
        assert not getattr(build_array(4, 4).circuit, "trimmed", False)


class TestTrimmedNetlistSurface:
    def test_pruned_access_raises(self):
        arr = build_trimmed_array(6, 6, defect=DefectSite("open_sn", 14, 1e5))
        assert isinstance(arr, TrimmedArrayNetlist)
        arr.storage_node(2, 2)  # victim kept
        with pytest.raises(NetlistError):
            arr.storage_node(5, 5)
        with pytest.raises(NetlistError):
            arr.wordline_tap(0, 0)
        with pytest.raises(NetlistError):
            arr.bitline_tap(0, 5)
        with pytest.raises(NetlistError):
            arr.storage_node(6, 0)  # still range-checked first

    def test_waveforms_drop_pruned_constant_zero(self):
        from repro.spice.waveforms import Constant, Pulse
        arr = build_trimmed_array(6, 6, defect=DefectSite("open_sn", 14, 1e5))
        waves = {f"v_wl{r}": Constant(0.0) for r in range(6)}
        arr.set_waveforms(waves)  # pruned rows silently dropped
        with pytest.raises(NetlistError):
            arr.set_waveforms({"v_wl5": Pulse(0.0, 2.4, delay=1e-9)})
        with pytest.raises(NetlistError):
            arr.set_waveforms({"v_nope": Constant(0.0)})


class TestPolicy:
    def test_choices(self):
        assert TRIM_CHOICES == ("off", "auto", "force")
        assert trim_default() in TRIM_CHOICES

    def test_set_and_resolve(self):
        prev = set_trim_default("off")
        try:
            assert resolve_trim(None) == "off"
            assert resolve_trim("force") == "force"
            with pytest.raises(NetlistError):
                resolve_trim("maybe")
            with pytest.raises(NetlistError):
                set_trim_default("maybe")
        finally:
            set_trim_default(prev)

    def test_off_returns_full_array(self):
        arr = trim_array(4, 4, defect=DefectSite("open_sn", 5, 1e5),
                         policy="off")
        assert not isinstance(arr, TrimmedArrayNetlist)

    def test_auto_bypasses_when_nothing_to_prune(self):
        # A 2x2 window around a center defect covers the whole 2x2 array.
        arr = trim_array(2, 2, defect=DefectSite("open_sn", 0, 1e5),
                         policy="auto")
        assert not isinstance(arr, TrimmedArrayNetlist)
        forced = trim_array(2, 2, defect=DefectSite("open_sn", 0, 1e5),
                            policy="force")
        assert isinstance(forced, TrimmedArrayNetlist)

    def test_auto_trims_when_it_helps(self):
        arr = trim_array(6, 6, defect=DefectSite("open_sn", 14, 1e5),
                         policy="auto")
        assert isinstance(arr, TrimmedArrayNetlist)

    def test_counters_recorded(self):
        from repro.diagnostics import diagnostics, reset_diagnostics
        diag = reset_diagnostics()
        try:
            trim_array(6, 6, defect=DefectSite("open_sn", 14, 1e5),
                       policy="force")
            assert diag.trim_counters["trim_applied"] == 1
            # 6x6 minus the 3x3 window around the (2, 2) victim.
            assert diag.trim_counters["trim_cells_pruned"] == 27
            assert not diag.eventful  # informational only
        finally:
            reset_diagnostics()


class TestParity:
    """The tier-1 trimmed-vs-full smoke: exact waveform agreement.

    The full per-kind 6x6/16x16 BR parity lives in
    ``benchmarks/bench_trim.py``; this fast version fails first when a
    trim regression lands.
    """

    @pytest.mark.parametrize("kind", DEFECT_KINDS)
    def test_trajectory_parity_4x4(self, kind):
        defect = DefectSite(kind, 5, 3e5)
        runs = {}
        for policy in ("off", "force"):
            runner = ArrayRunner(defect=defect, geometry=(4, 4),
                                 trim=policy, record=True)
            runs[policy] = runner.run_sequence("r", init_vc=2.4)
        a = runs["off"].results[0]
        b = runs["force"].results[0]
        assert np.abs(a.vc - b.vc).max() < 1e-9
        assert np.abs(a.extra["bl"] - b.extra["bl"]).max() < 1e-9
        assert a.sensed == b.sensed

    def test_corner_victim_parity(self):
        defect = DefectSite("bridge_wl", 0, 2e5)
        ends = {}
        for policy in ("off", "force"):
            runner = ArrayRunner(defect=defect, geometry=(4, 4),
                                 trim=policy)
            ends[policy] = runner.run_sequence(
                "r", init_vc=2.4).results[0].vc_end
        assert ends["off"] == pytest.approx(ends["force"], abs=1e-9)

    def test_retention_nop_parity(self):
        defect = DefectSite("short_gnd", 5, 1e6)
        ends = {}
        for policy in ("off", "force"):
            runner = ArrayRunner(defect=defect, geometry=(4, 4),
                                 trim=policy)
            ends[policy] = runner.run_sequence(
                "nop nop", init_vc=2.4).results[-1].vc_end
        assert ends["off"] == pytest.approx(ends["force"], abs=1e-9)


class TestArrayRunner:
    def test_writes_rejected(self):
        runner = ArrayRunner(geometry=(2, 2), trim="off")
        with pytest.raises(NetlistError):
            runner.run_sequence("w1 r", init_vc=0.0)

    def test_trimmed_property(self):
        defect = DefectSite("open_sn", 5, 1e5)
        assert ArrayRunner(defect=defect, geometry=(4, 4),
                           trim="force").trimmed
        assert not ArrayRunner(defect=defect, geometry=(4, 4),
                               trim="off").trimmed

    def test_address_defaults_to_victim(self):
        runner = ArrayRunner(defect=DefectSite("open_sn", 9, 1e5),
                             geometry=(4, 4))
        assert runner.address == (2, 1)
        assert runner.victim == (2, 1)

    def test_sensed_only_on_reads(self):
        runner = ArrayRunner(defect=DefectSite("open_sn", 5, 1e7),
                             geometry=(4, 4))
        seq = runner.run_sequence("nop r", init_vc=2.4)
        assert seq.results[0].sensed is None
        assert seq.results[1].sensed in (0, 1)

    def test_set_defect_resistance_changes_outcome(self):
        runner = ArrayRunner(defect=DefectSite("short_gnd", 5, 1e7),
                             geometry=(4, 4))
        weak = runner.run_sequence("r", init_vc=2.4).results[0].vc_end
        runner.set_defect_resistance(1e3)
        strong = runner.run_sequence("r", init_vc=2.4).results[0].vc_end
        assert strong < weak  # harder short drains the cell further


class TestEngineIntegration:
    def test_requests_route_to_array_runner(self):
        from repro.engine import BatchExecutor, SequenceRequest
        from repro.stress import NOMINAL_STRESS
        engine = BatchExecutor(cache=None)
        results = {}
        for trim in ("off", "force"):
            req = SequenceRequest.build(
                "r", 2.4, backend="electrical",
                defect=DefectSite("open_sn", 5, 3e5),
                stress=NOMINAL_STRESS, geometry=(4, 4), trim=trim)
            results[trim] = engine.run(req).results[0].vc_end
        assert results["off"] == pytest.approx(results["force"], abs=1e-9)

    def test_behavioral_geometry_rejected(self):
        from repro.engine import BatchExecutor, SequenceRequest
        from repro.stress import NOMINAL_STRESS
        req = SequenceRequest.build(
            "r", 2.4, backend="behavioral",
            defect=DefectSite("open_sn", 5, 3e5),
            stress=NOMINAL_STRESS, geometry=(4, 4))
        with pytest.raises(ValueError):
            BatchExecutor(cache=None).run(req)

    def test_lane_groups_admit_array_requests(self):
        """Array requests sharing one (trimmed) topology lane-group
        together — they are no longer unconditionally excluded — but
        never mix with column requests or with arrays of a different
        trim policy."""
        from repro.engine import SequenceRequest
        from repro.engine.executor import _lane_groups
        from repro.stress import NOMINAL_STRESS
        arrays = [SequenceRequest.build(
            "r", 2.4, backend="electrical",
            defect=DefectSite("open_sn", 5, r),
            stress=NOMINAL_STRESS, geometry=(4, 4), trim="force")
            for r in (1e5, 2e5, 3e5)]
        untrimmed = [SequenceRequest.build(
            "r", 2.4, backend="electrical",
            defect=DefectSite("open_sn", 5, r),
            stress=NOMINAL_STRESS, geometry=(4, 4), trim="off")
            for r in (1e5, 2e5)]
        columns = [SequenceRequest.build(
            "r0", 2.4, backend="electrical",
            defect=DefectSite("open_sn", 0, r),
            stress=NOMINAL_STRESS) for r in (1e5, 2e5, 3e5)]
        groups, rest = _lane_groups(arrays + untrimmed + columns,
                                    width=4)
        assert sorted(len(g) for g in groups) == [2, 3, 3]
        assert rest == []
        by_first = {id(g[0]): g for g in groups}
        assert by_first[id(arrays[0])] == arrays
        assert by_first[id(untrimmed[0])] == untrimmed
        assert by_first[id(columns[0])] == columns

    def test_trimmed_resolution_counts_dense_fallback(self):
        from repro.spice.backends import resolve_backend
        arr = build_trimmed_array(6, 6,
                                  defect=DefectSite("open_sn", 14, 1e5))
        system = System(arr.circuit)
        backend = resolve_backend("auto", system)
        assert not getattr(backend, "sparse", False)
        assert system.kernel_counters.get("backend_trim_dense", 0) == 1
