"""Parameterized R×C DRAM array builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.array import (
    DEFAULT_C_WL,
    DEFAULT_R_BL,
    DEFAULT_R_WL,
    DEFECT_KINDS,
    DefectSite,
    build_array,
)
from repro.spice.errors import NetlistError
from repro.spice.mna import System
from repro.spice.transient import transient


class TestTopology:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (2, 3), (4, 4), (6, 6)])
    def test_node_and_branch_counts(self, rows, cols):
        arr = build_array(rows, cols)
        # 3 nodes per cell (sn, wl tap, bl tap) + per-row driver + rails.
        assert arr.circuit.num_nodes == 3 * rows * cols + rows + 3
        system = System(arr.circuit)
        assert system.size == arr.circuit.num_nodes + rows + 3

    def test_six_by_six_matches_docs(self):
        arr = build_array(6, 6)
        assert arr.circuit.num_nodes == 117
        assert System(arr.circuit).size == 126

    def test_storage_nodes_row_major(self):
        arr = build_array(3, 4)
        assert len(arr.storage_nodes) == 12
        assert arr.cell_index(1, 2) == 6
        assert arr.storage_node(1, 2) == "sn1_2"
        assert arr.storage_nodes[6] == "sn1_2"
        assert arr.wordline_tap(2, 3) == "wl2_3"
        assert arr.bitline_tap(2, 3) == "bl3_2"

    def test_tap_nodes_exist(self):
        arr = build_array(2, 2)
        names = set(arr.circuit.node_names)
        for r in range(2):
            for col in range(2):
                assert arr.wordline_tap(r, col) in names
                assert arr.bitline_tap(r, col) in names
                assert arr.storage_node(r, col) in names

    def test_cell_index_out_of_range(self):
        arr = build_array(2, 2)
        with pytest.raises(NetlistError):
            arr.cell_index(2, 0)
        with pytest.raises(NetlistError):
            arr.storage_node(0, -1)

    def test_control_sources(self):
        arr = build_array(3, 2)
        assert arr.control_sources == [
            "v_vdd", "v_pre", "v_eq", "v_wl0", "v_wl1", "v_wl2"]
        for name in arr.control_sources:
            arr.source(name)  # resolves and type-checks
        with pytest.raises(NetlistError):
            arr.source("r_wl0_0")


class TestValidation:
    @pytest.mark.parametrize("rows,cols", [(0, 4), (4, 0), (-1, 2)])
    def test_degenerate_shapes_rejected(self, rows, cols):
        with pytest.raises(NetlistError):
            build_array(rows, cols)

    @pytest.mark.parametrize("kwargs", [
        {"r_wl": 0.0}, {"r_bl": -1.0}, {"c_wl": 0.0}, {"c_bl": -1e-15}])
    def test_bad_parasitics_rejected(self, kwargs):
        with pytest.raises(NetlistError):
            build_array(2, 2, **kwargs)

    def test_defect_cell_out_of_range(self):
        with pytest.raises(NetlistError):
            build_array(2, 2, defect=DefectSite("short_gnd", 4, 1e3))

    def test_defaults_are_positive(self):
        assert DEFAULT_R_WL > 0 and DEFAULT_R_BL > 0 and DEFAULT_C_WL > 0


class TestDefects:
    @pytest.mark.parametrize("kind", DEFECT_KINDS)
    def test_every_kind_routes(self, kind):
        clean = build_array(3, 3)
        arr = build_array(3, 3, defect=DefectSite(kind, 4, 50e3))
        assert arr.defect_resistance == pytest.approx(50e3)
        # One extra resistor, plus an internal node for the open kinds.
        extra_nodes = arr.circuit.num_nodes - clean.circuit.num_nodes
        assert extra_nodes == (1 if kind.startswith("open") else 0)
        arr.circuit["r_defect"]  # the injected device exists

    def test_set_defect_resistance(self):
        arr = build_array(2, 2, defect=DefectSite("bridge_bl", 1, 10e3))
        arr.set_defect_resistance(99e3)
        assert arr.defect_resistance == pytest.approx(99e3)
        assert arr.defect.resistance == pytest.approx(99e3)
        with pytest.raises(NetlistError):
            arr.set_defect_resistance(0.0)

    def test_clean_array_has_no_defect_handle(self):
        arr = build_array(2, 2)
        assert arr.defect_resistance is None
        with pytest.raises(NetlistError):
            arr.set_defect_resistance(1e3)


class TestActivation:
    def test_waveform_keys(self):
        arr = build_array(4, 2)
        waves = arr.activation_waveforms(2)
        assert set(waves) == {"v_eq", "v_wl0", "v_wl1", "v_wl2", "v_wl3"}
        vpp = arr.tech.vpp(arr.tech.vdd_nom)
        assert waves["v_eq"].value(0.0) == pytest.approx(vpp)
        assert waves["v_wl1"].value(10e-9) == 0.0

    def test_row_out_of_range(self):
        arr = build_array(2, 2)
        with pytest.raises(NetlistError):
            arr.activation_waveforms(2)

    def test_precharge_and_activation_transient(self):
        """Precharge pulls the bit lines to vbl_pre; firing a row then
        shares charge into that row's storage nodes."""
        arr = build_array(3, 3)
        arr.set_waveforms(arr.activation_waveforms(1))
        res = transient(arr.circuit, 20e-9, 0.25e-9)
        vpre = arr.tech.vbl_pre(arr.tech.vdd_nom)
        for col in range(3):
            bl = res.v(arr.bitline_tap(1, col))
            # End of precharge window (4 ns): within 10% of the rail.
            k = int(4e-9 / 0.25e-9)
            assert bl[k] == pytest.approx(vpre, rel=0.1)
        for col in range(3):
            fired = res.final(arr.storage_node(1, col))
            idle = res.final(arr.storage_node(0, col))
            assert fired > 0.5 * vpre  # charged toward the bit line
            assert abs(idle) < 0.1     # isolated row stays discharged

    def test_set_waveforms_rejects_unknown_source(self):
        arr = build_array(2, 2)
        with pytest.raises(NetlistError):
            arr.set_waveforms({"v_nope": None})


class TestEdgeGeometries:
    """Degenerate 1×C / R×1 ladders and corner-cell defect routing."""

    @pytest.mark.parametrize("cols", [1, 2, 5])
    def test_single_row(self, cols):
        arr = build_array(1, cols)
        assert arr.circuit.num_nodes == 3 * cols + 1 + 3
        arr.set_waveforms(arr.activation_waveforms(0))
        res = transient(arr.circuit, 20e-9, 0.25e-9)
        vpre = arr.tech.vbl_pre(arr.tech.vdd_nom)
        for col in range(cols):
            assert res.final(arr.storage_node(0, col)) > 0.5 * vpre

    @pytest.mark.parametrize("rows", [1, 2, 5])
    def test_single_column(self, rows):
        arr = build_array(rows, 1)
        assert arr.circuit.num_nodes == 3 * rows + rows + 3
        arr.set_waveforms(arr.activation_waveforms(rows - 1))
        res = transient(arr.circuit, 20e-9, 0.25e-9)
        vpre = arr.tech.vbl_pre(arr.tech.vdd_nom)
        assert res.final(arr.storage_node(rows - 1, 0)) > 0.5 * vpre
        if rows > 1:
            assert abs(res.final(arr.storage_node(0, 0))) < 0.1

    @pytest.mark.parametrize("kind", DEFECT_KINDS)
    @pytest.mark.parametrize("rows,cols", [(1, 3), (3, 1), (1, 1)])
    def test_defect_routes_in_degenerate_arrays(self, kind, rows, cols):
        arr = build_array(rows, cols,
                          defect=DefectSite(kind, rows * cols - 1, 50e3))
        arr.circuit["r_defect"]
        assert arr.defect_resistance == pytest.approx(50e3)

    @pytest.mark.parametrize("kind", DEFECT_KINDS)
    def test_defect_routes_at_every_corner(self, kind):
        rows, cols = 3, 4
        corners = [0, cols - 1, (rows - 1) * cols, rows * cols - 1]
        for cell in corners:
            arr = build_array(rows, cols,
                              defect=DefectSite(kind, cell, 50e3))
            arr.circuit["r_defect"]
            # Bridge kinds fold to their in-array neighbor at the edge;
            # the victim's own taps always exist.
            r, c = divmod(cell, cols)
            names = set(arr.circuit.node_names)
            assert arr.storage_node(r, c) in names

    @given(rows=st.integers(1, 5), cols=st.integers(1, 5),
           data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_topology_invariants(self, rows, cols, data):
        cell = data.draw(st.integers(0, rows * cols - 1))
        kind = data.draw(st.sampled_from(DEFECT_KINDS))
        arr = build_array(rows, cols, defect=DefectSite(kind, cell, 1e5))
        open_kind = kind.startswith("open")
        assert arr.circuit.num_nodes == \
            3 * rows * cols + rows + 3 + (1 if open_kind else 0)
        system = System(arr.circuit)
        assert system.size == arr.circuit.num_nodes + rows + 3
        names = set(arr.circuit.node_names)
        r, c = divmod(cell, cols)
        assert arr.storage_node(r, c) in names
        assert arr.wordline_tap(r, c) in names
        assert arr.bitline_tap(r, c) in names
