"""Electrical column operation — integration tests of the full stack.

These drive real SPICE-level cycles (~0.15 s each), so they are kept
focused; the broad behavioural coverage lives in the behavioral-model
tests plus the agreement suite.
"""

import pytest

from repro.stress import NOMINAL_STRESS
from repro.dram import ColumnRunner
from repro.dram.column import DefectSite


class TestHealthyOperation:
    def test_write_read_both_values(self, healthy_runner):
        seq = healthy_runner.run_sequence("w1 r1 w0 r0", init_vc=0.0)
        assert not seq.any_fault
        assert seq.outputs == [None, 1, None, 0]

    def test_write1_charges_cell(self, healthy_runner):
        seq = healthy_runner.run_sequence("w1", init_vc=0.0)
        assert seq.vc_after[0] > 2.0

    def test_write0_discharges_cell(self, healthy_runner):
        seq = healthy_runner.run_sequence("w0", init_vc=2.4)
        assert seq.vc_after[0] < 0.2

    def test_read_restores_value(self, healthy_runner):
        seq = healthy_runner.run_sequence("w1 r1", init_vc=0.0)
        # write-back during the read keeps the cell high
        assert seq.vc_after[1] > 2.0

    def test_nop_preserves_state(self, healthy_runner):
        seq = healthy_runner.run_sequence("w1 nop r1", init_vc=0.0)
        assert not seq.any_fault


class TestComplementaryCell:
    def test_comp_cell_logical_roundtrip(self):
        r = ColumnRunner(target_cell=1)
        seq = r.run_sequence("w1 r1 w0 r0", init_vc=2.4)
        assert not seq.any_fault

    def test_comp_cell_stores_inverted_level(self):
        r = ColumnRunner(target_cell=1)
        seq = r.run_sequence("w1", init_vc=2.4)
        # logical 1 on the complementary line is a low stored voltage
        assert seq.vc_after[0] < 0.3


class TestDefectiveOperation:
    def test_strong_open_reads_one_despite_zero(self):
        r = ColumnRunner(defect=DefectSite("open_sn", 0, 5e6))
        seq = r.run_sequence("r", init_vc=0.0)
        assert seq.outputs[0] == 1

    def test_weak_open_behaves_healthy(self):
        r = ColumnRunner(defect=DefectSite("open_sn", 0, 100.0))
        seq = r.run_sequence("w1 r1 w0 r0", init_vc=0.0)
        assert not seq.any_fault

    def test_two_writes_charge_more_than_one(self):
        r = ColumnRunner(defect=DefectSite("open_sn", 0, 200e3))
        seq = r.run_sequence("w1 w1", init_vc=0.0)
        assert seq.vc_after[1] > seq.vc_after[0] + 0.3

    def test_resistance_sweep_changes_outcome(self):
        r = ColumnRunner(defect=DefectSite("open_sn", 0, 100.0))
        assert not r.run_sequence("w1 w1 w0 r0", init_vc=0.0).any_fault
        r.set_defect_resistance(1e6)
        assert r.run_sequence("w1 w1 w0 r0", init_vc=0.0).any_fault


class TestStressKnobs:
    def test_shorter_tcyc_weakens_write(self):
        r = ColumnRunner(defect=DefectSite("open_sn", 0, 200e3))
        r.set_stress(NOMINAL_STRESS)
        vc_60 = r.run_sequence("w0", init_vc=2.4).vc_after[0]
        r.set_stress(NOMINAL_STRESS.with_(tcyc=55e-9))
        vc_55 = r.run_sequence("w0", init_vc=2.4).vc_after[0]
        assert vc_55 > vc_60

    def test_lower_duty_weakens_write(self):
        r = ColumnRunner(defect=DefectSite("open_sn", 0, 200e3))
        r.set_stress(NOMINAL_STRESS.with_(duty=0.40))
        vc_lo = r.run_sequence("w0", init_vc=2.4).vc_after[0]
        r.set_stress(NOMINAL_STRESS.with_(duty=0.60))
        vc_hi = r.run_sequence("w0", init_vc=2.4).vc_after[0]
        assert vc_lo > vc_hi

    def test_record_keeps_traces(self):
        r = ColumnRunner(record=True)
        seq = r.run_sequence("r", init_vc=2.4)
        res = seq.results[0]
        assert res.times is not None
        assert len(res.vc) == len(res.times)
        assert "blt" in res.extra


class TestStateHandling:
    def test_idle_state_sets_target(self):
        r = ColumnRunner()
        state = r.idle_state(1.3)
        assert state["sn0"] == pytest.approx(1.3)
        assert state["blt"] == pytest.approx(1.2)

    def test_background_data_applied(self):
        r = ColumnRunner()
        state = r.idle_state(0.0, background=1)
        assert state["sn2"] == pytest.approx(2.4)   # true cell stores 1
        assert state["sn1"] == pytest.approx(0.0)   # comp cell inverted
