"""Column netlist construction and defect injection routing."""

import pytest

from repro.dram.column import (
    DEFECT_DEVICE,
    DEFECT_KINDS,
    DefectSite,
    build_column,
)
from repro.dram.tech import default_tech
from repro.spice.errors import NetlistError


class TestHealthyColumn:
    def test_expected_node_inventory(self):
        col = build_column()
        circ = col.circuit
        for name in ("blt", "blc", "san", "sap", "dout", "snd_t",
                     "snd_c", "vref"):
            assert circ.has_node(name), name
        for i in range(default_tech().num_wordlines):
            assert circ.has_node(f"sn{i}")

    def test_cells_alternate_bitlines(self):
        col = build_column()
        circ = col.circuit
        assert circ["m_acc0"].drain.name == "blt"
        assert circ["m_acc1"].drain.name == "blc"
        assert circ["m_acc2"].drain.name == "blt"
        assert circ["m_acc3"].drain.name == "blc"

    def test_no_defect_device(self):
        col = build_column()
        assert DEFECT_DEVICE not in col.circuit
        assert col.defect is None
        assert col.defect_resistance is None

    def test_control_sources_exist(self):
        col = build_column()
        for name in col.control_sources:
            assert name in col.circuit

    def test_storage_nodes_listed(self):
        col = build_column()
        assert col.storage_node(0) == "sn0"
        assert col.storage_node(3) == "sn3"

    def test_set_resistance_without_defect_raises(self):
        col = build_column()
        with pytest.raises(NetlistError):
            col.set_defect_resistance(1e5)


class TestDefectRouting:
    @pytest.mark.parametrize("kind", DEFECT_KINDS)
    def test_injects_resistor(self, kind):
        col = build_column(defect=DefectSite(kind, 0, 123e3))
        assert DEFECT_DEVICE in col.circuit
        assert col.defect_resistance == pytest.approx(123e3)

    def test_open_sn_reroutes_access_source(self):
        col = build_column(defect=DefectSite("open_sn", 0, 1e5))
        acc = col.circuit["m_acc0"]
        assert acc.source.name == "s_int0"
        r = col.circuit[DEFECT_DEVICE]
        assert {r.a.name, r.b.name} == {"s_int0", "sn0"}

    def test_open_bl_reroutes_drain(self):
        col = build_column(defect=DefectSite("open_bl", 0, 1e5))
        acc = col.circuit["m_acc0"]
        assert acc.drain.name == "d_int0"

    def test_open_gate_reroutes_gate(self):
        col = build_column(defect=DefectSite("open_gate", 2, 1e6))
        acc = col.circuit["m_acc2"]
        assert acc.gate.name == "g_int2"

    def test_short_gnd_targets_storage(self):
        col = build_column(defect=DefectSite("short_gnd", 1, 5e4))
        r = col.circuit[DEFECT_DEVICE]
        names = {r.a.name, r.b.name}
        assert "sn1" in names
        assert "0" in names

    def test_bridge_bl_connects_own_bitline(self):
        col = build_column(defect=DefectSite("bridge_bl", 1, 5e4))
        r = col.circuit[DEFECT_DEVICE]
        assert {r.a.name, r.b.name} == {"sn1", "blc"}

    def test_bridge_wl_connects_own_wordline(self):
        col = build_column(defect=DefectSite("bridge_wl", 2, 5e4))
        r = col.circuit[DEFECT_DEVICE]
        assert {r.a.name, r.b.name} == {"sn2", "wl2"}

    def test_other_cells_untouched(self):
        col = build_column(defect=DefectSite("open_sn", 0, 1e5))
        assert col.circuit["m_acc1"].source.name == "sn1"

    def test_resistance_sweep_in_place(self):
        col = build_column(defect=DefectSite("open_sn", 0, 1e5))
        col.set_defect_resistance(3e5)
        assert col.circuit[DEFECT_DEVICE].resistance == 3e5
        assert col.defect.resistance == 3e5

    def test_bad_resistance_rejected(self):
        col = build_column(defect=DefectSite("open_sn", 0, 1e5))
        with pytest.raises(NetlistError):
            col.set_defect_resistance(-1.0)


class TestDefectSiteValidation:
    def test_unknown_kind(self):
        with pytest.raises(NetlistError):
            DefectSite("open_nowhere", 0, 1e5)

    def test_nonpositive_resistance(self):
        with pytest.raises(NetlistError):
            DefectSite("open_sn", 0, 0.0)

    def test_cell_outside_array(self):
        with pytest.raises(NetlistError):
            build_column(defect=DefectSite("open_sn", 7, 1e5))
