"""Operation tokens, parsing and sequence results."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.ops import (
    Op,
    Operation,
    OpResult,
    SequenceResult,
    format_ops,
    parse_ops,
)


class TestOperation:
    def test_write_values(self):
        assert Operation.W0.write_value == 0
        assert Operation.W1.write_value == 1

    def test_read_has_no_write_value(self):
        with pytest.raises(ValueError):
            Operation.R.write_value

    def test_is_write(self):
        assert Operation.W0.is_write
        assert Operation.W1.is_write
        assert not Operation.R.is_write
        assert not Operation.NOP.is_write


class TestOpParsing:
    @pytest.mark.parametrize("token,op,expected", [
        ("w0", Operation.W0, None),
        ("w1", Operation.W1, None),
        ("r", Operation.R, None),
        ("r0", Operation.R, 0),
        ("r1", Operation.R, 1),
        ("nop", Operation.NOP, None),
        ("  R1 ", Operation.R, 1),
    ])
    def test_tokens(self, token, op, expected):
        parsed = Op.parse(token)
        assert parsed.operation is op
        assert parsed.expected == expected

    def test_unknown_token(self):
        with pytest.raises(ValueError):
            Op.parse("w2")

    def test_expected_only_on_reads(self):
        with pytest.raises(ValueError):
            Op(Operation.W0, expected=0)

    def test_expected_must_be_bit(self):
        with pytest.raises(ValueError):
            Op(Operation.R, expected=2)

    def test_str_roundtrip(self):
        for text in ("w0", "w1", "r", "r0", "r1"):
            assert str(Op.parse(text)) == text


class TestSequenceParsing:
    def test_whitespace_and_commas(self):
        assert [str(o) for o in parse_ops("w1, w0 r0")] == \
            ["w1", "w0", "r0"]

    def test_repetition(self):
        ops = parse_ops("w1^3 w0 r0")
        assert [str(o) for o in ops] == ["w1", "w1", "w1", "w0", "r0"]

    def test_bad_repetition(self):
        with pytest.raises(ValueError):
            parse_ops("w1^0")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_ops("   ")

    def test_format_compacts_runs(self):
        assert format_ops(parse_ops("w1 w1 w1 w0 r0 r0")) == \
            "w1^3 w0 r0^2"

    @given(st.lists(st.sampled_from(["w0", "w1", "r0", "r1", "r"]),
                    min_size=1, max_size=12))
    def test_format_parse_roundtrip(self, tokens):
        ops = parse_ops(" ".join(tokens))
        again = parse_ops(format_ops(ops))
        assert [str(a) for a in again] == [str(o) for o in ops]


class TestResults:
    def _read_result(self, expected, sensed):
        return OpResult(Op(Operation.R, expected=expected), vc_end=1.0,
                        sensed=sensed)

    def test_detected_fault_on_mismatch(self):
        assert self._read_result(0, 1).detected_fault
        assert not self._read_result(0, 0).detected_fault

    def test_no_fault_without_expectation(self):
        r = OpResult(Op(Operation.R), vc_end=1.0, sensed=1)
        assert not r.detected_fault

    def test_sequence_aggregates(self):
        seq = SequenceResult(
            ops=parse_ops("w1 r1"),
            results=[OpResult(Op(Operation.W1), vc_end=2.2),
                     self._read_result(1, 0)])
        assert seq.any_fault
        assert seq.vc_after == [2.2, 1.0]
        assert seq.outputs == [None, 0]

    def test_describe_marks_faults(self):
        seq = SequenceResult(ops=parse_ops("r0"),
                             results=[self._read_result(0, 1)])
        assert "!" in seq.describe()
