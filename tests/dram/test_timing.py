"""Cycle-plan generation: schedules, scaling and per-op waveforms."""

import pytest

from repro.stress import NOMINAL_STRESS
from repro.dram.ops import Op
from repro.dram.tech import default_tech
from repro.dram.timing import plan_cycle, wordline_window


@pytest.fixture(scope="module")
def tech():
    return default_tech()


class TestWordlineWindow:
    def test_scales_with_tcyc(self):
        t_on_60, t_off_60 = wordline_window(NOMINAL_STRESS)
        t_on_55, t_off_55 = wordline_window(
            NOMINAL_STRESS.with_(tcyc=55e-9))
        assert t_on_55 < t_on_60
        assert (t_off_55 - t_on_55) < (t_off_60 - t_on_60)

    def test_duty_extends_window(self):
        _, off_40 = wordline_window(NOMINAL_STRESS.with_(duty=0.40))
        _, off_60 = wordline_window(NOMINAL_STRESS.with_(duty=0.60))
        assert off_60 > off_40

    def test_window_capped_inside_cycle(self):
        stress = NOMINAL_STRESS.with_(duty=0.9)
        _, t_off = wordline_window(stress)
        assert t_off <= 0.97 * stress.tcyc


class TestWritePlan(object):
    def test_write1_drives_true_high(self, tech):
        plan = plan_cycle(Op.parse("w1"), NOMINAL_STRESS, tech,
                          target_cell=0)
        assert plan.waveforms["v_wdt"].value(30e-9) == pytest.approx(2.4)
        assert plan.waveforms["v_wdc"].value(30e-9) == pytest.approx(0.0)

    def test_write0_drives_true_low(self, tech):
        plan = plan_cycle(Op.parse("w0"), NOMINAL_STRESS, tech)
        assert plan.waveforms["v_wdt"].value(30e-9) == pytest.approx(0.0)
        assert plan.waveforms["v_wdc"].value(30e-9) == pytest.approx(2.4)

    def test_write_does_not_sense(self, tech):
        plan = plan_cycle(Op.parse("w1"), NOMINAL_STRESS, tech)
        assert plan.waveforms["v_sen"].value(30e-9) == 0.0
        assert plan.t_sense is None

    def test_only_target_wordline_fires(self, tech):
        plan = plan_cycle(Op.parse("w1"), NOMINAL_STRESS, tech,
                          target_cell=2)
        mid = 30e-9
        assert plan.waveforms["v_wl2"].value(mid) > 3.0
        for i in (0, 1, 3):
            assert plan.waveforms[f"v_wl{i}"].value(mid) == 0.0

    def test_wordline_boosted(self, tech):
        plan = plan_cycle(Op.parse("w1"), NOMINAL_STRESS, tech)
        level = plan.waveforms["v_wl0"].value(30e-9)
        assert level == pytest.approx(tech.vpp(2.4))


class TestReadPlan:
    def test_sense_after_share(self, tech):
        plan = plan_cycle(Op.parse("r"), NOMINAL_STRESS, tech)
        assert plan.t_sense is not None
        assert plan.t_sense > plan.t_wl_on
        assert plan.t_sample is not None
        assert plan.t_sample < plan.t_wl_off

    def test_dummy_fires_opposite_line_true(self, tech):
        plan = plan_cycle(Op.parse("r"), NOMINAL_STRESS, tech,
                          target_cell=0)
        mid = 30e-9
        assert plan.waveforms["v_rwl_c"].value(mid) > 3.0
        assert plan.waveforms["v_rwl_t"].value(mid) == 0.0

    def test_dummy_fires_opposite_line_comp(self, tech):
        plan = plan_cycle(Op.parse("r"), NOMINAL_STRESS, tech,
                          target_cell=1)
        mid = 30e-9
        assert plan.waveforms["v_rwl_t"].value(mid) > 3.0
        assert plan.waveforms["v_rwl_c"].value(mid) == 0.0

    def test_write_driver_off_during_read(self, tech):
        plan = plan_cycle(Op.parse("r"), NOMINAL_STRESS, tech)
        assert plan.waveforms["v_wen"].value(30e-9) == 0.0

    def test_reference_level_tracks_temperature(self, tech):
        cold = plan_cycle(Op.parse("r"),
                          NOMINAL_STRESS.with_(temp_c=-33.0), tech)
        room = plan_cycle(Op.parse("r"), NOMINAL_STRESS, tech)
        assert cold.waveforms["v_ref"].value(0) > \
            room.waveforms["v_ref"].value(0)


class TestNopPlan:
    def test_everything_inactive(self, tech):
        plan = plan_cycle(Op.parse("nop"), NOMINAL_STRESS, tech)
        mid = 30e-9
        for name in ("v_wl0", "v_sen", "v_wen", "v_csl", "v_rwl_t",
                     "v_rwl_c"):
            assert plan.waveforms[name].value(mid) == 0.0
        assert plan.t_sense is None

    def test_precharge_still_runs(self, tech):
        plan = plan_cycle(Op.parse("nop"), NOMINAL_STRESS, tech)
        t_eq = 0.1 * NOMINAL_STRESS.tcyc
        assert plan.waveforms["v_eq"].value(t_eq) > 3.0


class TestValidation:
    def test_bad_target_cell(self, tech):
        with pytest.raises(ValueError):
            plan_cycle(Op.parse("w1"), NOMINAL_STRESS, tech,
                       target_cell=99)

    def test_supply_follows_stress(self, tech):
        plan = plan_cycle(Op.parse("w1"), NOMINAL_STRESS.with_(vdd=2.1),
                          tech)
        assert plan.waveforms["v_vdd"].value(0) == pytest.approx(2.1)
        assert plan.waveforms["v_pre"].value(0) == pytest.approx(1.05)
