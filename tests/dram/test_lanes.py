"""Batched-lane kernel vs the per-lane path: parity and isolation.

The lane kernel (:mod:`repro.spice.lanes` driven through
:class:`repro.dram.runner.LaneRunner`) replaces per-lane Newton solves
with one masked chord iteration over stacked systems.  Its results are
*not* bitwise-identical to the per-lane path — the chord loop converges
to ``vtol * LANE_VTOL_FACTOR`` instead of running full Newton passes —
but they must stay within the documented fp tolerance (DESIGN.md
section 5d): 1e-5 on every node voltage, with identical sensed bits.

These tests drive real SPICE-level cycles, so the hypothesis sweep is
kept to a handful of examples; the exhaustive grid comparison lives in
``benchmarks/bench_lanes.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.spice.lanes as lanes_mod
from repro.dram import ColumnRunner
from repro.dram.column import DefectSite
from repro.dram.runner import LaneRunner

#: The documented lane-vs-per-lane tolerance (DESIGN.md section 5d).
LANE_TOL = 1e-5


def _legacy_results(resistances, init_vcs, ops):
    out = []
    for r, vc in zip(resistances, init_vcs):
        runner = ColumnRunner(defect=DefectSite("open_sn", 0, r))
        out.append(runner.run_sequence(ops, init_vc=vc))
    return out


def _lane_results(resistances, init_vcs, ops):
    runner = LaneRunner(defect_kind="open_sn")
    results, counters = runner.run_sequences(
        ops, list(zip(resistances, init_vcs)))
    return results, counters


class TestLaneParity:
    @given(exps=st.lists(st.floats(3.5, 6.5), min_size=2, max_size=4),
           ops=st.sampled_from(["w0", "w1 r1", "w0 r0"]),
           init=st.sampled_from([0.0, 1.2, 2.4]))
    @settings(max_examples=5, deadline=None)
    def test_lanes_match_per_lane_within_documented_tolerance(
            self, exps, ops, init):
        """Property: for any Rop stack, lane trajectories track the
        per-lane path within the documented 1e-5 tolerance and sense
        the same bits."""
        resistances = [10.0 ** e for e in exps]
        init_vcs = [init] * len(resistances)
        legacy = _legacy_results(resistances, init_vcs, ops)
        lanes, counters = _lane_results(resistances, init_vcs, ops)
        assert counters["lanes_isolated"] == 0
        for lane_seq, legacy_seq in zip(lanes, legacy):
            assert lane_seq is not None
            dvc = np.abs(np.asarray(lane_seq.vc_after)
                         - np.asarray(legacy_seq.vc_after))
            # Explicit tolerance assertion: this is the parity contract
            # the default-off `--lanes` switch is documented under.
            assert dvc.max() <= LANE_TOL
            assert lane_seq.outputs == legacy_seq.outputs

    def test_cycle_chaining_matches_per_lane(self):
        """Multi-cycle sequences chain lane final states exactly like
        the per-lane path chains ``final_state()``."""
        resistances = [50e3, 200e3, 1e6]
        init_vcs = [2.4, 0.0, 1.0]
        ops = "w1 w0 r0"
        legacy = _legacy_results(resistances, init_vcs, ops)
        lanes, _ = _lane_results(resistances, init_vcs, ops)
        for lane_seq, legacy_seq in zip(lanes, legacy):
            assert np.allclose(lane_seq.vc_after, legacy_seq.vc_after,
                               atol=LANE_TOL, rtol=0.0)


class TestLaneIsolation:
    def test_failed_lane_is_isolated_mid_batch(self, monkeypatch):
        """A lane whose solves keep failing (initial attempt and the
        continuation retry) comes back as ``None`` without disturbing
        its batch mates."""
        resistances = [50e3, 200e3, 1e6]
        victim = 1  # global lane position to poison

        orig = lanes_mod.newton_solve_lanes

        def poisoned(lanes, A_step, b_step, x0, lane_idx, **kw):
            x, failed = orig(lanes, A_step, b_step, x0, lane_idx, **kw)
            failed = failed | (np.asarray(lane_idx) == victim)
            return x, failed

        monkeypatch.setattr(lanes_mod, "newton_solve_lanes", poisoned)
        lanes, counters = _lane_results(resistances, [0.0] * 3, "w1")
        assert lanes[victim] is None
        assert counters["lanes_isolated"] == 1
        assert counters["lanes_converged"] == 2

        legacy = _legacy_results(resistances, [0.0] * 3, "w1")
        for k, (lane_seq, legacy_seq) in enumerate(zip(lanes, legacy)):
            if k == victim:
                continue
            assert lane_seq is not None
            assert np.allclose(lane_seq.vc_after, legacy_seq.vc_after,
                               atol=LANE_TOL, rtol=0.0)

    def test_continuation_rescue_counts(self, monkeypatch):
        """A lane that fails once and succeeds on the warm-started
        retry is *not* isolated, and the rescue is counted."""
        calls = {"n": 0}
        orig = lanes_mod.newton_solve_lanes

        def flaky(lanes, A_step, b_step, x0, lane_idx, **kw):
            x, failed = orig(lanes, A_step, b_step, x0, lane_idx, **kw)
            calls["n"] += 1
            if calls["n"] == 1:   # first step, first attempt only
                failed = failed.copy()
                failed[0] = True
            return x, failed

        monkeypatch.setattr(lanes_mod, "newton_solve_lanes", flaky)
        lanes, counters = _lane_results([50e3, 200e3], [0.0, 0.0], "w1")
        assert counters["lanes_isolated"] == 0
        assert counters["lane_continuation_hits"] >= 1
        assert all(seq is not None for seq in lanes)


class TestLaneRunnerSurface:
    def test_stress_update_revalues_lanes(self):
        """`set_stress` must flow into subsequent lane batches."""
        from repro.stress import NOMINAL_STRESS
        runner = LaneRunner(defect_kind="open_sn")
        cold, _ = runner.run_sequences("w1", [(200e3, 0.0)])
        runner.set_stress(NOMINAL_STRESS.with_(vdd=2.1))
        hot, _ = runner.run_sequences("w1", [(200e3, 0.0)])
        assert cold[0].vc_after[0] != pytest.approx(
            hot[0].vc_after[0], abs=1e-3)
