"""Array-scale lane batching: parity, warm starts, bisection identity.

:class:`repro.dram.runner.ArrayLaneRunner` stacks same-topology array
requests (one geometry/address/trim plan, many defect resistances) into
one batched transient, with a :class:`~repro.spice.lanes.LaneWarmBank`
carrying quasi-Newton factorizations and trajectories across successive
bisection generations.  These tests pin the contract at tier-1 speed;
the exhaustive 16×16 comparison lives in
``benchmarks/bench_array_lanes.py``.

The hypothesis sweep at the bottom is the trimmed-vs-full sensed-bit
property the trim layer documents: for any geometry, accessed address,
and defect kind, activation/retention cycles must sense the same bits
with and without the active-window trim.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.column import DEFECT_KINDS, DefectSite
from repro.dram.runner import ArrayLaneRunner, ArrayRunner
from repro.engine import BatchExecutor
from repro.experiments.array import activation_disturb_br
from repro.spice.errors import NetlistError
from repro.stress import NOMINAL_STRESS

#: The documented lane-vs-serial tolerance (DESIGN.md sections 5d/5h).
LANE_TOL = 1e-5

RESISTANCES = (1e4, 3e5, 1e7)
VDD = NOMINAL_STRESS.vdd


def _serial_reference(kind, cell, resistances, ops, *, geometry, trim):
    out = []
    for r in resistances:
        runner = ArrayRunner(defect=DefectSite(kind, cell, r),
                             geometry=geometry, trim=trim, record=True)
        out.append(runner.run_sequence(ops, init_vc=VDD))
    return out


class TestArrayLaneParity:
    @pytest.mark.parametrize("kind", DEFECT_KINDS)
    def test_lanes_match_serial_within_tolerance(self, kind):
        runner = ArrayLaneRunner(defect_kind=kind, cell=5,
                                 geometry=(4, 4), trim="off", record=True)
        rows, counters = runner.run_sequences(
            "r", [(r, VDD) for r in RESISTANCES])
        assert counters["lanes_isolated"] == 0
        legacy = _serial_reference(kind, 5, RESISTANCES, "r",
                                   geometry=(4, 4), trim="off")
        for row, ref in zip(rows, legacy):
            assert row is not None
            for a, b in zip(row.results, ref.results):
                assert np.abs(a.vc - b.vc).max() <= LANE_TOL
                assert np.abs(a.extra["bl"]
                              - b.extra["bl"]).max() <= LANE_TOL
                assert a.sensed == b.sensed

    def test_trimmed_lanes_match_serial(self):
        runner = ArrayLaneRunner(defect_kind="open_sn", cell=5,
                                 geometry=(4, 4), trim="force",
                                 record=True)
        rows, _ = runner.run_sequences(
            "nop r", [(r, VDD) for r in RESISTANCES])
        legacy = _serial_reference("open_sn", 5, RESISTANCES, "nop r",
                                   geometry=(4, 4), trim="force")
        for row, ref in zip(rows, legacy):
            for a, b in zip(row.results, ref.results):
                assert abs(a.vc_end - b.vc_end) <= LANE_TOL
                assert a.sensed == b.sensed

    def test_writes_rejected(self):
        runner = ArrayLaneRunner(geometry=(4, 4))
        with pytest.raises(NetlistError):
            runner.run_sequences("w1 r1", [(2e5, 0.0)])


class TestWarmStarts:
    def test_second_generation_hits_the_bank(self):
        """A bisection's second generation warm-starts from the first
        one's converged neighbours — and stays on the serial answer."""
        runner = ArrayLaneRunner(defect_kind="open_sn", cell=5,
                                 geometry=(4, 4), trim="off")
        _, first = runner.run_sequences("r", [(1e4, VDD), (1e7, VDD)])
        assert first["lane_warm_start_hits"] == 0
        rows, second = runner.run_sequences("r", [(1e5, VDD), (1e6, VDD)])
        assert second["lane_warm_start_hits"] > 0
        legacy = _serial_reference("open_sn", 5, (1e5, 1e6), "r",
                                   geometry=(4, 4), trim="off")
        for row, ref in zip(rows, legacy):
            got = row.results[-1].vc_end
            assert abs(got - ref.results[-1].vc_end) <= LANE_TOL

    def test_stress_change_clears_the_bank(self):
        from repro.stress import StressConditions
        runner = ArrayLaneRunner(defect_kind="open_sn", cell=5,
                                 geometry=(4, 4), trim="off")
        runner.run_sequences("r", [(1e4, VDD), (1e7, VDD)])
        hot = NOMINAL_STRESS
        runner.set_stress(StressConditions(
            vdd=hot.vdd, tcyc=hot.tcyc, temp_c=hot.temp_c + 30.0))
        _, counters = runner.run_sequences("r", [(1e5, VDD)])
        assert counters["lane_warm_start_hits"] == 0


class TestBisectionIdentity:
    def test_batched_br_equals_serial_br(self):
        """The speculative lane-batched bisection consumes bitwise the
        serial loop's probes, so the border is exactly equal."""
        borders = {}
        for lanes in (0, 8):
            engine = BatchExecutor(cache=None, lanes=lanes)
            borders[lanes] = activation_disturb_br(
                "open_sn", geometry=(4, 4), cell=5, trim="off",
                engine=engine, rel_tol=0.05)
            if lanes:
                assert engine.stats.lane_groups > 0
        assert borders[8] == borders[0]


class TestTrimmedSensedParity:
    @given(rows=st.integers(3, 5), cols=st.integers(3, 5),
           kind=st.sampled_from(DEFECT_KINDS),
           ops=st.sampled_from(["r", "nop r"]),
           exp=st.sampled_from([4.0, 7.0]),
           data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_trimmed_vs_full_sensed_bits(self, rows, cols, kind, ops,
                                         exp, data):
        """Property: the active-window trim never flips a sensed bit,
        for any geometry, accessed address, and defect kind."""
        row = data.draw(st.integers(0, rows - 1), label="row")
        col = data.draw(st.integers(0, cols - 1), label="col")
        cell = data.draw(st.integers(0, rows * cols - 1), label="cell")
        defect = DefectSite(kind, cell, 10.0 ** exp)
        sensed = {}
        for policy in ("off", "force"):
            runner = ArrayRunner(defect=defect, geometry=(rows, cols),
                                 address=(row, col), trim=policy)
            res = runner.run_sequence(ops, init_vc=VDD)
            sensed[policy] = [r.sensed for r in res.results]
        assert sensed["off"] == sensed["force"]
