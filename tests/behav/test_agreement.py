"""Cross-validation: behavioral vs electrical model.

The behavioral model's value comes from standing in for the electrical
one in wide sweeps; these tests pin down how far the two may drift.
Each electrical data point costs a real SPICE transient, so the grids are
deliberately small.
"""

import pytest

from repro.analysis import electrical_model, sense_threshold
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.stress import NOMINAL_STRESS


@pytest.fixture(scope="module")
def pair():
    defect = Defect(DefectKind.O3, resistance=200e3)
    return behavioral_model(defect), electrical_model(defect)


class TestVoltageAgreement:
    def test_write_sequence_traces_close(self, pair):
        behav, elec = pair
        for model in pair:
            model.set_defect_resistance(200e3)
        sb = behav.run_sequence("w1 w1 w0", init_vc=0.0)
        se = elec.run_sequence("w1 w1 w0", init_vc=0.0)
        for vb, ve in zip(sb.vc_after, se.vc_after):
            assert vb == pytest.approx(ve, abs=0.25)

    def test_sense_threshold_close_at_reference(self, pair):
        behav, elec = pair
        for model in pair:
            model.set_defect_resistance(200e3)
        vb = sense_threshold(behav, tol=0.01)
        ve = sense_threshold(elec, tol=0.01)
        assert vb == pytest.approx(ve, abs=0.08)

    def test_read_decisions_agree_off_threshold(self, pair):
        behav, elec = pair
        for model in pair:
            model.set_defect_resistance(200e3)
        ve = sense_threshold(elec, tol=0.02)
        for vc in (ve - 0.25, ve + 0.25):
            ob = behav.run_sequence("r", init_vc=vc).outputs[0]
            oe = elec.run_sequence("r", init_vc=vc).outputs[0]
            assert ob == oe


class TestShapeAgreement:
    def test_nonmonotonic_vsa_over_temperature(self, pair):
        """Both backends must reproduce the Fig. 4 non-monotonicity."""
        behav, elec = pair
        for model, collect in ((behav, {}), (elec, {})):
            pass
        results = {}
        for name, model in (("behav", behav), ("elec", elec)):
            vs = {}
            for temp in (-33.0, 27.0, 87.0):
                model.set_stress(NOMINAL_STRESS.with_(temp_c=temp))
                model.set_defect_resistance(200e3)
                vs[temp] = sense_threshold(model, tol=0.01)
            model.set_stress(NOMINAL_STRESS)
            results[name] = vs
        for vs in results.values():
            assert vs[-33.0] > vs[27.0]
            assert vs[87.0] > vs[27.0]

    def test_fault_verdicts_agree_on_probe_battery(self, pair):
        behav, elec = pair
        for r_ohm in (50e3, 400e3, 1.5e6):
            for model in pair:
                model.set_defect_resistance(r_ohm)
            vb = behav.run_sequence("w1^4 w0 r0", init_vc=0.0).any_fault
            ve = elec.run_sequence("w1^4 w0 r0", init_vc=0.0).any_fault
            assert vb == ve, f"disagreement at R={r_ohm}"

    def test_border_resistance_within_factor(self, pair):
        from repro.analysis import border_resistance
        behav, elec = pair
        borders = {}
        for name, model in (("behav", behav), ("elec", elec)):
            res = border_resistance(model, fails_high=True, r_lo=5e4,
                                    r_hi=2e6, rel_tol=0.15,
                                    sequences=("w1^4 w0 r0",))
            borders[name] = res.resistance
        assert borders["behav"] == pytest.approx(borders["elec"],
                                                 rel=0.5)
