"""Behavioral column model: interface parity and physics sanity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.behav import BehavCalibration, behavioral_model
from repro.defects import Defect, DefectKind, Placement
from repro.stress import NOMINAL_STRESS


@pytest.fixture
def o3():
    return behavioral_model(Defect(DefectKind.O3, resistance=200e3))


class TestHealthyBehaviour:
    def test_roundtrip_both_values(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=10.0))
        seq = model.run_sequence("w1 r1 w0 r0", init_vc=0.0)
        assert not seq.any_fault

    def test_write1_charges(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=10.0))
        assert model.run_sequence("w1", init_vc=0.0).vc_after[0] > 2.0

    def test_nop_roughly_preserves(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=10.0))
        seq = model.run_sequence("w1 nop nop r1", init_vc=0.0)
        assert not seq.any_fault

    def test_no_defect_column(self):
        model = behavioral_model(None)
        seq = model.run_sequence("w1 r1 w0 r0", init_vc=0.0)
        assert not seq.any_fault

    def test_set_resistance_without_defect_raises(self):
        model = behavioral_model(None)
        with pytest.raises(ValueError):
            model.set_defect_resistance(1e5)


class TestDefectPhysics:
    def test_open_slows_write(self, o3):
        vc_weak = o3.run_sequence("w1", init_vc=0.0).vc_after[0]
        o3.set_defect_resistance(10.0)
        vc_strong = o3.run_sequence("w1", init_vc=0.0).vc_after[0]
        assert vc_weak < vc_strong - 0.3

    def test_strong_open_reads_one(self, o3):
        o3.set_defect_resistance(20e6)
        assert o3.run_sequence("r", init_vc=0.0).outputs[0] == 1

    def test_short_gnd_drains_one(self):
        model = behavioral_model(Defect(DefectKind.SG, resistance=3e4))
        seq = model.run_sequence("w1 nop nop r1", init_vc=0.0)
        assert seq.any_fault

    def test_short_vdd_pulls_zero_up(self):
        model = behavioral_model(Defect(DefectKind.SV, resistance=3e4))
        seq = model.run_sequence("w0 nop nop r0", init_vc=2.4)
        assert seq.any_fault

    def test_bridge_bl_pulls_toward_precharge(self):
        model = behavioral_model(Defect(DefectKind.B1, resistance=2e4))
        seq = model.run_sequence("w1 nop nop nop", init_vc=0.0)
        # the bridge drags the stored 1 toward the precharge level
        assert seq.vc_after[-1] < 1.8

    def test_gate_open_blocks_access(self):
        model = behavioral_model(Defect(DefectKind.O2, resistance=1e9))
        seq = model.run_sequence("w1", init_vc=0.0)
        assert seq.vc_after[0] < 1.0

    def test_gate_open_weak_is_fine(self):
        model = behavioral_model(Defect(DefectKind.O2, resistance=1e3))
        seq = model.run_sequence("w1 r1 w0 r0", init_vc=0.0)
        assert not seq.any_fault


class TestStressResponse:
    def test_shorter_tcyc_weakens_write(self, o3):
        o3.set_stress(NOMINAL_STRESS)
        v60 = o3.run_sequence("w0", init_vc=2.4).vc_after[0]
        o3.set_stress(NOMINAL_STRESS.with_(tcyc=55e-9))
        v55 = o3.run_sequence("w0", init_vc=2.4).vc_after[0]
        assert v55 > v60

    def test_hot_weakens_write(self, o3):
        o3.set_stress(NOMINAL_STRESS.with_(temp_c=87.0))
        hot = o3.run_sequence("w0", init_vc=2.4).vc_after[0]
        o3.set_stress(NOMINAL_STRESS.with_(temp_c=-33.0))
        cold = o3.run_sequence("w0", init_vc=2.4).vc_after[0]
        assert hot > cold

    def test_higher_vdd_weakens_w0(self, o3):
        o3.set_stress(NOMINAL_STRESS.with_(vdd=2.7))
        hi = o3.run_sequence("w0", init_vc=2.7).vc_after[0]
        o3.set_stress(NOMINAL_STRESS.with_(vdd=2.1))
        lo = o3.run_sequence("w0", init_vc=2.1).vc_after[0]
        assert hi > lo


class TestComplementaryPlacement:
    def test_logical_roundtrip(self):
        model = behavioral_model(
            Defect(DefectKind.O3, Placement.COMP, 10.0))
        seq = model.run_sequence("w1 r1 w0 r0", init_vc=2.4)
        assert not seq.any_fault

    def test_inverted_storage(self):
        model = behavioral_model(
            Defect(DefectKind.O3, Placement.COMP, 10.0))
        seq = model.run_sequence("w1", init_vc=2.4)
        assert seq.vc_after[0] < 0.3


class TestCalibration:
    def test_latch_delay_grows_with_temperature(self):
        cal = BehavCalibration()
        assert cal.delay_at(87.0) > cal.delay_at(27.0) > cal.delay_at(-33.0)

    def test_custom_calibration_changes_threshold(self):
        from repro.analysis import sense_threshold
        fast = behavioral_model(Defect(DefectKind.O3, resistance=200e3),
                                calibration=BehavCalibration(0.5e-9, 0.9))
        slow = behavioral_model(Defect(DefectKind.O3, resistance=200e3),
                                calibration=BehavCalibration(8e-9, 0.9))
        v_fast = sense_threshold(fast)
        v_slow = sense_threshold(slow)
        assert v_fast != pytest.approx(v_slow, abs=0.005)


class TestProperties:
    @given(st.floats(0.0, 2.4))
    @settings(max_examples=20, deadline=None)
    def test_w1_moves_cell_up(self, init):
        model = behavioral_model(Defect(DefectKind.O3, resistance=300e3))
        out = model.run_sequence("w1", init_vc=init).vc_after[0]
        assert out >= init - 0.25   # small leak/tail slack

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_successive_w1_monotone(self, n):
        model = behavioral_model(Defect(DefectKind.O3, resistance=300e3))
        seq = model.run_sequence(["w1"] * n, init_vc=0.0)
        levels = seq.vc_after
        assert all(b >= a - 1e-6 for a, b in zip(levels, levels[1:]))

    @given(st.floats(5e4, 5e6))
    @settings(max_examples=20, deadline=None)
    def test_single_write_residual_monotone_in_r(self, r):
        model = behavioral_model(Defect(DefectKind.O3, resistance=r))
        vc_r = model.run_sequence("w0", init_vc=2.4).vc_after[0]
        model.set_defect_resistance(r * 2)
        vc_2r = model.run_sequence("w0", init_vc=2.4).vc_after[0]
        assert vc_2r >= vc_r - 1e-6
