"""Edge cases of the behavioral latch calibration (repro.behav.calibrate).

The grid fit is cheap to reason about but expensive to run for real
(electrical read cycles), so these tests monkeypatch the two Vsa probes
— degenerate electrical targets, unusable grids, and determinism of the
fitted constants under refit.
"""

import pytest

from repro.behav import calibrate
from repro.behav.model import BehavCalibration


def test_missing_electrical_target_raises(monkeypatch):
    monkeypatch.setattr(calibrate, "_electrical_vsa",
                        lambda tech, stress, resistance: None)
    with pytest.raises(RuntimeError,
                       match="electrical Vsa missing at the calibration "
                             "resistance"):
        calibrate.calibrate_latch()


def test_missing_hot_target_raises(monkeypatch):
    def electrical(tech, stress, resistance):
        return 1.2 if stress.temp_c < 80.0 else None
    monkeypatch.setattr(calibrate, "_electrical_vsa", electrical)
    with pytest.raises(RuntimeError, match="electrical Vsa missing"):
        calibrate.calibrate_latch()


def test_unusable_grid_raises(monkeypatch):
    monkeypatch.setattr(calibrate, "_electrical_vsa",
                        lambda tech, stress, resistance: 1.2)
    monkeypatch.setattr(calibrate, "_behav_vsa",
                        lambda tech, cal, stress, resistance: None)
    with pytest.raises(RuntimeError,
                       match="calibration grid produced no usable "
                             "candidate"):
        calibrate.calibrate_latch()


def _fake_behav_vsa(tech, cal, stress, resistance):
    # A smooth deterministic response surface with a unique best cell:
    # the fit must find the grid point closest to the fake targets.
    return (1.0 + 0.1 * (cal.latch_delay / 1e-9)
            + 0.01 * cal.latch_texp * (stress.temp_c / 27.0))


def test_grid_fit_is_deterministic_under_refit(monkeypatch):
    monkeypatch.setattr(calibrate, "_electrical_vsa",
                        lambda tech, stress, resistance: 1.3)
    monkeypatch.setattr(calibrate, "_behav_vsa", _fake_behav_vsa)
    first = calibrate.calibrate_latch()
    second = calibrate.calibrate_latch()
    assert isinstance(first, BehavCalibration)
    assert first == second                      # refit determinism
    assert first.latch_delay in (1.0e-9, 1.6e-9, 2.2e-9, 2.8e-9,
                                 3.4e-9, 4.2e-9)
    assert first.latch_texp in (0.3, 0.9, 1.5, 2.2)


def test_partial_grid_still_fits(monkeypatch):
    """Candidates where the behavioral threshold vanishes are skipped,
    not fatal — the fit uses whatever grid cells remain."""
    monkeypatch.setattr(calibrate, "_electrical_vsa",
                        lambda tech, stress, resistance: 1.3)

    def patchy(tech, cal, stress, resistance):
        if cal.latch_delay > 2.0e-9:
            return None
        return _fake_behav_vsa(tech, cal, stress, resistance)

    monkeypatch.setattr(calibrate, "_behav_vsa", patchy)
    fitted = calibrate.calibrate_latch()
    assert fitted.latch_delay <= 2.0e-9


def test_tie_breaks_prefer_the_first_grid_cell(monkeypatch):
    """Strictly-better-only updates: a flat error surface returns the
    first grid candidate, pinning refit output for equal-error ties."""
    monkeypatch.setattr(calibrate, "_electrical_vsa",
                        lambda tech, stress, resistance: 1.3)
    monkeypatch.setattr(calibrate, "_behav_vsa",
                        lambda tech, cal, stress, resistance: 1.3)
    fitted = calibrate.calibrate_latch()
    assert fitted == BehavCalibration(latch_delay=1.0e-9, latch_texp=0.3)
