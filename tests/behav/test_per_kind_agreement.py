"""Behavioral vs electrical fault verdicts for every defect kind.

One strong and one weak resistance per kind; the two backends must agree
on whether the probe battery observes a fault.  This is the coarse
contract that lets the optimizer run on the fast model.
"""

import pytest

from repro.analysis import electrical_model
from repro.analysis.interface import opposite_rail_init
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.dram.ops import parse_ops

#: (kind, strong R, weak R, probe sequence)
CASES = [
    (DefectKind.O1, 3e6, 1e3, "w1^2 w0 r0"),
    (DefectKind.O2, 50e6, 1e4, "w0 r0"),
    (DefectKind.O3, 3e6, 1e3, "w1^2 w0 r0"),
    (DefectKind.SG, 3e4, 1e8, "w1 r1 r1"),
    (DefectKind.SV, 3e4, 1e8, "w0 r0 r0"),
    (DefectKind.B1, 2e4, 1e8, "w0 r0 r0"),
    (DefectKind.B2, 3e4, 1e8, "w0 r0 r0"),
]


def _verdict(model, sequence):
    ops = parse_ops(sequence)
    init = opposite_rail_init(model, ops)
    return model.run_sequence(ops, init_vc=init).any_fault


@pytest.mark.parametrize("kind,strong,weak,sequence", CASES,
                         ids=[c[0].value for c in CASES])
class TestKindAgreement:
    def test_strong_defect_faults_on_both_backends(self, kind, strong,
                                                   weak, sequence):
        defect = Defect(kind, resistance=strong)
        assert _verdict(behavioral_model(defect), sequence), \
            "behavioral misses a strong defect"
        assert _verdict(electrical_model(defect), sequence), \
            "electrical misses a strong defect"

    def test_weak_defect_clean_on_both_backends(self, kind, strong,
                                                weak, sequence):
        defect = Defect(kind, resistance=weak)
        assert not _verdict(behavioral_model(defect), sequence), \
            "behavioral false-positives on a weak defect"
        assert not _verdict(electrical_model(defect), sequence), \
            "electrical false-positives on a weak defect"
