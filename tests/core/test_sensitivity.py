"""Border-sensitivity analysis."""

import pytest

from repro.behav import behavioral_model
from repro.core import StressKind
from repro.core.sensitivity import (
    SensitivityReport,
    StressSensitivity,
    stress_sensitivity,
)
from repro.defects import Defect, DefectKind


def _factory(defect, stress):
    return behavioral_model(defect, stress=stress)


@pytest.fixture(scope="module")
def o3_report():
    return stress_sensitivity(_factory, Defect(DefectKind.O3),
                              kinds=(StressKind.TCYC, StressKind.VDD,
                                     StressKind.TEMP))


class TestSensitivityValues:
    def test_all_defined_for_open(self, o3_report):
        for s in o3_report.sensitivities.values():
            assert s.defined, s.kind

    def test_tcyc_sensitivity_positive(self, o3_report):
        """Longer cycles raise the border of the open (less failing)."""
        s = o3_report.sensitivities[StressKind.TCYC]
        assert s.normalised > 0

    def test_vdd_sensitivity_positive(self, o3_report):
        s = o3_report.sensitivities[StressKind.VDD]
        assert s.normalised > 0

    def test_directions_match_optimizer(self, o3_report):
        """favours_high/low must agree with Table 1 direction calls."""
        assert o3_report.sensitivities[StressKind.TCYC].favours_high \
            is False          # tcyc ↓
        assert o3_report.sensitivities[StressKind.VDD].favours_high \
            is False          # vdd ↓
        assert o3_report.sensitivities[StressKind.TEMP].favours_high \
            is True           # T ↑

    def test_ranked_by_magnitude(self, o3_report):
        ranked = o3_report.ranked()
        mags = [abs(s.normalised) for s in ranked]
        assert mags == sorted(mags, reverse=True)

    def test_render_lists_axes(self, o3_report):
        text = o3_report.render()
        for kind in (StressKind.TCYC, StressKind.VDD, StressKind.TEMP):
            assert kind.value in text


class TestUndefinedHandling:
    def test_undefined_sensitivity(self):
        s = StressSensitivity(StressKind.VDD, Defect(DefectKind.O3),
                              None, 2e5, 1e5)
        assert not s.defined
        assert s.normalised is None
        assert s.favours_high is None
        assert "not found" in s.describe()

    def test_report_skips_undefined_in_ranking(self):
        rep = SensitivityReport(Defect(DefectKind.O3), {
            StressKind.VDD: StressSensitivity(
                StressKind.VDD, Defect(DefectKind.O3), None, 2e5, 1e5),
            StressKind.TCYC: StressSensitivity(
                StressKind.TCYC, Defect(DefectKind.O3), 1e5, 2e5, 3e5),
        })
        assert len(rep.ranked()) == 1


class TestShortPolarity:
    def test_short_favours_follow_border_growth(self):
        rep = stress_sensitivity(_factory, Defect(DefectKind.SG),
                                 kinds=(StressKind.TEMP,))
        s = rep.sensitivities[StressKind.TEMP]
        if s.defined:
            # Table 1: T ↑ for Sg; its border (fails-low) must grow hot
            assert s.favours_high is True
