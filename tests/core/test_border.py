"""Per-SC border identification and the effectiveness criterion."""

import pytest

from repro.analysis.border import BorderResult
from repro.behav import behavioral_model
from repro.core import find_border_resistance, more_effective
from repro.core.border import border_improvement
from repro.defects import Defect, DefectKind
from repro.stress import NOMINAL_STRESS


def _border(resistance, fails_high=True):
    return BorderResult(resistance, fails_high, False, False, 1e3, 1e7)


class TestEffectivenessCriterion:
    def test_opens_prefer_lower_border(self):
        d = Defect(DefectKind.O3)
        assert more_effective(d, _border(1e5), _border(2e5))
        assert not more_effective(d, _border(2e5), _border(1e5))

    def test_shorts_prefer_higher_border(self):
        d = Defect(DefectKind.SG)
        a, b = _border(8e5, False), _border(4e5, False)
        assert more_effective(d, a, b)

    def test_always_faulty_beats_everything(self):
        d = Defect(DefectKind.O3)
        all_fail = BorderResult(None, True, True, False, 1e3, 1e7)
        assert more_effective(d, all_fail, _border(1e4))

    def test_never_faulty_loses(self):
        d = Defect(DefectKind.O3)
        none_fail = BorderResult(None, True, False, True, 1e3, 1e7)
        assert not more_effective(d, none_fail, _border(1e6))


class TestImprovementMetric:
    def test_open_improvement_positive_when_border_drops(self):
        d = Defect(DefectKind.O3)
        assert border_improvement(d, _border(2e5), _border(1e5)) == \
            pytest.approx(1e5)

    def test_short_improvement_positive_when_border_rises(self):
        d = Defect(DefectKind.SG)
        assert border_improvement(d, _border(4e5, False),
                                  _border(6e5, False)) == pytest.approx(2e5)

    def test_degenerate_stressed_all_fail(self):
        d = Defect(DefectKind.O3)
        all_fail = BorderResult(None, True, True, False, 1e3, 1e7)
        assert border_improvement(d, _border(2e5), all_fail) == \
            float("inf")

    def test_equal_degenerates_zero(self):
        d = Defect(DefectKind.O3)
        all_fail = BorderResult(None, True, True, False, 1e3, 1e7)
        assert border_improvement(d, all_fail, all_fail) == 0.0


class TestRealBorders:
    def test_stress_reduces_open_border(self):
        defect = Defect(DefectKind.O3, resistance=2e5)
        model = behavioral_model(defect)
        nominal = find_border_resistance(model, defect,
                                         stress=NOMINAL_STRESS)
        stressed = find_border_resistance(
            model, defect,
            stress=NOMINAL_STRESS.with_(vdd=2.1, tcyc=55e-9,
                                        temp_c=87.0))
        assert nominal.found and stressed.found
        assert stressed.resistance < nominal.resistance

    def test_uses_defect_search_range(self):
        defect = Defect(DefectKind.O2, resistance=1e6)
        model = behavioral_model(defect)
        border = find_border_resistance(model, defect,
                                        stress=NOMINAL_STRESS)
        lo, hi = defect.kind.search_range
        if border.found:
            assert lo <= border.resistance <= hi
