"""Quick direction analysis (Sec. 4.1-4.3) on the behavioral model."""

import pytest

from repro.behav import behavioral_model
from repro.core import StressKind, analyze_direction
from repro.core.directions import (
    Vote,
    _vote_from_metric,
    analyze_read_panel,
    analyze_write_panel,
    write_residual,
)
from repro.defects import Defect, DefectKind
from repro.stress import NOMINAL_STRESS, STRESS_RANGES


@pytest.fixture
def o3():
    model = behavioral_model(Defect(DefectKind.O3, resistance=200e3))
    model.set_defect_resistance(200e3)
    return model


class TestVoting:
    def test_clear_high_vote(self):
        assert _vote_from_metric([1, 2, 3], [0.0, 0.1, 0.2], 0.01) \
            is Vote.HIGH

    def test_clear_low_vote(self):
        assert _vote_from_metric([1, 2, 3], [0.2, 0.1, 0.0], 0.01) \
            is Vote.LOW

    def test_no_impact(self):
        assert _vote_from_metric([1, 2, 3], [0.1, 0.1001, 0.1002], 0.01) \
            is Vote.NONE

    def test_non_monotone_peak(self):
        assert _vote_from_metric([1, 2, 3], [0.0, 0.5, 0.05], 0.01) \
            is Vote.NON_MONOTONE

    def test_non_monotone_valley(self):
        assert _vote_from_metric([1, 2, 3], [0.5, 0.0, 0.45], 0.01) \
            is Vote.NON_MONOTONE


class TestPanels:
    def test_write_residual_definition(self, o3):
        v = write_residual(o3, 0)
        direct = o3.run_sequence("w0", init_vc=2.4).vc_after[0]
        assert v == pytest.approx(direct, abs=1e-9)

    def test_tcyc_write_panel_votes_low(self, o3):
        panel = analyze_write_panel(o3, StressKind.TCYC,
                                    [55e-9, 60e-9, 65e-9], 0,
                                    NOMINAL_STRESS)
        assert panel.vote is Vote.LOW

    def test_tcyc_read_panel_weak_effect(self, o3):
        """The paper reports no timing impact on Vsa; the electrical
        model agrees within tolerance while the behavioral race slightly
        overestimates the share-window scaling.  Either way the read
        panel must not contradict the write panel's tcyc-down call."""
        panel = analyze_read_panel(o3, StressKind.TCYC,
                                   [55e-9, 60e-9, 65e-9], 0,
                                   NOMINAL_STRESS)
        assert panel.vote in (Vote.NONE, Vote.LOW)
        usable = [m for m in panel.metrics if m is not None]
        assert max(usable) - min(usable) < 0.05

    def test_temp_read_panel_non_monotone(self, o3):
        panel = analyze_read_panel(o3, StressKind.TEMP,
                                   [-33.0, 27.0, 87.0], 0,
                                   NOMINAL_STRESS)
        assert panel.vote is Vote.NON_MONOTONE

    def test_vdd_write_panel_votes_high(self, o3):
        """Higher Vdd leaves the stored level proportionally higher
        after w0 -> weaker write."""
        panel = analyze_write_panel(o3, StressKind.VDD, [2.1, 2.4, 2.7],
                                    0, NOMINAL_STRESS)
        assert panel.vote is Vote.HIGH

    def test_panel_describe_renders(self, o3):
        panel = analyze_write_panel(o3, StressKind.TCYC,
                                    [55e-9, 65e-9], 0, NOMINAL_STRESS)
        assert "vote" in panel.describe()


class TestDirectionCalls:
    def test_tcyc_decided_by_write_without_tiebreak(self, o3):
        call = analyze_direction(o3, StressKind.TCYC, 0)
        assert call.chosen_value == STRESS_RANGES[StressKind.TCYC].low
        assert not call.needs_border_tiebreak
        assert call.arrow == "↓"

    def test_temperature_flags_tiebreak(self, o3):
        call = analyze_direction(o3, StressKind.TEMP, 0)
        assert call.needs_border_tiebreak
        assert len(call.tiebreak_candidates) >= 2

    def test_vdd_flags_tiebreak_on_conflict(self, o3):
        call = analyze_direction(o3, StressKind.VDD, 0)
        assert call.needs_border_tiebreak

    def test_duty_decided_low(self, o3):
        call = analyze_direction(o3, StressKind.DUTY, 0)
        assert call.chosen_value == STRESS_RANGES[StressKind.DUTY].low

    def test_describe_mentions_decision(self, o3):
        call = analyze_direction(o3, StressKind.TCYC, 0)
        assert "tcyc" in call.describe()

    def test_probe_points_validation(self, o3):
        with pytest.raises(ValueError):
            analyze_direction(o3, StressKind.TCYC, 0, probe_points=1)
