"""Shmoo plotting baseline."""

import pytest

from repro.behav import behavioral_model
from repro.core import StressKind, shmoo
from repro.defects import Defect, DefectKind


@pytest.fixture
def model():
    return behavioral_model(Defect(DefectKind.O3, resistance=250e3))


def _grid(model, nx=5, ny=4):
    return shmoo(model, "w1^2 w0 r0",
                 x_kind=StressKind.VDD,
                 x_values=[2.1 + i * 0.15 for i in range(nx)],
                 y_kind=StressKind.TCYC,
                 y_values=[52e-9 + i * 4e-9 for i in range(ny)])


class TestShmooGrid:
    def test_shape(self, model):
        plot = _grid(model)
        assert len(plot.grid) == 4
        assert all(len(row) == 5 for row in plot.grid)

    def test_counts_sum_to_grid(self, model):
        plot = _grid(model)
        assert plot.pass_count + plot.fail_count == 20

    def test_boundary_exists_near_border(self, model):
        """A defect near the nominal BR must show both outcomes."""
        plot = _grid(model)
        assert plot.pass_count > 0
        assert plot.fail_count > 0

    def test_healthy_device_all_pass(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=10.0))
        plot = _grid(model)
        assert plot.fail_count == 0

    def test_gross_defect_all_fail(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=50e6))
        plot = _grid(model)
        assert plot.pass_count == 0

    def test_low_vdd_more_failing(self, model):
        """Failures concentrate at the stressful corner (low Vdd)."""
        plot = _grid(model, nx=6)
        fails_low = sum(1 for row in plot.grid if not row[0])
        fails_high = sum(1 for row in plot.grid if not row[-1])
        assert fails_low >= fails_high

    def test_stress_restored_after_run(self, model):
        base = model.stress
        _grid(model)
        assert model.stress == base

    def test_same_axis_rejected(self, model):
        with pytest.raises(ValueError):
            shmoo(model, "w0 r0",
                  x_kind=StressKind.VDD, x_values=[2.1],
                  y_kind=StressKind.VDD, y_values=[2.4])


class TestRendering:
    def test_render_dimensions(self, model):
        plot = _grid(model)
        lines = plot.render().splitlines()
        # title + ny rows + axis + labels
        assert len(lines) == 1 + 4 + 2

    def test_render_uses_markers(self, model):
        plot = _grid(model)
        text = plot.render()
        assert "X" in text or "." in text

    def test_custom_markers(self, model):
        plot = _grid(model)
        text = plot.render(pass_char="+", fail_char="#")
        assert "X" not in text
