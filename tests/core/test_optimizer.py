"""Full optimization flow (behavioral backend)."""

import pytest

from repro.core import (
    NOMINAL_STRESS,
    StressKind,
    optimize_all_defects,
    optimize_defect,
    probe_resistance,
)
from repro.analysis.border import BorderResult
from repro.defects import Defect, DefectKind, Placement


@pytest.fixture(scope="module")
def o3_row():
    return optimize_defect(DefectKind.O3)


@pytest.fixture(scope="module")
def table():
    defects = (Defect(DefectKind.O3, Placement.TRUE),
               Defect(DefectKind.O3, Placement.COMP),
               Defect(DefectKind.SG, Placement.TRUE),
               Defect(DefectKind.B1, Placement.TRUE))
    return optimize_all_defects(defects=defects)


class TestProbeResistance:
    def test_inside_open_failing_range(self):
        d = Defect(DefectKind.O3)
        b = BorderResult(2e5, True, False, False, 1e4, 1e7)
        assert probe_resistance(d, b) > 2e5

    def test_inside_short_failing_range(self):
        d = Defect(DefectKind.SG)
        b = BorderResult(2e5, False, False, False, 1e3, 3e7)
        assert probe_resistance(d, b) < 2e5

    def test_clamped_into_search_range(self):
        d = Defect(DefectKind.O3)
        hi = d.kind.search_range[1]
        b = BorderResult(hi, True, False, False, 1e4, hi)
        assert probe_resistance(d, b) <= hi


class TestO3Row(object):
    def test_paper_directions(self, o3_row):
        arrows = o3_row.direction_arrows()
        assert arrows[StressKind.TCYC] == "↓"     # Sec. 4.1
        assert arrows[StressKind.TEMP] == "↑"     # Sec. 4.2
        assert arrows[StressKind.VDD] == "↓"      # Sec. 4.3

    def test_border_shrinks_under_sc(self, o3_row):
        assert o3_row.improved
        assert o3_row.stressed_border.resistance < \
            o3_row.nominal_border.resistance

    def test_nominal_detection_matches_paper_shape(self, o3_row):
        tokens = [str(o) for o in o3_row.nominal_detection.ops]
        assert tokens[0] == "w1"
        assert tokens[-2:] == ["w0", "r0"]

    def test_stressed_detection_needs_more_charge(self, o3_row):
        nom_charge = sum(1 for o in o3_row.nominal_detection.ops
                         if str(o) == "w1")
        str_charge = sum(1 for o in o3_row.stressed_detection.ops
                         if str(o) == "w1")
        assert str_charge >= nom_charge

    def test_tiebreaks_recorded_for_temp_and_vdd(self, o3_row):
        assert StressKind.TEMP in o3_row.tiebreak_borders
        assert StressKind.VDD in o3_row.tiebreak_borders

    def test_stressed_conditions_composed(self, o3_row):
        sc = o3_row.stressed_conditions
        assert sc.tcyc == 55e-9
        assert sc.vdd == 2.1
        assert sc.temp_c == 87.0

    def test_fault_value_zero_for_true_open(self, o3_row):
        assert o3_row.fault_value == 0


class TestTable:
    def test_row_lookup(self, table):
        row = table.row(DefectKind.O3, Placement.COMP)
        assert row.defect.placement is Placement.COMP

    def test_missing_row_raises(self, table):
        with pytest.raises(KeyError):
            table.row(DefectKind.O2, Placement.TRUE)

    def test_true_comp_borders_match(self, table):
        t = table.row(DefectKind.O3, Placement.TRUE)
        c = table.row(DefectKind.O3, Placement.COMP)
        assert t.nominal_border.resistance == pytest.approx(
            c.nominal_border.resistance, rel=0.15)

    def test_true_comp_detections_interchanged(self, table):
        t = table.row(DefectKind.O3, Placement.TRUE)
        c = table.row(DefectKind.O3, Placement.COMP)
        swap = {"w0": "w1", "w1": "w0", "r0": "r1", "r1": "r0"}
        swapped = [swap[str(o)] for o in t.nominal_detection.ops]
        assert swapped == [str(o) for o in c.nominal_detection.ops]

    def test_all_rows_find_borders(self, table):
        for row in table.rows:
            assert row.nominal_border.found or \
                row.nominal_border.always_faulty

    def test_temperature_up_for_all(self, table):
        """Sec. 5.2: increasing T is more stressful for every defect."""
        for row in table.rows:
            assert row.directions[StressKind.TEMP].arrow == "↑", \
                row.defect.name

    def test_every_row_improves_failing_range(self, table):
        for row in table.rows:
            assert row.improved, row.defect.name

    def test_render_contains_all_rows(self, table):
        text = table.render()
        for row in table.rows:
            assert row.defect.name in text

    def test_describe_runs(self, table):
        for row in table.rows:
            assert row.defect.kind.value in row.describe()


class TestElectricalSpotCheck:
    """One electrical-backend row (slow) validating the behavioral table."""

    def test_o3_directions_match_on_electrical(self):
        from repro.analysis import electrical_model
        row = optimize_defect(
            DefectKind.O3,
            model_factory=lambda d, s: electrical_model(d, stress=s),
            st_kinds=(StressKind.TCYC,),
            br_rel_tol=0.2)
        assert row.directions[StressKind.TCYC].arrow == "↓"
        assert row.nominal_border.found
        behav_row = optimize_defect(DefectKind.O3,
                                    st_kinds=(StressKind.TCYC,),
                                    br_rel_tol=0.2)
        assert row.nominal_border.resistance == pytest.approx(
            behav_row.nominal_border.resistance, rel=0.6)
