"""ST/SC datatypes and specification ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.stress import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
    StressRange,
    nominal_stress,
)


class TestStressConditions:
    def test_nominal_matches_paper(self):
        assert NOMINAL_STRESS.tcyc == pytest.approx(60e-9)
        assert NOMINAL_STRESS.temp_c == 27.0
        assert NOMINAL_STRESS.vdd == 2.4
        assert NOMINAL_STRESS.duty == 0.5

    def test_with_replaces_one_field(self):
        sc = NOMINAL_STRESS.with_(vdd=2.1)
        assert sc.vdd == 2.1
        assert sc.tcyc == NOMINAL_STRESS.tcyc

    def test_frozen(self):
        with pytest.raises(Exception):
            NOMINAL_STRESS.vdd = 3.0

    @pytest.mark.parametrize("bad", [
        dict(tcyc=-1e-9), dict(duty=0.05), dict(duty=0.95),
        dict(vdd=0.0), dict(temp_c=500.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            StressConditions(**bad)

    def test_value_of_and_with_value_roundtrip(self):
        for kind in StressKind:
            sc = NOMINAL_STRESS.with_value(kind,
                                           STRESS_RANGES[kind].low)
            assert sc.value_of(kind) == STRESS_RANGES[kind].low

    def test_describe_contains_all_sts(self):
        text = NOMINAL_STRESS.describe()
        for token in ("tcyc", "duty", "T=", "Vdd"):
            assert token in text

    def test_nominal_stress_function(self):
        assert nominal_stress() == NOMINAL_STRESS


class TestStressRanges:
    def test_all_kinds_covered(self):
        assert set(STRESS_RANGES) == set(StressKind)

    def test_nominal_inside_each_range(self):
        for kind, rng in STRESS_RANGES.items():
            assert rng.low <= rng.nominal <= rng.high
            assert rng.nominal == NOMINAL_STRESS.value_of(kind)

    def test_paper_vdd_range(self):
        rng = STRESS_RANGES[StressKind.VDD]
        assert rng.low == 2.1
        assert rng.high == 2.7

    def test_paper_temperature_range(self):
        rng = STRESS_RANGES[StressKind.TEMP]
        assert rng.low == -33.0
        assert rng.high == 87.0

    def test_range_validation(self):
        with pytest.raises(ValueError):
            StressRange(StressKind.VDD, 2.4, 2.1, 2.7)

    def test_extremes(self):
        rng = STRESS_RANGES[StressKind.TCYC]
        assert rng.extremes == (55e-9, 65e-9)

    @given(st.sampled_from(list(StressKind)))
    def test_kind_field_mapping(self, kind):
        assert hasattr(NOMINAL_STRESS, kind.field)
