"""Statistical (aggregate) optimization baseline."""

import pytest

from repro.behav import behavioral_model
from repro.core import NOMINAL_STRESS, StressKind
from repro.core.statistical import (
    corner_combinations,
    sample_population,
    statistical_optimization,
)
from repro.defects import Defect, DefectKind, Placement


def _factory(defect, stress):
    return behavioral_model(defect, stress=stress)


class TestCornerCombinations:
    def test_counts_power_of_two(self):
        assert len(corner_combinations((StressKind.VDD,))) == 2
        assert len(corner_combinations((StressKind.VDD,
                                        StressKind.TCYC))) == 4
        assert len(corner_combinations(tuple(StressKind))) == 16

    def test_corners_at_extremes(self):
        corners = corner_combinations((StressKind.VDD,))
        vdds = sorted(sc.vdd for sc in corners)
        assert vdds == [2.1, 2.7]

    def test_unlisted_axes_stay_nominal(self):
        corners = corner_combinations((StressKind.VDD,))
        assert all(sc.tcyc == NOMINAL_STRESS.tcyc for sc in corners)


class TestPopulation:
    def test_points_per_defect(self):
        pop = sample_population([Defect(DefectKind.O3)],
                                points_per_defect=4)
        assert len(pop) == 4

    def test_resistances_inside_search_range(self):
        pop = sample_population([Defect(DefectKind.SG)],
                                points_per_defect=5)
        lo, hi = DefectKind.SG.search_range
        for point in pop:
            assert lo <= point.defect.resistance <= hi

    def test_labels_unique(self):
        pop = sample_population([Defect(DefectKind.O3),
                                 Defect(DefectKind.SG)], 3)
        labels = [p.label for p in pop]
        assert len(set(labels)) == len(labels)


class TestStatisticalOptimization:
    @pytest.fixture(scope="class")
    def result(self):
        defects = (Defect(DefectKind.O3, Placement.TRUE),
                   Defect(DefectKind.SG, Placement.TRUE))
        return statistical_optimization(
            _factory, defects=defects,
            kinds=(StressKind.VDD, StressKind.TEMP),
            points_per_defect=4)

    def test_best_is_argmax(self, result):
        assert result.best_score == max(result.scores)
        assert result.candidates[result.best_index] == result.best_sc

    def test_per_defect_counts_bounded(self, result):
        for counts in result.per_defect.values():
            assert all(0 <= c <= 4 for c in counts)

    def test_scores_are_sum_of_per_defect(self, result):
        for i in range(len(result.candidates)):
            total = sum(counts[i]
                        for counts in result.per_defect.values())
            assert total == result.scores[i]

    def test_aggregate_loss_nonnegative(self, result):
        for name in result.per_defect:
            assert result.aggregate_loss(name) >= 0

    def test_best_for_defect_at_least_aggregate(self, result):
        for name, counts in result.per_defect.items():
            best = result.best_for_defect(name)
            idx = result.candidates.index(best)
            assert counts[idx] >= counts[result.best_index]

    def test_describe_mentions_best_sc(self, result):
        assert "best SC" in result.describe()
