"""Monte-Carlo robustness of the direction calls."""

import pytest

from repro.behav import behavioral_model
from repro.core import StressKind
from repro.core.montecarlo import (
    DirectionRobustness,
    VariationSpec,
    direction_robustness,
)
from repro.defects import Defect, DefectKind
from repro.dram.tech import default_tech

import numpy as np


def _factory(defect, stress, tech):
    return behavioral_model(defect, stress=stress, tech=tech)


class TestVariationSpec:
    def test_sampling_deterministic_per_seed(self):
        spec = VariationSpec()
        t1 = spec.sample(default_tech(), np.random.default_rng(7))
        t2 = spec.sample(default_tech(), np.random.default_rng(7))
        assert t1.cs == t2.cs
        assert t1.nmos.vth0 == t2.nmos.vth0

    def test_sampling_actually_varies(self):
        spec = VariationSpec()
        rng = np.random.default_rng(7)
        t1 = spec.sample(default_tech(), rng)
        t2 = spec.sample(default_tech(), rng)
        assert t1.cs != t2.cs

    def test_clamps_keep_parameters_physical(self):
        spec = VariationSpec(vth_sigma=3.0, cap_sigma=3.0,
                             offset_sigma=3.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            t = spec.sample(default_tech(), rng)
            assert t.nmos.vth0 >= 0.1
            assert t.cs > 0
            assert t.v_ref_offset >= 0.01


class TestRobustnessReport:
    @pytest.fixture(scope="class")
    def report(self):
        return direction_robustness(_factory, Defect(DefectKind.O3),
                                    kinds=(StressKind.TCYC,),
                                    samples=4, seed=11)

    def test_sample_accounting(self, report):
        rob = report.robustness[StressKind.TCYC]
        assert rob.samples == 4

    def test_tcyc_direction_robust(self, report):
        """The timing mechanism is first-order RC — variation must not
        flip it."""
        rob = report.robustness[StressKind.TCYC]
        assert rob.confidence >= 0.75

    def test_border_samples_recorded(self, report):
        assert len(report.border_samples) >= 3
        for border in report.border_samples:
            assert 3e4 < border < 3e6

    def test_render(self, report):
        text = report.render()
        assert "Monte-Carlo" in text
        assert "tcyc" in text

    def test_reproducible_across_runs(self):
        a = direction_robustness(_factory, Defect(DefectKind.O3),
                                 kinds=(StressKind.TCYC,), samples=3,
                                 seed=5)
        b = direction_robustness(_factory, Defect(DefectKind.O3),
                                 kinds=(StressKind.TCYC,), samples=3,
                                 seed=5)
        assert a.border_samples == b.border_samples


class TestDirectionRobustnessMath:
    def test_confidence_with_undecided(self):
        rob = DirectionRobustness(StressKind.VDD, 2.1, agree=3,
                                  disagree=1, undecided=2)
        assert rob.samples == 6
        assert rob.confidence == pytest.approx(0.75)

    def test_confidence_all_undecided(self):
        rob = DirectionRobustness(StressKind.VDD, 2.1, undecided=4)
        assert rob.confidence == 0.0
