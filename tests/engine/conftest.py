"""Engine-suite fixtures: keep the process-wide default engine clean."""

import pytest

from repro.engine import set_default_engine


@pytest.fixture(autouse=True)
def _reset_default_engine():
    """Every test starts and ends with the lazy default engine."""
    set_default_engine(None)
    yield
    set_default_engine(None)
