"""Fault-isolated batch execution: FailedResult records, worker
crashes, timeouts, serial fallback.

All fakes are module-level so ProcessPoolExecutor can pickle them to
workers.  Crashing work only fires inside a worker process (guarded by
``main_pid``), so the in-process serial fallback path genuinely
recovers the item.
"""

import os
import time
from dataclasses import dataclass

import pytest

from repro.diagnostics import reset_diagnostics
from repro.engine import BatchExecutor, FailedResult, is_failed


@dataclass(frozen=True)
class FakeRequest:
    """Minimal picklable stand-in for a SequenceRequest."""

    key: str
    behavior: str = "ok"  # "ok" | "raise" | "crash" | "sleep"
    main_pid: int = 0
    cycles: int = 1

    @property
    def content_hash(self) -> str:
        return self.key

    def describe(self) -> str:
        return f"fake:{self.key}"


def fake_work(request: FakeRequest) -> str:
    if request.behavior == "raise":
        raise ValueError(f"boom:{request.key}")
    if request.behavior == "crash" and os.getpid() != request.main_pid:
        # Hard-kill the worker process, bypassing exception handling —
        # the parent only ever sees a BrokenProcessPool.
        os._exit(1)
    if request.behavior == "sleep":
        time.sleep(30)
    return f"done:{request.key}"


def _engine(**kwargs) -> BatchExecutor:
    kwargs.setdefault("cache", None)
    kwargs.setdefault("work_fn", fake_work)
    return BatchExecutor(**kwargs)


class TestIsolatePolicy:
    def test_failed_slots_hold_records_in_input_order(self):
        reset_diagnostics()
        engine = _engine(on_error="isolate")
        requests = [FakeRequest("a"), FakeRequest("b", "raise"),
                    FakeRequest("c")]
        results = engine.map(requests)
        assert results[0] == "done:a"
        assert results[2] == "done:c"
        failed = results[1]
        assert is_failed(failed)
        assert isinstance(failed, FailedResult)
        assert failed.error_type == "ValueError"
        assert "boom:b" in failed.message
        assert failed.request_summary == "fake:b"
        assert engine.stats.failures == 1

    def test_parallel_isolate_matches_serial(self):
        requests = [FakeRequest("a"), FakeRequest("b", "raise"),
                    FakeRequest("c"), FakeRequest("d", "raise")]
        serial = _engine(on_error="isolate").map(requests)
        parallel = _engine(on_error="isolate", workers=2).map(requests)
        assert [is_failed(r) for r in serial] == \
               [is_failed(r) for r in parallel] == \
               [False, True, False, True]
        assert [r for r in serial if not is_failed(r)] == \
               [r for r in parallel if not is_failed(r)]

    def test_duplicates_share_the_failure_record(self):
        engine = _engine(on_error="isolate")
        requests = [FakeRequest("x", "raise"), FakeRequest("x", "raise")]
        results = engine.map(requests)
        assert results[0] is results[1]
        assert engine.stats.failures == 1
        assert engine.stats.hits == 1

    def test_diagnostics_count_isolated_failures(self):
        diag = reset_diagnostics()
        _engine(on_error="isolate").map(
            [FakeRequest("a", "raise"), FakeRequest("b")])
        assert diag.failures == 1
        assert diag.failure_kinds.get("ValueError") == 1


class TestRaisePolicy:
    def test_serial_failure_propagates(self):
        with pytest.raises(ValueError, match="boom:b"):
            _engine().map([FakeRequest("a"), FakeRequest("b", "raise")])

    def test_parallel_failure_propagates(self):
        with pytest.raises(ValueError, match="boom:b"):
            _engine(workers=2).map(
                [FakeRequest("a"), FakeRequest("b", "raise"),
                 FakeRequest("c")])

    def test_run_always_raises(self):
        engine = _engine(on_error="isolate")
        with pytest.raises(ValueError, match="boom:z"):
            engine.run(FakeRequest("z", "raise"))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            _engine(on_error="ignore")
        with pytest.raises(ValueError):
            _engine().map([FakeRequest("a"), FakeRequest("b")],
                          on_error="ignore")


class TestWorkerCrashRecovery:
    def test_crash_is_retried_then_recovered_serially(self):
        diag = reset_diagnostics()
        engine = _engine(workers=2, max_retries=1)
        pid = os.getpid()
        requests = [FakeRequest("a", main_pid=pid),
                    FakeRequest("k", "crash", main_pid=pid),
                    FakeRequest("c", main_pid=pid)]
        results = engine.map(requests)
        # The crasher dies in every pool round, then succeeds on the
        # in-process serial fallback; survivors keep their results and
        # input order is preserved throughout.
        assert results == ["done:a", "done:k", "done:c"]
        assert diag.worker_crashes >= 1
        assert diag.retries >= 1
        assert engine.stats.retries >= 1

    def test_crash_recovery_under_isolate(self):
        reset_diagnostics()
        engine = _engine(workers=2, max_retries=0, on_error="isolate")
        pid = os.getpid()
        results = engine.map([FakeRequest("k", "crash", main_pid=pid),
                              FakeRequest("b", main_pid=pid)])
        assert results == ["done:k", "done:b"]


class TestTimeout:
    def test_expiry_yields_failed_result_not_a_hang(self):
        diag = reset_diagnostics()
        engine = _engine(workers=2, on_error="isolate", timeout=1.0,
                         max_retries=0)
        t0 = time.monotonic()
        results = engine.map([FakeRequest("s", "sleep"),
                              FakeRequest("b")])
        elapsed = time.monotonic() - t0
        assert elapsed < 20, "timeout did not bound the wall clock"
        failed = results[0]
        assert is_failed(failed)
        assert failed.error_type == "TimeoutError"
        assert results[1] == "done:b"
        assert diag.timeouts == 1

    def test_expiry_raises_under_raise_policy(self):
        engine = _engine(workers=2, timeout=1.0, max_retries=0)
        with pytest.raises(TimeoutError):
            engine.map([FakeRequest("s", "sleep"), FakeRequest("b")])


class TestFailedResultShape:
    def test_describe_mentions_type_attempts_and_summary(self):
        failed = FailedResult.from_exception(
            FakeRequest("q"), ValueError("went sideways"), attempts=3)
        text = failed.describe()
        assert "ValueError" in text
        assert "attempt 3" in text
        assert "went sideways" in text
        assert "fake:q" in text

    def test_marker_survives_a_pickle_round_trip(self):
        import pickle

        failed = FailedResult(error_type="X", message="m")
        clone = pickle.loads(pickle.dumps(failed))
        assert is_failed(clone)
        assert not is_failed("done:a")
        assert not is_failed(None)
