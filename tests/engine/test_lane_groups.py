"""Executor lane grouping: same results, batched execution, safe exits.

`BatchExecutor.map` carves same-topology electrical misses into lane
groups before any pool dispatch; every grouping decision must be
invisible in the results (only wall time and diagnostics change).
"""

import numpy as np
import pytest

import repro.engine.executor as executor_mod
from repro.defects import Defect, DefectKind
from repro.diagnostics import diagnostics, reset_diagnostics
from repro.engine import BatchExecutor, ResultCache
from repro.engine.request import SequenceRequest
from repro.stress import NOMINAL_STRESS

LANE_TOL = 1e-5


def _requests(resistances, ops="w1 r1", backend="electrical"):
    defect = Defect(DefectKind.O3)
    return [SequenceRequest.build(
        ops, 0.0, backend=backend,
        defect=defect.with_resistance(r), stress=NOMINAL_STRESS)
        for r in resistances]


@pytest.fixture(autouse=True)
def _fresh_diagnostics():
    reset_diagnostics()
    yield
    reset_diagnostics()


class TestLaneGroupParity:
    def test_map_with_lanes_matches_per_lane_path(self):
        requests = _requests([50e3, 120e3, 300e3, 800e3])
        laned = BatchExecutor(cache=None, lanes=4).map(requests)
        plain = BatchExecutor(cache=None, lanes=0).map(requests)
        for a, b in zip(laned, plain):
            assert np.allclose(a.vc_after, b.vc_after,
                               atol=LANE_TOL, rtol=0.0)
            assert a.outputs == b.outputs

    def test_lane_counters_reach_diagnostics(self):
        requests = _requests([50e3, 120e3, 300e3])
        BatchExecutor(cache=None, lanes=4).map(requests)
        counters = diagnostics().lane_counters
        assert counters.get("lanes_launched", 0) >= 3

    def test_single_miss_stays_serial(self):
        """One laneable request is not worth a lane group."""
        requests = _requests([50e3])
        BatchExecutor(cache=None, lanes=4).map(requests)
        assert diagnostics().lane_counters == {}

    def test_behavioral_requests_never_lane(self):
        requests = _requests([50e3, 120e3, 300e3], backend="behavioral")
        results = BatchExecutor(cache=None, lanes=4).map(requests)
        assert diagnostics().lane_counters == {}
        assert all(r is not None for r in results)

    def test_results_feed_the_cache(self):
        cache = ResultCache()
        engine = BatchExecutor(cache=cache, lanes=4)
        requests = _requests([50e3, 120e3, 300e3])
        engine.map(requests)
        again = engine.map(requests)
        assert engine.stats.hits >= 3
        assert all(r is not None for r in again)


class TestLaneGroupSafety:
    def test_group_failure_falls_back_to_serial(self, monkeypatch):
        """A crashing lane group must degrade to the legacy serial
        path, not surface the exception."""
        def boom(requests):
            raise RuntimeError("lane kernel exploded")

        monkeypatch.setattr(executor_mod, "execute_lane_group", boom)
        requests = _requests([50e3, 120e3, 300e3])
        laned = BatchExecutor(cache=None, lanes=4).map(requests)
        plain = BatchExecutor(cache=None, lanes=0).map(requests)
        for a, b in zip(laned, plain):
            assert a.vc_after == b.vc_after

    def test_custom_work_fn_bypasses_lane_carveout(self):
        """Fault-injection executors install a custom work function;
        the lane carve-out must not route requests around it."""
        seen = []

        def spy(request):
            seen.append(request)
            return executor_mod.execute_request(request)

        engine = BatchExecutor(cache=None, lanes=4, work_fn=spy)
        requests = _requests([50e3, 120e3, 300e3])
        engine.map(requests)
        assert len(seen) == 3
        assert diagnostics().lane_counters == {}
