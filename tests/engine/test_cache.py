"""Result cache: LRU behaviour, statistics, disk tier."""

from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.dram.ops import parse_ops
from repro.engine import EngineStats, ResultCache, SequenceRequest
from repro.stress import NOMINAL_STRESS

import pytest


def _request(ops="w1 r1", init_vc=0.0, resistance=200e3):
    return SequenceRequest.build(
        ops, init_vc, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=resistance),
        stress=NOMINAL_STRESS)


def _result(request):
    model = behavioral_model(
        Defect(DefectKind.O3, resistance=request.resistance))
    return model.run_sequence(parse_ops(request.ops),
                              init_vc=request.init_vc)


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache()
        req = _request()
        assert cache.get(req) is None
        cache.put(req, _result(req))
        assert cache.get(req) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_cycle_accounting(self):
        cache = ResultCache()
        req = _request(ops="w1^3 w0 r0")     # 5 cycles
        cache.put(req, _result(req))
        assert cache.stats.cycles_simulated == 5
        cache.get(req)
        cache.get(req)
        assert cache.stats.cycles_saved == 10

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        reqs = [_request(resistance=r) for r in (1e5, 2e5, 3e5)]
        for req in reqs:
            cache.put(req, _result(req))
        assert len(cache) == 2
        assert cache.get(reqs[0]) is None        # evicted (oldest)
        assert cache.get(reqs[2]) is not None

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        a, b, c = (_request(resistance=r) for r in (1e5, 2e5, 3e5))
        cache.put(a, _result(a))
        cache.put(b, _result(b))
        cache.get(a)                              # a is now most recent
        cache.put(c, _result(c))                  # evicts b, not a
        assert cache.get(a) is not None
        assert cache.get(b) is None

    def test_rejects_degenerate_bound(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        req = _request()
        first = ResultCache(disk_dir=tmp_path)
        first.put(req, _result(req))

        fresh = ResultCache(disk_dir=tmp_path)
        recalled = fresh.get(req)
        assert recalled is not None
        assert fresh.stats.disk_hits == 1
        assert recalled.vc_after == _result(req).vc_after

    def test_clear_keeps_disk(self, tmp_path):
        req = _request()
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(req, _result(req))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(req) is not None         # re-read from disk

    def test_corrupted_entry_is_quarantined(self, tmp_path):
        from repro.diagnostics import reset_diagnostics

        req = _request()
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(req, _result(req))
        path = cache._disk_path(req.content_hash)
        path.write_bytes(b"not a store entry at all")

        diag = reset_diagnostics()
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(req) is None             # miss, not a crash
        assert not path.exists()                  # moved out of the way
        assert diag.cache_quarantined == 1
        assert fresh.store.stats.quarantined == 1
        quarantined = list(fresh.store.corrupt_dir.iterdir())
        assert len(quarantined) == 1              # kept for inspection

        # The slot is usable again after the quarantine.
        fresh.put(req, _result(req))
        assert ResultCache(disk_dir=tmp_path).get(req) is not None

    def test_truncated_entry_is_quarantined(self, tmp_path):
        req = _request()
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(req, _result(req))
        path = cache._disk_path(req.content_hash)
        path.write_bytes(path.read_bytes()[:10])  # simulate torn write

        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(req) is None
        assert not path.exists()
        assert fresh.store.stats.quarantined == 1

    def test_orphaned_tmp_reclaimed_on_init(self, tmp_path):
        import os

        from repro.diagnostics import reset_diagnostics

        req = _request()
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(req, _result(req))
        orphan = tmp_path / "ab" / "deadbeef.tmp"
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_bytes(b"half a write")
        os.utime(orphan, (0, 0))                  # old enough to reclaim

        diag = reset_diagnostics()
        fresh = ResultCache(disk_dir=tmp_path)
        assert not orphan.exists()
        assert fresh.store.stats.tmp_reclaimed == 1
        assert diag.cache_tmp_reclaimed == 1
        assert fresh.get(req) is not None         # entries untouched

    def test_fresh_tmp_left_alone(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(_request(), _result(_request()))
        live = tmp_path / "ab" / "inflight.tmp"
        live.parent.mkdir(exist_ok=True)
        live.write_bytes(b"a concurrent writer owns this")

        fresh = ResultCache(disk_dir=tmp_path)    # default 60 s age gate
        assert live.exists()
        assert fresh.store.stats.tmp_reclaimed == 0

    def test_stats_split_memory_vs_disk(self, tmp_path):
        req = _request()
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(req, _result(req))

        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(req) is not None         # disk hit
        assert fresh.get(req) is not None         # memory hit
        assert fresh.stats.hits == 2
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 1
        assert "1 memory / 1 disk" in fresh.stats.describe()


class TestEngineStats:
    def test_hit_rate(self):
        stats = EngineStats(hits=3, misses=1)
        assert stats.requests == 4
        assert stats.hit_rate == 0.75
        assert EngineStats().hit_rate == 0.0

    def test_delta_since(self):
        stats = EngineStats(hits=2, misses=5, cycles_simulated=40)
        before = stats.snapshot()
        stats.hits += 3
        stats.cycles_simulated += 10
        delta = stats.delta_since(before)
        assert delta.hits == 3
        assert delta.misses == 0
        assert delta.cycles_simulated == 10

    def test_merge(self):
        stats = EngineStats(hits=1, cycles_saved=4)
        stats.merge(EngineStats(hits=2, misses=3, cycles_saved=6,
                                cycles_simulated=9, disk_hits=1))
        assert (stats.hits, stats.misses) == (3, 3)
        assert (stats.cycles_saved, stats.cycles_simulated) == (10, 9)
        assert stats.disk_hits == 1

    def test_describe_mentions_cycles(self):
        text = EngineStats(hits=1, misses=1, cycles_simulated=7).describe()
        assert "7 cycles simulated" in text
        assert "50% hit rate" in text
