"""EngineStats.describe: stable, documented counter-section order.

``--verbose`` output is diffed across runs and PRs; the section order is
a public contract (:data:`EngineStats.DESCRIBE_ORDER`).  A new counter
group must slot into that tuple *and* this test, not append wherever.
"""

from repro.engine.cache import EngineStats


def _full_stats() -> EngineStats:
    stats = EngineStats()
    stats.hits = 7
    stats.misses = 3
    stats.cycles_simulated = 30
    stats.cycles_saved = 70
    stats.disk_hits = 2
    stats.failures = 1
    stats.retries = 2
    stats.lane_groups = 4
    stats.lane_sparse_groups = 3
    stats.lane_warm_hits = 5
    stats.lane_warm_misses = 1
    stats.surrogate_hits = 9
    stats.surrogate_fallbacks = 2
    stats.surrogate_refits = 2
    return stats


def test_describe_order_is_the_documented_contract():
    assert EngineStats.DESCRIBE_ORDER == (
        "engine", "tiers", "failures", "lanes", "surrogate", "store")


def test_clean_run_renders_exactly_the_base_line():
    stats = EngineStats()
    stats.hits = 1
    stats.misses = 1
    stats.cycles_simulated = 5
    stats.cycles_saved = 5
    line = stats.describe()
    assert line == ("engine: 1 hits / 1 misses (50% hit rate), "
                    "5 cycles simulated, 5 cycles saved")
    for marker in ("tiers", "failed", "lanes", "surrogate", "store"):
        assert marker not in line


def test_all_sections_render_in_describe_order():
    line = _full_stats().describe()
    markers = ["engine:", "tiers:", "failed", "lanes:", "surrogate:"]
    positions = [line.index(m) for m in markers]
    assert positions == sorted(positions)


def test_surrogate_section_wording_is_stable():
    line = _full_stats().describe()
    assert "; surrogate: 9 served / 2 fallbacks, 2 refits" in line


def test_surrogate_section_appears_for_any_nonzero_counter():
    for counter in ("surrogate_hits", "surrogate_fallbacks",
                    "surrogate_refits"):
        stats = EngineStats()
        setattr(stats, counter, 1)
        assert "surrogate:" in stats.describe()
    assert "surrogate:" not in EngineStats().describe()


def test_surrogate_counters_survive_snapshot_delta_merge():
    stats = _full_stats()
    before = stats.snapshot()
    stats.surrogate_hits += 4
    stats.surrogate_fallbacks += 1
    delta = stats.delta_since(before)
    assert (delta.surrogate_hits, delta.surrogate_fallbacks,
            delta.surrogate_refits) == (4, 1, 0)
    merged = EngineStats()
    merged.merge(stats)
    assert merged.surrogate_hits == stats.surrogate_hits
    assert merged.surrogate_refits == stats.surrogate_refits
