"""Content-addressed sequence requests: hashing and canonicalisation."""

import os
import subprocess
import sys

from repro.defects import Defect, DefectKind
from repro.engine import SequenceRequest, tech_fingerprint
from repro.stress import NOMINAL_STRESS
from repro.dram.tech import default_tech


def _request(**overrides) -> SequenceRequest:
    kwargs = dict(ops="w1^2 w0 r0", init_vc=0.0, backend="behavioral",
                  defect=Defect(DefectKind.O3, resistance=200e3),
                  stress=NOMINAL_STRESS)
    kwargs.update(overrides)
    return SequenceRequest.build(kwargs.pop("ops"), kwargs.pop("init_vc"),
                                 **kwargs)


class TestContentHash:
    def test_deterministic_within_process(self):
        assert _request().content_hash == _request().content_hash

    def test_stable_across_processes(self):
        """The hash is a pure content function — a fresh interpreter
        computes the same digest (no PYTHONHASHSEED dependence)."""
        code = (
            "from repro.defects import Defect, DefectKind\n"
            "from repro.engine import SequenceRequest\n"
            "from repro.stress import NOMINAL_STRESS\n"
            "r = SequenceRequest.build('w1^2 w0 r0', 0.0,"
            " backend='behavioral',"
            " defect=Defect(DefectKind.O3, resistance=200e3),"
            " stress=NOMINAL_STRESS)\n"
            "print(r.content_hash)\n")
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == _request().content_hash

    def test_every_field_contributes(self):
        base = _request()
        variants = [
            _request(ops="w1 w0 r0"),
            _request(init_vc=0.1),
            _request(defect=Defect(DefectKind.O3, resistance=300e3)),
            _request(defect=Defect(DefectKind.SG, resistance=200e3)),
            _request(stress=NOMINAL_STRESS.with_(vdd=2.1)),
            _request(background=1),
        ]
        hashes = {base.content_hash} | {v.content_hash for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_ops_spelling_is_canonicalised(self):
        """Equivalent sequence spellings address the same result."""
        expanded = _request(ops="w1 w1 w0 r0")
        assert expanded.content_hash == _request().content_hash

    def test_cycles_counts_operations(self):
        assert _request().cycles == 4
        assert _request(ops="r0").cycles == 1


class TestRequestObject:
    def test_frozen_and_hashable(self):
        req = _request()
        assert req == _request()
        assert hash(req) == hash(_request())

    def test_site_reconstructs_defect(self):
        site = _request().site()
        assert site is not None
        assert site.resistance == 200e3

    def test_describe_mentions_backend_and_ops(self):
        text = _request().describe()
        assert "behavioral" in text
        assert "w1^2 w0 r0" in text

    def test_tech_fingerprint_tracks_parameters(self):
        tech = default_tech()
        assert tech_fingerprint(tech) == tech_fingerprint(tech)
        bumped = tech.with_(cs=tech.cs * 1.01)
        assert tech_fingerprint(bumped) != tech_fingerprint(tech)


class TestArrayRequests:
    """Array geometry/address/trim fields and their hash gating."""

    #: Hash of the reference column request, pinned before the array
    #: fields existed — column requests must keep their cache/store
    #: addresses forever.
    PINNED = "dd3de624ce1c5cefb963bb51a94dc2f5f472926a020f2f96410906a55736c812"

    def test_column_hash_pinned(self):
        assert _request().content_hash == self.PINNED

    def test_column_requests_default_trim_off(self):
        req = _request()
        assert req.geometry is None
        assert req.trim == "off"

    def test_geometry_changes_the_hash(self):
        base = _request()
        arr = _request(geometry=(4, 4))
        assert arr.content_hash != base.content_hash

    def test_trim_policies_never_collide(self):
        hashes = {_request(geometry=(6, 6), trim=t).content_hash
                  for t in ("off", "auto", "force")}
        assert len(hashes) == 3

    def test_address_contributes(self):
        a = _request(geometry=(4, 4), address=(0, 0))
        b = _request(geometry=(4, 4), address=(1, 1))
        assert a.content_hash != b.content_hash

    def test_trim_default_resolution(self):
        from repro.dram.trim import set_trim_default, trim_default
        prev = set_trim_default("force")
        try:
            assert _request(geometry=(4, 4)).trim == "force"
            # Explicit policy wins over the process default.
            assert _request(geometry=(4, 4), trim="off").trim == "off"
            # Column requests ignore the default entirely.
            assert _request().trim == "off"
        finally:
            set_trim_default(prev)
        assert trim_default() == prev

    def test_trim_without_geometry_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            _request(trim="force")
        with pytest.raises(ValueError):
            _request(address=(0, 0))

    def test_describe_mentions_geometry_and_trim(self):
        text = _request(geometry=(6, 6), trim="force").describe()
        assert "6x6" in text
        assert "trim=force" in text
