"""Sweep journal and checkpoint/resume semantics."""

import json
import os

from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.diagnostics import reset_diagnostics
from repro.dram.ops import parse_ops
from repro.engine import (
    BatchExecutor,
    FailedResult,
    SequenceRequest,
    SweepCheckpoint,
    SweepJournal,
    is_failed,
)
from repro.engine.journal import JOURNAL_VERSION
from repro.stress import NOMINAL_STRESS


def _request(resistance=200e3, ops="w1 r1"):
    return SequenceRequest.build(
        ops, 0.0, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=resistance),
        stress=NOMINAL_STRESS)


def _requests(n):
    return [_request(resistance=100e3 + 10e3 * i) for i in range(n)]


class TestJournalFile:
    def test_records_are_jsonl(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_ok("k1")
        journal.record_failure("k2", FailedResult(
            error_type="ConvergenceError", message="boom", attempts=3,
            rescue_trail=("gmin",), request_summary="[test]"))
        lines = [json.loads(line) for line in
                 (tmp_path / "j.jsonl").read_text().splitlines()]
        assert lines[0] == {"v": JOURNAL_VERSION, "key": "k1",
                            "status": "ok"}
        assert lines[1]["status"] == "failed"
        assert lines[1]["error_type"] == "ConvergenceError"
        assert lines[1]["rescue_trail"] == ["gmin"]

    def test_duplicate_keys_written_once(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_ok("k")
        journal.record_ok("k")
        assert (tmp_path / "j.jsonl").read_text().count("\n") == 1

    def test_resume_loads_records(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_ok("a")
        journal.record_ok("b")
        journal.close()
        resumed = SweepJournal(tmp_path / "j.jsonl", resume=True)
        assert resumed.resumed == 2
        assert resumed.recovered("a")["status"] == "ok"
        assert resumed.claim("a")["status"] == "ok"
        assert resumed.claim("a") is None          # claimed once
        assert resumed.resumed == 1

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record_ok("good")
        journal.close()
        with path.open("ab") as fh:                # crash mid-append
            fh.write(b'{"v":1,"key":"to')
        resumed = SweepJournal(path, resume=True)
        assert resumed.resumed == 1
        assert resumed.recovered("good") is not None

    def test_non_resume_rotates_existing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record_ok("old")
        journal.close()
        fresh = SweepJournal(path)                 # no resume
        assert fresh.resumed == 0
        assert (tmp_path / "j.jsonl.bak").exists()
        assert "old" in (tmp_path / "j.jsonl.bak").read_text()

    def test_reattempted_failure_rejournals(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record_failure("k", FailedResult("E", "m"))
        journal.close()
        resumed = SweepJournal(path, resume=True)
        resumed.claim("k")                         # re-opened for append
        resumed.record_ok("k")
        resumed.close()
        final = SweepJournal(path, resume=True)
        assert final.recovered("k")["status"] == "ok"  # last record wins

    def test_foreign_version_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"v":999,"key":"x","status":"ok"}\n')
        assert SweepJournal(path, resume=True).resumed == 0


class TestExecutorJournaling:
    def test_map_journals_completions(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "ck")
        engine = BatchExecutor(cache=ckpt.cache(), journal=ckpt.journal)
        requests = _requests(4)
        engine.map(requests)
        records = (tmp_path / "ck" / "journal.jsonl").read_text()
        assert records.count('"status":"ok"') == 4
        for request in requests:
            assert request.content_hash in records
            assert ckpt.store.get(request.content_hash) is not None

    def test_run_journals_completions(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "ck")
        engine = BatchExecutor(cache=ckpt.cache(), journal=ckpt.journal)
        request = _request()
        engine.run(request)
        engine.run(request)                         # hit: no duplicate
        records = (tmp_path / "ck" / "journal.jsonl").read_text()
        assert records.count('"status":"ok"') == 1

    def test_resume_skips_journaled_work(self, tmp_path):
        requests = _requests(6)
        ckpt = SweepCheckpoint(tmp_path / "ck")
        engine = BatchExecutor(cache=ckpt.cache(), journal=ckpt.journal)
        partial = engine.map(requests[:3])          # "crashes" here
        ckpt.close()

        diag = reset_diagnostics()
        resumed = SweepCheckpoint(tmp_path / "ck", resume=True)
        engine2 = BatchExecutor(cache=resumed.cache(),
                                journal=resumed.journal)
        full = engine2.map(requests)
        assert diag.journal_recovered == 3
        assert engine2.stats.disk_hits == 3
        assert engine2.stats.misses == 3            # only the remainder
        for a, b in zip(partial, full[:3]):
            assert a.vc_after == b.vc_after
        records = (tmp_path / "ck" / "journal.jsonl").read_text()
        assert records.count('"status":"ok"') == 6

    def test_resume_replays_failure_holes_under_isolate(self, tmp_path):
        request = _request()
        ckpt = SweepCheckpoint(tmp_path / "ck")
        ckpt.journal.record_failure(
            request.content_hash,
            FailedResult("ConvergenceError", "no convergence",
                         attempts=2, rescue_trail=("gmin", "source")))
        ckpt.close()

        diag = reset_diagnostics()
        resumed = SweepCheckpoint(tmp_path / "ck", resume=True)
        engine = BatchExecutor(cache=resumed.cache(),
                               journal=resumed.journal,
                               on_error="isolate")
        [hole] = engine.map([request])
        assert is_failed(hole)
        assert hole.error_type == "ConvergenceError"
        assert hole.rescue_trail == ("gmin", "source")
        assert diag.journal_holes == 1
        assert diag.eventful

    def test_resume_reattempts_failures_under_raise(self, tmp_path):
        request = _request()
        ckpt = SweepCheckpoint(tmp_path / "ck")
        ckpt.journal.record_failure(request.content_hash,
                                    FailedResult("ConvergenceError", "x"))
        ckpt.close()

        resumed = SweepCheckpoint(tmp_path / "ck", resume=True)
        engine = BatchExecutor(cache=resumed.cache(),
                               journal=resumed.journal)
        [result] = engine.map([request])            # re-runs, succeeds
        assert not is_failed(result)
        resumed.close()
        final = SweepJournal(tmp_path / "ck" / "journal.jsonl",
                             resume=True)
        assert final.recovered(request.content_hash)["status"] == "ok"

    def test_missing_store_entry_reruns_and_counts(self, tmp_path):
        request = _request()
        ckpt = SweepCheckpoint(tmp_path / "ck")
        engine = BatchExecutor(cache=ckpt.cache(), journal=ckpt.journal)
        expected = engine.run(request)
        ckpt.close()
        os.unlink(ckpt.store.path_for(request.content_hash))

        diag = reset_diagnostics()
        resumed = SweepCheckpoint(tmp_path / "ck", resume=True)
        engine2 = BatchExecutor(cache=resumed.cache(),
                                journal=resumed.journal)
        [result] = engine2.map([request])
        assert result.vc_after == expected.vc_after  # recomputed
        assert diag.journal_missing == 1
        assert diag.journal_recovered == 0

    def test_isolate_failures_are_journaled(self, tmp_path):
        from repro.engine.executor import BatchExecutor as BE

        def _fail(request):
            raise ValueError("injected")

        request = _request()
        ckpt = SweepCheckpoint(tmp_path / "ck")
        engine = BE(cache=ckpt.cache(), journal=ckpt.journal,
                    on_error="isolate", work_fn=_fail)
        [hole] = engine.map([request])
        assert is_failed(hole)
        records = (tmp_path / "ck" / "journal.jsonl").read_text()
        assert '"status":"failed"' in records
        assert '"error_type":"ValueError"' in records


class TestCheckpointLayout:
    def test_directories(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "ck")
        assert (tmp_path / "ck" / "journal.jsonl").exists()
        request = _request()
        model = behavioral_model(Defect(DefectKind.O3, resistance=200e3))
        result = model.run_sequence(parse_ops(request.ops), init_vc=0.0)
        ckpt.store.put(request.content_hash, result)
        entry = ckpt.store.path_for(request.content_hash)
        assert entry.is_relative_to(tmp_path / "ck" / "store")

    def test_cache_uses_store(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "ck")
        cache = ckpt.cache()
        assert cache.store is ckpt.store
