"""Batch executor: dedupe, worker pools, the generic fan-out helper."""

from repro.defects import Defect, DefectKind
from repro.engine import (
    BatchExecutor,
    ResultCache,
    SequenceRequest,
    configure_default_engine,
    default_engine,
    parallel_map,
    set_default_engine,
)
from repro.stress import NOMINAL_STRESS


def _request(ops="w1 r1", init_vc=0.0, resistance=200e3):
    return SequenceRequest.build(
        ops, init_vc, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=resistance),
        stress=NOMINAL_STRESS)


def _outcomes(results):
    return [(r.vc_after, r.outputs) for r in results]


class TestRun:
    def test_second_run_is_a_hit(self):
        engine = BatchExecutor(cache=ResultCache())
        req = _request()
        first = engine.run(req)
        second = engine.run(req)
        assert second.vc_after == first.vc_after
        assert engine.stats.hits == 1
        assert engine.stats.misses == 1

    def test_no_cache_still_executes(self):
        engine = BatchExecutor(cache=None)
        req = _request(ops="w1^2 r1")
        engine.run(req)
        engine.run(req)
        assert engine.stats.misses == 2
        assert engine.stats.cycles_simulated == 2 * req.cycles


class TestMap:
    def test_results_align_with_requests(self):
        engine = BatchExecutor(cache=ResultCache())
        reqs = [_request(resistance=r) for r in (1e5, 2e5, 4e5)]
        batch = engine.map(reqs)
        singles = [BatchExecutor(cache=None).run(r) for r in reqs]
        assert _outcomes(batch) == _outcomes(singles)

    def test_duplicates_simulate_once(self):
        engine = BatchExecutor(cache=ResultCache())
        req = _request()
        results = engine.map([req, req, req])
        assert engine.stats.misses == 1
        assert engine.stats.hits == 2
        assert _outcomes(results) == _outcomes([results[0]] * 3)

    def test_cache_spans_batches(self):
        engine = BatchExecutor(cache=ResultCache())
        reqs = [_request(resistance=r) for r in (1e5, 2e5)]
        engine.map(reqs)
        before = engine.stats.snapshot()
        engine.map(reqs)
        delta = engine.stats.delta_since(before)
        assert delta.misses == 0
        assert delta.hits == len(reqs)

    def test_parallel_matches_serial(self):
        reqs = [_request(resistance=r, ops="w1^2 w0 r0")
                for r in (5e4, 1e5, 3e5, 8e5)]
        serial = BatchExecutor(cache=ResultCache(), workers=1).map(reqs)
        pooled = BatchExecutor(cache=ResultCache(), workers=2).map(reqs)
        assert _outcomes(pooled) == _outcomes(serial)


class TestDefaultEngine:
    def test_lazy_default_is_cached_serial(self):
        engine = default_engine()
        assert engine.cache is not None
        assert engine.workers == 1
        assert default_engine() is engine

    def test_configure_replaces(self):
        engine = configure_default_engine(workers=3, cache=False)
        assert default_engine() is engine
        assert engine.workers == 3
        assert engine.cache is None
        set_default_engine(None)
        assert default_engine() is not engine


def _double(x):
    return 2 * x


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_double, [1, 2, 3], workers=1) == [2, 4, 6]

    def test_pooled(self):
        assert parallel_map(_double, [1, 2, 3, 4], workers=2) \
            == [2, 4, 6, 8]

    def test_unpicklable_falls_back_to_serial(self):
        offset = 10
        fn = lambda x: x + offset  # noqa: E731 — deliberately a closure
        assert parallel_map(fn, [1, 2, 3], workers=2) == [11, 12, 13]
