"""Engine-vs-seed parity: identical results, fewer simulated cycles."""

from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.dram.ops import parse_ops
from repro.engine import BatchExecutor, EngineModel, ResultCache
from repro.experiments import fig2_result_planes, table1_optimization
from repro.stress import NOMINAL_STRESS

SEQUENCES = ("w1 r1", "w1^2 w0 r0", "w0^3 w1 r1 r1", "w1 nop^2 r1")


class TestModelParity:
    def test_behavioral_runs_identically(self, o3_defect):
        plain = behavioral_model(o3_defect)
        engined = EngineModel(o3_defect, backend="behavioral",
                              engine=BatchExecutor(cache=ResultCache()))
        for text in SEQUENCES:
            ops = parse_ops(text)
            a = plain.run_sequence(ops, init_vc=0.0)
            b = engined.run_sequence(ops, init_vc=0.0)
            assert a.vc_after == b.vc_after
            assert a.outputs == b.outputs

    def test_cached_replay_is_identical(self, o3_defect):
        model = EngineModel(o3_defect, backend="behavioral",
                            engine=BatchExecutor(cache=ResultCache()))
        ops = parse_ops("w1^2 w0 r0")
        fresh = model.run_sequence(ops, init_vc=0.0)
        cached = model.run_sequence(ops, init_vc=0.0)
        assert cached.vc_after == fresh.vc_after
        assert cached.outputs == fresh.outputs
        assert model.engine.stats.hits == 1

    def test_electrical_runs_identically(self, o3_defect):
        from repro.analysis import electrical_model
        plain = electrical_model(o3_defect)
        engined = EngineModel(o3_defect, backend="electrical",
                              engine=BatchExecutor(cache=ResultCache()))
        ops = parse_ops("w1 r1")
        a = plain.run_sequence(ops, init_vc=0.0)
        b = engined.run_sequence(ops, init_vc=0.0)
        assert a.vc_after == b.vc_after
        assert a.outputs == b.outputs

    def test_mutators_track_state(self, o3_defect):
        model = EngineModel(o3_defect, backend="behavioral",
                            engine=BatchExecutor(cache=ResultCache()))
        model.set_defect_resistance(321e3)
        assert model.defect.resistance == 321e3
        hot = NOMINAL_STRESS.with_(temp_c=87.0)
        model.set_stress(hot)
        assert model.stress == hot


class TestSweepParity:
    def test_fig2_plane_matches_under_worker_pool(self):
        plain = fig2_result_planes(backend="behavioral", points=5)
        engined = fig2_result_planes(
            backend="behavioral", points=5,
            engine=BatchExecutor(cache=ResultCache(), workers=2))
        assert engined.render() == plain.render()
        assert engined.border == plain.border

    def test_table1_subset_matches_under_worker_pool(self):
        defects = (Defect(DefectKind.O3), Defect(DefectKind.SG))
        serial = table1_optimization(defects=defects)
        pooled = table1_optimization(defects=defects, workers=2,
                                     engine=True)
        assert pooled.render() == serial.render()


class TestCacheWins:
    def test_warm_cache_halves_simulated_cycles(self):
        """Acceptance: a repeated plane study on a warm cache simulates
        at least 50% fewer cycles (here: all of them are recalled)."""
        engine = BatchExecutor(cache=ResultCache())
        fig2_result_planes(backend="behavioral", points=5, engine=engine)
        cold = engine.stats.snapshot()
        assert cold.cycles_simulated > 0

        fig2_result_planes(backend="behavioral", points=5, engine=engine)
        warm = engine.stats.delta_since(cold)
        assert warm.cycles_simulated <= 0.5 * cold.cycles_simulated
        assert warm.cycles_saved >= 0.5 * cold.cycles_simulated
