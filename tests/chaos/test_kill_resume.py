"""Kill-and-resume reproduces byte-identical sweep output.

The subprocess test drives the real CLI (``python -m repro table1``)
through a mid-sweep SIGKILL and asserts the resumed stdout matches an
uninterrupted reference byte for byte.  It is the slowest test in the
repo (two full table1 sweeps plus the interrupted stub) and carries the
``slow`` marker; the in-process tests cover the same resume semantics
in well under a second.
"""

import signal
import subprocess
import sys

import pytest

from repro.defects import Defect, DefectKind
from repro.diagnostics import reset_diagnostics
from repro.engine import BatchExecutor, SequenceRequest, SweepCheckpoint
from repro.stress import NOMINAL_STRESS


def _requests(n):
    return [SequenceRequest.build(
        "w1 r1 w0 r0", 0.0, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=80e3 + 12e3 * i),
        stress=NOMINAL_STRESS) for i in range(n)]


class TestInProcessResume:
    def test_interrupted_sweep_resumes_identically(self, tmp_path):
        requests = _requests(10)
        reference = BatchExecutor(cache=None).map(requests)

        # First attempt dies after 4 completions (simulated by only
        # mapping a prefix — the journal does not care why it stopped).
        ckpt = SweepCheckpoint(tmp_path / "ck")
        BatchExecutor(cache=ckpt.cache(),
                      journal=ckpt.journal).map(requests[:4])
        ckpt.close()

        diag = reset_diagnostics()
        resumed = SweepCheckpoint(tmp_path / "ck", resume=True)
        engine = BatchExecutor(cache=resumed.cache(),
                               journal=resumed.journal)
        results = engine.map(requests)
        assert diag.journal_recovered == 4
        assert engine.stats.misses == 6
        for got, want in zip(results, reference):
            assert got.vc_after == want.vc_after
            assert got.outputs == want.outputs

    def test_double_interruption(self, tmp_path):
        requests = _requests(9)
        reference = BatchExecutor(cache=None).map(requests)
        for stop in (3, 6):                         # two crashes
            ckpt = SweepCheckpoint(tmp_path / "ck", resume=True)
            BatchExecutor(cache=ckpt.cache(),
                          journal=ckpt.journal).map(requests[:stop])
            ckpt.close()

        final = SweepCheckpoint(tmp_path / "ck", resume=True)
        results = BatchExecutor(cache=final.cache(),
                                journal=final.journal).map(requests)
        for got, want in zip(results, reference):
            assert got.vc_after == want.vc_after


@pytest.fixture(scope="module")
def table1_reference():
    """One uninterrupted ``table1`` run shared by the CLI kill tests."""
    run = subprocess.run(
        [sys.executable, "-m", "repro", "table1"],
        capture_output=True, text=True, timeout=600)
    assert run.returncode == 0
    return run.stdout


@pytest.mark.slow
class TestCliKillResume:
    def test_sigkill_mid_table1_resumes_byte_identical(
            self, tmp_path, table1_reference):
        from repro.testing import run_cli_killed_mid_sweep

        ck = tmp_path / "ck"
        interrupted = run_cli_killed_mid_sweep(
            ["table1", "--checkpoint", ck], ck,
            kill_after_records=60, sig=signal.SIGKILL)
        assert interrupted.interrupted, \
            "sweep finished before the kill could land"
        assert interrupted.returncode == -signal.SIGKILL
        assert interrupted.journal_records >= 60

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "table1",
             "--checkpoint", str(ck), "--resume", "--profile"],
            capture_output=True, text=True, timeout=600)
        assert resumed.returncode == 0
        assert resumed.stdout == table1_reference
        assert "results recovered" in resumed.stderr

    def test_sigterm_mid_sweep_resumes(self, tmp_path, table1_reference):
        from repro.testing import run_cli_killed_mid_sweep

        ck = tmp_path / "ck"
        interrupted = run_cli_killed_mid_sweep(
            ["table1", "--checkpoint", ck], ck,
            kill_after_records=40, sig=signal.SIGTERM)
        assert interrupted.interrupted
        assert interrupted.returncode != 0

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "table1",
             "--checkpoint", str(ck), "--resume"],
            capture_output=True, text=True, timeout=600)
        assert resumed.returncode == 0
        assert resumed.stdout == table1_reference
