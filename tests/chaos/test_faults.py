"""Injected worker crashes, forced non-convergence, and stalls.

The crash tests MUST run with ``workers >= 2``: an injected
``os._exit`` on the serial path would take the test runner down with
it.  The pool path is exactly what the crash machinery protects.
"""

from repro.defects import Defect, DefectKind
from repro.diagnostics import reset_diagnostics
from repro.engine import BatchExecutor, SequenceRequest, is_failed
from repro.stress import NOMINAL_STRESS
from repro.testing import ChaosPlan, chaos_work_fn


def _requests(n):
    return [SequenceRequest.build(
        "w1 r1", 0.0, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=100e3 + 10e3 * i),
        stress=NOMINAL_STRESS) for i in range(n)]


def _clean_results(requests):
    return BatchExecutor(cache=None).map(requests)


class TestCrash:
    def test_crashed_workers_recover(self, tmp_path):
        requests = _requests(4)
        plan = ChaosPlan(state_dir=str(tmp_path), crash_rate=1.0)
        diag = reset_diagnostics()
        engine = BatchExecutor(cache=None, workers=2,
                               work_fn=chaos_work_fn(plan))
        results = engine.map(requests)
        assert diag.worker_crashes >= 1
        assert not any(is_failed(r) for r in results)
        for got, want in zip(results, _clean_results(requests)):
            assert got.vc_after == want.vc_after

    def test_crash_fires_once_per_request(self, tmp_path):
        requests = _requests(3)
        plan = ChaosPlan(state_dir=str(tmp_path), crash_rate=1.0)
        for request in requests:
            assert plan.should_inject(request.content_hash) == "crash"
            assert plan.should_inject(request.content_hash) is None


class TestConvergence:
    def test_forced_nonconvergence_isolates(self, tmp_path):
        requests = _requests(3)
        plan = ChaosPlan(state_dir=str(tmp_path),
                         convergence_rate=1.0, once=False)
        engine = BatchExecutor(cache=None, on_error="isolate",
                               work_fn=chaos_work_fn(plan))
        results = engine.map(requests)
        assert all(is_failed(r) for r in results)
        assert all(r.error_type == "ConvergenceError" for r in results)
        assert all(r.rescue_trail == ("chaos",) for r in results)

    def test_partial_rate_is_deterministic(self, tmp_path):
        requests = _requests(12)
        plan = ChaosPlan(state_dir=str(tmp_path), seed=7,
                         convergence_rate=0.5, once=False)
        engine = BatchExecutor(cache=None, on_error="isolate",
                               work_fn=chaos_work_fn(plan))
        pattern = [is_failed(r) for r in engine.map(requests)]
        assert any(pattern) and not all(pattern)   # genuinely partial
        expected = [plan.draw(r.content_hash) == "convergence"
                    for r in requests]
        assert pattern == expected
        # The schedule is a pure function of (seed, key).
        again = ChaosPlan(state_dir=str(tmp_path), seed=7,
                          convergence_rate=0.5, once=False)
        assert [again.draw(r.content_hash) for r in requests] == \
               [plan.draw(r.content_hash) for r in requests]

    def test_seed_changes_schedule(self, tmp_path):
        requests = _requests(32)
        a = ChaosPlan(state_dir=str(tmp_path), seed=1,
                      convergence_rate=0.5)
        b = ChaosPlan(state_dir=str(tmp_path), seed=2,
                      convergence_rate=0.5)
        assert [a.draw(r.content_hash) for r in requests] != \
               [b.draw(r.content_hash) for r in requests]


class TestStall:
    def test_stalled_worker_times_out_to_hole(self, tmp_path):
        requests = _requests(2)
        plan = ChaosPlan(state_dir=str(tmp_path), stall_rate=1.0,
                         stall_seconds=30.0, once=False)
        engine = BatchExecutor(cache=None, workers=2,
                               on_error="isolate", timeout=1.0,
                               work_fn=chaos_work_fn(plan))
        results = engine.map(requests)
        assert all(is_failed(r) for r in results)
        assert all(r.error_type == "TimeoutError" for r in results)

    def test_stall_cleared_after_once_claim(self, tmp_path):
        requests = _requests(2)
        plan = ChaosPlan(state_dir=str(tmp_path), stall_rate=1.0,
                         stall_seconds=30.0, once=True)
        for request in requests:       # burn the once-only markers
            assert plan.should_inject(request.content_hash) == "stall"
        engine = BatchExecutor(cache=None, workers=2,
                               on_error="isolate", timeout=30.0,
                               work_fn=chaos_work_fn(plan))
        results = engine.map(requests)  # runs clean, well under timeout
        assert not any(is_failed(r) for r in results)
