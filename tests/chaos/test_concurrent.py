"""Concurrent writers on one store never lose or mangle entries.

Two real processes each drive a :class:`BatchExecutor` with its own
:class:`ResultCache` over one shared disk directory, with overlapping
request sets.  Afterwards the union of all requested entries must be
present, and every entry must pass the store's integrity verification.
"""

import multiprocessing
import pickle

import pytest

from repro.defects import Defect, DefectKind
from repro.engine import BatchExecutor, ResultCache, SequenceRequest
from repro.stress import NOMINAL_STRESS


def _request(i):
    return SequenceRequest.build(
        "w1 r1 w0 r0", 0.0, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=50e3 + 7e3 * i),
        stress=NOMINAL_STRESS)


def _sweep_worker(disk_dir, indices, out):
    """One contender: own cache + executor, shared disk directory."""
    cache = ResultCache(disk_dir=disk_dir)
    requests = [_request(i) for i in indices]
    results = BatchExecutor(cache=cache).map(requests)
    out.put({
        "vc": {r.content_hash: res.vc_after
               for r, res in zip(requests, results)},
        "misses": cache.stats.misses,
        "disk_hits": cache.stats.disk_hits,
        "quarantined": cache.store.stats.quarantined,
    })


@pytest.mark.parametrize("spans", [
    (range(0, 20), range(10, 30)),            # half-overlapping
    (range(0, 15), range(0, 15)),             # fully identical
])
def test_two_writers_share_one_store(tmp_path, spans):
    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    procs = [ctx.Process(target=_sweep_worker,
                         args=(tmp_path / "store", span, out))
             for span in spans]
    for p in procs:
        p.start()
    reports = [out.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0

    union = {_request(i).content_hash: _request(i)
             for span in spans for i in span}
    overlap = set.intersection(*(set(
        _request(i).content_hash for i in span) for span in spans))

    # Nothing was corrupted by the racing writers...
    assert all(r["quarantined"] == 0 for r in reports)
    # ...and both contenders computed identical values where they met.
    for key in overlap:
        values = [r["vc"][key] for r in reports if key in r["vc"]]
        assert all(v == values[0] for v in values)

    # No lost entries: every requested key is present and verifies.
    verify = ResultCache(disk_dir=tmp_path / "store")
    for key, request in union.items():
        entry = verify.store.get(key)
        assert entry is not None, f"lost entry {key[:12]}"
        assert entry.vc_after            # payload round-trips
    assert verify.store.stats.quarantined == 0

    # Duplicate work is bounded by the race window: total misses can
    # exceed the union (both processes may simulate an overlapping key
    # they both missed) but never the sum of both full spans plus one.
    total_misses = sum(r["misses"] for r in reports)
    assert total_misses <= sum(len(s) for s in spans)
    assert total_misses >= len(union)


def test_interleaved_instances_single_process(tmp_path):
    """Two cache instances ping-pong writes in one process — the
    fine-grained interleaving a scheduler race would produce."""
    a = ResultCache(disk_dir=tmp_path / "store")
    b = ResultCache(disk_dir=tmp_path / "store")
    requests = [_request(i) for i in range(12)]
    engine_a = BatchExecutor(cache=a)
    engine_b = BatchExecutor(cache=b)
    for i, request in enumerate(requests):
        (engine_a if i % 2 else engine_b).run(request)

    verify = ResultCache(disk_dir=tmp_path / "store")
    for request in requests:
        assert verify.get(request) is not None
    assert verify.store.stats.quarantined == 0
    assert verify.stats.disk_hits == len(requests)


def test_entries_survive_pickled_rescue(tmp_path):
    """An entry written by one process reads back identically in
    another (the payload crosses the process boundary via disk)."""
    request = _request(0)
    cache = ResultCache(disk_dir=tmp_path / "store")
    result = BatchExecutor(cache=cache).run(request)

    fresh = ResultCache(disk_dir=tmp_path / "store")
    recalled = fresh.get(request)
    assert pickle.dumps(recalled) == pickle.dumps(result)
