"""Corrupted store entries never poison sweep results."""

import pytest

from repro.defects import Defect, DefectKind
from repro.diagnostics import reset_diagnostics
from repro.engine import BatchExecutor, ResultCache, SequenceRequest, is_failed
from repro.stress import NOMINAL_STRESS
from repro.testing import CORRUPT_MODES, corrupt_entry, corrupt_store


def _requests(n):
    return [SequenceRequest.build(
        "w1 r1 w0 r0", 0.0, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=100e3 + 15e3 * i),
        stress=NOMINAL_STRESS) for i in range(n)]


def _sweep(requests, disk_dir):
    cache = ResultCache(disk_dir=disk_dir)
    return BatchExecutor(cache=cache).map(requests), cache


class TestCorruptionNeverPoisons:
    def test_full_corruption_reproduces_clean_results(self, tmp_path):
        requests = _requests(8)
        clean, first = _sweep(requests, tmp_path / "store")
        damaged = corrupt_store(first.store, rate=1.0)
        assert len(damaged) == len(requests)

        diag = reset_diagnostics()
        again, fresh = _sweep(requests, tmp_path / "store")
        for got, want in zip(again, clean):
            assert not is_failed(got)
            assert got.vc_after == want.vc_after
            assert got.outputs == want.outputs
        # Every damaged entry was caught, quarantined and recomputed —
        # none was served.
        assert fresh.store.stats.quarantined == len(damaged)
        assert diag.cache_quarantined == len(damaged)
        assert fresh.stats.disk_hits == 0
        assert len(list(fresh.store.corrupt_dir.iterdir())) == len(damaged)

    def test_partial_corruption_mixed_hits(self, tmp_path):
        requests = _requests(10)
        clean, first = _sweep(requests, tmp_path / "store")
        damaged = corrupt_store(first.store, rate=0.4, seed=3)
        assert 0 < len(damaged) < len(requests)

        again, fresh = _sweep(requests, tmp_path / "store")
        for got, want in zip(again, clean):
            assert got.vc_after == want.vc_after
        assert fresh.store.stats.quarantined == len(damaged)
        assert fresh.stats.disk_hits == len(requests) - len(damaged)

    @pytest.mark.parametrize("mode", CORRUPT_MODES)
    def test_each_mode_detected(self, tmp_path, mode):
        [request] = _requests(1)
        _, first = _sweep([request], tmp_path / "store")
        corrupt_entry(first.store, request.content_hash, mode=mode)

        [result], fresh = _sweep([request], tmp_path / "store")
        assert not is_failed(result)
        assert fresh.store.stats.quarantined == 1
        assert fresh.stats.disk_hits == 0

    def test_store_healthy_after_recovery_sweep(self, tmp_path):
        requests = _requests(6)
        _, first = _sweep(requests, tmp_path / "store")
        corrupt_store(first.store, rate=1.0)
        _sweep(requests, tmp_path / "store")          # heals every slot

        verify = ResultCache(disk_dir=tmp_path / "store")
        for request in requests:
            assert verify.store.get(request.content_hash) is not None
        assert verify.store.stats.quarantined == 0

    def test_corruption_is_deterministic(self, tmp_path):
        requests = _requests(9)
        _, a = _sweep(requests, tmp_path / "a")
        _, b = _sweep(requests, tmp_path / "b")
        assert corrupt_store(a.store, rate=0.5, seed=11) == \
               corrupt_store(b.store, rate=0.5, seed=11)
