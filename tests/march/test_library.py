"""Standard march-test library contents."""

import pytest

from repro.march import (
    MARCH_A,
    MARCH_B,
    MARCH_CMINUS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS,
    MATS_PP,
    PMOVI,
    STANDARD_TESTS,
)


class TestComplexities:
    @pytest.mark.parametrize("test,length", [
        (MATS, 4), (MATS_PLUS, 5), (MATS_PP, 6), (MARCH_X, 6),
        (MARCH_Y, 8), (MARCH_CMINUS, 10), (MARCH_A, 15), (MARCH_B, 17),
        (PMOVI, 13),
    ])
    def test_textbook_lengths(self, test, length):
        assert test.length == length


class TestStructure:
    def test_library_sorted_by_length(self):
        lengths = [t.length for t in STANDARD_TESTS]
        assert lengths == sorted(lengths)

    def test_all_start_with_initialising_write(self):
        for t in STANDARD_TESTS:
            first = t.elements[0].ops[0]
            assert str(first) in ("w0", "w1")

    def test_march_cminus_symmetry(self):
        """March C- pairs each ascending element with a descending one."""
        orders = [e.order.value for e in MARCH_CMINUS.elements]
        assert orders == ["⇕", "⇑", "⇑", "⇓", "⇓", "⇕"]

    def test_unique_names(self):
        names = [t.name for t in STANDARD_TESTS]
        assert len(names) == len(set(names))

    def test_every_read_carries_expectation(self):
        for t in STANDARD_TESTS:
            for e in t.elements:
                for op in e.ops:
                    if str(op).startswith("r"):
                        assert op.expected in (0, 1), (t.name, str(op))
