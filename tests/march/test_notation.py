"""March DSL parsing and rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.march import AddressOrder, MarchElement, MarchTest, parse_march


class TestAddressOrder:
    @pytest.mark.parametrize("token,order", [
        ("u", AddressOrder.UP), ("up", AddressOrder.UP),
        ("⇑", AddressOrder.UP),
        ("d", AddressOrder.DOWN), ("⇓", AddressOrder.DOWN),
        ("b", AddressOrder.ANY), ("any", AddressOrder.ANY),
        ("⇕", AddressOrder.ANY),
    ])
    def test_aliases(self, token, order):
        assert AddressOrder.parse(token) is order

    def test_unknown(self):
        with pytest.raises(ValueError):
            AddressOrder.parse("sideways")

    def test_up_addresses(self):
        assert list(AddressOrder.UP.addresses(3)) == [0, 1, 2]

    def test_down_addresses(self):
        assert list(AddressOrder.DOWN.addresses(3)) == [2, 1, 0]

    def test_any_defaults_up(self):
        assert list(AddressOrder.ANY.addresses(2)) == [0, 1]


class TestMarchElement:
    def test_parse_basic(self):
        e = MarchElement.parse("u(r0,w1)")
        assert e.order is AddressOrder.UP
        assert [str(o) for o in e.ops] == ["r0", "w1"]

    def test_parse_spaces(self):
        e = MarchElement.parse(" d( r1 , w0 , r0 ) ")
        assert len(e.ops) == 3

    def test_malformed(self):
        with pytest.raises(ValueError):
            MarchElement.parse("u r0,w1")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MarchElement.parse("u()")

    def test_str_uses_arrows(self):
        assert str(MarchElement.parse("u(w0)")) == "⇑(w0)"


class TestMarchTest:
    def test_parse_multi_element(self):
        t = parse_march("X", "b(w0); u(r0,w1); d(r1,w0)")
        assert len(t.elements) == 3

    def test_length_counts_ops_per_cell(self):
        t = parse_march("X", "b(w0); u(r0,w1); d(r1,w0)")
        assert t.length == 5

    def test_notation_roundtrip(self):
        t = parse_march("X", "b(w0); u(r0,w1)")
        t2 = parse_march("X", t.notation())
        assert t2.elements == t.elements

    def test_empty_test_rejected(self):
        with pytest.raises(ValueError):
            parse_march("X", " ; ")

    def test_str_mentions_complexity(self):
        t = parse_march("X", "b(w0); u(r0)")
        assert "2N" in str(t)

    @given(st.lists(st.sampled_from(["w0", "w1", "r0", "r1"]),
                    min_size=1, max_size=5),
           st.sampled_from(["u", "d", "b"]))
    def test_roundtrip_property(self, ops, order):
        text = f"{order}({','.join(ops)})"
        t = parse_march("T", text)
        assert parse_march("T", t.notation()).elements == t.elements
