"""Fault-coverage evaluation over resistance grids."""

import pytest

from repro.analysis.planes import log_grid
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.march import MARCH_CMINUS, MATS_PLUS, fault_coverage
from repro.stress import NOMINAL_STRESS


def _factory(defect, stress):
    return behavioral_model(defect, stress=stress)


@pytest.fixture(scope="module")
def o3_grid():
    return log_grid(60e3, 3e6, 8)


class TestCoverage:
    def test_detects_fraction_of_range(self, o3_grid):
        rep = fault_coverage(MARCH_CMINUS, _factory,
                             Defect(DefectKind.O3), NOMINAL_STRESS,
                             resistances=o3_grid)
        assert 0.0 < rep.coverage <= 1.0

    def test_detected_range_reported(self, o3_grid):
        rep = fault_coverage(MARCH_CMINUS, _factory,
                             Defect(DefectKind.O3), NOMINAL_STRESS,
                             resistances=o3_grid)
        rng = rep.detected_range()
        assert rng is not None
        assert rng[0] <= rng[1]

    def test_healthy_range_zero_coverage(self):
        grid = [10.0, 100.0, 1000.0]   # far below the border
        rep = fault_coverage(MARCH_CMINUS, _factory,
                             Defect(DefectKind.O3), NOMINAL_STRESS,
                             resistances=grid)
        assert rep.coverage == 0.0
        assert rep.detected_range() is None

    def test_optimized_sc_not_worse(self, o3_grid):
        optimized = NOMINAL_STRESS.with_(vdd=2.1, tcyc=55e-9,
                                         duty=0.40, temp_c=87.0)
        nom = fault_coverage(MARCH_CMINUS, _factory,
                             Defect(DefectKind.O3), NOMINAL_STRESS,
                             resistances=o3_grid)
        opt = fault_coverage(MARCH_CMINUS, _factory,
                             Defect(DefectKind.O3), optimized,
                             resistances=o3_grid)
        assert opt.coverage >= nom.coverage

    def test_describe_mentions_test_and_defect(self, o3_grid):
        rep = fault_coverage(MATS_PLUS, _factory,
                             Defect(DefectKind.O3), NOMINAL_STRESS,
                             resistances=o3_grid)
        text = rep.describe()
        assert "MATS+" in text
        assert "O3" in text
