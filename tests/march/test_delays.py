"""Pause insertion for retention-targeting march tests."""

import pytest

from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.dram.ops import Operation
from repro.march import MATS_PLUS, run_march
from repro.march.delays import delay_element, with_delay


class TestConstruction:
    def test_delay_element_ops(self):
        e = delay_element(3)
        assert len(e.ops) == 3
        assert all(o.operation is Operation.NOP for o in e.ops)

    def test_rejects_zero_delay(self):
        with pytest.raises(ValueError):
            delay_element(0)

    def test_pause_before_read_leading_elements(self):
        delayed = with_delay(MATS_PLUS, 4)
        # MATS+: b(w0); u(r0,w1); d(r1,w0) -> pauses before both
        # read-leading elements.
        assert len(delayed.elements) == 5
        assert delayed.elements[1].ops[0].operation is Operation.NOP
        assert delayed.elements[3].ops[0].operation is Operation.NOP

    def test_name_suffixed(self):
        assert with_delay(MATS_PLUS, 2).name.endswith("+delay")

    def test_write_leading_elements_untouched(self):
        delayed = with_delay(MATS_PLUS, 2)
        assert str(delayed.elements[0].ops[0]) == "w0"


class TestRetentionDetection:
    def test_delay_extends_short_detection(self):
        """A weak short escapes plain MATS+ but fails the delayed
        variant — the pause gives it time to discharge the cell."""
        def detected(test, r_ohm):
            model = behavioral_model(Defect(DefectKind.SG,
                                            resistance=r_ohm))
            return run_march(test, model, n_cells=2,
                             defective_address=0).detected

        delayed = with_delay(MATS_PLUS, 24)
        # find a resistance where the plain test passes
        for r_ohm in (1.5e6, 2.5e6, 4e6, 6e6):
            if not detected(MATS_PLUS, r_ohm):
                break
        else:
            pytest.skip("plain MATS+ detects the whole probed range")
        assert detected(delayed, r_ohm), \
            f"delayed MATS+ must catch the weak short at {r_ohm:.3g}"

    def test_healthy_cell_passes_delayed_test(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=10.0))
        assert not run_march(with_delay(MATS_PLUS, 16), model).detected
