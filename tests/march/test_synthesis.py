"""March-test synthesis from detection conditions."""

import pytest

from repro.analysis import derive_detection_condition
from repro.analysis.detection import DetectionCondition
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement
from repro.dram.ops import parse_ops
from repro.march import run_march
from repro.march.notation import AddressOrder
from repro.march.synthesis import march_from_conditions, synthesize_for_defects


def _condition(text, resistance=2e5, failing_read=None, expected=0):
    ops = tuple(parse_ops(text))
    if failing_read is None:
        failing_read = len(ops) - 1
    return DetectionCondition(ops, resistance, failing_read, expected)


class TestMarchFromConditions:
    def test_one_condition_three_elements(self):
        test = march_from_conditions([_condition("w1^2 w0 r0")])
        # init + up + down
        assert len(test.elements) == 3
        assert test.elements[1].order is AddressOrder.UP
        assert test.elements[2].order is AddressOrder.DOWN

    def test_single_order_variant(self):
        test = march_from_conditions([_condition("w1^2 w0 r0")],
                                     both_orders=False)
        assert len(test.elements) == 2

    def test_duplicates_merged(self):
        test = march_from_conditions([
            _condition("w1^2 w0 r0"),
            _condition("w1^2 w0 r0", resistance=4e5),
        ])
        assert len(test.elements) == 3

    def test_distinct_conditions_kept(self):
        test = march_from_conditions([
            _condition("w1^2 w0 r0"),
            _condition("w0^2 w1 r1", expected=1),
        ], both_orders=False)
        assert len(test.elements) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            march_from_conditions([])

    def test_rejects_read_first_condition(self):
        with pytest.raises(ValueError):
            march_from_conditions([
                DetectionCondition(tuple(parse_ops("r0 w1")), 1e5, 0, 0)])

    def test_initialising_element_first(self):
        test = march_from_conditions([_condition("w1 r1", expected=1)])
        assert str(test.elements[0].ops[0]) == "w0"


class TestEndToEnd:
    def test_synthesized_march_detects_source_defect(self):
        """The march built from a defect's own detection condition must
        detect that defect."""
        defect = Defect(DefectKind.O3, resistance=300e3)
        model = behavioral_model(defect)
        cond = derive_detection_condition(model, 300e3)
        test = march_from_conditions([cond], name="O3-march")
        fresh = behavioral_model(defect)
        assert run_march(test, fresh).detected

    def test_synthesized_march_passes_healthy(self):
        cond = _condition("w1^2 w0 r0")
        test = march_from_conditions([cond])
        healthy = behavioral_model(Defect(DefectKind.O3,
                                          resistance=10.0))
        assert not run_march(test, healthy).detected

    def test_synthesize_for_defect_family(self):
        defects = (Defect(DefectKind.O3, Placement.TRUE),
                   Defect(DefectKind.O3, Placement.COMP),
                   Defect(DefectKind.SG, Placement.TRUE))
        test = synthesize_for_defects(
            defects, lambda d, s: behavioral_model(d, stress=s),
            name="family")
        # every source defect (at a just-failing resistance) is caught
        for defect in defects:
            from repro.core.border import find_border_resistance
            from repro.core.optimizer import probe_resistance
            model = behavioral_model(defect)
            border = find_border_resistance(model, defect, rel_tol=0.1)
            probe = probe_resistance(defect, border)
            victim = behavioral_model(defect.with_resistance(probe))
            assert run_march(test, victim).detected, defect.name
