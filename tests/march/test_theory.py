"""Classic march-test theory, validated on the simulated memory.

Memory-testing theory says which fault primitives each march test is
guaranteed to catch; the behavioral column with targeted defects lets us
confirm the guarantees hold end-to-end (and that the known blind spots
are real).
"""

import pytest

from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.march import (
    MARCH_B,
    MARCH_CMINUS,
    MARCH_Y,
    MATS,
    MATS_PLUS,
    run_march,
)


def _sg(r_ohm):
    """A GND short: attacks stored 1s (SAF0/TF-up flavour)."""
    return behavioral_model(Defect(DefectKind.SG, resistance=r_ohm))


def _sv(r_ohm):
    """A Vdd short: attacks stored 0s."""
    return behavioral_model(Defect(DefectKind.SV, resistance=r_ohm))


def _o3(r_ohm):
    """A cell open: down-transition flavour on the true cell."""
    return behavioral_model(Defect(DefectKind.O3, resistance=r_ohm))


class TestStuckAtCoverage:
    """All march tests (even MATS) detect hard stuck-at faults."""

    @pytest.mark.parametrize("test", [MATS, MATS_PLUS, MARCH_CMINUS],
                             ids=lambda t: t.name)
    def test_hard_saf0_detected(self, test):
        assert run_march(test, _sg(5e3)).detected

    @pytest.mark.parametrize("test", [MATS, MATS_PLUS, MARCH_CMINUS],
                             ids=lambda t: t.name)
    def test_hard_saf1_detected(self, test):
        assert run_march(test, _sv(5e3)).detected


class TestTransitionCoverage:
    """TF coverage requires a (w_x̄ ... w_x ... r_x) structure; all the
    5N+ tests in the library have it for the down transition."""

    @pytest.mark.parametrize("test", [MATS_PLUS, MARCH_CMINUS, MARCH_B],
                             ids=lambda t: t.name)
    def test_down_transition_fault_detected(self, test):
        # O3 just above its border: the single w0 after a full charge
        # fails, i.e. a TF<1/0> with write-back assistance.
        assert run_march(test, _o3(600e3)).detected


class TestReadCountSensitivity:
    """Tests with r-after-w in the same element (March Y/B) catch
    marginal defects earlier than write-only-element tests."""

    def test_immediate_verify_stronger(self):
        detected_y, detected_mats = [], []
        for r_ohm in (3e5, 4e5, 5e5):
            detected_y.append(run_march(MARCH_Y, _o3(r_ohm)).detected)
            detected_mats.append(run_march(MATS, _o3(r_ohm)).detected)
        # March Y detects at least wherever MATS does
        for y, m in zip(detected_y, detected_mats):
            assert y or not m

    def test_march_b_superset_of_mats_plus_on_opens(self):
        for r_ohm in (2.5e5, 4e5, 7e5):
            b = run_march(MARCH_B, _o3(r_ohm)).detected
            mp = run_march(MATS_PLUS, _o3(r_ohm)).detected
            assert b or not mp


class TestAddressOrderMatters:
    def test_detection_independent_of_defective_address_for_saf(self):
        for address in (0, 3, 7):
            model = _sg(5e3)
            assert run_march(MARCH_CMINUS, model, n_cells=8,
                             defective_address=address).detected

    def test_first_failure_read_is_expecting(self):
        result = run_march(MARCH_CMINUS, _o3(700e3))
        failure = result.failures[0]
        element = MARCH_CMINUS.elements[failure.element_index]
        op = element.ops[failure.op_index]
        assert op.expected is not None
