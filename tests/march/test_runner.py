"""March execution against the behavioral column."""

import pytest

from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement
from repro.march import (
    MARCH_CMINUS,
    MATS_PLUS,
    STANDARD_TESTS,
    parse_march,
    run_march,
)


def _model(kind=DefectKind.O3, r_ohm=10.0, placement=Placement.TRUE):
    return behavioral_model(Defect(kind, placement, r_ohm))


class TestHealthyMemory:
    @pytest.mark.parametrize("test", STANDARD_TESTS,
                             ids=lambda t: t.name)
    def test_passes_every_standard_test(self, test):
        result = run_march(test, _model())
        assert not result.detected, result.describe()

    def test_total_ops_accounting(self):
        result = run_march(MATS_PLUS, _model(), n_cells=8)
        assert result.total_ops == MATS_PLUS.length * 8


class TestDefectiveMemory:
    def test_open_detected(self):
        result = run_march(MARCH_CMINUS, _model(r_ohm=500e3))
        assert result.detected

    def test_failure_located_at_defective_address(self):
        result = run_march(MARCH_CMINUS, _model(r_ohm=500e3),
                           defective_address=5, n_cells=8)
        assert result.failures[0].address == 5

    def test_short_detected(self):
        result = run_march(MARCH_CMINUS,
                           _model(DefectKind.SG, r_ohm=5e4))
        assert result.detected

    def test_comp_cell_defect_detected(self):
        result = run_march(MARCH_CMINUS,
                           _model(r_ohm=500e3, placement=Placement.COMP))
        assert result.detected

    def test_stop_at_first_vs_all(self):
        model = _model(r_ohm=800e3)
        first = run_march(MARCH_CMINUS, model, stop_at_first=True)
        model2 = _model(r_ohm=800e3)
        full = run_march(MARCH_CMINUS, model2, stop_at_first=False)
        assert len(full.failures) >= len(first.failures) >= 1

    def test_describe_reports_detection(self):
        result = run_march(MARCH_CMINUS, _model(r_ohm=500e3))
        assert "DETECTED" in result.describe()


class TestAddressing:
    def test_bad_defective_address(self):
        with pytest.raises(ValueError):
            run_march(MATS_PLUS, _model(), n_cells=4,
                      defective_address=4)

    def test_more_cells_more_idle_time(self):
        """With more cells between visits a decaying cell gets worse: the
        detection threshold of a retention-flavoured short drops."""
        def detected(n_cells, r_ohm):
            model = _model(DefectKind.SG, r_ohm=r_ohm)
            return run_march(MARCH_CMINUS, model, n_cells=n_cells,
                             defective_address=0).detected

        # pick a resistance detected with many idle cycles
        r_probe = 700e3
        many = detected(16, r_probe)
        few = detected(2, r_probe)
        # weak short needs the longer idle time to decay enough
        assert many or not few   # never: few detects but many doesn't


class TestInitialValue:
    def test_forced_initial_value_used(self):
        """A sequence sensitive to the initial state behaves accordingly."""
        test = parse_march("frag", "u(r0)")
        model = _model()
        ok = run_march(test, model, initial_value=0)
        assert not ok.detected
        model2 = _model()
        bad = run_march(test, model2, initial_value=1)
        assert bad.detected
