"""Detection-condition derivation."""

import pytest

from repro.analysis import derive_detection_condition
from repro.analysis.detection import _candidates
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement
from repro.stress import NOMINAL_STRESS


@pytest.fixture
def o3_model():
    return behavioral_model(Defect(DefectKind.O3, resistance=200e3))


class TestCandidates:
    def test_cover_both_polarities(self):
        texts = list(_candidates(3, 2))
        assert any("w0 r0" in t for t in texts)
        assert any("w1 r1" in t for t in texts)

    def test_charge_prefixes_grow(self):
        texts = list(_candidates(3, 2))
        assert any(t.startswith("w1^3") for t in texts)


class TestDerivation:
    def test_paper_structure_for_cell_open(self, o3_model):
        cond = derive_detection_condition(o3_model, 300e3)
        assert cond is not None
        tokens = [str(o) for o in cond.ops]
        # the paper's ⇕(... w1 w1 w0 r0 ...): a charge phase, the
        # stressed w0, then the expecting read
        assert tokens[-1] == "r0"
        assert tokens[-2] == "w0"
        assert tokens[0] == "w1"
        assert cond.expected == 0

    def test_none_when_benign(self, o3_model):
        cond = derive_detection_condition(o3_model, 1e3)
        assert cond is None

    def test_detects_from_both_initial_states(self, o3_model):
        cond = derive_detection_condition(o3_model, 300e3)
        for init in (0.0, 2.4):
            seq = o3_model.run_sequence(list(cond.ops), init_vc=init)
            assert seq.any_fault

    def test_comp_cell_interchanges_values(self):
        model = behavioral_model(
            Defect(DefectKind.O3, Placement.COMP, 300e3))
        cond = derive_detection_condition(model, 300e3)
        tokens = [str(o) for o in cond.ops]
        assert tokens[-1] == "r1"
        assert tokens[-2] == "w1"
        assert tokens[0] == "w0"

    def test_short_gnd_detected_by_w1_sequence(self):
        model = behavioral_model(Defect(DefectKind.SG, resistance=2e5))
        cond = derive_detection_condition(model, 2e5)
        assert cond is not None
        assert cond.expected == 1

    def test_stress_requires_longer_charge(self, o3_model):
        """Fig. 6: the SC's detection condition (derived just inside its
        own, larger failing range) needs more charge operations than the
        nominal one does at the nominal border."""
        from repro.analysis import border_resistance
        nom_border = border_resistance(o3_model, fails_high=True,
                                       r_lo=3e4, r_hi=3e6, rel_tol=0.05)
        nominal = derive_detection_condition(
            o3_model, nom_border.resistance * 1.3)
        o3_model.set_stress(NOMINAL_STRESS.with_(
            vdd=2.1, tcyc=55e-9, temp_c=87.0))
        str_border = border_resistance(o3_model, fails_high=True,
                                       r_lo=3e4, r_hi=3e6, rel_tol=0.05)
        assert str_border.resistance < nom_border.resistance
        mid = (str_border.resistance * nom_border.resistance) ** 0.5
        stressed = derive_detection_condition(o3_model, mid)
        assert stressed is not None
        assert nominal is not None
        assert stressed.length >= nominal.length

    def test_notation_rendering(self, o3_model):
        cond = derive_detection_condition(o3_model, 300e3)
        text = cond.notation()
        assert text.startswith("⇕(")
        assert "w0" in text

    def test_failing_read_index_valid(self, o3_model):
        cond = derive_detection_condition(o3_model, 300e3)
        assert 0 <= cond.failing_read < cond.length
        assert str(cond.ops[cond.failing_read]).startswith("r")
