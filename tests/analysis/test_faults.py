"""Functional fault-primitive classification."""

import pytest

from repro.analysis import classify_fault_primitives
from repro.analysis.faults import FaultPrimitive
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement


class TestHealthy:
    def test_no_primitives_for_weak_defect(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=100.0))
        result = classify_fault_primitives(model, 100.0)
        assert not result.is_faulty
        assert "fault-free" in result.describe()


class TestOpens:
    def test_moderate_open_transition_flavour(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=400e3))
        result = classify_fault_primitives(model, 400e3)
        assert result.is_faulty
        # a cell open degrades writes/reads of 0 on the true cell
        zeroside = {FaultPrimitive.TF_DOWN, FaultPrimitive.RDF0,
                    FaultPrimitive.IRF0, FaultPrimitive.DRDF0,
                    FaultPrimitive.SAF1}
        assert result.primitives & zeroside

    def test_extreme_open_stuck_like(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=50e6))
        result = classify_fault_primitives(model, 50e6)
        assert result.is_faulty

    def test_evidence_recorded(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=400e3))
        result = classify_fault_primitives(model, 400e3)
        for prim in result.primitives:
            assert prim in result.evidence
            assert result.evidence[prim]


class TestShorts:
    def test_short_gnd_attacks_ones(self):
        model = behavioral_model(Defect(DefectKind.SG, resistance=3e4))
        result = classify_fault_primitives(model, 3e4)
        oneside = {FaultPrimitive.SAF0, FaultPrimitive.TF_UP,
                   FaultPrimitive.RDF1, FaultPrimitive.IRF1,
                   FaultPrimitive.DRDF1, FaultPrimitive.WDF1}
        assert result.primitives & oneside

    def test_short_vdd_attacks_zeros(self):
        model = behavioral_model(Defect(DefectKind.SV, resistance=3e4))
        result = classify_fault_primitives(model, 3e4)
        zeroside = {FaultPrimitive.SAF1, FaultPrimitive.TF_DOWN,
                    FaultPrimitive.RDF0, FaultPrimitive.IRF0,
                    FaultPrimitive.DRDF0, FaultPrimitive.WDF0}
        assert result.primitives & zeroside


class TestPlacementSymmetry:
    def test_comp_cell_mirrors_primitive_polarity(self):
        mirror = {
            FaultPrimitive.SAF0: FaultPrimitive.SAF1,
            FaultPrimitive.SAF1: FaultPrimitive.SAF0,
            FaultPrimitive.TF_UP: FaultPrimitive.TF_DOWN,
            FaultPrimitive.TF_DOWN: FaultPrimitive.TF_UP,
            FaultPrimitive.RDF0: FaultPrimitive.RDF1,
            FaultPrimitive.RDF1: FaultPrimitive.RDF0,
            FaultPrimitive.IRF0: FaultPrimitive.IRF1,
            FaultPrimitive.IRF1: FaultPrimitive.IRF0,
            FaultPrimitive.DRDF0: FaultPrimitive.DRDF1,
            FaultPrimitive.DRDF1: FaultPrimitive.DRDF0,
            FaultPrimitive.WDF0: FaultPrimitive.WDF1,
            FaultPrimitive.WDF1: FaultPrimitive.WDF0,
        }
        r_true = classify_fault_primitives(
            behavioral_model(Defect(DefectKind.SG, Placement.TRUE, 3e4)),
            3e4)
        r_comp = classify_fault_primitives(
            behavioral_model(Defect(DefectKind.SG, Placement.COMP, 3e4)),
            3e4)
        assert {mirror[p] for p in r_true.primitives} == r_comp.primitives
