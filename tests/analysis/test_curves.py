"""Vsa threshold and settlement curves (behavioral backend)."""

import pytest

from repro.analysis import sense_threshold, settle_curve, vsa_curve
from repro.analysis.curves import VsaCurve, border_crossing_scan
from repro.analysis.planes import log_grid
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement


@pytest.fixture
def model():
    return behavioral_model(Defect(DefectKind.O3, resistance=200e3))


class TestSenseThreshold:
    def test_exists_at_moderate_open(self, model):
        v = sense_threshold(model)
        assert v is not None
        assert 0.3 < v < 1.5

    def test_none_for_strong_open(self, model):
        model.set_defect_resistance(20e6)
        assert sense_threshold(model) is None

    def test_bisection_tolerance(self, model):
        coarse = sense_threshold(model, tol=0.1)
        fine = sense_threshold(model, tol=0.005)
        assert abs(coarse - fine) < 0.1

    def test_reads_flip_across_threshold(self, model):
        v = sense_threshold(model, tol=0.005)
        below = model.run_sequence("r", init_vc=v - 0.05).outputs[0]
        above = model.run_sequence("r", init_vc=v + 0.05).outputs[0]
        assert below == 0
        assert above == 1

    def test_comp_cell_threshold_in_physical_domain(self):
        model = behavioral_model(
            Defect(DefectKind.O3, Placement.COMP, 200e3))
        v = sense_threshold(model)
        assert v is not None
        # physical high on the comp line must sense as stored-1
        out = model.run_sequence("r", init_vc=v + 0.1).outputs[0]
        assert out == 0   # stored high on blc = logical 0


class TestVsaCurve:
    def test_descends_with_resistance(self, model):
        grid = log_grid(50e3, 1e6, 6)
        curve = vsa_curve(model, grid)
        usable = [v for v in curve.thresholds if v is not None]
        assert len(usable) >= 4
        assert usable[0] > usable[-1]

    def test_interpolation_between_samples(self, model):
        grid = log_grid(50e3, 1e6, 6)
        curve = vsa_curve(model, grid)
        mid = curve.at(120e3)
        assert curve.thresholds[0] >= mid >= (curve.thresholds[-1] or 0.0)

    def test_at_clamps_to_ends(self, model):
        grid = log_grid(50e3, 1e6, 4)
        curve = vsa_curve(model, grid)
        assert curve.at(1e3) == curve.thresholds[0]
        assert curve.at(1e9) == curve.thresholds[-1]


class TestSettleCurve:
    def test_w0_residual_rises_with_resistance(self, model):
        grid = log_grid(50e3, 1e6, 6)
        curve = settle_curve(model, 0, grid, n_ops=1)
        first = curve.after(1)
        assert first[-1] > first[0]

    def test_second_write_settles_further(self, model):
        grid = log_grid(50e3, 1e6, 5)
        curve = settle_curve(model, 0, grid, n_ops=2)
        for v1, v2 in zip(curve.after(1), curve.after(2)):
            assert v2 <= v1 + 1e-9

    def test_w1_dual_polarity(self, model):
        grid = log_grid(50e3, 1e6, 5)
        curve = settle_curve(model, 1, grid, n_ops=2)
        for v1, v2 in zip(curve.after(1), curve.after(2)):
            assert v2 >= v1 - 1e-9

    def test_rejects_bad_value(self, model):
        with pytest.raises(ValueError):
            settle_curve(model, 2, [1e5])

    def test_levels_shape(self, model):
        grid = log_grid(50e3, 1e6, 4)
        curve = settle_curve(model, 0, grid, n_ops=3)
        assert len(curve.levels) == 4
        assert all(len(row) == 3 for row in curve.levels)


class TestCurveHoleHandling:
    """Degraded-sweep holes must never leak values out of `at`/`after`."""

    def _curve(self, failed=()):
        return VsaCurve(resistances=[1e4, 1e5, 1e6],
                        thresholds=[0.9, 0.7, 0.5], failed=failed)

    def test_exact_grid_hit_reads_through_neighbouring_hole(self):
        curve = self._curve(failed=(1,))
        assert curve.at(1e4) == 0.9
        assert curve.at(1e6) == 0.5

    def test_exact_grid_hit_on_hole_is_none(self):
        curve = self._curve(failed=(1,))
        assert curve.at(1e5) is None

    def test_endpoint_clamp_onto_hole_is_none(self):
        assert self._curve(failed=(0,)).at(1e3) is None
        assert self._curve(failed=(2,)).at(1e7) is None

    def test_interpolation_against_hole_neighbour_is_none(self):
        curve = self._curve(failed=(1,))
        assert curve.at(3e4) is None
        assert curve.at(3e5) is None
        curve = self._curve()
        assert curve.at(3e4) is not None

    def test_settle_after_rejects_nonpositive_count(self, model):
        curve = settle_curve(model, 0, [1e5, 2e5], n_ops=2)
        with pytest.raises(ValueError, match="counts from 1"):
            curve.after(0)
        with pytest.raises(ValueError, match="counts from 1"):
            curve.after(-1)


class TestBorderCrossingScan:
    """Adaptive BR refinement: identical answer, far fewer probes."""

    def _grid(self, points=24):
        return log_grid(30e3, 2e6, points)

    def test_adaptive_matches_dense_scan(self, model):
        grid = self._grid()
        adaptive = border_crossing_scan(model, grid)
        dense = border_crossing_scan(model, grid, dense=True)
        assert adaptive.border == dense.border
        assert dense.n_probed == len(grid)
        assert adaptive.n_probed < dense.n_probed

    def test_adaptive_matches_plane_border_estimate(self, model):
        from repro.analysis import result_planes
        grid = self._grid()
        planes = result_planes(model, grid)
        scan = border_crossing_scan(model, grid)
        assert scan.border == pytest.approx(planes.border_estimate(),
                                            rel=1e-12)

    def test_probe_budget_is_sublinear(self, model):
        grid = self._grid()
        scan = border_crossing_scan(model, grid)
        # coarse lattice (~sqrt(n)) plus the bisection refinement must
        # stay at no more than a third of the dense grid
        assert scan.n_probed <= len(grid) // 3

    def test_no_crossing_returns_none(self):
        weak = behavioral_model(Defect(DefectKind.O3, resistance=200e3))
        grid = log_grid(1e3, 2e4, 12)   # entirely below the border
        scan = border_crossing_scan(weak, grid)
        assert scan.border is None

    def test_find_border_adaptive_uses_kind_search_range(self):
        from repro.core import find_border_adaptive
        defect = Defect(DefectKind.O3, resistance=200e3)
        model = behavioral_model(defect)
        scan = find_border_adaptive(model, defect, points=24)
        r_lo, r_hi = defect.kind.search_range
        assert scan.resistances[0] == pytest.approx(r_lo)
        assert scan.resistances[-1] == pytest.approx(r_hi)
        assert scan.border is not None
