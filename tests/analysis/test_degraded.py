"""Degraded sweeps: holes in planes, curves, Shmoo grids and borders.

A flaky wrapper model injects :class:`ConvergenceError` at chosen grid
points; under ``on_error="isolate"`` every sweep must complete, report
the holes and keep its derived quantities usable.
"""

import pytest

from repro.analysis import border_resistance, result_planes
from repro.analysis.planes import log_grid
from repro.behav import behavioral_model
from repro.core import StressKind, shmoo
from repro.defects import Defect, DefectKind
from repro.spice.errors import ConvergenceError, SpiceError


class FlakyModel:
    """Delegating column model that fails at injected sweep points."""

    def __init__(self, inner, bad_resistances=(), bad_vdds=()):
        self._inner = inner
        self._bad_r = tuple(bad_resistances)
        self._bad_vdd = tuple(bad_vdds)
        self._r = None

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def set_defect_resistance(self, resistance):
        self._r = resistance
        self._inner.set_defect_resistance(resistance)

    def run_sequence(self, *args, **kwargs):
        if self._r is not None and any(
                abs(self._r / bad - 1.0) < 1e-9 for bad in self._bad_r):
            raise ConvergenceError(
                f"injected failure at R={self._r:.3g}")
        if any(abs(self._inner.stress.vdd - bad) < 1e-12
               for bad in self._bad_vdd):
            raise ConvergenceError(
                f"injected failure at Vdd={self._inner.stress.vdd}")
        return self._inner.run_sequence(*args, **kwargs)


GRID = log_grid(40e3, 2e6, 7)
BAD_R = GRID[3]


def _flaky(**kwargs):
    return FlakyModel(
        behavioral_model(Defect(DefectKind.O3, resistance=200e3)),
        **kwargs)


class TestDegradedPlanes:
    @pytest.fixture(scope="class")
    def holed(self):
        return result_planes(_flaky(bad_resistances=[BAD_R]), GRID,
                             n_writes=2, on_error="isolate")

    @pytest.fixture(scope="class")
    def clean(self):
        return result_planes(_flaky(), GRID, n_writes=2)

    def test_raise_mode_propagates(self):
        with pytest.raises(ConvergenceError):
            result_planes(_flaky(bad_resistances=[BAD_R]), GRID,
                          n_writes=2)

    def test_sweep_completes_and_reports_holes(self, holed):
        assert holed.n_failed > 0
        assert holed.w0.n_failed == 1
        assert holed.w1.n_failed == 1

    def test_holes_land_at_the_failing_grid_point(self, holed):
        assert holed.w0.curve(1)[3] is None
        assert holed.w1.curve(1)[3] is None
        assert holed.r.vsa.is_hole(3)
        assert holed.r.vsa.thresholds[3] is None
        # Other grid points are untouched.
        assert holed.w0.curve(1)[2] is not None
        assert not holed.r.vsa.is_hole(2)

    def test_clean_run_has_no_holes(self, clean):
        assert clean.n_failed == 0

    def test_border_estimate_bridges_the_hole(self, holed, clean):
        bridged = holed.border_estimate()
        reference = clean.border_estimate()
        assert bridged is not None
        # One lost grid point may coarsen the estimate but not move it
        # outside the neighbouring grid interval.
        assert 0.5 < bridged / reference < 2.0


class TestDegradedShmoo:
    X_VALUES = [2.1 + i * 0.15 for i in range(5)]
    Y_VALUES = [52e-9 + i * 4e-9 for i in range(4)]

    def _plot(self, model, **kwargs):
        return shmoo(model, "w1^2 w0 r0",
                     x_kind=StressKind.VDD, x_values=self.X_VALUES,
                     y_kind=StressKind.TCYC, y_values=self.Y_VALUES,
                     **kwargs)

    def test_holes_along_the_failing_column(self):
        plot = self._plot(_flaky(bad_vdds=[self.X_VALUES[2]]),
                          on_error="isolate")
        assert plot.n_failed == len(self.Y_VALUES)
        for row in plot.grid:
            assert row[2] is None
        assert plot.pass_count + plot.fail_count + plot.n_failed == 20

    def test_render_marks_holes(self):
        plot = self._plot(_flaky(bad_vdds=[self.X_VALUES[2]]),
                          on_error="isolate")
        text = plot.render()
        assert "?" in text
        assert "4 grid points did not simulate" in text

    def test_clean_render_has_no_hole_note(self):
        text = self._plot(_flaky()).render()
        assert "did not simulate" not in text

    def test_raise_mode_propagates(self):
        with pytest.raises(ConvergenceError):
            self._plot(_flaky(bad_vdds=[self.X_VALUES[2]]))


class TestDegradedBorder:
    R_LO, R_HI = 1e4, 1e6

    def _search(self, predicate, **kwargs):
        kwargs.setdefault("rel_tol", 0.05)
        kwargs.setdefault("on_error", "isolate")
        return border_resistance(None, fails_high=True, r_lo=self.R_LO,
                                 r_hi=self.R_HI, predicate=predicate,
                                 **kwargs)

    def test_nudge_recovers_a_single_flaky_probe(self):
        calls = {"n": 0}

        def predicate(r):
            calls["n"] += 1
            if calls["n"] == 3:   # first midpoint probe, first attempt
                raise SpiceError("injected")
            return r > 1e5

        result = self._search(predicate)
        assert result.found
        assert result.resistance == pytest.approx(1e5, rel=0.1)
        assert result.n_failed_probes == 1
        assert result.degraded
        assert "1 failed probes" in result.describe()

    def test_persistent_midpoint_failure_brackets_around_it(self):
        def predicate(r):
            if 0.5e5 <= r <= 2e5:   # wider than any nudge escapes
                raise SpiceError("injected")
            return r > 1e5

        result = self._search(predicate)
        assert result.found
        # Refinement stopped at the first midpoint: the bracket
        # midpoint is returned at reduced accuracy.
        assert result.resistance == pytest.approx(1e5, rel=0.01)
        assert result.n_failed_probes == 3

    def test_unprobeable_endpoint_is_undetermined(self):
        def predicate(r):
            raise SpiceError("injected")

        result = self._search(predicate)
        assert not result.found
        assert not result.always_faulty
        assert not result.never_faulty
        assert result.n_failed_probes > 0
        assert "undetermined" in result.describe()

    def test_raise_mode_propagates(self):
        def predicate(r):
            raise SpiceError("injected")

        with pytest.raises(SpiceError):
            self._search(predicate, on_error="raise")
