"""Retention analysis of decaying cells."""

import pytest

from repro.analysis.retention import RetentionResult, retention_cycles
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind
from repro.stress import NOMINAL_STRESS


def _sg(r_ohm, stress=NOMINAL_STRESS):
    return behavioral_model(Defect(DefectKind.SG, resistance=r_ohm),
                            stress=stress)


class TestRetentionMeasurement:
    def test_healthy_cell_retains(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=10.0))
        result = retention_cycles(model, 1, max_cycles=32)
        assert result.retains_forever

    def test_strong_short_loses_immediately(self):
        result = retention_cycles(_sg(2e4), 1, max_cycles=32)
        assert result.immediate_loss

    def test_moderate_short_finite_retention(self):
        result = retention_cycles(_sg(2.5e6), 1, max_cycles=256)
        assert not result.immediate_loss
        assert result.cycles is not None
        assert 1 <= result.cycles < 256

    def test_weaker_short_retains_longer(self):
        tight = retention_cycles(_sg(2e6), 1, max_cycles=512)
        loose = retention_cycles(_sg(5e6), 1, max_cycles=512)
        if tight.cycles is not None and loose.cycles is not None:
            assert loose.cycles >= tight.cycles

    def test_zero_value_unaffected_by_gnd_short(self):
        """A short to GND cannot destroy a stored 0."""
        result = retention_cycles(_sg(1e5), 0, max_cycles=16)
        assert result.retains_forever

    def test_time_seconds(self):
        r = RetentionResult(1, cycles=10, immediate_loss=False,
                            max_cycles=64)
        assert r.time_seconds(60e-9) == pytest.approx(600e-9)
        forever = RetentionResult(1, None, False, 64)
        assert forever.time_seconds(60e-9) is None

    def test_describe_variants(self):
        assert "immediately" in RetentionResult(1, None, True,
                                                8).describe()
        assert "beyond" in RetentionResult(0, None, False,
                                           8).describe()
        assert "retained for" in RetentionResult(1, 5, False,
                                                 8).describe()

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError):
            retention_cycles(_sg(1e6), 2)


class TestTemperatureDependence:
    def test_hot_retention_not_longer(self):
        """Leakage doubles every 10 K: retention shrinks (or at worst
        ties within bisection resolution) at high temperature."""
        room = retention_cycles(_sg(3e6), 1, max_cycles=512)
        hot = retention_cycles(
            _sg(3e6, NOMINAL_STRESS.with_(temp_c=87.0)), 1,
            max_cycles=512)
        room_c = room.cycles if room.cycles is not None else 512
        hot_c = hot.cycles if hot.cycles is not None else 512
        assert hot_c <= room_c
