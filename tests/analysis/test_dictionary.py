"""Fault dictionary construction and diagnosis."""

import pytest

from repro.analysis.dictionary import (
    DictionaryEntry,
    FaultDictionary,
    build_fault_dictionary,
)
from repro.analysis.faults import FaultPrimitive, classify_fault_primitives
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement
from repro.stress import NOMINAL_STRESS


def _factory(defect, stress):
    return behavioral_model(defect, stress=stress)


@pytest.fixture(scope="module")
def dictionary():
    defects = (Defect(DefectKind.O3, Placement.TRUE),
               Defect(DefectKind.SG, Placement.TRUE),
               Defect(DefectKind.SV, Placement.TRUE))
    return build_fault_dictionary(_factory, defects=defects,
                                  points_per_defect=4)


class TestConstruction:
    def test_entry_count(self, dictionary):
        assert len(dictionary.entries) == 12

    def test_some_entries_faulty(self, dictionary):
        assert dictionary.faulty_entries

    def test_signatures_nonempty_for_faulty(self, dictionary):
        for entry in dictionary.faulty_entries:
            assert entry.signature()

    def test_render_lists_defects(self, dictionary):
        text = dictionary.render()
        assert "fault dictionary" in text


class TestDiagnosis:
    def test_exact_signature_ranks_source_first(self, dictionary):
        """Classifying a fresh device with a known defect and feeding the
        observed primitives back must rank that defect kind first."""
        source = dictionary.faulty_entries[0]
        ranked = dictionary.diagnose(list(source.primitives))
        assert ranked
        assert ranked[0][0].kind is source.defect.kind
        assert ranked[0][1] == pytest.approx(1.0)

    def test_sg_and_sv_distinguished(self, dictionary):
        """Shorts to opposite rails produce opposite-polarity
        primitives, so diagnosis separates them."""
        sg_model = behavioral_model(Defect(DefectKind.SG,
                                           resistance=3e4))
        observed = classify_fault_primitives(sg_model, 3e4).primitives
        ranked = dictionary.diagnose(list(observed))
        assert ranked[0][0].kind is DefectKind.SG

    def test_empty_observation_no_candidates(self, dictionary):
        assert dictionary.diagnose([]) == []

    def test_top_limits_results(self, dictionary):
        source = dictionary.faulty_entries[0]
        ranked = dictionary.diagnose(list(source.primitives), top=1)
        assert len(ranked) == 1

    def test_scores_descending(self, dictionary):
        source = dictionary.faulty_entries[-1]
        ranked = dictionary.diagnose(list(source.primitives), top=3)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestEntryBasics:
    def test_clean_entry_not_faulty(self):
        entry = DictionaryEntry(Defect(DefectKind.O3), frozenset())
        assert not entry.is_faulty

    def test_dictionary_stress_recorded(self, dictionary):
        assert dictionary.stress == NOMINAL_STRESS
