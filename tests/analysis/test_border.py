"""Border-resistance bisection: polarity handling and degenerate cases."""

import pytest

from repro.analysis import border_resistance
from repro.analysis.border import BorderResult
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind


class TestMockedPredicate:
    """Pure bisection behaviour over synthetic predicates."""

    def _model(self):
        return behavioral_model(Defect(DefectKind.O3, resistance=1e5))

    def test_fails_high_threshold_recovered(self):
        threshold = 3.3e5
        result = border_resistance(
            self._model(), fails_high=True, r_lo=1e4, r_hi=1e7,
            predicate=lambda r: r > threshold, rel_tol=0.02)
        assert result.found
        assert result.resistance == pytest.approx(threshold, rel=0.03)

    def test_fails_low_threshold_recovered(self):
        threshold = 7e4
        result = border_resistance(
            self._model(), fails_high=False, r_lo=1e3, r_hi=1e7,
            predicate=lambda r: r < threshold, rel_tol=0.02)
        assert result.found
        assert result.resistance == pytest.approx(threshold, rel=0.03)

    def test_always_faulty_reported(self):
        result = border_resistance(
            self._model(), fails_high=True, r_lo=1e4, r_hi=1e6,
            predicate=lambda r: True)
        assert result.always_faulty
        assert not result.found
        assert result.failing_range() == (1e4, 1e6)

    def test_never_faulty_reported(self):
        result = border_resistance(
            self._model(), fails_high=True, r_lo=1e4, r_hi=1e6,
            predicate=lambda r: False)
        assert result.never_faulty
        assert result.failing_range() is None

    def test_failing_range_polarity(self):
        up = BorderResult(2e5, True, False, False, 1e4, 1e6)
        down = BorderResult(2e5, False, False, False, 1e4, 1e6)
        assert up.failing_range() == (2e5, 1e6)
        assert down.failing_range() == (1e4, 2e5)

    def test_describe_mentions_direction(self):
        up = BorderResult(2e5, True, False, False, 1e4, 1e6)
        assert ">" in up.describe()
        down = BorderResult(2e5, False, False, False, 1e4, 1e6)
        assert "<" in down.describe()

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            border_resistance(self._model(), fails_high=True,
                              r_lo=1e6, r_hi=1e4)


class TestRealDefects:
    def test_open_border_found(self):
        model = behavioral_model(Defect(DefectKind.O3, resistance=1e5))
        result = border_resistance(model, fails_high=True, r_lo=2e4,
                                   r_hi=5e6, rel_tol=0.05)
        assert result.found
        assert 5e4 < result.resistance < 1e6

    def test_short_border_found(self):
        model = behavioral_model(Defect(DefectKind.SG, resistance=1e5))
        result = border_resistance(model, fails_high=False, r_lo=1e3,
                                   r_hi=3e7, rel_tol=0.05)
        assert result.found
        # stronger (smaller) shorts fail
        assert result.failing_range()[0] == 1e3

    def test_true_comp_symmetric_border(self):
        from repro.defects import Placement
        rs = {}
        for placement in (Placement.TRUE, Placement.COMP):
            model = behavioral_model(
                Defect(DefectKind.O3, placement, 1e5))
            rs[placement] = border_resistance(
                model, fails_high=True, r_lo=2e4, r_hi=5e6,
                rel_tol=0.05).resistance
        assert rs[Placement.TRUE] == pytest.approx(rs[Placement.COMP],
                                                   rel=0.15)
