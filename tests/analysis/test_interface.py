"""Model-protocol helpers: placement-aware levels and cycle counting."""

import pytest

from repro.analysis.interface import (
    ColumnModel,
    CycleCountingModel,
    electrical_model,
    opposite_rail_init,
    stored_level,
)
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind, Placement
from repro.dram.ops import parse_ops


class TestStoredLevel:
    def test_true_cell_direct(self):
        model = behavioral_model(Defect(DefectKind.O3))
        assert stored_level(model, 1) == pytest.approx(2.4)
        assert stored_level(model, 0) == pytest.approx(0.0)

    def test_comp_cell_inverted(self):
        model = behavioral_model(Defect(DefectKind.O3, Placement.COMP))
        assert stored_level(model, 1) == pytest.approx(0.0)
        assert stored_level(model, 0) == pytest.approx(2.4)


class TestOppositeRailInit:
    def test_w0_first_starts_high(self):
        model = behavioral_model(Defect(DefectKind.O3))
        assert opposite_rail_init(model, parse_ops("w0 r0")) == \
            pytest.approx(2.4)

    def test_w1_first_starts_low(self):
        model = behavioral_model(Defect(DefectKind.O3))
        assert opposite_rail_init(model, parse_ops("w1 r1")) == \
            pytest.approx(0.0)

    def test_read_first_midrail(self):
        model = behavioral_model(Defect(DefectKind.O3))
        assert opposite_rail_init(model, parse_ops("r")) == \
            pytest.approx(1.2)

    def test_comp_cell_flips(self):
        model = behavioral_model(Defect(DefectKind.O3, Placement.COMP))
        assert opposite_rail_init(model, parse_ops("w1 r1")) == \
            pytest.approx(2.4)


class TestProtocol:
    def test_both_backends_satisfy(self):
        defect = Defect(DefectKind.O3)
        assert isinstance(behavioral_model(defect), ColumnModel)
        assert isinstance(electrical_model(defect), ColumnModel)

    def test_electrical_model_uses_placement(self):
        model = electrical_model(Defect(DefectKind.O3, Placement.COMP))
        assert model.target_cell == 1


class TestCycleCounting:
    def test_counts_sequence_cycles(self):
        model = CycleCountingModel(behavioral_model(Defect(DefectKind.O3)))
        model.run_sequence("w1 w1 r1", init_vc=0.0)
        assert model.cycles == 3

    def test_counts_single_ops(self):
        model = CycleCountingModel(behavioral_model(Defect(DefectKind.O3)))
        state = model.idle_state(0.0)
        model.run_op("w1", state)
        model.run_op("r", state)
        assert model.cycles == 2

    def test_delegates_configuration(self):
        from repro.stress import NOMINAL_STRESS
        model = CycleCountingModel(behavioral_model(Defect(DefectKind.O3)))
        sc = NOMINAL_STRESS.with_(vdd=2.1)
        model.set_stress(sc)
        assert model.stress == sc
        model.set_defect_resistance(5e5)
        assert model.defect.resistance == 5e5
