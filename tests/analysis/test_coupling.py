"""Two-cell coupling-fault analysis (electrical; module-scoped fixture
keeps the SPICE cost down)."""

import pytest

from repro.analysis.coupling import (
    CouplingFault,
    CouplingKind,
    classify_coupling,
)
from repro.defects import Defect, DefectKind


@pytest.fixture(scope="module")
def b1_report():
    """Bridge storage-node <-> own bit line at a strong resistance."""
    return classify_coupling(Defect(DefectKind.B1), 100e3)


class TestBridgeCoupling:
    def test_coupling_observed(self, b1_report):
        assert b1_report.has_coupling

    def test_disturb_faults_present(self, b1_report):
        kinds = {f.kind for f in b1_report.faults}
        assert CouplingKind.CFDS in kinds

    def test_aggressor_w1_flips_zero(self, b1_report):
        """Driving the shared bit line high pulls the victim's 0 up
        through the bridge."""
        assert any(f.kind is CouplingKind.CFDS
                   and f.aggressor_op == "w1" and f.victim_value == 0
                   for f in b1_report.faults)

    def test_aggressor_on_same_bitline(self, b1_report):
        assert b1_report.aggressor_cell == 2
        assert b1_report.victim_cell == 0

    def test_render_mentions_notation(self, b1_report):
        text = b1_report.render()
        assert "CFds<" in text


class TestNoCoupling:
    def test_weak_bridge_clean(self):
        report = classify_coupling(Defect(DefectKind.B1), 1e9,
                                   n_aggressor_ops=1)
        assert not report.has_coupling
        assert "none observed" in report.render()


class TestNotation:
    def test_cfds_notation(self):
        f = CouplingFault(CouplingKind.CFDS, "w1", 0, 2, 0)
        assert f.notation() == "CFds<w1; 0->1> (a=2, v=0)"

    def test_cfst_notation(self):
        f = CouplingFault(CouplingKind.CFST, "state=1", 0, 2, 0)
        assert "CFst<" in f.notation()
