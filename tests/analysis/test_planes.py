"""Result planes and the border estimate (behavioral backend)."""

import pytest

from repro.analysis import result_planes
from repro.analysis.planes import _interp_crossing, log_grid
from repro.behav import behavioral_model
from repro.defects import Defect, DefectKind


@pytest.fixture(scope="module")
def planes():
    model = behavioral_model(Defect(DefectKind.O3, resistance=200e3))
    return result_planes(model, log_grid(40e3, 2e6, 7), n_writes=2)


class TestLogGrid:
    def test_endpoints(self):
        grid = log_grid(1e4, 1e6, 5)
        assert grid[0] == pytest.approx(1e4)
        assert grid[-1] == pytest.approx(1e6)

    def test_geometric_spacing(self):
        grid = log_grid(1e4, 1e6, 5)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_grid(1e6, 1e4, 5)
        with pytest.raises(ValueError):
            log_grid(1e4, 1e6, 1)


class TestPlanes:
    def test_three_planes_share_grid(self, planes):
        assert planes.w0.resistances == planes.resistances
        assert planes.w1.resistances == planes.resistances
        assert len(planes.r.vsa.thresholds) == len(planes.resistances)

    def test_w0_plane_monotone_in_r(self, planes):
        first = planes.w0.curve(1)
        assert first[-1] > first[0]

    def test_w1_plane_monotone_in_r(self, planes):
        first = planes.w1.curve(1)
        assert first[-1] < first[0]

    def test_vmp_is_half_vdd(self, planes):
        assert planes.w0.vmp == pytest.approx(1.2)

    def test_read_traces_present_where_vsa_exists(self, planes):
        for i, threshold in enumerate(planes.r.vsa.thresholds):
            below = planes.r.traces["below"][i]
            if threshold is None:
                assert below is None
            else:
                assert len(below) == planes.r.n_reads

    def test_read_seeded_below_senses_zero_first(self, planes):
        for i, threshold in enumerate(planes.r.vsa.thresholds):
            sensed = planes.r.sensed["below"][i]
            if threshold is None or threshold < planes.r.seed_offset:
                continue
            assert sensed[0] == 0

    def test_read_seeded_above_senses_one_first(self, planes):
        vdd = 2.4
        for i, threshold in enumerate(planes.r.vsa.thresholds):
            sensed = planes.r.sensed["above"][i]
            if threshold is None or threshold > vdd - planes.r.seed_offset:
                continue
            assert sensed[0] == 1


class TestBorderEstimate:
    def test_border_in_plausible_range(self, planes):
        border = planes.border_estimate()
        assert border is not None
        assert 80e3 < border < 800e3

    def test_border_matches_direct_bisection(self, planes):
        from repro.analysis import border_resistance
        model = behavioral_model(Defect(DefectKind.O3, resistance=200e3))
        direct = border_resistance(model, fails_high=True, r_lo=4e4,
                                   r_hi=2e6, rel_tol=0.05)
        est = planes.border_estimate()
        # plane estimate is grid-coarse; agree within a factor ~2
        assert direct.found
        assert 0.5 < est / direct.resistance < 2.0

    def test_interp_crossing_between_points(self):
        r = _interp_crossing(1e5, -0.1, 2e5, 0.1)
        assert 1e5 < r < 2e5
        assert r == pytest.approx((1e5 * 2e5) ** 0.5, rel=0.01)

    def test_interp_crossing_clamps(self):
        assert _interp_crossing(1e5, 0.0, 2e5, 0.0) == 2e5
