"""JSON records of optimization runs."""

import json

import pytest

from repro.core import StressKind, optimize_all_defects
from repro.defects import Defect, DefectKind, Placement
from repro.report.records import (
    diff_tables,
    load_table,
    row_to_dict,
    table_to_json,
)


@pytest.fixture(scope="module")
def table():
    return optimize_all_defects(defects=(
        Defect(DefectKind.O3, Placement.TRUE),
        Defect(DefectKind.SG, Placement.TRUE)))


class TestSerialisation:
    def test_roundtrip_row_count(self, table):
        rows = load_table(table_to_json(table))
        assert len(rows) == 2

    def test_roundtrip_preserves_directions(self, table):
        rows = load_table(table_to_json(table))
        o3 = next(r for r in rows if r.kind == "O3")
        assert o3.direction_arrow(StressKind.TCYC) == "↓"
        assert o3.direction_arrow(StressKind.TEMP) == "↑"

    def test_roundtrip_preserves_conditions(self, table):
        rows = load_table(table_to_json(table))
        o3 = next(r for r in rows if r.kind == "O3")
        assert o3.stressed_conditions.tcyc == pytest.approx(55e-9)

    def test_roundtrip_preserves_detection(self, table):
        rows = load_table(table_to_json(table))
        o3 = next(r for r in rows if r.kind == "O3")
        assert o3.nominal_detection[-1] == "r0"

    def test_json_is_valid_and_versioned(self, table):
        payload = json.loads(table_to_json(table))
        assert payload["schema"] == 1

    def test_unknown_schema_rejected(self, table):
        payload = json.loads(table_to_json(table))
        payload["schema"] = 99
        with pytest.raises(ValueError):
            load_table(json.dumps(payload))

    def test_row_dict_improved_flag(self, table):
        raw = row_to_dict(table.rows[0])
        assert raw["improved"] is True


class TestDiff:
    def test_identical_runs_no_diff(self, table):
        rows = load_table(table_to_json(table))
        assert diff_tables(rows, rows) == []

    def test_direction_flip_reported(self, table):
        old = load_table(table_to_json(table))
        new = load_table(table_to_json(table))
        new[0].directions["tcyc"] = dict(new[0].directions["tcyc"])
        new[0].directions["tcyc"]["arrow"] = "↑"
        messages = diff_tables(old, new)
        assert any("direction changed" in m for m in messages)

    def test_border_move_reported(self, table):
        old = load_table(table_to_json(table))
        new = load_table(table_to_json(table))
        object.__setattr__(new[0], "nominal_border",
                           old[0].nominal_border * 2)
        messages = diff_tables(old, new)
        assert any("border moved" in m for m in messages)

    def test_added_and_removed_rows(self, table):
        rows = load_table(table_to_json(table))
        messages = diff_tables(rows[:1], rows)
        assert any("new row" in m for m in messages)
        messages = diff_tables(rows, rows[:1])
        assert any("row removed" in m for m in messages)
