"""Monotone PCHIP interpolation and leave-one-out residuals."""

import math

import pytest

from repro.surrogate.interp import Pchip1D, loo_residuals, rms


class TestPchip1D:
    def test_reproduces_knots_exactly(self):
        xs = [0.0, 0.3, 0.7, 1.0]
        ys = [1.0, 2.0, 2.5, 4.0]
        fit = Pchip1D(xs, ys)
        for x, y in zip(xs, ys):
            assert fit(x) == pytest.approx(y, abs=1e-12)

    def test_monotone_data_stays_monotone(self):
        xs = [0.0, 0.1, 0.5, 0.9, 1.0]
        ys = [0.0, 2.0, 2.1, 2.2, 5.0]   # sharp knees: overshoot bait
        fit = Pchip1D(xs, ys)
        samples = [fit(i / 200) for i in range(201)]
        assert all(b >= a - 1e-12 for a, b in zip(samples, samples[1:]))
        assert min(samples) >= ys[0] - 1e-12
        assert max(samples) <= ys[-1] + 1e-12

    def test_clamped_extrapolation(self):
        fit = Pchip1D([0.2, 0.8], [1.0, 3.0])
        assert fit(-5.0) == pytest.approx(1.0)
        assert fit(5.0) == pytest.approx(3.0)

    def test_two_points_is_linear(self):
        fit = Pchip1D([0.0, 1.0], [0.0, 2.0])
        assert fit(0.25) == pytest.approx(0.5)
        assert fit(0.75) == pytest.approx(1.5)

    def test_single_point_is_constant(self):
        fit = Pchip1D([0.5], [3.0])
        assert fit(0.0) == 3.0
        assert fit(1.0) == 3.0

    def test_rejects_unsorted_xs(self):
        with pytest.raises(ValueError):
            Pchip1D([0.0, 0.5, 0.5], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            Pchip1D([1.0, 0.0], [1.0, 2.0])


class TestLooResiduals:
    def test_linear_data_has_tiny_interior_residuals(self):
        xs = [0.0, 0.25, 0.5, 0.75, 1.0]
        ys = [2.0 * x for x in xs]
        res = loo_residuals(xs, ys)
        # interior points are predicted exactly by the linear fit ...
        assert res[1:-1] == pytest.approx([0.0, 0.0, 0.0], abs=1e-9)
        # ... while a left-out endpoint is clamped to its neighbour —
        # the honest "no data beyond the range" answer
        assert res[0] == pytest.approx(ys[1] - ys[0])
        assert res[-1] == pytest.approx(ys[-2] - ys[-1])

    def test_outlier_dominates(self):
        xs = [0.0, 0.25, 0.5, 0.75, 1.0]
        ys = [0.0, 0.5, 5.0, 1.5, 2.0]   # bump at the middle knot
        res = loo_residuals(xs, ys)
        assert max(abs(r) for r in res) == pytest.approx(
            abs(res[2]), rel=1e-9)
        assert abs(res[2]) > 1.0

    def test_degenerate_sizes(self):
        assert loo_residuals([0.5], [3.0]) == [0.0]
        two = loo_residuals([0.0, 1.0], [1.0, 4.0])
        assert two[0] == pytest.approx(3.0)
        assert two[1] == pytest.approx(3.0)

    def test_rms(self):
        assert rms([]) == 0.0
        assert rms([3.0, 4.0]) == pytest.approx(math.sqrt(12.5))
