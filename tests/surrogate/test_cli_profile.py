"""--profile observability: surrogate counters reach the CLI report."""

from types import SimpleNamespace

import pytest

from repro.diagnostics import diagnostics, reset_diagnostics


@pytest.fixture(autouse=True)
def _fresh_diagnostics():
    reset_diagnostics()
    yield
    reset_diagnostics()


def test_profile_block_prints_surrogate_counters(capsys):
    from repro.__main__ import _report_engine

    diagnostics().record_surrogate_counters({"surrogate_hits": 3})
    diagnostics().record_surrogate_counters({"surrogate_hits": 2,
                                             "surrogate_refits": 1})
    _report_engine(SimpleNamespace(verbose=False, profile=True))
    err = capsys.readouterr().err
    assert "surrogate tier: surrogate_hits x5, surrogate_refits x1" in err


def test_profile_block_is_silent_without_surrogate_activity(capsys):
    from repro.__main__ import _report_engine

    _report_engine(SimpleNamespace(verbose=False, profile=True))
    assert "surrogate tier:" not in capsys.readouterr().err


def test_verbose_line_carries_the_surrogate_section(capsys):
    from repro.__main__ import _report_engine
    from repro.engine import default_engine

    stats = default_engine().stats
    before = stats.snapshot()
    stats.surrogate_hits += 4
    stats.surrogate_fallbacks += 1
    try:
        _report_engine(SimpleNamespace(verbose=True, profile=False))
        err = capsys.readouterr().err
        assert f"surrogate: {stats.surrogate_hits} served" in err
    finally:
        stats.surrogate_hits = before.surrogate_hits
        stats.surrogate_fallbacks = before.surrogate_fallbacks
