"""SurrogateTier policy: modes, counters, serving, active registry."""

import dataclasses

import pytest

from repro.analysis.border import BorderResult
from repro.defects import Defect, DefectKind
from repro.dram.tech import default_tech
from repro.engine.cache import EngineStats
from repro.stress import NOMINAL_STRESS, StressKind
from repro.surrogate import seeds
from repro.surrogate.tier import (DEFAULT_BR_SIGMA_BOUND, SurrogateTier,
                                  active_tier, resolve_tier,
                                  set_active_tier)


@pytest.fixture
def defect():
    return Defect(DefectKind.O3, resistance=200e3)


@pytest.fixture
def stats():
    return EngineStats()


def _border(r=1.5e5):
    return BorderResult(r, True, always_faulty=False, never_faulty=False,
                        r_lo=1e3, r_hi=1e7)


class TestModes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown surrogate mode"):
            SurrogateTier("turbo")

    def test_enabled_and_serves(self):
        assert not SurrogateTier("off").enabled
        assert SurrogateTier("prior").enabled
        assert not SurrogateTier("prior").serves
        assert SurrogateTier("serve").serves

    def test_prior_view_demotes_but_shares_state(self, stats):
        tier = SurrogateTier("serve", stats=stats)
        view = tier.prior_view()
        assert view is not tier
        assert view.mode == "prior" and tier.mode == "serve"
        assert view.journal is tier.journal
        assert view.stats() is stats
        # non-serve tiers need no demotion
        prior = SurrogateTier("prior")
        assert prior.prior_view() is prior


class TestRegistry:
    def test_resolve_and_registry(self, stats):
        tier = SurrogateTier("serve", stats=stats)
        previous = set_active_tier(tier)
        try:
            assert active_tier() is tier
            assert resolve_tier(None) is tier
            assert resolve_tier(False) is None
            assert resolve_tier("off") is None
            other = SurrogateTier("prior", stats=stats)
            assert resolve_tier(other) is other
            assert resolve_tier(SurrogateTier("off")) is None
            with pytest.raises(ValueError, match="surrogate policy"):
                resolve_tier("maximum")
        finally:
            set_active_tier(previous)

    def test_disabled_active_tier_resolves_to_none(self, stats):
        previous = set_active_tier(SurrogateTier("off", stats=stats))
        try:
            assert resolve_tier(None) is None
        finally:
            set_active_tier(previous)


class TestBackendGate:
    def test_backend_of(self, behav_o3):
        assert SurrogateTier.backend_of(behav_o3) == "behavioral"
        assert SurrogateTier.backend_of(object()) == "electrical"

    def test_applies_to_electrical_only(self, behav_o3, stats):
        tier = SurrogateTier("serve", stats=stats)
        assert tier.applies_to(object())
        assert not tier.applies_to(behav_o3)
        assert not SurrogateTier("off", stats=stats).applies_to(object())


class TestServeBr:
    def test_prior_mode_never_serves(self, defect, stats):
        tier = SurrogateTier("prior", stats=stats)
        assert tier.serve_br(defect, NOMINAL_STRESS) is None
        assert stats.surrogate_fallbacks == 0   # not even counted a miss

    def test_cold_tier_falls_back(self, defect, stats):
        """Seeded predictions carry SEED_SIGMA > the serve bound — a
        cold tier must route its first query to the electrical engine."""
        assert seeds.SEED_SIGMA > DEFAULT_BR_SIGMA_BOUND
        tier = SurrogateTier("serve", stats=stats)
        assert tier.serve_br(defect, NOMINAL_STRESS) is None
        assert stats.surrogate_fallbacks == 1
        assert stats.surrogate_hits == 0

    def test_exact_journal_point_serves(self, defect, stats):
        tier = SurrogateTier("serve", stats=stats)
        tier.record_br(defect, NOMINAL_STRESS, _border())
        assert stats.surrogate_refits == 1
        served = tier.serve_br(defect, NOMINAL_STRESS)
        assert served is not None
        assert served.resistance == 1.5e5
        assert served.fails_high == defect.fails_high
        assert stats.surrogate_hits == 1
        assert stats.surrogate_fallbacks == 0

    def test_record_br_dedupes_refits(self, defect, stats):
        tier = SurrogateTier("serve", stats=stats)
        tier.record_br(defect, NOMINAL_STRESS, _border())
        tier.record_br(defect, NOMINAL_STRESS, _border())
        assert stats.surrogate_refits == 1

    def test_br_prior_is_seeded_near_the_anchor(self, defect, stats):
        tier = SurrogateTier("serve", stats=stats,
                             tech=default_tech())
        prior = tier.br_prior(defect, NOMINAL_STRESS)
        assert prior is not None and prior > 0
        prediction = tier.predict_br(defect, NOMINAL_STRESS)
        assert prediction.source == "seed"

    def test_prior_view_serves_nothing_but_journals(self, defect, stats):
        tier = SurrogateTier("serve", stats=stats)
        view = tier.prior_view()
        assert view.serve_br(defect, NOMINAL_STRESS) is None
        view.record_br(defect, NOMINAL_STRESS, _border())
        # the learning landed on the shared journal: the serve tier now
        # answers the same query surrogate-only
        assert tier.serve_br(defect, NOMINAL_STRESS) is not None


class TestServeDirection:
    def test_prior_mode_never_serves(self, defect, stats):
        tier = SurrogateTier("prior", stats=stats)
        assert tier.serve_direction(defect, StressKind.TCYC, 0,
                                    base=NOMINAL_STRESS,
                                    r_probe=1e5) is None

    def test_serve_or_honest_fallback(self, defect, stats):
        """Every serve-mode direction query lands on exactly one
        counter; a served call carries a decided direction."""
        from repro.behav import behavioral_model
        from repro.analysis.detection import derive_detection_condition
        from repro.core.border import find_border_resistance
        from repro.core.optimizer import probe_resistance

        model = behavioral_model(defect)
        border = find_border_resistance(model, defect,
                                        stress=NOMINAL_STRESS,
                                        surrogate=False)
        r_probe = probe_resistance(defect, border)
        model.set_defect_resistance(r_probe)
        det = derive_detection_condition(model, r_probe)
        fault_value = det.expected if det is not None else 0

        tier = SurrogateTier("serve", stats=stats)
        for kind in (StressKind.TCYC, StressKind.DUTY):
            before = (stats.surrogate_hits, stats.surrogate_fallbacks)
            call = tier.serve_direction(defect, kind, fault_value,
                                        base=NOMINAL_STRESS,
                                        r_probe=r_probe)
            hits = stats.surrogate_hits - before[0]
            fallbacks = stats.surrogate_fallbacks - before[1]
            assert hits + fallbacks == 1
            if call is not None:
                assert hits == 1
                assert call.chosen_value is not None
            else:
                assert fallbacks == 1


class TestSeeds:
    def test_seed_guard_rejects_other_technologies(self, defect):
        assert seeds.seed_offset(defect, backend="electrical") is not None
        other = dataclasses.replace(default_tech(), vpp_boost=1.31)
        assert seeds.seed_offset(defect, backend="electrical",
                                 tech=other) is None

    def test_seed_table_covers_all_table1_defects(self):
        from repro.defects.catalog import ALL_DEFECTS
        for defect in ALL_DEFECTS:
            assert ("electrical", defect.name) in seeds.SEED_BR_OFFSETS


class TestEngineWiring:
    def test_configure_default_engine_installs_and_clears(self):
        from repro.engine.executor import (configure_default_engine,
                                           set_default_engine)
        previous_tier = active_tier()
        try:
            engine = configure_default_engine(surrogate="serve")
            tier = active_tier()
            assert tier is not None and tier.mode == "serve"
            assert tier.stats() is engine.stats
            configure_default_engine(surrogate=None)
            assert active_tier() is None
            configure_default_engine(surrogate="prior")
            assert active_tier().mode == "prior"
            configure_default_engine(surrogate="off")
            assert active_tier() is None
        finally:
            set_active_tier(previous_tier)
            set_default_engine(None)
