"""BRPredictor paths: exact, seed, anchor, interpolated residual field."""

import dataclasses
import math

import pytest

from repro.analysis.border import BorderResult
from repro.defects import Defect, DefectKind
from repro.dram.tech import default_tech
from repro.stress import NOMINAL_STRESS, STRESS_RANGES, StressKind
from repro.surrogate import seeds
from repro.surrogate.br import (BRPredictor, DISTANCE_SIGMA, SIGMA_FLOOR,
                                normalized)
from repro.surrogate.store import CalibrationJournal


@pytest.fixture
def defect():
    return Defect(DefectKind.O3, resistance=200e3)


def _record(journal, defect, stress, resistance):
    journal.record(defect, backend="electrical", tech=None, rel_tol=0.05,
                   stress=stress,
                   border=BorderResult(resistance, defect.fails_high,
                                       always_faulty=False,
                                       never_faulty=False,
                                       r_lo=1e3, r_hi=1e7))


def test_normalized_clamps_to_spec_ranges():
    low = NOMINAL_STRESS.with_value(StressKind.VDD, 0.5)
    high = NOMINAL_STRESS.with_value(StressKind.VDD, 100.0)
    axis = list(STRESS_RANGES).index(StressKind.VDD)
    assert normalized(low)[axis] == 0.0
    assert normalized(high)[axis] == 1.0
    assert all(0.0 <= u <= 1.0 for u in normalized(NOMINAL_STRESS))


def test_exact_journal_match_has_zero_sigma(defect):
    journal = CalibrationJournal()
    _record(journal, defect, NOMINAL_STRESS, 1.5e5)
    prediction = BRPredictor(journal).predict(
        defect, NOMINAL_STRESS, backend="electrical", rel_tol=0.05)
    assert prediction.source == "exact"
    assert prediction.sigma == 0.0
    assert prediction.exact.resistance == 1.5e5
    assert prediction.resistance == pytest.approx(1.5e5)


def test_empty_journal_uses_packaged_seed(defect):
    predictor = BRPredictor(CalibrationJournal(), tech=default_tech())
    prediction = predictor.predict(defect, NOMINAL_STRESS,
                                   backend="electrical", rel_tol=0.05)
    assert prediction.source == "seed"
    assert prediction.sigma == pytest.approx(seeds.SEED_SIGMA)
    anchor = predictor.anchor(defect, NOMINAL_STRESS, 0.05)
    offset = seeds.seed_offset(defect, backend="electrical")
    assert prediction.log_br == pytest.approx(
        math.log10(anchor.resistance) + offset)


def test_unseeded_technology_falls_back_to_bare_anchor(defect):
    other = dataclasses.replace(default_tech(), vpp_boost=1.31)
    predictor = BRPredictor(CalibrationJournal(), tech=other)
    prediction = predictor.predict(defect, NOMINAL_STRESS,
                                   backend="electrical", rel_tol=0.05)
    assert prediction.source == "anchor"
    assert prediction.sigma >= seeds.ANCHOR_SIGMA


def test_single_axis_journal_interpolates_residuals(defect):
    journal = CalibrationJournal()
    predictor = BRPredictor(journal)
    cold = NOMINAL_STRESS.with_value(StressKind.TEMP, 0.0)
    hot = NOMINAL_STRESS.with_value(StressKind.TEMP, 80.0)
    mid = NOMINAL_STRESS.with_value(StressKind.TEMP, 40.0)
    # journal a constant +0.1-decade bias against the anchor at the
    # endpoints: the interpolated residual at mid must also be +0.1
    for stress in (cold, hot):
        anchor = predictor.anchor(defect, stress, 0.05)
        assert anchor.found
        _record(journal, defect, stress,
                10.0 ** (math.log10(anchor.resistance) + 0.1))
    prediction = predictor.predict(defect, mid, backend="electrical",
                                   rel_tol=0.05)
    assert prediction.source == "interp"
    assert prediction.n_points == 2
    anchor_mid = predictor.anchor(defect, mid, 0.05)
    assert prediction.log_br == pytest.approx(
        math.log10(anchor_mid.resistance) + 0.1, abs=1e-9)
    assert prediction.sigma >= SIGMA_FLOOR


def test_sigma_grows_with_distance_from_evidence(defect):
    journal = CalibrationJournal()
    predictor = BRPredictor(journal)
    for temp in (20.0, 30.0):
        stress = NOMINAL_STRESS.with_value(StressKind.TEMP, temp)
        anchor = predictor.anchor(defect, stress, 0.05)
        _record(journal, defect, stress, anchor.resistance)
    near = predictor.predict(
        defect, NOMINAL_STRESS.with_value(StressKind.TEMP, 25.0),
        backend="electrical", rel_tol=0.05)
    far = predictor.predict(
        defect, NOMINAL_STRESS.with_value(StressKind.VDD, 2.0),
        backend="electrical", rel_tol=0.05)
    assert far.sigma > near.sigma
    assert far.sigma >= SIGMA_FLOOR + DISTANCE_SIGMA * 0.1


def test_multi_axis_journal_uses_idw(defect):
    journal = CalibrationJournal()
    predictor = BRPredictor(journal)
    for stress in (NOMINAL_STRESS.with_value(StressKind.TEMP, 60.0),
                   NOMINAL_STRESS.with_value(StressKind.VDD, 2.1)):
        anchor = predictor.anchor(defect, stress, 0.05)
        _record(journal, defect, stress, anchor.resistance)
    prediction = predictor.predict(
        defect, NOMINAL_STRESS.with_value(StressKind.DUTY, 0.4),
        backend="electrical", rel_tol=0.05)
    assert prediction.source == "interp"
    assert prediction.log_br is not None
    assert math.isfinite(prediction.sigma)


def test_served_exact_short_circuits_the_model(defect):
    """An exact serve answers without touching the electrical model at
    all — proven by passing a model that cannot simulate anything."""
    from repro.core.border import find_border_resistance
    from repro.engine.cache import EngineStats
    from repro.surrogate.tier import SurrogateTier

    class DeadModel:
        backend = "electrical"
        stress = None

        def set_stress(self, stress):
            self.stress = stress

    tier = SurrogateTier("serve", stats=EngineStats())
    _record(tier.journal, defect, NOMINAL_STRESS, 1.5e5)
    result = find_border_resistance(DeadModel(), defect,
                                    stress=NOMINAL_STRESS,
                                    surrogate=tier)
    assert result.resistance == 1.5e5
