"""Calibration journal persistence: record, dedupe, reload, survive.

The journal is the surrogate tier's active-learning memory.  Its
durability contract matches the engine's result store — points recorded
before a SIGKILL must be visible to a resumed campaign — because it
lives in the same :class:`~repro.store.sharded.ShardedStore` under its
own request-hash axis (``tier="surrogate-cal"``).
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.border import BorderResult
from repro.defects import Defect, DefectKind
from repro.dram.tech import default_tech
from repro.engine.request import SequenceRequest
from repro.store.sharded import ShardedStore
from repro.stress import NOMINAL_STRESS, StressConditions, StressKind
from repro.surrogate.store import (CalibrationJournal, CalPoint,
                                   journal_request)


@pytest.fixture
def defect():
    return Defect(DefectKind.O3, resistance=200e3)


def _border(r=1.5e5, fails_high=True):
    return BorderResult(r, fails_high, always_faulty=False,
                        never_faulty=False, r_lo=1e3, r_hi=1e7)


class TestRequestHashAxis:
    def test_tier_field_defaults_to_sim_and_preserves_hashes(self, defect):
        site = defect.site()
        base = dict(backend="electrical", tech=default_tech(),
                    defect_kind=site.kind, cell=site.cell,
                    resistance=defect.resistance, stress=NOMINAL_STRESS,
                    ops="w0 r0", init_vc=0.0)
        assert SequenceRequest(**base).tier == "sim"
        assert (SequenceRequest(**base).content_hash
                == SequenceRequest(**base, tier="sim").content_hash)

    def test_surrogate_cal_tier_occupies_its_own_namespace(self, defect):
        cal = journal_request(defect, backend="electrical",
                              tech=default_tech(), rel_tol=0.05)
        assert cal.tier == "surrogate-cal"
        sim_twin = SequenceRequest(
            backend=cal.backend, tech=cal.tech,
            defect_kind=cal.defect_kind, cell=cal.cell,
            resistance=cal.resistance, stress=cal.stress, ops=cal.ops,
            init_vc=cal.init_vc)
        assert cal.content_hash != sim_twin.content_hash

    def test_rel_tol_is_part_of_the_key(self, defect):
        a = journal_request(defect, backend="electrical",
                            tech=default_tech(), rel_tol=0.05)
        b = journal_request(defect, backend="electrical",
                            tech=default_tech(), rel_tol=0.01)
        assert a.content_hash != b.content_hash


class TestJournal:
    def test_record_and_readback_in_memory(self, defect):
        journal = CalibrationJournal()
        assert journal.points(defect, backend="electrical", tech=None,
                              rel_tol=0.05) == []
        assert journal.record(defect, backend="electrical", tech=None,
                              rel_tol=0.05, stress=NOMINAL_STRESS,
                              border=_border())
        points = journal.points(defect, backend="electrical", tech=None,
                                rel_tol=0.05)
        assert points == [CalPoint(NOMINAL_STRESS, 1.5e5)]

    def test_duplicate_record_is_not_news(self, defect):
        journal = CalibrationJournal()
        assert journal.record(defect, backend="electrical", tech=None,
                              rel_tol=0.05, stress=NOMINAL_STRESS,
                              border=_border())
        assert not journal.record(defect, backend="electrical", tech=None,
                                  rel_tol=0.05, stress=NOMINAL_STRESS,
                                  border=_border())
        # same stress, different border: replaces, counts as news
        assert journal.record(defect, backend="electrical", tech=None,
                              rel_tol=0.05, stress=NOMINAL_STRESS,
                              border=_border(2e5))
        points = journal.points(defect, backend="electrical", tech=None,
                                rel_tol=0.05)
        assert len(points) == 1 and points[0].resistance == 2e5

    def test_undetermined_results_are_skipped(self, defect):
        journal = CalibrationJournal()
        undetermined = BorderResult(None, True, always_faulty=False,
                                    never_faulty=False, r_lo=1e3,
                                    r_hi=1e7)
        assert not journal.record(defect, backend="electrical", tech=None,
                                  rel_tol=0.05, stress=NOMINAL_STRESS,
                                  border=undetermined)
        assert journal.points(defect, backend="electrical", tech=None,
                              rel_tol=0.05) == []

    def test_degenerate_results_are_calibration_data(self, defect):
        journal = CalibrationJournal()
        never = BorderResult(None, True, always_faulty=False,
                             never_faulty=True, r_lo=1e3, r_hi=1e7)
        assert journal.record(defect, backend="electrical", tech=None,
                              rel_tol=0.05, stress=NOMINAL_STRESS,
                              border=never)
        (point,) = journal.points(defect, backend="electrical", tech=None,
                                  rel_tol=0.05)
        assert not point.found and point.never_faulty
        rebuilt = point.border(True, 1e3, 1e7)
        assert rebuilt.never_faulty and rebuilt.resistance is None

    def test_store_backed_reload(self, defect, tmp_path):
        store = ShardedStore(tmp_path / "store")
        writer = CalibrationJournal(store)
        hot = NOMINAL_STRESS.with_value(StressKind.TEMP, 87.0)
        writer.record(defect, backend="electrical", tech=None,
                      rel_tol=0.05, stress=NOMINAL_STRESS,
                      border=_border())
        writer.record(defect, backend="electrical", tech=None,
                      rel_tol=0.05, stress=hot, border=_border(1.1e5))
        assert writer.loaded_points == 0   # nothing pre-existed

        reader = CalibrationJournal(ShardedStore(tmp_path / "store"))
        points = {p.stress: p for p in reader.points(
            defect, backend="electrical", tech=None, rel_tol=0.05)}
        assert reader.loaded_points == 2
        assert points[NOMINAL_STRESS].resistance == 1.5e5
        assert points[hot].resistance == 1.1e5

    def test_corrupt_entries_are_dropped_not_fatal(self, defect, tmp_path):
        store = ShardedStore(tmp_path / "store")
        key = journal_request(defect, backend="electrical",
                              tech=default_tech(),
                              rel_tol=0.05).content_hash
        store.put(key, [{"stress": {"bogus": 1}}, "not-a-dict",
                        {"stress": {"tcyc": 60e-9, "duty": 0.5,
                                    "temp_c": 27.0, "vdd": 2.4},
                         "resistance": 3e5}])
        journal = CalibrationJournal(store)
        (point,) = journal.points(defect, backend="electrical",
                                  tech=default_tech(), rel_tol=0.05)
        assert point.resistance == 3e5


_KILLED_WRITER = textwrap.dedent("""
    import os, signal, sys
    from repro.analysis.border import BorderResult
    from repro.defects import Defect, DefectKind
    from repro.store.sharded import ShardedStore
    from repro.stress import NOMINAL_STRESS
    from repro.surrogate.store import CalibrationJournal

    journal = CalibrationJournal(ShardedStore(sys.argv[1]))
    defect = Defect(DefectKind.O3, resistance=200e3)
    border = BorderResult(1.5e5, True, always_faulty=False,
                          never_faulty=False, r_lo=1e3, r_hi=1e7)
    journal.record(defect, backend="electrical", tech=None,
                   rel_tol=0.05, stress=NOMINAL_STRESS, border=border)
    print("RECORDED", flush=True)
    os.kill(os.getpid(), signal.SIGKILL)
""")


def test_points_survive_sigkill(defect, tmp_path):
    """The resume path: a campaign killed right after journaling must
    leave the point recoverable — and exactly servable — by the next."""
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_WRITER, str(tmp_path / "store")],
        capture_output=True, text=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 filter(None, ["src", os.environ.get("PYTHONPATH")]))},
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))))
    assert "RECORDED" in proc.stdout
    assert proc.returncode == -signal.SIGKILL

    journal = CalibrationJournal(ShardedStore(tmp_path / "store"))
    (point,) = journal.points(defect, backend="electrical", tech=None,
                              rel_tol=0.05)
    assert journal.loaded_points == 1
    assert point.resistance == 1.5e5

    from repro.surrogate.br import BRPredictor
    prediction = BRPredictor(journal).predict(
        defect, NOMINAL_STRESS, backend="electrical", rel_tol=0.05)
    assert prediction.source == "exact"
    assert prediction.sigma == 0.0
    assert prediction.exact.resistance == 1.5e5
