"""Prior-guided bisection: bitwise identity with the serial search.

These tests drive :func:`repro.analysis.border.border_resistance`
through synthetic predicates (no simulation), comparing the
prior-seeded search bitwise against the plain serial loop over a grid
of borders, polarities, tolerances and prior qualities.  The guided
search's contract is exact: a prior may only change *how many* probes
run, never the returned result.
"""

import math

import pytest

from repro.analysis.border import border_resistance

R_LO = 1e3
R_HI = 1e7


class CountingPredicate:
    """Monotone fault predicate with a call counter.

    ``fails_high=True`` (opens): faulty at and above the border.
    ``fails_high=False`` (shorts/bridges): faulty at and below it.
    """

    def __init__(self, border: float, fails_high: bool):
        self.border = border
        self.fails_high = fails_high
        self.calls = 0

    def __call__(self, r: float) -> bool:
        self.calls += 1
        if self.fails_high:
            return r >= self.border
        return r <= self.border


def _search(border, fails_high, *, rel_tol=0.05, prior=None):
    pred = CountingPredicate(border, fails_high)
    result = border_resistance(None, fails_high=fails_high,
                               r_lo=R_LO, r_hi=R_HI, predicate=pred,
                               rel_tol=rel_tol, prior=prior)
    return result, pred.calls


BORDERS = [1.7e3, 9.99e3, 5.4e4, 1.54e5, 8.8e5, 6.66e6]


@pytest.mark.parametrize("fails_high", [True, False])
@pytest.mark.parametrize("border", BORDERS)
@pytest.mark.parametrize("rel_tol", [0.05, 0.01])
def test_exact_prior_is_bitwise_identical_and_cheaper(border, fails_high,
                                                      rel_tol):
    serial, serial_calls = _search(border, fails_high, rel_tol=rel_tol)
    guided, guided_calls = _search(border, fails_high, rel_tol=rel_tol,
                                   prior=serial.resistance)
    assert guided.resistance == serial.resistance          # bitwise
    assert guided.always_faulty == serial.always_faulty
    assert guided.never_faulty == serial.never_faulty
    assert guided_calls < serial_calls
    assert guided_calls <= 4


@pytest.mark.parametrize("fails_high", [True, False])
@pytest.mark.parametrize("border", BORDERS)
@pytest.mark.parametrize("factor", [0.5, 0.9, 1.3, 4.0])
def test_offset_prior_still_bitwise_identical(border, fails_high, factor):
    serial, serial_calls = _search(border, fails_high)
    guided, guided_calls = _search(border, fails_high,
                                   prior=border * factor)
    assert guided.resistance == serial.resistance
    # a wrong prior only costs probes (re-aim + verify), bounded-ly so
    assert guided_calls <= 3 * serial_calls


@pytest.mark.parametrize("fails_high", [True, False])
@pytest.mark.parametrize("prior", [R_LO, R_HI, 1e-3, 1e12, 1.0])
def test_extreme_priors_are_safe(fails_high, prior):
    border = 5.4e4
    serial, _ = _search(border, fails_high)
    guided, _ = _search(border, fails_high, prior=prior)
    assert guided.resistance == serial.resistance


@pytest.mark.parametrize("fails_high", [True, False])
@pytest.mark.parametrize("prior", [None, 5e4, R_LO, R_HI])
def test_degenerate_ranges_match_serial(fails_high, prior):
    always = border_resistance(
        None, fails_high=fails_high, r_lo=R_LO, r_hi=R_HI,
        predicate=lambda r: True, prior=prior)
    assert always.always_faulty and always.resistance is None
    never = border_resistance(
        None, fails_high=fails_high, r_lo=R_LO, r_hi=R_HI,
        predicate=lambda r: False, prior=prior)
    assert never.never_faulty and never.resistance is None


@pytest.mark.parametrize("prior", [math.nan, math.inf, -1.0, 0.0])
def test_non_finite_priors_fall_back_to_serial(prior):
    serial, serial_calls = _search(5.4e4, True)
    guided, guided_calls = _search(5.4e4, True, prior=prior)
    assert guided.resistance == serial.resistance
    assert guided_calls == serial_calls       # prior path never entered


def test_isolate_policy_ignores_prior():
    border = 5.4e4
    serial, serial_calls = _search(border, True)
    pred = CountingPredicate(border, True)
    guided = border_resistance(None, fails_high=True, r_lo=R_LO,
                               r_hi=R_HI, predicate=pred,
                               on_error="isolate", prior=border)
    assert guided.resistance == serial.resistance
    assert pred.calls == serial_calls


def test_non_monotone_predicate_returns_a_true_transition():
    """The bitwise-identity contract assumes a monotone predicate; a
    non-monotone one may land the guided search on a different (but
    genuine) transition.  What it must never do is fabricate a border
    where the probes show none."""
    def noisy(r):
        # two transitions: faulty band in the middle of the range
        return 2e4 <= r <= 3e5

    for prior in [1.5e4, 1e5, 5e5]:
        got = border_resistance(None, fails_high=True, r_lo=R_LO,
                                r_hi=R_HI, predicate=noisy, prior=prior)
        if got.resistance is not None:
            # a served border brackets a real, probe-verified
            # False->True transition (leaf half-width < 1.03 at
            # rel_tol=0.05)
            assert not noisy(got.resistance / 1.03)
            assert noisy(got.resistance * 1.03)


@pytest.mark.parametrize("fails_high", [True, False])
def test_dense_border_sweep_identity(fails_high):
    """Dense deterministic sweep across the whole range and the leaf
    lattice: every prior leaf position must reproduce serial exactly."""
    n = 60
    for i in range(n):
        border = R_LO * (R_HI / R_LO) ** ((i + 0.5) / n)
        serial, _ = _search(border, fails_high)
        for prior in (serial.resistance, border, border * 1.07,
                      border / 1.07):
            guided, _ = _search(border, fails_high, prior=prior)
            assert guided.resistance == serial.resistance, (
                f"border={border!r} prior={prior!r}")
