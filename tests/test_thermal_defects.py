"""Temperature-dependent defect resistance (the paper's Sec. 5.2 remark)."""

import pytest

from repro.behav import behavioral_model
from repro.core import StressKind, optimize_defect
from repro.defects import Defect, DefectKind
from repro.defects.thermal import SILICON_LIKE_TCR, ThermalResistanceModel
from repro.stress import NOMINAL_STRESS


def _thermal(defect, tcr=SILICON_LIKE_TCR, stress=NOMINAL_STRESS):
    return ThermalResistanceModel(behavioral_model(defect, stress=stress),
                                  tcr=tcr)


class TestResistanceLaw:
    def test_nominal_unchanged(self):
        model = _thermal(Defect(DefectKind.O3, resistance=2e5))
        assert model.resistance_at(27.0) == pytest.approx(2e5)

    def test_silicon_like_grows_when_cold(self):
        model = _thermal(Defect(DefectKind.O3, resistance=2e5))
        assert model.resistance_at(-33.0) > model.resistance_at(27.0)
        assert model.resistance_at(87.0) < model.resistance_at(27.0)

    def test_factor_floor(self):
        model = _thermal(Defect(DefectKind.O3, resistance=2e5), tcr=-0.1)
        assert model.resistance_at(200.0) >= 2e5 * 0.05

    def test_set_resistance_means_nominal(self):
        model = _thermal(Defect(DefectKind.O3, resistance=2e5))
        model.set_resistance = model.set_defect_resistance
        model.set_defect_resistance(4e5)
        assert model.resistance_at(27.0) == pytest.approx(4e5)

    def test_requires_defect(self):
        with pytest.raises(ValueError):
            ThermalResistanceModel(behavioral_model(None))


class TestModelDelegation:
    def test_stress_change_reapplies_resistance(self):
        defect = Defect(DefectKind.O3, resistance=2e5)
        model = _thermal(defect)
        model.set_stress(NOMINAL_STRESS.with_(temp_c=-33.0))
        assert model.defect.resistance == pytest.approx(
            model.resistance_at(-33.0))

    def test_sequence_runs_through(self):
        model = _thermal(Defect(DefectKind.O3, resistance=10.0))
        seq = model.run_sequence("w1 r1 w0 r0", init_vc=0.0)
        assert not seq.any_fault

    def test_protocol_surface(self):
        model = _thermal(Defect(DefectKind.O3, resistance=2e5))
        assert model.tech is not None
        assert model.target_on_true
        state = model.idle_state(1.0)
        _, state2 = model.run_op("nop", state)
        assert state2 is state


class TestDirectionFlip:
    def test_temperature_direction_flips(self):
        """The paper's prediction: silicon-like R(T) changes the
        temperature stress value."""
        def thermal_factory(defect, stress):
            return _thermal(defect, stress=stress)

        ohmic = optimize_defect(DefectKind.O3,
                                st_kinds=(StressKind.TEMP,))
        thermal = optimize_defect(DefectKind.O3,
                                  model_factory=thermal_factory,
                                  st_kinds=(StressKind.TEMP,))
        assert ohmic.directions[StressKind.TEMP].arrow == "↑"
        assert thermal.directions[StressKind.TEMP].arrow == "↓"
