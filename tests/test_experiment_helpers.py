"""Experiment plumbing: model factory, panel rendering, constants."""

import pytest

from repro.core import NOMINAL_STRESS, StressKind
from repro.core.directions import DirectionCall, DirectionReport, PanelResult, Vote
from repro.defects import Defect, DefectKind
from repro.experiments.figures import (
    FIG6_STRESS,
    REFERENCE_DEFECT,
    PanelStudy,
    make_model,
    render_vsa_vs_temperature,
)


class TestMakeModel:
    def test_behavioral_backend(self):
        model = make_model(REFERENCE_DEFECT, NOMINAL_STRESS,
                           "behavioral")
        from repro.behav import BehavioralColumn
        assert isinstance(model, BehavioralColumn)

    def test_electrical_backend(self):
        model = make_model(REFERENCE_DEFECT, NOMINAL_STRESS,
                           "electrical")
        from repro.dram import ColumnRunner
        assert isinstance(model, ColumnRunner)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_model(REFERENCE_DEFECT, NOMINAL_STRESS, "quantum")


class TestConstants:
    def test_reference_defect_is_paper_fig1(self):
        assert REFERENCE_DEFECT.kind is DefectKind.O3
        assert REFERENCE_DEFECT.resistance == pytest.approx(200e3)

    def test_fig6_stress_values(self):
        assert FIG6_STRESS.vdd == pytest.approx(2.1)
        assert FIG6_STRESS.tcyc == pytest.approx(55e-9)
        assert FIG6_STRESS.temp_c == pytest.approx(87.0)


class TestPanelRendering:
    def _study(self, vsa):
        return PanelStudy("T", [-33.0, 27.0, 87.0],
                          [0.85, 0.92, 0.99], vsa, NOMINAL_STRESS,
                          REFERENCE_DEFECT, notes=["check"])

    def test_render_mentions_values(self):
        text = self._study([1.0, 0.8, 0.83]).render()
        assert "T=27" in text
        assert "note: check" in text

    def test_render_handles_missing_vsa(self):
        text = self._study([1.0, None, 0.83]).render()
        assert "-" in text

    def test_vsa_plot(self):
        text = render_vsa_vs_temperature(self._study([1.0, 0.8, 0.83]))
        assert "Vsa vs temperature" in text

    def test_vsa_plot_degenerate(self):
        text = render_vsa_vs_temperature(self._study([None, None, 0.8]))
        assert "undefined" in text


class TestDirectionReport:
    def _call(self, kind, value):
        panel = PanelResult("x", [0.0, 1.0], [0.0, 1.0], Vote.HIGH)
        return DirectionCall(kind, value, "write", panel, panel, False)

    def test_stressed_conditions_composition(self):
        report = DirectionReport(0, {
            StressKind.TCYC: self._call(StressKind.TCYC, 55e-9),
            StressKind.VDD: self._call(StressKind.VDD, 2.1),
        })
        sc = report.stressed_conditions(NOMINAL_STRESS)
        assert sc.tcyc == pytest.approx(55e-9)
        assert sc.vdd == pytest.approx(2.1)
        assert sc.temp_c == NOMINAL_STRESS.temp_c
