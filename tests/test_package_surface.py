"""Public-API surface checks: exports resolve, version, lazy wrappers."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_lazy_optimize_wrapper(self):
        from repro import optimize_defect
        row = optimize_defect(repro.DefectKind.B1)
        assert row.defect.kind is repro.DefectKind.B1


@pytest.mark.parametrize("module", [
    "repro.spice", "repro.dram", "repro.defects", "repro.analysis",
    "repro.core", "repro.behav", "repro.march", "repro.report",
    "repro.experiments", "repro.engine",
])
class TestSubpackages:
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_module_docstring(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 40


class TestPublicDocstrings:
    @pytest.mark.parametrize("module", [
        "repro.spice.mosfet", "repro.spice.transient",
        "repro.dram.column", "repro.dram.runner",
        "repro.analysis.border", "repro.analysis.detection",
        "repro.core.optimizer", "repro.core.directions",
        "repro.behav.model", "repro.march.runner",
        "repro.engine.request", "repro.engine.cache",
        "repro.engine.executor", "repro.engine.model",
    ])
    def test_public_callables_documented(self, module):
        mod = importlib.import_module(module)
        missing = []
        for name in dir(mod):
            if name.startswith("_"):
                continue
            obj = getattr(mod, name)
            if getattr(obj, "__module__", None) != module:
                continue
            if callable(obj) and not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"{module}: undocumented {missing}"
