"""Command-line interface (``python -m repro``)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_args(self):
        args = build_parser().parse_args(["optimize", "O3", "--comp"])
        assert args.defect == "O3"
        assert args.comp

    def test_planes_defaults(self):
        args = build_parser().parse_args(["planes"])
        assert not args.stressed
        assert args.points == 8


class TestCommands:
    def test_optimize_unknown_defect(self, capsys):
        rc = main(["optimize", "O9"])
        assert rc == 2
        assert "unknown defect" in capsys.readouterr().err

    def test_optimize_behavioral(self, capsys):
        rc = main(["optimize", "O3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "O3 (true)" in out
        assert "tcyc" in out

    def test_shmoo(self, capsys):
        rc = main(["shmoo", "--resistance", "250000"])
        assert rc == 0
        assert "Shmoo" in capsys.readouterr().out

    def test_planes_behavioral(self, capsys):
        rc = main(["planes", "--points", "5"])
        assert rc == 0
        assert "Plane of w0" in capsys.readouterr().out

    def test_coverage(self, capsys):
        rc = main(["coverage", "--points", "6"])
        assert rc == 0
        assert "march coverage" in capsys.readouterr().out
