"""Command-line interface (``python -m repro``)."""

import pytest

from repro.__main__ import build_parser, main
from repro.engine import set_default_engine


@pytest.fixture(autouse=True)
def _reset_default_engine():
    """Commands install a process-wide engine; leave none behind."""
    yield
    set_default_engine(None)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_args(self):
        args = build_parser().parse_args(["optimize", "O3", "--comp"])
        assert args.defect == "O3"
        assert args.comp

    def test_planes_defaults(self):
        args = build_parser().parse_args(["planes"])
        assert not args.stressed
        assert args.points == 8

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.workers == 1
        assert not args.no_cache
        assert not args.verbose

    def test_engine_flags_parse(self):
        args = build_parser().parse_args(
            ["coverage", "--workers", "4", "--no-cache", "--verbose"])
        assert args.workers == 4
        assert args.no_cache
        assert args.verbose


class TestCommands:
    def test_optimize_unknown_defect(self, capsys):
        rc = main(["optimize", "O9"])
        assert rc == 2
        assert "unknown defect" in capsys.readouterr().err

    def test_optimize_behavioral(self, capsys):
        rc = main(["optimize", "O3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "O3 (true)" in out
        assert "tcyc" in out

    def test_shmoo(self, capsys):
        rc = main(["shmoo", "--resistance", "250000"])
        assert rc == 0
        assert "Shmoo" in capsys.readouterr().out

    def test_planes_behavioral(self, capsys):
        rc = main(["planes", "--points", "5"])
        assert rc == 0
        assert "Plane of w0" in capsys.readouterr().out

    def test_coverage(self, capsys):
        rc = main(["coverage", "--points", "6"])
        assert rc == 0
        assert "march coverage" in capsys.readouterr().out

    def test_planes_verbose_reports_engine_stats(self, capsys):
        rc = main(["planes", "--points", "4", "--verbose"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Plane of w0" in captured.out
        assert "engine:" in captured.err
        assert "engine:" not in captured.out     # stdout stays identical

    def test_planes_no_cache(self, capsys):
        rc = main(["planes", "--points", "4", "--no-cache", "--verbose"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "0 hits" in captured.err

    def test_planes_workers_output_matches_serial(self, capsys):
        assert main(["planes", "--points", "4"]) == 0
        serial = capsys.readouterr().out
        assert main(["planes", "--points", "4", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestProfileFlag:
    def test_planes_profile_reports_to_stderr(self, capsys):
        rc = main(["planes", "--points", "4", "--profile"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Plane of w0" in captured.out
        # Sweep-level sections time every backend, so the summary always
        # carries samples now (sweep.settle / sweep.vsa / sweep.traces).
        assert "profile summary" in captured.err
        assert "sweep.settle" in captured.err
        assert "sweep.vsa" in captured.err
        assert "profile" not in captured.out  # stdout stays identical

    def test_profile_stdout_matches_unprofiled(self, capsys):
        assert main(["planes", "--points", "4"]) == 0
        plain = capsys.readouterr().out
        assert main(["planes", "--points", "4", "--profile"]) == 0
        assert capsys.readouterr().out == plain

    def test_electrical_profile_reports_kernel_counters(self, capsys):
        rc = main(["planes", "--points", "3", "--electrical",
                   "--profile", "--no-cache"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "solver kernels:" in captured.err
        assert "plan_iteration_assembly" in captured.err


class TestArrayCommand:
    @pytest.fixture(autouse=True)
    def _reset_trim_default(self):
        """--trim sets a process-wide default; leave it untouched."""
        from repro.dram.trim import set_trim_default, trim_default
        prev = trim_default()
        yield
        set_trim_default(prev)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["array"])
        assert tuple(args.geometry) == (6, 6)
        assert args.kinds is None
        assert args.trim is None

    def test_trim_flag_on_every_engine_command(self):
        for command in ("table1", "planes", "coverage", "array"):
            args = build_parser().parse_args([command, "--trim", "force"])
            assert args.trim == "force"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["array", "--trim", "maybe"])

    def test_bad_geometry(self, capsys):
        rc = main(["array", "--geometry", "0", "4"])
        assert rc == 2
        assert "positive dimensions" in capsys.readouterr().err

    def test_unknown_kind(self, capsys):
        rc = main(["array", "--kinds", "open_sn,nope"])
        assert rc == 2
        assert "unknown defect kind" in capsys.readouterr().err

    def test_array_study_runs(self, capsys):
        rc = main(["array", "--geometry", "3", "3",
                   "--kinds", "short_gnd", "--trim", "force"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "array activation disturbance, 3x3" in out
        assert "trim=force" in out
        assert "short_gnd" in out

    def test_trim_off_matches_force(self, capsys):
        borders = {}
        for policy in ("off", "force"):
            assert main(["array", "--geometry", "3", "3",
                         "--kinds", "short_gnd", "--trim", policy]) == 0
            out = capsys.readouterr().out
            borders[policy] = out.splitlines()[-1].split()[-1]
        assert borders["off"] == borders["force"]
