"""Defect catalog semantics."""

import pytest

from repro.defects import ALL_DEFECTS, Defect, DefectClass, DefectKind, Placement


class TestCatalog:
    def test_seven_kinds(self):
        assert len(DefectKind) == 7

    def test_fourteen_table_rows(self):
        assert len(ALL_DEFECTS) == 14

    def test_classes(self):
        assert DefectKind.O1.defect_class is DefectClass.OPEN
        assert DefectKind.O2.defect_class is DefectClass.OPEN
        assert DefectKind.O3.defect_class is DefectClass.OPEN
        assert DefectKind.SG.defect_class is DefectClass.SHORT
        assert DefectKind.SV.defect_class is DefectClass.SHORT
        assert DefectKind.B1.defect_class is DefectClass.BRIDGE
        assert DefectKind.B2.defect_class is DefectClass.BRIDGE

    def test_polarity_opens_fail_high(self):
        for kind in DefectKind:
            expected = kind.defect_class is DefectClass.OPEN
            assert kind.fails_high == expected

    def test_search_ranges_ordered(self):
        for kind in DefectKind:
            lo, hi = kind.search_range
            assert 0 < lo < hi

    def test_gate_open_range_higher(self):
        lo_o2, _ = DefectKind.O2.search_range
        lo_o3, _ = DefectKind.O3.search_range
        assert lo_o2 > lo_o3

    def test_descriptions_nonempty(self):
        for kind in DefectKind:
            assert kind.describe()


class TestPlacement:
    def test_true_cell_even(self):
        assert Placement.TRUE.cell_index == 0

    def test_comp_cell_odd(self):
        assert Placement.COMP.cell_index == 1


class TestDefect:
    def test_site_conversion(self):
        d = Defect(DefectKind.O3, Placement.COMP, 150e3)
        site = d.site()
        assert site.kind == "open_sn"
        assert site.cell == 1
        assert site.resistance == 150e3

    def test_with_resistance(self):
        d = Defect(DefectKind.SG)
        d2 = d.with_resistance(5e4)
        assert d2.resistance == 5e4
        assert d2.kind is DefectKind.SG
        assert d.resistance != 5e4

    def test_rejects_bad_resistance(self):
        with pytest.raises(ValueError):
            Defect(DefectKind.O1, resistance=-1.0)

    def test_name_mentions_placement(self):
        assert "comp" in Defect(DefectKind.B1, Placement.COMP).name
        assert "true" in Defect(DefectKind.B1, Placement.TRUE).name

    def test_all_defects_cover_both_placements(self):
        pairs = {(d.kind, d.placement) for d in ALL_DEFECTS}
        assert len(pairs) == 14
