"""Run diagnostics: logging setup, counters, summary rendering."""

import io
import logging

import pytest

from repro.diagnostics import (
    LOGGER_NAME,
    RunDiagnostics,
    configure_logging,
    diagnostics,
    get_logger,
    reset_diagnostics,
)


@pytest.fixture(autouse=True)
def _clean_logging_state():
    """Tests own the repro logger; restore it afterwards."""
    logger = logging.getLogger(LOGGER_NAME)
    saved = list(logger.handlers)
    saved_level = logger.level
    yield
    logger.handlers[:] = saved
    logger.setLevel(saved_level)
    reset_diagnostics()


class TestLogging:
    def test_get_logger_nests_under_package_root(self):
        assert get_logger().name == "repro"
        assert get_logger("engine").name == "repro.engine"
        assert get_logger("engine").parent is get_logger()

    def test_configure_is_idempotent(self):
        logger = logging.getLogger(LOGGER_NAME)
        logger.handlers[:] = []
        configure_logging("info")
        configure_logging("debug")
        configure_logging("warning")
        ours = [h for h in logger.handlers
                if getattr(h, "_repro_handler", False)]
        assert len(ours) == 1
        assert ours[0].level == logging.WARNING

    def test_records_route_to_the_given_stream(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("engine").info("hello from the engine")
        text = stream.getvalue()
        assert "hello from the engine" in text
        assert "repro.engine" in text

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")


class TestCounters:
    def test_fresh_run_is_uneventful(self):
        diag = reset_diagnostics()
        assert not diag.eventful
        stream = io.StringIO()
        diag.report(stream)
        assert stream.getvalue() == ""          # silent when clean

    def test_reset_installs_a_fresh_instance(self):
        first = reset_diagnostics()
        first.record_retry()
        second = reset_diagnostics()
        assert second is diagnostics()
        assert second is not first
        assert second.retries == 0

    def test_failure_accounting(self):
        diag = RunDiagnostics()
        diag.record_failure("ConvergenceError", "probe at R=1e5")
        diag.record_failure("ConvergenceError")
        diag.record_failure("TimeoutError")
        assert diag.failures == 3
        assert diag.failure_kinds == {"ConvergenceError": 2,
                                      "TimeoutError": 1}
        assert diag.timeouts == 1               # broken out automatically
        assert diag.eventful

    def test_rescue_and_infrastructure_accounting(self):
        diag = RunDiagnostics()
        diag.record_rescue("gmin")
        diag.record_rescue("gmin")
        diag.record_rescue("source")
        diag.record_retry(3)
        diag.record_worker_crash()
        diag.record_cache_eviction("/tmp/ab/abc.pkl")
        assert diag.rescues == 3
        assert diag.rescue_stages == {"gmin": 2, "source": 1}
        assert diag.retries == 3
        assert diag.worker_crashes == 1
        assert diag.cache_evictions == 1


class TestSummary:
    def test_first_line_format(self):
        diag = RunDiagnostics()
        diag.record_failure("ValueError")
        diag.record_rescue("gmin")
        diag.record_retry(2)
        first = diag.summary().splitlines()[0]
        assert first == "resilience: 1 failed, 1 rescued, 2 retried"

    def test_breakdown_lines_appear_only_when_nonzero(self):
        diag = RunDiagnostics()
        diag.record_rescue("source")
        text = diag.summary()
        assert "rescues by stage: source x1" in text
        assert "failures by kind" not in text
        assert "timeouts" not in text
        assert "worker crashes" not in text

    def test_report_prints_when_eventful(self):
        diag = RunDiagnostics()
        diag.record_worker_crash()
        stream = io.StringIO()
        diag.report(stream)
        text = stream.getvalue()
        assert text.startswith("resilience: ")
        assert "worker crashes: 1" in text
