"""Shared fixtures for the test suite.

Electrical (SPICE-level) simulations cost ~0.15 s per operation cycle, so
most analysis-level tests run on the behavioral model; a dedicated
agreement suite cross-checks the two.  Fixtures below provide both.
"""

import pytest

from repro.behav import behavioral_model
from repro.analysis import electrical_model
from repro.defects import Defect, DefectKind, Placement
from repro.stress import NOMINAL_STRESS
from repro.dram.tech import default_tech


@pytest.fixture(scope="session")
def tech():
    return default_tech()


@pytest.fixture
def o3_defect():
    """The paper's reference defect: cell open at 200 kΩ."""
    return Defect(DefectKind.O3, resistance=200e3)


@pytest.fixture
def behav_o3(o3_defect):
    return behavioral_model(o3_defect)


@pytest.fixture
def behav_factory():
    def factory(defect, stress=NOMINAL_STRESS):
        return behavioral_model(defect, stress=stress)
    return factory


@pytest.fixture
def elec_factory():
    def factory(defect, stress=NOMINAL_STRESS):
        return electrical_model(defect, stress=stress)
    return factory


@pytest.fixture(scope="session")
def healthy_runner():
    """A defect-free electrical column (session-scoped: construction is
    cheap but repeated healthy cycles are not)."""
    from repro.dram import ColumnRunner
    return ColumnRunner()
