"""Extensions — retention, diagnosis and Monte-Carlo robustness.

Three studies that go beyond the paper's evaluation but stay on its
road: retention of shorted cells vs temperature (why delay tests run
hot), dictionary-based diagnosis (the observability Shmoo plots lack),
and process-variation robustness of the direction calls (would Table 1
survive a corner lot?)."""

import numpy  # noqa: F401  (documents the MC dependency)

from repro.analysis.dictionary import build_fault_dictionary
from repro.analysis.faults import classify_fault_primitives
from repro.analysis.retention import retention_cycles
from repro.behav import behavioral_model
from repro.core import StressKind
from repro.core.montecarlo import direction_robustness
from repro.defects import Defect, DefectKind, Placement
from repro.stress import NOMINAL_STRESS


def _factory(defect, stress):
    return behavioral_model(defect, stress=stress)


def test_retention_vs_temperature(benchmark, save_report):
    """Hot devices retain less: the classic reason retention tests (and
    the paper's T↑ direction) run at high temperature.  The leakage-
    dominated case is the defect-free cell (junction leakage doubles
    every 10 K); an ohmic short adds a temperature-independent floor."""
    def run():
        out = {}
        for temp_c in (27.0, 87.0):
            model = behavioral_model(
                None, stress=NOMINAL_STRESS.with_(temp_c=temp_c))
            out[temp_c] = retention_cycles(model, 1, max_cycles=512)
        # ohmic short: retention flat over temperature
        short = {}
        for temp_c in (27.0, 87.0):
            model = behavioral_model(
                Defect(DefectKind.SG, resistance=3e6),
                stress=NOMINAL_STRESS.with_(temp_c=temp_c))
            short[temp_c] = retention_cycles(model, 1, max_cycles=64)
        return out, short

    healthy, short = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "extension_retention",
        "leakage-limited (defect-free cell):\n"
        + "\n".join(f"  T={t:+.0f}C: {r.describe()}"
                    for t, r in healthy.items())
        + "\nohmic short Sg R=3M (temperature-independent):\n"
        + "\n".join(f"  T={t:+.0f}C: {r.describe()}"
                    for t, r in short.items()))

    # leakage-limited retention collapses at heat
    assert healthy[27.0].retains_forever or \
        healthy[27.0].cycles == healthy[27.0].max_cycles
    assert healthy[87.0].cycles is not None
    # the ohmic short's retention barely moves with temperature
    s27 = short[27.0].cycles if short[27.0].cycles is not None else 64
    s87 = short[87.0].cycles if short[87.0].cycles is not None else 64
    assert abs(s27 - s87) <= max(2, s27 // 4)


def test_fault_dictionary_diagnosis(benchmark, save_report):
    """Simulated dictionary diagnosis: observe a 'failing device',
    recover the injected defect kind."""
    def run():
        dictionary = build_fault_dictionary(_factory,
                                            points_per_defect=4)
        verdicts = []
        for kind, r_ohm in ((DefectKind.O3, 600e3),
                            (DefectKind.SG, 4e4),
                            (DefectKind.SV, 4e4)):
            victim = behavioral_model(Defect(kind, resistance=r_ohm))
            observed = classify_fault_primitives(victim,
                                                 r_ohm).primitives
            ranked = dictionary.diagnose(list(observed), top=8)
            verdicts.append((kind, r_ohm, observed, ranked))
        return dictionary, verdicts

    dictionary, verdicts = benchmark.pedantic(run, rounds=1,
                                              iterations=1)
    lines = []
    hits = 0
    for kind, r_ohm, observed, ranked in verdicts:
        # Single-cell signatures have genuine equivalence classes (a
        # GND-short on the complementary line is logically identical to
        # a Vdd-short on the true one): a diagnosis is a hit when the
        # injected kind shares the *top score*.
        top_score = ranked[0][1] if ranked else 0.0
        tied = [d.kind for d, s in ranked if s == top_score]
        hit = kind in tied
        hits += hit
        lines.append(f"injected {kind.value} R={r_ohm:.3g}: observed "
                     f"{sorted(p.value for p in observed)} -> top "
                     f"candidates {[k.value for k in tied]} "
                     f"{'OK' if hit else 'MISS'}")
    save_report("extension_diagnosis", "\n".join(lines))
    assert hits >= 2, "\n".join(lines)


def test_direction_calls_survive_process_variation(benchmark,
                                                   save_report):
    """Monte-Carlo over vth/caps/offset/leakage: the Table-1 directions
    must hold for the overwhelming majority of samples."""
    def run():
        return direction_robustness(
            lambda d, s, t: behavioral_model(d, stress=s, tech=t),
            Defect(DefectKind.O3, Placement.TRUE),
            samples=10, seed=2003)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("extension_montecarlo", report.render())

    for kind in (StressKind.TCYC, StressKind.TEMP, StressKind.VDD):
        rob = report.robustness[kind]
        assert rob.confidence >= 0.8, rob.describe()
