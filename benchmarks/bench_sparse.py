"""Sparse-backend benchmark: dense LU vs CSR/SuperLU on array transients.

Measures the workload the sparse backend exists for — a transient of a
parameterized R×C DRAM cell array (:func:`repro.dram.array.build_array`)
through one precharge-then-activate cycle — with the dense backend
forced and with the sparse backend forced, and writes the numbers to
``reports/sparse.txt`` (repo root, the acceptance artifact) and
``reports/sparse.txt`` plus a machine-readable
``BENCH_sparse.json`` twin (same schema family as ``BENCH_solver.json``
and ``BENCH_lanes.json``).

Both backends run the same kernel transient loop — plan assembly,
step-matrix cache, Newton damping — so the speedup isolates the linear
solve kernel.  Parity between the two is checked against the documented
sparse fp tolerance (the backends factor in different elimination
orders, so bitwise equality is not expected — the *dense* bitwise
guarantee is covered by ``bench_solver.py`` and the golden tests).

Degrades gracefully without scipy: the sparse lane then reports the
dense fallback and ``--check`` fails with a clear message (CI installs
the ``sparse`` extra for this job).

Run standalone (CI runs ``--quick --check-parity``)::

    PYTHONPATH=src python benchmarks/bench_sparse.py [--quick] [--check]
"""

from __future__ import annotations

import platform
import sys

try:
    from benchmarks._common import best_of, emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import best_of, emit, fail, make_parser

import numpy as np  # noqa: E402

from repro.dram.array import build_array  # noqa: E402
from repro.spice.backends import scipy_available  # noqa: E402
from repro.spice.mna import System  # noqa: E402
from repro.spice.transient import transient  # noqa: E402

#: Documented dense-vs-sparse agreement tolerance (volts).  The two
#: backends solve the same assembled systems through different
#: factorization orders; observed worst-case node divergence over the
#: benchmark transient is ~1e-11 V.
PARITY_TOL = 1e-6

#: Transient stimulus: one precharge (4 ns) + row activation, 0.25 ns grid.
TSTOP = 24e-9
DT = 0.25e-9


def _make_array(n: int):
    arr = build_array(n, n)
    arr.set_waveforms(arr.activation_waveforms(n // 2))
    return arr


def _run(arr, backend: str):
    return transient(arr.circuit, TSTOP, DT, backend=backend)


def _sparse_engaged(arr) -> bool:
    """Did a forced-sparse resolution actually yield the sparse backend?"""
    from repro.spice.backends import resolve_backend
    return resolve_backend("sparse", System(arr.circuit)).sparse


def run_benchmark(quick: bool = False) -> dict:
    n = 8 if quick else 16
    rounds = 2 if quick else 3
    arr = _make_array(n)
    size = System(arr.circuit).size

    sparse_engaged = scipy_available() and _sparse_engaged(arr)

    dense_s, res_d = best_of(lambda: _run(arr, "dense"), rounds)
    sparse_s, res_s = best_of(lambda: _run(arr, "sparse"), rounds)

    # Full-trajectory parity on every storage node (strictest observers:
    # high-impedance nodes integrate any solve divergence).
    max_dv = 0.0
    for name in arr.storage_nodes:
        a, b = res_d.v(name), res_s.v(name)
        m = min(len(a), len(b))
        max_dv = max(max_dv, float(np.abs(a[:m] - b[:m]).max()))
    same_grid = np.array_equal(res_d.time, res_s.time)

    return {
        "quick": quick,
        "rounds": rounds,
        "array": f"{n}x{n}",
        "system_size": size,
        "num_nodes": arr.circuit.num_nodes,
        "scipy": scipy_available(),
        "sparse_engaged": sparse_engaged,
        "dense_s": dense_s,
        "sparse_s": sparse_s,
        "speedup": dense_s / sparse_s,
        "parity_max_dv": max_dv,
        "parity_same_grid": same_grid,
        "parity_ok": same_grid and max_dv <= PARITY_TOL,
    }


def render(res: dict) -> str:
    mode = "quick" if res["quick"] else "full"
    if res["sparse_engaged"]:
        fallback = ""
    else:
        fallback = "  (!) sparse backend unavailable - dense fallback ran\n"
    return "\n".join([
        f"sparse backend benchmark ({mode} mode)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()} / numpy {np.__version__}",
        f"timing: best of {res['rounds']} runs, {res['array']} DRAM array "
        f"({res['num_nodes']} nodes, MNA size {res['system_size']})",
        "",
        f"activation-cycle transient ({TSTOP * 1e9:.0f} ns, "
        f"dt {DT * 1e9:.2g} ns)",
        f"  dense LU backend (forced)       : {res['dense_s'] * 1e3:8.1f}"
        f" ms",
        f"  sparse CSR/SuperLU backend      : {res['sparse_s'] * 1e3:8.1f}"
        f" ms",
        f"  speedup                         : {res['speedup']:8.2f}x   "
        f"(target >= 3x, full mode)",
        fallback +
        f"  dense-vs-sparse max node dv     : {res['parity_max_dv']:.2e} V"
        f"   (tolerance {PARITY_TOL:.0e})",
        f"  parity                          : "
        f"{'ok' if res['parity_ok'] else 'MISMATCH'}",
    ])


def main(argv=None) -> int:
    args = make_parser(__doc__).parse_args(argv)

    if not scipy_available():
        # Without the [sparse] extra every "sparse" leg would silently
        # run the dense fallback — the comparison is meaningless, so
        # say so and stop (failing only when a check was requested).
        print("scipy not installed — skipping sparse legs "
              "(install the [sparse] extra to run this benchmark)",
              file=sys.stderr)
        return 1 if (args.check or args.check_parity) else 0

    res = run_benchmark(quick=args.quick)
    emit("sparse", render(res),
         dict(res, parity="ok" if res["parity_ok"] else "mismatch"))

    if args.check or args.check_parity:
        if not res["sparse_engaged"]:
            return fail("sparse backend did not engage (scipy missing "
                        "or pattern unavailable)")
        if not res["parity_ok"]:
            return fail("dense-vs-sparse parity outside tolerance")
    if args.check and not args.quick and res["speedup"] < 3.0:
        return fail("sparse speedup target (3x) missed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
