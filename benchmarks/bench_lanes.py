"""Lane-kernel benchmark: batched multi-lane sweeps vs the per-lane path.

Measures the two things the lane layer was built for and writes the
numbers to ``reports/lanes.txt`` (repo root, the acceptance artifact)
and ``reports/lanes.txt`` plus a machine-readable
``BENCH_lanes.json``:

* the Fig. 2 electrical plane sweep (:func:`repro.experiments
  .fig2_result_planes` on a 16-point resistance grid) through a fresh
  cache-less engine, once with ``lanes=16`` (every sweep batch stacks
  into multi-lane transients) and once with ``lanes=0`` (the per-lane
  solver-kernel path of the previous PR) — same requests, same results,
  different kernels;
* adaptive border-resistance refinement (:func:`repro.core
  .find_border_adaptive`) vs the dense grid scan on the Table 1 defect
  catalog, counting simulated operation cycles through the engine's
  statistics — the BRs must be identical, the adaptive scan must spend
  at most a third of the cycles.

Parity between the lane and per-lane plane sweeps is checked against
the documented fp tolerance (``1e-5`` on node voltages — see DESIGN.md
section 5d); the border estimates must agree to the same relative
tolerance.

Run standalone (CI runs ``--quick --check-parity``)::

    PYTHONPATH=src python benchmarks/bench_lanes.py [--quick] [--check]
"""

from __future__ import annotations

import platform

try:
    from benchmarks._common import best_of, emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import best_of, emit, fail, make_parser

import numpy as np  # noqa: E402

from repro.core.border import find_border_adaptive  # noqa: E402
from repro.analysis.curves import border_crossing_scan  # noqa: E402
from repro.analysis.planes import log_grid  # noqa: E402
from repro.defects import ALL_DEFECTS  # noqa: E402
from repro.engine import BatchExecutor, EngineModel  # noqa: E402
from repro.experiments.figures import fig2_result_planes  # noqa: E402

#: Lanes stacked per transient — the acceptance target is >= 16.
#: The kernel's advantage grows with width (per-step numpy dispatch is
#: amortized over more lanes), so the benchmark runs the grid at full
#: batch width.
LANE_WIDTH = 32

#: Documented lane-vs-per-lane tolerance on node voltages (DESIGN.md 5d).
LANE_TOL = 1e-5

#: Dense-grid resolution for the adaptive-BR comparison.
BR_POINTS = 24


# ----------------------------------------------------------------------
# Fig. 2 plane sweep: lanes=16 vs the per-lane kernel path
# ----------------------------------------------------------------------
def _run_planes(lanes: int, points: int):
    """One cold Fig. 2 electrical sweep through a cache-less engine."""
    engine = BatchExecutor(cache=None, lanes=lanes)
    return fig2_result_planes(backend="electrical", points=points,
                              engine=engine)


def _plane_curves(study) -> list[list[float | None]]:
    """The numeric curves a parity check must preserve."""
    planes = study.planes
    return [planes.w0.curve(1), planes.w0.curve(2),
            planes.w1.curve(1), planes.w1.curve(2),
            planes.r.vsa.thresholds]


def _planes_parity(lane_study, legacy_study) -> tuple[bool, float]:
    """Compare lane vs per-lane sweeps within the documented tolerance.

    Returns ``(ok, max_abs_diff)`` over every curve value; the border
    estimates are additionally compared at the same relative tolerance.
    """
    max_diff = 0.0
    ok = True
    for a_curve, b_curve in zip(_plane_curves(lane_study),
                                _plane_curves(legacy_study)):
        for a, b in zip(a_curve, b_curve):
            if (a is None) != (b is None):
                ok = False
                continue
            if a is None:
                continue
            max_diff = max(max_diff, abs(a - b))
    ok &= max_diff <= LANE_TOL
    ba, bb = lane_study.border, legacy_study.border
    if (ba is None) != (bb is None):
        ok = False
    elif ba is not None:
        ok &= abs(ba - bb) <= LANE_TOL * bb
    return ok, max_diff


# ----------------------------------------------------------------------
# Adaptive BR refinement vs the dense grid scan (Table 1 defects)
# ----------------------------------------------------------------------
def _br_model(defect):
    """A fresh cache-less behavioral engine model (exact cycle counts)."""
    engine = BatchExecutor(cache=None)
    return EngineModel(defect, backend="behavioral", engine=engine)


def _adaptive_vs_dense(defects) -> dict:
    """Run both BR searches per defect, tallying engine cycle counts."""
    rows = []
    adaptive_cycles = dense_cycles = 0
    identical = True
    for defect in defects:
        model = _br_model(defect)
        scan = find_border_adaptive(model, defect, points=BR_POINTS)
        a_cycles = model.engine.stats.cycles_simulated
        adaptive_cycles += a_cycles

        model = _br_model(defect)
        r_lo, r_hi = defect.kind.search_range
        dense = border_crossing_scan(model, log_grid(r_lo, r_hi, BR_POINTS),
                                     dense=True)
        d_cycles = model.engine.stats.cycles_simulated
        dense_cycles += d_cycles

        same = scan.border == dense.border
        identical &= same
        rows.append({"defect": defect.name, "border": scan.border,
                     "adaptive_cycles": a_cycles, "dense_cycles": d_cycles,
                     "identical": same})
    return {
        "defects": rows,
        "adaptive_cycles": adaptive_cycles,
        "dense_cycles": dense_cycles,
        "cycle_ratio": adaptive_cycles / dense_cycles,
        "identical_brs": identical,
    }


def run_benchmark(quick: bool = False) -> dict:
    points = LANE_WIDTH          # one full-width lane group per sweep
    rounds = 1 if quick else 2

    lane_s, lane_study = best_of(
        lambda: _run_planes(LANE_WIDTH, points), rounds)
    legacy_s, legacy_study = best_of(
        lambda: _run_planes(0, points), rounds)
    parity_ok, max_diff = _planes_parity(lane_study, legacy_study)

    defects = ALL_DEFECTS[:4] if quick else ALL_DEFECTS
    br = _adaptive_vs_dense(defects)

    return {
        "quick": quick,
        "rounds": rounds,
        "points": points,
        "lane_width": LANE_WIDTH,
        "lane_tol": LANE_TOL,
        "planes_lane_s": lane_s,
        "planes_legacy_s": legacy_s,
        "planes_speedup": legacy_s / lane_s,
        "parity_ok": parity_ok,
        "parity_max_diff": max_diff,
        "br_points": BR_POINTS,
        "br_defects": len(defects),
        "br_adaptive_cycles": br["adaptive_cycles"],
        "br_dense_cycles": br["dense_cycles"],
        "br_cycle_ratio": br["cycle_ratio"],
        "br_identical": br["identical_brs"],
        "br_rows": br["defects"],
    }


def render(res: dict) -> str:
    mode = "quick" if res["quick"] else "full"
    lines = [
        f"lane kernel benchmark ({mode} mode)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()} / numpy {np.__version__}",
        f"timing: best of {res['rounds']} runs, fresh cache-less engine "
        f"each",
        "",
        f"fig2 electrical plane sweep ({res['points']}-point grid, "
        f"{res['lane_width']} lanes)",
        f"  per-lane kernel path (lanes=0)  : "
        f"{res['planes_legacy_s'] * 1e3:8.1f} ms",
        f"  batched lane kernel (lanes={res['lane_width']:2d}) : "
        f"{res['planes_lane_s'] * 1e3:8.1f} ms",
        f"  speedup                         : "
        f"{res['planes_speedup']:8.2f}x   (target >= 3x)",
        f"  result parity                   : "
        f"{'within' if res['parity_ok'] else 'EXCEEDS'} "
        f"{res['lane_tol']:g} tolerance "
        f"(max |dV| = {res['parity_max_diff']:.3g})",
        "",
        f"adaptive BR refinement vs dense {res['br_points']}-point scan "
        f"({res['br_defects']} Table 1 defects, behavioral)",
        f"  dense grid cycles               : "
        f"{res['br_dense_cycles']:8d}",
        f"  adaptive scan cycles            : "
        f"{res['br_adaptive_cycles']:8d}",
        f"  cycle ratio                     : "
        f"{res['br_cycle_ratio']:8.2f}    (target <= 0.33)",
        f"  borders identical               : "
        f"{'yes' if res['br_identical'] else 'NO'}",
    ]
    for row in res["br_rows"]:
        border = "-" if row["border"] is None \
            else format(row["border"], ".4g")
        lines.append(f"    {row['defect']:12s} BR={border:>10s} ohm   "
                     f"{row['adaptive_cycles']:4d} vs "
                     f"{row['dense_cycles']:4d} cycles   "
                     f"{'ok' if row['identical'] else 'MISMATCH'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = make_parser(__doc__).parse_args(argv)

    res = run_benchmark(quick=args.quick)
    payload = {k: v for k, v in res.items() if k != "br_rows"}
    payload["parity"] = ("within-tolerance" if res["parity_ok"]
                         else "mismatch")
    emit("lanes", render(res), payload)

    strict = args.check or args.check_parity
    if strict and not (res["parity_ok"] and res["br_identical"]):
        return fail("lane parity or BR identity broken")
    if args.check and (res["planes_speedup"] < 3.0
                       or res["br_cycle_ratio"] > 1.0 / 3.0):
        return fail("speedup / cycle-ratio targets missed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
