"""Fig. 5 — optimizing supply voltage: Vdd = 2.1 / 2.4 / 2.7 V at 200 kΩ.

Paper claims reproduced (electrical backend):

* higher Vdd leaves a higher ``Vc`` after ``w0`` (proportionally higher
  starting level → weaker write of 0),
* higher Vdd *helps* the read (the precharge level and with it ``Vsa``
  scale up, widening the range read as 0) — so the two panels conflict,
* the BR tie-break resolves it: the border is lowest at 2.1 V (paper:
  130 k / 200 k / 220 kΩ for 2.1 / 2.4 / 2.7 V).
"""

from repro.experiments import fig5_voltage_panels
from repro.experiments.figures import REFERENCE_DEFECT


def test_fig5_voltage_panels_electrical(benchmark, save_report):
    study = benchmark.pedantic(
        lambda: fig5_voltage_panels(backend="electrical"),
        rounds=1, iterations=1)

    save_report("fig5_vdd", study.render())

    lo, nom, hi = study.w0_residuals
    assert lo < nom < hi, "w0 residual must rise with Vdd"

    vsa_lo, vsa_nom, vsa_hi = study.vsa
    assert vsa_lo < vsa_nom < vsa_hi, \
        "Vsa must scale up with Vdd (reads favour 0 at high supply)"


def test_fig5_border_ordering(benchmark, save_report):
    """BR(2.1) < BR(2.4) < BR(2.7): the low supply extreme wins."""
    from repro.analysis import border_resistance, electrical_model
    from repro.stress import NOMINAL_STRESS

    def border_at(vdd):
        model = electrical_model(REFERENCE_DEFECT,
                                 stress=NOMINAL_STRESS.with_(vdd=vdd))
        return border_resistance(model, fails_high=True, r_lo=5e4,
                                 r_hi=2e6, rel_tol=0.04,
                                 sequences=("w1^6 w0 r0",)).resistance

    def run():
        return [border_at(v) for v in (2.1, 2.4, 2.7)]

    borders = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig5_borders",
                "\n".join(f"BR({v} V) = {b:.3g} ohm"
                          for v, b in zip((2.1, 2.4, 2.7), borders)) +
                "\n(paper: 130k / 200k / 220k)")
    assert borders[0] < borders[1] < borders[2], \
        "the border must grow with supply voltage"
