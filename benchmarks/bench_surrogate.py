"""Surrogate-first answer tier: served fraction, identity, cold speedup.

Measures the workload the surrogate tier exists for, in two legs:

* **Direction serving** — every Table-1 {defect, ST} direction query
  (14 defects × 4 ST axes), answered three ways.  The electrical
  reference flow (write/read panels on the SPICE-level column, border
  tie-breaks by electrical bisection) sets the ground truth.  Then one
  serve-mode campaign runs the query set twice through
  :meth:`repro.surrogate.SurrogateTier.serve_direction` (behavioral
  twin panels, tie-breaks from calibrated BR predictions): the *cold*
  pass serves what its uncertainty gate allows and falls back to the
  electrical flow for the rest, journaling every fallback border as a
  calibration point; the *warm* pass — a resumed campaign re-asking
  the same questions — serves tie-breaks from the journaled electrical
  borders (exact reconstruction, sigma 0).  Gated: ≥ 60% of the warm
  pass served surrogate-only (zero electrical simulations), and
  **every** served direction, both passes, identical to the electrical
  reference.
* **Cold seven-kind BR study** — the seven Table-1 defect kinds' border
  resistances at the nominal SC, serial electrical bisection vs a
  *cold* ``prior``-mode tier (empty journal, packaged seed calibration
  only) seeding the bracket.  Gated: ≥ 3x end-to-end, with every
  border **exactly** equal to the serial search (the prior-guided
  descent replays the same bisection lattice, so this is bitwise
  identity, not a tolerance).

Writes ``reports/surrogate.txt`` (repo root, the acceptance artifact)
plus a machine-readable ``BENCH_surrogate.json`` twin.  ``--quick``
shrinks the defect sets for CI; ``--check-parity`` gates identity only
(CI runners are too noisy for wall-clock gates), ``--check`` gates
identity, served fraction and (full mode) the 3x speedup.

Run standalone (CI runs ``--quick --check-parity``)::

    PYTHONPATH=src python benchmarks/bench_surrogate.py [--quick] [--check]
"""

from __future__ import annotations

import platform
import time

try:
    from benchmarks._common import emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import emit, fail, make_parser

import numpy as np  # noqa: E402

from repro.analysis.detection import derive_detection_condition  # noqa: E402
from repro.analysis.interface import electrical_model  # noqa: E402
from repro.core.border import (  # noqa: E402
    find_border_resistance,
    more_effective,
)
from repro.core.directions import analyze_direction  # noqa: E402
from repro.core.optimizer import (  # noqa: E402
    DEFAULT_ST_KINDS,
    probe_resistance,
)
from repro.defects.catalog import ALL_DEFECTS, Defect  # noqa: E402
from repro.engine import (  # noqa: E402
    BatchExecutor,
    ResultCache,
    set_default_engine,
)
from repro.stress import NOMINAL_STRESS  # noqa: E402
from repro.surrogate import SurrogateTier, set_active_tier  # noqa: E402

#: Bisection convergence of every border search in this benchmark (the
#: CLI default — and the tolerance the packaged seeds were measured at).
BR_REL_TOL = 0.05

#: Gate (a): minimum fraction of direction queries served surrogate-only.
SERVED_FRACTION_TARGET = 0.60

#: Gate (b): minimum end-to-end speedup of the cold prior-mode BR study.
COLD_SPEEDUP_TARGET = 3.0


def _fresh_engine() -> BatchExecutor:
    """A private engine per leg so no leg rides another's cache."""
    engine = BatchExecutor(cache=ResultCache(), workers=1)
    set_default_engine(engine)
    return engine


# ----------------------------------------------------------------------
# leg 1: Table-1 direction queries, electrical reference vs serve mode
# ----------------------------------------------------------------------
def _electrical_directions(defects) -> tuple[float, dict, dict]:
    """The reference: per-{defect, ST} directions, all-electrical."""
    _fresh_engine()
    set_active_tier(None)
    t0 = time.perf_counter()
    chosen: dict[tuple[str, str], float] = {}
    context: dict[str, tuple[int, float]] = {}
    for defect in defects:
        model = electrical_model(defect, stress=NOMINAL_STRESS)
        border = find_border_resistance(model, defect,
                                        stress=NOMINAL_STRESS,
                                        rel_tol=BR_REL_TOL,
                                        surrogate=False)
        r_probe = probe_resistance(defect, border)
        model.set_stress(NOMINAL_STRESS)
        detection = derive_detection_condition(model, r_probe)
        fault_value = detection.expected if detection is not None else 0
        context[defect.name] = (fault_value, r_probe)
        model.set_defect_resistance(r_probe)
        for kind in DEFAULT_ST_KINDS:
            call = analyze_direction(model, kind, fault_value,
                                     base=NOMINAL_STRESS)
            if call.needs_border_tiebreak:
                best_value, best_border = None, None
                for value in call.tiebreak_candidates:
                    sc = NOMINAL_STRESS.with_value(kind, value)
                    b = find_border_resistance(model, defect, stress=sc,
                                               rel_tol=BR_REL_TOL,
                                               surrogate=False)
                    if best_border is None or more_effective(defect, b,
                                                             best_border):
                        best_value, best_border = value, b
                call.chosen_value = best_value
                model.set_defect_resistance(r_probe)
            chosen[(defect.name, kind.value)] = call.chosen_value
    return time.perf_counter() - t0, chosen, context


def _campaign_pass(tier, defects, context) -> tuple[float, dict, dict]:
    """One serve-mode pass over every {defect, ST} direction query.

    A query the tier refuses falls back to the electrical flow — the
    same panels + tie-break bisections the optimizer runs — with the
    tier's prior view seeding the brackets and journaling every border
    as a calibration point (the active-learning loop the next pass
    profits from).
    """
    t0 = time.perf_counter()
    served: dict[tuple[str, str], float] = {}
    fellback: dict[tuple[str, str], float] = {}
    for defect in defects:
        fault_value, r_probe = context[defect.name]
        model = None
        for kind in DEFAULT_ST_KINDS:
            call = tier.serve_direction(defect, kind, fault_value,
                                        base=NOMINAL_STRESS,
                                        r_probe=r_probe,
                                        rel_tol=BR_REL_TOL)
            if call is not None:
                served[(defect.name, kind.value)] = call.chosen_value
                continue
            if model is None:
                model = electrical_model(defect, stress=NOMINAL_STRESS)
                model.set_defect_resistance(r_probe)
            ecall = analyze_direction(model, kind, fault_value,
                                      base=NOMINAL_STRESS)
            if ecall.needs_border_tiebreak:
                best_value, best_border = None, None
                for value in ecall.tiebreak_candidates:
                    sc = NOMINAL_STRESS.with_value(kind, value)
                    b = find_border_resistance(
                        model, defect, stress=sc, rel_tol=BR_REL_TOL,
                        surrogate=tier.prior_view())
                    if best_border is None or more_effective(defect, b,
                                                             best_border):
                        best_value, best_border = value, b
                ecall.chosen_value = best_value
                model.set_defect_resistance(r_probe)
            fellback[(defect.name, kind.value)] = ecall.chosen_value
    return time.perf_counter() - t0, served, fellback


def _direction_leg(defects) -> dict:
    electrical_s, reference, context = _electrical_directions(defects)

    # One serve-mode campaign, two passes over the same query set: the
    # cold pass journals its fallbacks' electrical borders, the warm
    # pass (a resumed campaign re-asking its questions) serves from
    # the journal with exact reconstructed results.
    engine = _fresh_engine()
    tier = SurrogateTier("serve", stats=engine.stats)
    set_active_tier(None)      # the tier is driven directly
    cold_s, cold_served, cold_fell = _campaign_pass(tier, defects,
                                                    context)
    warm_s, warm_served, warm_fell = _campaign_pass(tier, defects,
                                                    context)

    total = len(reference)
    mismatches = sorted(
        f"{d}/{k} ({label})"
        for label, answers in (("cold", cold_served),
                               ("warm", warm_served))
        for (d, k), v in answers.items() if v != reference[(d, k)])
    return {
        "queries": total,
        "cold_served": len(cold_served),
        "cold_fraction": len(cold_served) / total if total else 0.0,
        "served": len(warm_served),
        "served_fraction": len(warm_served) / total if total else 0.0,
        "fallbacks": len(warm_fell),
        "directions_identical": not mismatches,
        "mismatches": mismatches,
        "electrical_s": electrical_s,
        "cold_s": cold_s,
        "serve_s": warm_s,
        "surrogate_refits": engine.stats.surrogate_refits,
    }


# ----------------------------------------------------------------------
# leg 2: cold seven-kind BR study, serial vs prior-seeded bisection
# ----------------------------------------------------------------------
def _cold_study(defects, mode: str) -> tuple[float, dict, object]:
    """One cold pass over the kinds' nominal borders (fresh engine)."""
    engine = _fresh_engine()
    tier = None
    if mode == "prior":
        tier = SurrogateTier("prior", stats=engine.stats)
        set_active_tier(tier)
    else:
        set_active_tier(None)
    try:
        t0 = time.perf_counter()
        borders = {}
        for defect in defects:
            model = electrical_model(defect, stress=NOMINAL_STRESS)
            borders[defect.name] = find_border_resistance(
                model, defect, stress=NOMINAL_STRESS,
                rel_tol=BR_REL_TOL,
                surrogate=False if mode == "serial" else None)
        elapsed = time.perf_counter() - t0
    finally:
        set_active_tier(None)
    return elapsed, borders, engine.stats


def _cold_leg(defects) -> dict:
    serial_s, serial_borders, _ = _cold_study(defects, "serial")
    prior_s, prior_borders, stats = _cold_study(defects, "prior")
    identical = all(serial_borders[n] == prior_borders[n]
                    for n in serial_borders)
    return {
        "kinds": [d.name for d in defects],
        "serial_s": serial_s,
        "prior_s": prior_s,
        "speedup": serial_s / prior_s,
        "borders": {n: b.resistance for n, b in serial_borders.items()},
        "borders_identical": identical,
        "surrogate_refits": stats.surrogate_refits,
    }


def run_benchmark(quick: bool = False) -> dict:
    if quick:
        names = ("O1 (true)", "O3 (true)", "Sg (true)", "B1 (true)")
        dir_defects = [d for d in ALL_DEFECTS if d.name in names]
        cold_defects = dir_defects[:2]
    else:
        dir_defects = list(ALL_DEFECTS)
        cold_defects = [d for d in ALL_DEFECTS
                        if d.name.endswith("(true)")]

    directions = _direction_leg(dir_defects)
    cold = _cold_leg(cold_defects)
    parity_ok = (directions["directions_identical"]
                 and cold["borders_identical"])
    return {
        "quick": quick,
        "rel_tol": BR_REL_TOL,
        "defects": [d.name for d in dir_defects],
        "directions": directions,
        "cold7": cold,
        "parity_ok": parity_ok,
    }


def render(res: dict) -> str:
    mode = "quick" if res["quick"] else "full"
    d = res["directions"]
    c = res["cold7"]
    lines = [
        f"surrogate answer tier benchmark ({mode} mode)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()} / numpy {np.__version__}",
        f"workload: {d['queries']} Table-1 direction queries "
        f"({len(res['defects'])} defects x {len(DEFAULT_ST_KINDS)} STs) "
        f"+ {len(c['kinds'])}-kind cold BR study, rel_tol={BR_REL_TOL}",
        "",
        "direction serving (serve-mode campaign, two passes)",
        f"  cold pass served                : {d['cold_served']}/"
        f"{d['queries']} ({d['cold_fraction']:.0%}), "
        f"{d['surrogate_refits']} calibration points journaled",
        f"  warm pass served surrogate-only : {d['served']}/"
        f"{d['queries']} ({d['served_fraction']:.0%}; "
        f"target >= {SERVED_FRACTION_TARGET:.0%})",
        f"  warm-pass electrical fallbacks  : {d['fallbacks']}",
        f"  served directions vs electrical : "
        f"{'identical' if d['directions_identical'] else 'MISMATCH: ' + ', '.join(d['mismatches'])}",
        f"  electrical reference            : {d['electrical_s']:8.1f} s",
        f"  cold pass (serves + fallbacks)  : {d['cold_s']:8.1f} s",
        f"  warm pass                       : {d['serve_s']:8.1f} s",
        "",
        "cold BR study (prior mode, empty journal, packaged seeds)",
        f"  serial electrical bisection     : {c['serial_s']:8.1f} s",
        f"  prior-seeded bisection          : {c['prior_s']:8.1f} s",
        f"  speedup                         : {c['speedup']:8.2f}x "
        f"(target >= {COLD_SPEEDUP_TARGET:.0f}x, full mode)",
        f"  border identity                 : "
        f"{'exact, all kinds' if c['borders_identical'] else 'MISMATCH'}",
        f"  calibration points journaled    : {c['surrogate_refits']}",
        "",
        f"  parity                          : "
        f"{'ok' if res['parity_ok'] else 'MISMATCH'}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    args = make_parser(__doc__).parse_args(argv)

    res = run_benchmark(quick=args.quick)
    emit("surrogate", render(res),
         dict(res, parity="ok" if res["parity_ok"] else "mismatch"))

    if (args.check or args.check_parity) and not res["parity_ok"]:
        return fail("surrogate-vs-electrical identity broken")
    if args.check:
        frac = res["directions"]["served_fraction"]
        if frac < SERVED_FRACTION_TARGET:
            return fail(f"served fraction {frac:.0%} below "
                        f"{SERVED_FRACTION_TARGET:.0%} target")
        if not args.quick \
                and res["cold7"]["speedup"] < COLD_SPEEDUP_TARGET:
            return fail(f"cold prior-mode speedup "
                        f"{res['cold7']['speedup']:.2f}x below "
                        f"{COLD_SPEEDUP_TARGET:.0f}x target")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
