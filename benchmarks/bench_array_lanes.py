"""Array-scale lane batching: speculative BR bisection vs the serial path.

Measures the workload PR 9 exists for — the activation-disturbance
border-resistance study (:func:`repro.experiments.array
.activation_disturb_br`) on an R×C array, every array-routed defect
kind — once through a serial engine (``lanes=0``: one netlist rebuild
and one transient per probe) and once through a lane-batched engine
(``lanes=16``: the bisection speculatively probes the midpoint tree of
its bracket, the probes stack as lanes of one batched transient, and
successive generations warm-start from the previous one's converged
trajectories).  Writes ``reports/array_lanes.txt`` (repo root, the
acceptance artifact) and ``reports/array_lanes.txt`` plus a
machine-readable ``BENCH_array_lanes.json`` twin.

The headline leg runs **untrimmed** (``trim="off"``): that is where the
netlists are large enough for the sparse lane system (shared symbolic
factorization, per-lane numeric refactorization) to matter, and where
the serial path pays the full rebuild cost per probe.  The trimmed leg
(``trim="force"``) rides the dense lane kernel on the small active
window — its speedup is reported but not gated (the window is small
enough that per-step numpy dispatch dominates).

Three parity legs guard the speedup:

* **BR identity** — the speculative bisection consumes bitwise the same
  probe resistances as the serial loop (see
  :func:`repro.experiments.array._midpoint_tree`), so the returned
  border must be *exactly* equal, per kind, on both trim policies;
* **trajectory** — :class:`~repro.dram.runner.ArrayLaneRunner` recorded
  waveforms vs the serial :class:`~repro.dram.runner.ArrayRunner`, per
  kind and per lane, within the documented 1e-5 lane tolerance, with
  identical sensed bits;
* **degradation** — without scipy the sparse lane system falls back to
  the dense kernel (``make_lane_system``) and the parity legs must
  still hold (the speedup gate only applies in full mode).

Run standalone (CI runs ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_array_lanes.py [--quick] [--check]
"""

from __future__ import annotations

import platform
import time

try:
    from benchmarks._common import emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import emit, fail, make_parser

import numpy as np  # noqa: E402

from repro.dram.column import DEFECT_KINDS, DefectSite  # noqa: E402
from repro.dram.runner import ArrayLaneRunner, ArrayRunner  # noqa: E402
from repro.engine import BatchExecutor  # noqa: E402
from repro.experiments.array import activation_disturb_br  # noqa: E402
from repro.spice.backends import scipy_available  # noqa: E402
from repro.stress import NOMINAL_STRESS  # noqa: E402

#: Lane width of the batched engine (acceptance target's width).
LANE_WIDTH = 16

#: Documented lane-vs-serial tolerance on node voltages (DESIGN.md 5d/5h).
LANE_TOL = 1e-5

#: Bisection convergence of the BR study legs (the CLI default).
BR_REL_TOL = 0.05

#: Defect-resistance lanes of the trajectory-parity leg (log-spread
#: across the typical border decade).
TRAJ_LANES = (1e4, 3e5, 1e7)


def _center(n: int) -> int:
    return (n // 2) * n + n // 2


def _study(lanes: int, *, n: int, kinds, trim: str):
    """One full BR study: wall time, per-kind borders, engine stats."""
    engine = BatchExecutor(cache=None, lanes=lanes)
    t0 = time.perf_counter()
    borders = {
        kind: activation_disturb_br(kind, geometry=(n, n), cell=_center(n),
                                    trim=trim, engine=engine,
                                    rel_tol=BR_REL_TOL)
        for kind in kinds}
    elapsed = time.perf_counter() - t0
    return elapsed, borders, engine.stats


def _br_leg(n: int, kinds, trim: str) -> dict:
    serial_s, serial_br, _ = _study(0, n=n, kinds=kinds, trim=trim)
    lane_s, lane_br, stats = _study(LANE_WIDTH, n=n, kinds=kinds, trim=trim)
    identical = all(serial_br[k] == lane_br[k] for k in kinds)
    return {
        "trim": trim,
        "serial_s": serial_s,
        "lane_s": lane_s,
        "speedup": serial_s / lane_s,
        "borders": {k: serial_br[k] for k in kinds},
        "br_identical": identical,
        "lane_groups": stats.lane_groups,
        "lane_sparse_groups": stats.lane_sparse_groups,
        "lane_warm_hits": stats.lane_warm_hits,
        "lane_warm_misses": stats.lane_warm_misses,
    }


def _trajectory_parity(n: int, kinds) -> dict:
    """Lane-vs-serial recorded waveforms, both trim policies."""
    worst = 0.0
    sensed_ok = True
    for trim in ("off", "force"):
        for kind in kinds:
            lane_runner = ArrayLaneRunner(
                defect_kind=kind, cell=_center(n), geometry=(n, n),
                trim=trim, record=True)
            lane_rows, _ = lane_runner.run_sequences(
                "r", [(r, NOMINAL_STRESS.vdd) for r in TRAJ_LANES])
            for r, row in zip(TRAJ_LANES, lane_rows):
                serial = ArrayRunner(
                    defect=DefectSite(kind, _center(n), r),
                    geometry=(n, n), trim=trim, record=True)
                ref = serial.run_sequence("r", init_vc=NOMINAL_STRESS.vdd)
                for a, b in zip(row.results, ref.results):
                    worst = max(worst,
                                float(np.abs(a.vc - b.vc).max()),
                                float(np.abs(a.extra["bl"]
                                             - b.extra["bl"]).max()))
                    sensed_ok &= a.sensed == b.sensed
    return {"max_dv": worst, "sensed_ok": sensed_ok,
            "ok": sensed_ok and worst <= LANE_TOL}


def run_benchmark(quick: bool = False) -> dict:
    if quick:
        n_study, n_traj = 8, 6
        kinds = ("open_sn", "short_gnd", "bridge_wl")
    else:
        n_study, n_traj = 16, 6
        kinds = DEFECT_KINDS

    headline = _br_leg(n_study, kinds, "off")
    trimmed = _br_leg(n_study, kinds, "force")
    trajectory = _trajectory_parity(n_traj, kinds)

    parity_ok = (headline["br_identical"] and trimmed["br_identical"]
                 and trajectory["ok"])
    return {
        "quick": quick,
        "array": f"{n_study}x{n_study}",
        "kinds": list(kinds),
        "lane_width": LANE_WIDTH,
        "scipy": scipy_available(),
        "headline": headline,
        "trimmed": trimmed,
        "trajectory_parity": trajectory,
        "parity_ok": parity_ok,
    }


def _leg_lines(label: str, leg: dict) -> list[str]:
    return [
        f"{label} (trim={leg['trim']})",
        f"  serial (lanes=0)                : "
        f"{leg['serial_s'] * 1e3:8.1f} ms",
        f"  lane-batched (lanes={LANE_WIDTH})         : "
        f"{leg['lane_s'] * 1e3:8.1f} ms",
        f"  speedup                         : {leg['speedup']:8.2f}x",
        f"  border identity                 : "
        f"{'exact, all kinds' if leg['br_identical'] else 'MISMATCH'}",
        f"  lane groups                     : {leg['lane_groups']} "
        f"({leg['lane_sparse_groups']} sparse), "
        f"{leg['lane_warm_hits']} warm hits / "
        f"{leg['lane_warm_misses']} misses",
    ]


def render(res: dict) -> str:
    mode = "quick" if res["quick"] else "full"
    traj = res["trajectory_parity"]
    lines = [
        f"array-scale lane batching benchmark ({mode} mode)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()} / numpy {np.__version__}"
        f"{' / scipy' if res['scipy'] else ' / no scipy'}",
        f"workload: {res['array']} activation-disturb BR study, "
        f"{len(res['kinds'])} defect kinds, rel_tol={BR_REL_TOL}",
        "",
    ]
    lines += _leg_lines("headline: untrimmed array, sparse lanes",
                        res["headline"])
    lines += [""]
    lines += _leg_lines("trimmed active window, dense lanes "
                        "(informational)", res["trimmed"])
    lines += [
        "",
        f"  headline speedup target         : >= 3x (full mode): "
        f"{'met' if res['headline']['speedup'] >= 3.0 else 'missed'}",
        f"  lane-vs-serial trajectory max dv: {traj['max_dv']:.2e} V"
        f"   (tolerance {LANE_TOL:.0e})",
        f"  sensed bits                     : "
        f"{'identical' if traj['sensed_ok'] else 'MISMATCH'}",
        f"  parity                          : "
        f"{'ok' if res['parity_ok'] else 'MISMATCH'}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    args = make_parser(__doc__).parse_args(argv)

    res = run_benchmark(quick=args.quick)
    emit("array_lanes", render(res),
         dict(res, parity="ok" if res["parity_ok"] else "mismatch"))

    if (args.check or args.check_parity) and not res["parity_ok"]:
        return fail("lane-vs-serial parity or BR identity broken")
    if args.check and not args.quick and res["headline"]["speedup"] < 3.0:
        return fail("array lane speedup target (3x, untrimmed) missed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
