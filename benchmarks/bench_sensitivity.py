"""Extension — quantitative stress-sensitivity ranking.

Goes one step beyond the paper's direction calls: finite-difference
border sensitivities over each ST's specified excursion, ranked by
influence.  Confirms that every sensitivity's sign agrees with the
Table-1 direction and reports which stress buys the most failing range
for the reference defect."""

from repro.behav import behavioral_model
from repro.core import StressKind, stress_sensitivity
from repro.defects import Defect, DefectKind


def _factory(defect, stress):
    return behavioral_model(defect, stress=stress)


def test_sensitivity_ranking(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: stress_sensitivity(_factory, Defect(DefectKind.O3)),
        rounds=1, iterations=1)

    save_report("sensitivity", report.render())

    sens = report.sensitivities
    # Signs must agree with the Table-1 directions.
    assert sens[StressKind.TCYC].favours_high is False
    assert sens[StressKind.VDD].favours_high is False
    assert sens[StressKind.TEMP].favours_high is True
    assert sens[StressKind.DUTY].favours_high is False

    # Every axis moves the border by a measurable amount.
    ranked = report.ranked()
    assert len(ranked) == 4
    assert abs(ranked[0].normalised) > 0.05
