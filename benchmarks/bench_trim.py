"""Netlist-trimming benchmark: trimmed active window vs full array.

Measures the workload the trim layer exists for — a defect-resistance
sweep of activation-cycle transients on an R×C DRAM array
(:mod:`repro.dram.trim`) — with the full netlist on the untrimmed
sparse path and with the trimmed netlist on the dense fast path, and
writes the numbers to ``reports/trim.txt`` (repo root, the acceptance
artifact) and ``reports/trim.txt`` plus a machine-readable
``BENCH_trim.json`` twin (same schema family as ``BENCH_sparse.json``).

Three parity legs guard the speedup:

* **seed column** — the trim policy must be a no-op for the 2×2 column
  model: trajectories bitwise identical and request hashes unchanged
  under any process-wide trim default;
* **trajectory** — trimmed-vs-full victim/bit-line waveforms on a 6×6
  array for every array-routed defect kind (observed ~1e-12 V);
* **border resistance** — trimmed-vs-full BR bisection deviation
  ≤ 1e-5 (the documented lane tolerance) on 6×6 and, in full mode,
  16×16 arrays for every kind.

Run standalone (CI runs ``--quick --check-parity``)::

    PYTHONPATH=src python benchmarks/bench_trim.py [--quick] [--check]
"""

from __future__ import annotations

import platform
import time

try:
    from benchmarks._common import best_of, emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import best_of, emit, fail, make_parser

import numpy as np  # noqa: E402

from repro.dram.column import DEFECT_KINDS, DefectSite  # noqa: E402
from repro.dram.runner import ArrayRunner, ColumnRunner  # noqa: E402
from repro.dram.trim import set_trim_default  # noqa: E402
from repro.engine import BatchExecutor, SequenceRequest  # noqa: E402
from repro.experiments.array import activation_disturb_br  # noqa: E402
from repro.spice.backends import (scipy_available,  # noqa: E402
                                  set_backend_default)
from repro.stress import NOMINAL_STRESS  # noqa: E402

#: Documented trimmed-vs-full border-resistance tolerance (relative).
BR_TOL = 1e-5

#: Trimmed-vs-full waveform tolerance (volts).  The trim is exact up to
#: solver round-off in this device model (DESIGN.md §5g); observed
#: worst-case divergence is ~1e-12 V.
TRAJ_TOL = 1e-6

#: Bisection convergence for the BR parity legs — tight enough that a
#: relative BR deviation above :data:`BR_TOL` cannot hide in the
#: interval width.
BR_REL_TOL = 1e-6

#: Resistance sweep of the speedup leg (log-spaced across the border).
SWEEP_DECADES = (1e4, 1e8)


def _center(n: int) -> int:
    return (n // 2) * n + n // 2


def _column_parity() -> dict:
    """The trim policy must not touch the seed 2×2 column at all."""
    defect = DefectSite("open_sn", 0, 3e5)

    def run():
        runner = ColumnRunner(defect=defect, record=True)
        return runner.run_sequence("w1 r1", init_vc=0.0)

    prev = set_trim_default("off")
    try:
        base = run()
        req_off = SequenceRequest.build(
            "w1 r1", 0.0, backend="electrical", defect=defect,
            stress=NOMINAL_STRESS)
        set_trim_default("force")
        forced = run()
        req_force = SequenceRequest.build(
            "w1 r1", 0.0, backend="electrical", defect=defect,
            stress=NOMINAL_STRESS)
    finally:
        set_trim_default(prev)

    bitwise = all(
        np.array_equal(a.vc, b.vc) and a.vc_end == b.vc_end
        and a.sensed == b.sensed
        for a, b in zip(base.results, forced.results))
    return {
        "bitwise": bitwise,
        "hash_stable": req_off.content_hash == req_force.content_hash,
        "ok": bitwise and req_off.content_hash == req_force.content_hash,
    }


def _trajectory_parity(n: int, kinds) -> dict:
    """Max trimmed-vs-full waveform deviation, one activation cycle."""
    worst = 0.0
    for kind in kinds:
        defect = DefectSite(kind, _center(n), 3e5)
        runs = {}
        for policy in ("off", "force"):
            runner = ArrayRunner(defect=defect, geometry=(n, n),
                                 trim=policy, record=True)
            runs[policy] = runner.run_sequence("r", init_vc=NOMINAL_STRESS.vdd)
        for a, b in zip(runs["off"].results, runs["force"].results):
            worst = max(worst, float(np.abs(a.vc - b.vc).max()),
                        float(np.abs(a.extra["bl"] - b.extra["bl"]).max()))
    return {"max_dv": worst, "ok": worst <= TRAJ_TOL}


def _br_parity(n: int, kinds) -> dict:
    """Per-kind trimmed-vs-full border-resistance deviation."""
    engine = BatchExecutor(cache=None)
    rows = []
    worst = 0.0
    for kind in kinds:
        borders = {}
        for policy in ("off", "force"):
            borders[policy] = activation_disturb_br(
                kind, geometry=(n, n), cell=_center(n), trim=policy,
                engine=engine, rel_tol=BR_REL_TOL)
        dev = abs(borders["force"] - borders["off"]) / borders["off"]
        worst = max(worst, dev)
        rows.append({"kind": kind, "br_full": borders["off"],
                     "br_trim": borders["force"], "rel_dev": dev})
    return {"rows": rows, "worst_rel_dev": worst, "ok": worst <= BR_TOL}


def _sweep(n: int, trim: str, backend: str, points: int) -> float:
    """Wall time of one resistance sweep through the batch executor."""
    prev = set_backend_default(backend)
    try:
        engine = BatchExecutor(cache=None)
        resistances = np.logspace(np.log10(SWEEP_DECADES[0]),
                                  np.log10(SWEEP_DECADES[1]), points)
        requests = [SequenceRequest.build(
            "r", NOMINAL_STRESS.vdd, backend="electrical",
            defect=DefectSite("open_sn", _center(n), float(r)),
            stress=NOMINAL_STRESS, geometry=(n, n), trim=trim)
            for r in resistances]
        t0 = time.perf_counter()
        engine.map(requests)
        return time.perf_counter() - t0
    finally:
        set_backend_default(prev)


def run_benchmark(quick: bool = False) -> dict:
    if quick:
        n_sweep, points, rounds = 8, 6, 1
        parity_sizes = (6,)
        kinds = ("open_sn", "short_gnd", "bridge_wl")
    else:
        n_sweep, points, rounds = 16, 12, 2
        parity_sizes = (6, 16)
        kinds = DEFECT_KINDS

    column = _column_parity()
    trajectory = _trajectory_parity(6, kinds)
    br = {n: _br_parity(n, kinds) for n in parity_sizes}

    # The acceptance comparison: untrimmed sweep on its best backend
    # (sparse when available) vs the trimmed sweep on its natural
    # auto-resolved dense fast path.
    full_backend = "sparse" if scipy_available() else "auto"
    full_s, _ = best_of(lambda: _sweep(n_sweep, "off", full_backend,
                                        points), rounds)
    trim_s, _ = best_of(lambda: _sweep(n_sweep, "force", "auto",
                                        points), rounds)

    parity_ok = (column["ok"] and trajectory["ok"]
                 and all(b["ok"] for b in br.values()))
    return {
        "quick": quick,
        "rounds": rounds,
        "array": f"{n_sweep}x{n_sweep}",
        "sweep_points": points,
        "kinds": list(kinds),
        "scipy": scipy_available(),
        "full_backend": full_backend,
        "column_parity": column,
        "trajectory_parity": trajectory,
        "br_parity": {str(n): b for n, b in br.items()},
        "full_s": full_s,
        "trim_s": trim_s,
        "speedup": full_s / trim_s,
        "parity_ok": parity_ok,
    }


def render(res: dict) -> str:
    mode = "quick" if res["quick"] else "full"
    lines = [
        f"netlist trimming benchmark ({mode} mode)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()} / numpy {np.__version__}",
        f"timing: best of {res['rounds']} runs, {res['array']} array, "
        f"{res['sweep_points']}-point activation-transient "
        f"resistance sweep",
        "",
        f"{'untrimmed sweep (%s backend)' % res['full_backend']:38s}: "
        f"{res['full_s'] * 1e3:8.1f} ms",
        f"{'trimmed sweep (active window, dense)':38s}: "
        f"{res['trim_s'] * 1e3:8.1f} ms",
        f"{'speedup':38s}: "
        f"{res['speedup']:8.2f}x   (target >= 5x, full mode)",
        "",
        f"{'seed 2x2 column under trim policy':38s}: "
        f"{'bitwise identical' if res['column_parity']['ok'] else 'DRIFT'}",
        f"{'trimmed-vs-full trajectory max dv':38s}: "
        f"{res['trajectory_parity']['max_dv']:.2e} V   "
        f"(tolerance {TRAJ_TOL:.0e})",
    ]
    for size, b in res["br_parity"].items():
        label = f"BR deviation, {size}x{size} ({len(b['rows'])} kinds)"
        lines.append(f"{label:38s}: {b['worst_rel_dev']:.2e} rel   "
                     f"(tolerance {BR_TOL:.0e})")
    lines.append(f"{'parity':38s}: "
                 f"{'ok' if res['parity_ok'] else 'MISMATCH'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = make_parser(__doc__).parse_args(argv)

    res = run_benchmark(quick=args.quick)
    emit("trim", render(res),
         dict(res, parity="ok" if res["parity_ok"] else "mismatch"))

    if (args.check or args.check_parity) and not res["parity_ok"]:
        return fail("trimmed-vs-full parity outside tolerance")
    if args.check and not args.quick and res["speedup"] < 5.0:
        return fail("trim speedup target (5x) missed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
