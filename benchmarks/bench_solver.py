"""Solver-kernel benchmark: legacy per-device loop vs the kernel fast path.

Measures the two electrical hot paths the kernel layer was built for and
writes the before/after numbers to ``reports/solver.txt`` (repo root, the
acceptance artifact) and ``reports/solver.txt``:

* the ``w0 w1 r1`` operation-cycle sequence on the reference cell open
  (the unit of work behind every electrical sweep) — cold runs, i.e. a
  fresh column model (and compiled :class:`~repro.spice.mna.System`) per
  repetition;
* the Fig. 2 electrical plane path (:func:`repro.experiments
  .fig2_result_planes` on a reduced resistance grid) — the sweep shape
  that reuses one system across hundreds of chained cycles.

The legacy baseline runs the exact pre-kernel per-device loop
(``set_kernels_default(False)`` builds systems with ``use_plans=False``
and solves through the unmodified ``np.linalg.solve`` call), so the
reported speedups measure the kernels against the true before state.
Both paths are also checked for result parity on the cycle sequence —
the kernel path must be bitwise-identical.

Run standalone (CI runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_solver.py [--quick] [--check]
"""

from __future__ import annotations

import platform

try:
    from benchmarks._common import best_of, emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import best_of, emit, fail, make_parser

import numpy as np  # noqa: E402

from repro.experiments.figures import (  # noqa: E402
    REFERENCE_DEFECT,
    fig2_result_planes,
)
from repro.analysis.interface import electrical_model  # noqa: E402
from repro.spice.transient import set_kernels_default  # noqa: E402

#: The cycle sequence benchmarked per ISSUE acceptance (w0/w1/r).
CYCLE_OPS = "w0 w1 r1"


def _run_cycles():
    model = electrical_model(REFERENCE_DEFECT, record=True)
    return model.run_sequence(CYCLE_OPS, init_vc=0.0)


def _run_planes(points: int):
    return fig2_result_planes(backend="electrical", points=points)


def _with_kernels(enabled: bool, fn):
    prev = set_kernels_default(enabled)
    try:
        return fn()
    finally:
        set_kernels_default(prev)


def _parity_check() -> bool:
    """Kernel path must reproduce the legacy results bit for bit."""
    fast = _with_kernels(True, _run_cycles)
    legacy = _with_kernels(False, _run_cycles)
    ok = True
    for a, b in zip(fast.results, legacy.results):
        ok &= np.array_equal(a.times, b.times)
        ok &= np.array_equal(a.vc, b.vc)
        ok &= a.vc_end == b.vc_end and a.sensed == b.sensed
    return ok


def run_benchmark(quick: bool = False) -> dict:
    rounds = 3 if quick else 5
    points = 4 if quick else 6

    bitwise = _parity_check()

    fast_s, _ = best_of(lambda: _with_kernels(True, _run_cycles), rounds)
    legacy_s, _ = best_of(lambda: _with_kernels(False, _run_cycles),
                           rounds)

    plane_rounds = 1 if quick else 2
    fast_p, _ = best_of(
        lambda: _with_kernels(True, lambda: _run_planes(points)),
        plane_rounds)
    legacy_p, _ = best_of(
        lambda: _with_kernels(False, lambda: _run_planes(points)),
        plane_rounds)

    return {
        "quick": quick,
        "rounds": rounds,
        "points": points,
        "bitwise": bitwise,
        "cycles_fast_s": fast_s,
        "cycles_legacy_s": legacy_s,
        "cycles_speedup": legacy_s / fast_s,
        "planes_fast_s": fast_p,
        "planes_legacy_s": legacy_p,
        "planes_speedup": legacy_p / fast_p,
    }


def render(res: dict) -> str:
    mode = "quick" if res["quick"] else "full"
    lines = [
        f"solver kernel benchmark ({mode} mode)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()} / numpy {np.__version__}",
        f"timing: best of {res['rounds']} cold runs "
        f"(fresh model + compiled system each)",
        "",
        f"{CYCLE_OPS!r} cycle sequence (electrical, reference cell open)",
        f"  before (legacy per-device loop) : "
        f"{res['cycles_legacy_s'] * 1e3:8.1f} ms",
        f"  after  (kernel fast path)       : "
        f"{res['cycles_fast_s'] * 1e3:8.1f} ms",
        f"  speedup                         : "
        f"{res['cycles_speedup']:8.2f}x   (target >= 3x)",
        f"  result parity                   : "
        f"{'bitwise-identical' if res['bitwise'] else 'MISMATCH'}",
        "",
        f"fig2 electrical plane path ({res['points']}-point grid)",
        f"  before (legacy per-device loop) : "
        f"{res['planes_legacy_s'] * 1e3:8.1f} ms",
        f"  after  (kernel fast path)       : "
        f"{res['planes_fast_s'] * 1e3:8.1f} ms",
        f"  speedup                         : "
        f"{res['planes_speedup']:8.2f}x   (target >= 2x)",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    args = make_parser(__doc__).parse_args(argv)

    res = run_benchmark(quick=args.quick)
    emit("solver", render(res),
         dict(res, parity="bitwise" if res["bitwise"] else "mismatch"))

    if (args.check or args.check_parity) and not res["bitwise"]:
        return fail("kernel path is not bitwise-identical")
    if args.check and (res["cycles_speedup"] < 3.0
                       or res["planes_speedup"] < 2.0):
        return fail("speedup targets missed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
