"""Fig. 2 — result planes of the cell open at the nominal SC.

Regenerates the three planes (w0/w1/r) on the electrical (SPICE-level)
column, estimates the border resistance from the ``(1) w0`` × ``Vsa``
crossing, and checks the paper's shape claims:

* the ``(1) w0`` settlement curve rises with the open resistance,
* ``Vsa`` bends toward GND and eventually vanishes (stored 0 reads as 1),
* the border lands in the hundreds-of-kΩ region (paper: ≈200 kΩ).
"""

from repro.experiments import fig2_result_planes


def test_fig2_result_planes_electrical(benchmark, save_report):
    study = benchmark.pedantic(
        lambda: fig2_result_planes(backend="electrical", points=7),
        rounds=1, iterations=1)

    save_report("fig2_planes", study.render())

    planes = study.planes
    w0_first = planes.w0.curve(1)
    assert w0_first[-1] > w0_first[0], "w0 settlement must rise with R"
    w1_first = planes.w1.curve(1)
    assert w1_first[-1] < w1_first[0], "w1 settlement must fall with R"

    thresholds = planes.r.vsa.thresholds
    usable = [v for v in thresholds if v is not None]
    assert usable[0] > usable[-1], "Vsa must descend toward GND"
    assert thresholds[-1] is None or thresholds[-1] < 0.7, \
        "strong opens must read (almost) everything as 1"

    assert study.border is not None
    assert 8e4 < study.border < 8e5, \
        f"border {study.border:.3g} outside the paper's regime"


def test_fig2_two_writes_needed_near_border(benchmark, save_report):
    """The paper: 'the two w1 operations are necessary to charge up
    fully when R has a value close to BR'."""
    from repro.analysis import electrical_model
    from repro.experiments.figures import REFERENCE_DEFECT

    def run():
        model = electrical_model(REFERENCE_DEFECT)
        model.set_defect_resistance(200e3)
        return model.run_sequence("w1 w1 w1", init_vc=0.0)

    seq = benchmark.pedantic(run, rounds=1, iterations=1)
    first, second, third = seq.vc_after
    save_report("fig2_two_writes",
                f"w1 x3 from 0 V at R=200k: "
                f"{first:.3f} / {second:.3f} / {third:.3f} V")
    assert second - first > 0.3, "second w1 must add significant charge"
    assert third - second < second - first, "charging must saturate"
