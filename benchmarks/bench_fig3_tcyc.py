"""Fig. 3 — optimizing timing: tcyc 60 ns vs 55 ns at Rop = 200 kΩ.

Paper claims reproduced here (electrical backend):

* the shorter cycle leaves the cell voltage *higher* after ``w0``
  (reduced cycle time reduces the ability to write a 0),
* timing has (almost) no impact on the sense threshold ``Vsa``,
* hence reducing ``tcyc`` is the more stressful timing for the test.
"""

from repro.experiments import fig3_timing_panels


def test_fig3_timing_panels_electrical(benchmark, save_report):
    study = benchmark.pedantic(
        lambda: fig3_timing_panels(backend="electrical"),
        rounds=1, iterations=1)

    save_report("fig3_tcyc", study.render())

    vc_60, vc_55 = study.w0_residuals
    assert vc_55 > vc_60 + 0.02, \
        "55 ns must leave a visibly higher Vc after w0 (weaker write)"

    vsa_60, vsa_55 = study.vsa
    assert abs(vsa_55 - vsa_60) < 0.04, \
        "timing must have (nearly) no impact on Vsa"


def test_fig3_direction_call(benchmark, save_report):
    """The quick analysis must conclude: reduce the cycle time."""
    from repro.analysis import electrical_model
    from repro.core import StressKind, analyze_direction
    from repro.experiments.figures import REFERENCE_DEFECT

    def run():
        model = electrical_model(REFERENCE_DEFECT)
        model.set_defect_resistance(200e3)
        return analyze_direction(model, StressKind.TCYC, 0,
                                 probe_points=2)

    call = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig3_direction", call.describe())
    assert call.arrow == "↓"
    assert not call.needs_border_tiebreak
