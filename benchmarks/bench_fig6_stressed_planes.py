"""Fig. 6 — result planes under the stressed SC (2.1 V, 55 ns, +87 °C).

Paper observations reproduced (electrical backend):

1. the border resistance drops sharply versus the nominal SC
   (paper: 200 kΩ → ≈50 kΩ),
2. the stressed detection condition needs *more* charge operations,
3. the SC is so stressful that even with a (near-)zero open the writes
   cannot swing the cell rail-to-rail within one operation.
"""

from repro.experiments import fig2_result_planes, fig6_stressed_planes
from repro.experiments.figures import FIG6_STRESS, REFERENCE_DEFECT


def test_fig6_planes_and_border_drop(benchmark, save_report):
    def run():
        nominal = fig2_result_planes(backend="electrical", points=6)
        stressed = fig6_stressed_planes(backend="electrical", points=6)
        return nominal, stressed

    nominal, stressed = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig6_stressed_planes",
                "NOMINAL:\n" + nominal.render()
                + "\n\nSTRESSED:\n" + stressed.render())

    assert nominal.border is not None and stressed.border is not None
    assert stressed.border < nominal.border, \
        "the SC must extend the failing range downward"


def test_fig6_detection_needs_more_charge(benchmark, save_report):
    """Observation 2: more w1 operations under the SC."""
    from repro.analysis import (
        border_resistance,
        derive_detection_condition,
        electrical_model,
    )
    from repro.stress import NOMINAL_STRESS

    def run():
        model = electrical_model(REFERENCE_DEFECT)
        nom_border = border_resistance(
            model, fails_high=True, r_lo=5e4, r_hi=2e6, rel_tol=0.08,
            sequences=("w1^6 w0 r0",))
        nominal = derive_detection_condition(
            model, nom_border.resistance * 1.3, max_charge=6)
        model.set_stress(FIG6_STRESS)
        str_border = border_resistance(
            model, fails_high=True, r_lo=3e4, r_hi=2e6, rel_tol=0.08,
            sequences=("w1^6 w0 r0",))
        mid = (nom_border.resistance * str_border.resistance) ** 0.5
        stressed = derive_detection_condition(model, mid, max_charge=6)
        return nominal, stressed

    nominal, stressed = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig6_detection",
                f"nominal:  {nominal.notation()}\n"
                f"stressed: {stressed.notation()}\n"
                f"(paper: w1 w1 w0 r0 -> more w1 operations under SC)")
    charge = lambda cond: sum(1 for o in cond.ops if str(o) == "w1")  # noqa: E731
    assert charge(stressed) >= charge(nominal)


def test_fig6_no_full_swing_even_healthy(benchmark, save_report):
    """Observation 4: with Rop ≈ 0 a single write cannot full-swing."""
    from repro.analysis import electrical_model

    def run():
        model = electrical_model(REFERENCE_DEFECT, stress=FIG6_STRESS)
        model.set_defect_resistance(1.0)
        up = model.run_sequence("w1", init_vc=0.0).vc_after[0]
        down = model.run_sequence("w0",
                                  init_vc=FIG6_STRESS.vdd).vc_after[0]
        return up, down

    up, down = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig6_full_swing",
                f"single w1 from 0 V reaches {up:.3f} V of "
                f"{FIG6_STRESS.vdd} V; single w0 from rail leaves "
                f"{down:.3f} V")
    assert up < FIG6_STRESS.vdd - 0.15, \
        "w1 must fall short of the rail under the SC"
