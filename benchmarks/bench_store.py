"""Result-store benchmark: sharded integrity-checked store vs a flat dir.

Measures what the durability layer costs and what resume buys, and
writes the numbers to ``reports/store.txt`` (repo root, the acceptance
artifact) and ``reports/store.txt`` plus a machine-readable
``BENCH_store.json``:

* put/get throughput over 10k entries through the sharded store
  (header + sha256 verify + atomic replace, fsync on and off) against a
  flat-directory pickle baseline — the disk tier the sharded store
  replaced;
* resume overhead: a checkpointed behavioral sweep run cold, then
  resumed from its own journal — the resumed run replays every result
  from the store instead of simulating, and the ratio of the two wall
  times is the price of durability bookkeeping on recovered work.

Integrity is checked as a side effect: every entry written during the
throughput runs must read back verified, and the resumed sweep must
reproduce the cold sweep's results exactly.

Run standalone (CI runs ``--quick --check``)::

    PYTHONPATH=src python benchmarks/bench_store.py [--quick] [--check]
"""

from __future__ import annotations

import hashlib
import pathlib
import pickle
import platform
import shutil
import tempfile
import time

try:
    from benchmarks._common import emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import emit, fail, make_parser

from repro.defects import Defect, DefectKind  # noqa: E402
from repro.engine import BatchExecutor, SequenceRequest, SweepCheckpoint  # noqa: E402
from repro.store import ShardedStore  # noqa: E402
from repro.stress import NOMINAL_STRESS  # noqa: E402

#: Entries for the put/get throughput comparison.
ENTRIES = 10_000
ENTRIES_QUICK = 2_000

#: Behavioral requests in the resume-overhead sweep.
SWEEP_POINTS = 400
SWEEP_POINTS_QUICK = 120


class FlatStore:
    """The pre-durability disk tier: one pickle per key, flat directory,
    no header, no verification, non-atomic writes.  Baseline only."""

    def __init__(self, root: pathlib.Path):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def put(self, key: str, value) -> None:
        (self.root / f"{key}.pkl").write_bytes(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def get(self, key: str):
        try:
            return pickle.loads((self.root / f"{key}.pkl").read_bytes())
        except OSError:
            return None


def _keys(n: int) -> list[str]:
    return [hashlib.sha256(f"bench-{i}".encode()).hexdigest()
            for i in range(n)]


def _payload(i: int) -> dict:
    """A payload shaped like a short sequence result (ops + floats)."""
    return {"ops": ["w1", "r1", "w0", "r0"],
            "vc": [0.0025 * i, 1.65, 0.01, 1.62],
            "sensed": [None, 1, None, 0]}


def _throughput(factory, keys) -> dict:
    """Time a full put pass then a full get pass through one store."""
    with tempfile.TemporaryDirectory() as tmp:
        store = factory(pathlib.Path(tmp))
        t0 = time.perf_counter()
        for i, key in enumerate(keys):
            store.put(key, _payload(i))
        put_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        ok = sum(store.get(key) is not None for key in keys)
        get_s = time.perf_counter() - t0
    return {"put_s": put_s, "get_s": get_s, "verified": ok,
            "put_per_s": len(keys) / put_s, "get_per_s": len(keys) / get_s}


def _sweep_requests(points: int) -> list:
    return [SequenceRequest.build(
        "w1 r1 w0 r0", 0.0, backend="behavioral",
        defect=Defect(DefectKind.O3, resistance=40e3 + 1e3 * i),
        stress=NOMINAL_STRESS) for i in range(points)]


def _resume_overhead(points: int) -> dict:
    """Cold checkpointed sweep vs a resume that replays every result."""
    requests = _sweep_requests(points)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        ckpt = SweepCheckpoint(workdir / "ck")
        engine = BatchExecutor(cache=ckpt.cache(), journal=ckpt.journal)
        t0 = time.perf_counter()
        cold = engine.map(requests)
        cold_s = time.perf_counter() - t0
        ckpt.close()

        resumed = SweepCheckpoint(workdir / "ck", resume=True)
        engine2 = BatchExecutor(cache=resumed.cache(),
                                journal=resumed.journal)
        t0 = time.perf_counter()
        warm = engine2.map(requests)
        resume_s = time.perf_counter() - t0
        identical = all(
            a.vc_after == b.vc_after and a.outputs == b.outputs
            for a, b in zip(cold, warm))
        recovered = engine2.stats.disk_hits
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {"cold_s": cold_s, "resume_s": resume_s,
            "ratio": resume_s / cold_s, "identical": identical,
            "recovered": recovered}


def run_benchmark(quick: bool = False) -> dict:
    n = ENTRIES_QUICK if quick else ENTRIES
    keys = _keys(n)

    flat = _throughput(FlatStore, keys)
    sharded = _throughput(
        lambda root: ShardedStore(root, fsync=True), keys)
    nofsync = _throughput(
        lambda root: ShardedStore(root, fsync=False), keys)

    points = SWEEP_POINTS_QUICK if quick else SWEEP_POINTS
    resume = _resume_overhead(points)

    return {
        "quick": quick,
        "entries": n,
        "flat": flat,
        "sharded": sharded,
        "sharded_nofsync": nofsync,
        "put_cost_vs_flat": flat["put_per_s"] / sharded["put_per_s"],
        "get_cost_vs_flat": flat["get_per_s"] / sharded["get_per_s"],
        "sweep_points": points,
        "resume": resume,
        "all_verified": (flat["verified"] == n
                         and sharded["verified"] == n
                         and nofsync["verified"] == n),
    }


def _row(name: str, t: dict, n: int) -> str:
    return (f"  {name:27s}: put {t['put_per_s']:8.0f}/s "
            f"({t['put_s'] * 1e3:7.1f} ms)   get {t['get_per_s']:8.0f}/s "
            f"({t['get_s'] * 1e3:7.1f} ms)   {t['verified']}/{n} verified")


def render(res: dict) -> str:
    mode = "quick" if res["quick"] else "full"
    n = res["entries"]
    resume = res["resume"]
    return "\n".join([
        f"result store benchmark ({mode} mode)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()}",
        "",
        f"put/get throughput, {n} entries, fresh store each",
        _row("flat dir (old tier)", res["flat"], n),
        _row("sharded + verify (fsync)", res["sharded"], n),
        _row("sharded + verify (no fsync)", res["sharded_nofsync"], n),
        f"  durability cost            : put {res['put_cost_vs_flat']:.2f}x"
        f"   get {res['get_cost_vs_flat']:.2f}x   vs the flat baseline",
        "",
        f"resume overhead, {res['sweep_points']}-point checkpointed "
        f"behavioral sweep",
        f"  cold sweep                 : {resume['cold_s'] * 1e3:8.1f} ms",
        f"  resumed (journal replay)   : {resume['resume_s'] * 1e3:8.1f} ms"
        f"   ({resume['recovered']} results recovered from the store)",
        f"  resume/cold ratio          : {resume['ratio']:8.2f}",
        f"  resumed results identical  : "
        f"{'yes' if resume['identical'] else 'NO'}",
    ])


def main(argv=None) -> int:
    args = make_parser(__doc__, check_parity=False).parse_args(argv)

    res = run_benchmark(quick=args.quick)
    emit("store", render(res), res)

    if args.check and not (res["all_verified"]
                           and res["resume"]["identical"]):
        return fail("store verification or resume parity broken")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
