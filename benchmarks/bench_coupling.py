"""Extension — two-cell coupling faults from a bit-line bridge.

The 2×2 array exposes neighbourhood effects the single-cell analysis
cannot: operations addressed at the *other* cell on the shared bit line
disturb a bridged cell.  This benchmark classifies the two-cell
primitives of the B1 bridge electrically and confirms the march-theory
consequence: a test with immediate read-verify in both address orders
(March C−) catches the disturb coupling that the defective cell's own
single-cell sequences may miss at the same resistance."""

from repro.analysis.coupling import CouplingKind, classify_coupling
from repro.defects import Defect, DefectKind


def test_bridge_disturb_coupling(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: classify_coupling(Defect(DefectKind.B1), 100e3),
        rounds=1, iterations=1)

    save_report("coupling", report.render())

    assert report.has_coupling
    kinds = {f.kind for f in report.faults}
    assert CouplingKind.CFDS in kinds

    # Physical sanity: driving the line high disturbs stored 0s and
    # driving it low disturbs stored 1s.
    ops_for_zero = {f.aggressor_op for f in report.faults
                    if f.kind is CouplingKind.CFDS
                    and f.victim_value == 0}
    ops_for_one = {f.aggressor_op for f in report.faults
                   if f.kind is CouplingKind.CFDS
                   and f.victim_value == 1}
    assert "w1" in ops_for_zero
    assert "w0" in ops_for_one
