"""Ablation — quick direction analysis vs brute-force plane generation.

Sec. 4 of the paper: "Optimizing any ST can generally be done by
performing a full fault analysis (generating the three result planes)
for each ST value of interest … both labour intensive and time
consuming.  Fortunately, it is sometimes possible to deduce the impact
of different STs on the BR by performing a limited number of simulations
only."

This benchmark measures that trade exactly: the quick method (two panels
per ST value) against regenerating full result planes at each ST extreme
and comparing their border estimates.  Both must agree on the direction;
the quick method must use far fewer simulated cycles.
"""

from repro.analysis import result_planes
from repro.analysis.interface import CycleCountingModel
from repro.analysis.planes import log_grid
from repro.behav import behavioral_model
from repro.core import StressKind, analyze_direction
from repro.experiments.figures import REFERENCE_DEFECT
from repro.stress import NOMINAL_STRESS, STRESS_RANGES


def _full_plane_direction(model, kind):
    """Brute force: full planes at both extremes, compare borders."""
    grid = log_grid(5e4, 2e6, 8)
    borders = {}
    for value in STRESS_RANGES[kind].extremes:
        model.set_stress(NOMINAL_STRESS.with_value(kind, value))
        planes = result_planes(model, grid, n_writes=2, vsa_tol=0.02)
        borders[value] = planes.border_estimate() or float("inf")
    model.set_stress(NOMINAL_STRESS)
    lo, hi = STRESS_RANGES[kind].extremes
    return lo if borders[lo] < borders[hi] else hi


def test_quick_vs_full_tcyc(benchmark, save_report):
    def run():
        quick_model = CycleCountingModel(
            behavioral_model(REFERENCE_DEFECT))
        quick_model.set_defect_resistance(200e3)
        call = analyze_direction(quick_model, StressKind.TCYC, 0,
                                 probe_points=2)

        full_model = CycleCountingModel(
            behavioral_model(REFERENCE_DEFECT))
        full_choice = _full_plane_direction(full_model, StressKind.TCYC)
        return call, quick_model.cycles, full_choice, full_model.cycles

    call, quick_cycles, full_choice, full_cycles = benchmark.pedantic(
        run, rounds=1, iterations=1)

    save_report(
        "ablation_quick_vs_full",
        f"quick method: choose tcyc={call.chosen_value:.3g} in "
        f"{quick_cycles} cycles\n"
        f"full planes:  choose tcyc={full_choice:.3g} in "
        f"{full_cycles} cycles\n"
        f"cycle ratio: {full_cycles / max(quick_cycles, 1):.1f}x")

    assert call.chosen_value == full_choice, \
        "both methods must pick the same timing extreme"
    assert quick_cycles * 4 < full_cycles, \
        "the quick method must be several times cheaper"
