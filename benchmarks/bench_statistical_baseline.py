"""Baseline — statistical SC optimization ([Schanstra99]/[Goto97] style).

The paper's introduction: prior studies "give general conclusions, based
on some statistical analysis, that is not representative of the behavior
of a particular defect".

This benchmark runs that prior art faithfully — score every corner SC by
aggregate detections over a marginal-defect population, pick the single
best — and then demonstrates the paper's point in border-resistance
terms: for at least one defect (the shorts, whose Table-1 directions
disagree with the opens'), the failing range under the aggregate SC is
strictly smaller than under that defect's own per-defect optimum."""

from repro.behav import behavioral_model
from repro.core import optimize_defect
from repro.core.border import failing_range_score, find_border_resistance
from repro.core.statistical import statistical_optimization
from repro.defects import ALL_DEFECTS, Defect, DefectKind, Placement


def _factory(defect, stress):
    return behavioral_model(defect, stress=stress)


def test_statistical_baseline_vs_per_defect(benchmark, save_report):
    def run():
        aggregate = statistical_optimization(_factory,
                                             defects=ALL_DEFECTS,
                                             points_per_defect=5)
        comparisons = []
        for kind in (DefectKind.O3, DefectKind.SG, DefectKind.SV,
                     DefectKind.B2):
            defect = Defect(kind, Placement.TRUE)
            row = optimize_defect(defect, model_factory=_factory)
            model = _factory(defect, aggregate.best_sc)
            border_agg = find_border_resistance(model, defect,
                                                stress=aggregate.best_sc,
                                                rel_tol=0.05)
            comparisons.append((defect, border_agg, row.stressed_border,
                                row.stressed_conditions))
        return aggregate, comparisons

    aggregate, comparisons = benchmark.pedantic(run, rounds=1,
                                                iterations=1)

    lines = [aggregate.describe(), "", "border comparison (aggregate SC "
             "vs per-defect optimum):"]
    strictly_worse = 0
    for defect, agg, own, own_sc in comparisons:
        worse = failing_range_score(defect, agg) < failing_range_score(defect, own)
        strictly_worse += worse
        lines.append(f"  {defect.name}: aggregate {agg.describe()}  |  "
                     f"own SC ({own_sc.describe()}) {own.describe()}"
                     f"{'   <-- aggregate worse' if worse else ''}")
    save_report("statistical_baseline", "\n".join(lines))

    # The aggregate SC detects a healthy share of the population…
    assert aggregate.best_score > aggregate.population_size * 0.3

    # …but leaves a strictly smaller failing range for at least one
    # defect — the paper's argument for per-defect optimization.
    assert strictly_worse >= 1, "\n".join(lines)

    # And per-defect counts never beat their own maximum.
    for name, counts in aggregate.per_defect.items():
        assert max(counts) >= counts[aggregate.best_index]
