"""Sec. 5.2 — "the applied SCs increase the coverage of a given test".

Runs the standard march-test library against the reference defect over a
resistance grid at the nominal and at the optimized SC, asserting that
no test loses coverage and that the library as a whole gains.
"""

from repro.experiments import march_coverage_comparison


def test_march_coverage_gain(benchmark, save_report):
    # Focus the grid on the band around the nominal border so the SC's
    # border shift (172 kΩ -> 88 kΩ) is resolvable.
    study = benchmark.pedantic(
        lambda: march_coverage_comparison(backend="behavioral",
                                          r_points=18,
                                          r_lo=6e4, r_hi=2.5e6),
        rounds=1, iterations=1)

    save_report("march_coverage", study.render())

    for name, nominal, optimized in study.rows:
        assert optimized >= nominal, \
            f"{name}: optimized SC must not lose coverage"
    assert study.improved_count >= 3, \
        "several tests must gain coverage under the optimized SC"


def test_march_coverage_on_short(benchmark, save_report):
    """Same comparison for a short defect, whose own optimized SC
    differs (retention-dominated border prefers the long cycle)."""
    from repro.defects import Defect, DefectKind
    from repro.stress import NOMINAL_STRESS

    def run():
        return march_coverage_comparison(
            backend="behavioral",
            defect=Defect(DefectKind.SG),
            optimized=NOMINAL_STRESS.with_(tcyc=65e-9, duty=0.40,
                                           temp_c=87.0, vdd=2.7),
            r_points=10)

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("march_coverage_short", study.render())
    for name, nominal, optimized in study.rows:
        assert optimized >= nominal, name
