"""Ablation — behavioral vs electrical backend.

DESIGN.md calls out the fast behavioral model as a design choice; this
benchmark quantifies what it trades away: border resistances and sense
thresholds agree within tens of percent while the behavioral model runs
orders of magnitude faster.
"""

import time

from repro.analysis import (
    border_resistance,
    electrical_model,
    sense_threshold,
)
from repro.behav import behavioral_model
from repro.experiments.figures import REFERENCE_DEFECT


def test_backend_agreement_and_speedup(benchmark, save_report):
    def run():
        report = {}
        for name, factory in (("behavioral", behavioral_model),
                              ("electrical", electrical_model)):
            model = factory(REFERENCE_DEFECT)
            start = time.perf_counter()
            border = border_resistance(model, fails_high=True, r_lo=5e4,
                                       r_hi=2e6, rel_tol=0.08,
                                       sequences=("w1^6 w0 r0",))
            model.set_defect_resistance(200e3)
            vsa = sense_threshold(model, tol=0.01)
            report[name] = {
                "border": border.resistance,
                "vsa": vsa,
                "seconds": time.perf_counter() - start,
            }
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    b, e = report["behavioral"], report["electrical"]
    lines = [f"{name}: BR={r['border']:.3g} ohm, Vsa={r['vsa']:.3f} V, "
             f"{r['seconds']:.2f} s"
             for name, r in report.items()]
    speedup = e["seconds"] / max(b["seconds"], 1e-9)
    lines.append(f"speedup: {speedup:.0f}x")
    save_report("ablation_model", "\n".join(lines))

    assert 0.5 < b["border"] / e["border"] < 2.0, \
        "borders must agree within a factor of two"
    assert abs(b["vsa"] - e["vsa"]) < 0.1, \
        "sense thresholds must agree within 100 mV"
    assert speedup > 20, "the behavioral model must be much faster"
