"""Table 1 — full per-defect stress optimization over the Fig. 7 catalog.

Runs the complete flow (nominal border → direction analysis →
tie-breaks → stressed border → stressed detection condition) for all
seven defects on both bit lines.  The behavioral backend covers the full
table; an electrical spot-check validates the reference row.

Paper claims asserted:

* temperature: ``↑`` for every defect,
* timing: ``↓`` for the opens (paper: for all defects; see
  EXPERIMENTS.md for the documented divergence on retention-dominated
  shorts/bridges),
* every stressed border extends the failing resistance range,
* true/comp rows share borders, with 0s/1s interchanged in the
  detection conditions.
"""

from repro.core import StressKind
from repro.defects import DefectKind, Placement
from repro.experiments import table1_optimization


def test_table1_full_catalog_behavioral(benchmark, save_report):
    table = benchmark.pedantic(
        lambda: table1_optimization(backend="behavioral"),
        rounds=1, iterations=1)

    save_report("table1", table.render())

    assert len(table.rows) == 14
    for row in table.rows:
        assert row.directions[StressKind.TEMP].arrow == "↑", \
            f"{row.defect.name}: temperature direction"
        assert row.improved, \
            f"{row.defect.name}: SC must extend the failing range"

    for kind in (DefectKind.O1, DefectKind.O2, DefectKind.O3):
        row = table.row(kind, Placement.TRUE)
        assert row.directions[StressKind.TCYC].arrow == "↓", \
            f"{kind}: timing direction"
        assert row.directions[StressKind.VDD].arrow == "↓", \
            f"{kind}: supply direction (paper Sec. 4.3)"

    # true/comp symmetry
    for kind in DefectKind:
        t = table.row(kind, Placement.TRUE)
        c = table.row(kind, Placement.COMP)
        if t.nominal_border.found and c.nominal_border.found:
            ratio = t.nominal_border.resistance / \
                c.nominal_border.resistance
            assert 0.7 < ratio < 1.4, f"{kind}: true/comp border"
        if t.nominal_detection and c.nominal_detection:
            swap = {"w0": "w1", "w1": "w0", "r0": "r1", "r1": "r0"}
            swapped = [swap[str(o)] for o in t.nominal_detection.ops]
            assert swapped == [str(o) for o in c.nominal_detection.ops]


def test_table1_reference_row_electrical(benchmark, save_report):
    """Electrical validation of the O3 (true) row: same directions, same
    border regime, halving of the border under the SC (paper: 200 kΩ →
    50 kΩ, i.e. a multiple-fold extension)."""
    from repro.analysis import electrical_model
    from repro.core import optimize_defect

    def run():
        return optimize_defect(
            DefectKind.O3,
            model_factory=lambda d, s: electrical_model(d, stress=s),
            br_rel_tol=0.08)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("table1_electrical_o3", row.describe())

    assert row.directions[StressKind.TCYC].arrow == "↓"
    assert row.directions[StressKind.TEMP].arrow == "↑"
    assert row.directions[StressKind.VDD].arrow == "↓"
    assert 1e5 < row.nominal_border.resistance < 4e5
    assert row.stressed_border.resistance < \
        0.8 * row.nominal_border.resistance
