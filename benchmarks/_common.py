"""Shared benchmark plumbing: path bootstrap, timing, artefact emit.

Every ``bench_*.py`` speaks the same protocol — ``--quick`` shrinks the
workload for CI, ``--check`` gates parity *and* speedup, ``--check-parity``
gates parity only (for noisy runners), and each run writes two
artefacts: ``reports/<name>.txt`` (repo root, the canonical report
sink and acceptance artifact) and a machine-readable
``BENCH_<name>.json`` twin so the perf trajectory is trackable across
PRs (see ``scripts/bench_trajectory.py``).  This module owns that boilerplate so a benchmark
is only its workload, its render, and its gate conditions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

#: Repository root (the directory holding ``src``/``benchmarks``).
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def bootstrap() -> None:
    """Put ``src`` on ``sys.path`` (idempotent; import-time safe)."""
    path = str(REPO_ROOT / "src")
    if path not in sys.path:
        sys.path.insert(0, path)


bootstrap()


def best_of(fn, rounds: int) -> tuple[float, object]:
    """Minimum wall time over ``rounds`` repetitions (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def make_parser(doc: str, *, quick: bool = True,
                check_parity: bool = True) -> argparse.ArgumentParser:
    """The standard benchmark CLI: ``--quick`` / ``--check`` [/ ``--check-parity``]."""
    ap = argparse.ArgumentParser(description=(doc or "").splitlines()[0])
    if quick:
        ap.add_argument("--quick", action="store_true",
                        help="reduced sizes/kinds/rounds (CI)")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero if parity fails or the speedup "
                         "target is missed (full mode)")
    if check_parity:
        ap.add_argument("--check-parity", action="store_true",
                        help="exit nonzero if parity fails (speedup stays "
                             "informational - for noisy CI runners)")
    return ap


def emit(name: str, text: str, payload: dict) -> None:
    """Print + persist one benchmark's artefacts.

    Writes the text rendering to ``reports/<name>.txt`` (repo root,
    the one canonical report location) and the payload — stamped with
    ``benchmark``/``python``/``numpy`` — to ``BENCH_<name>.json``
    (sorted keys, trailing newline, the schema every existing
    ``BENCH_*.json`` follows).
    """
    import numpy as np

    print(text)
    target = REPO_ROOT / "reports" / f"{name}.txt"
    target.parent.mkdir(exist_ok=True)
    target.write_text(text + "\n")
    payload = dict(payload, benchmark=name,
                   python=platform.python_version(),
                   numpy=np.__version__)
    (REPO_ROOT / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def fail(message: str) -> int:
    """Print a gate failure to stderr and return the CI exit code."""
    print(f"FAIL: {message}", file=sys.stderr)
    return 1
