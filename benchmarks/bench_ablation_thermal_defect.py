"""Ablation — ohmic vs temperature-dependent defect resistance.

The paper's closing remark (Sec. 5.2): all simulated defects were ohmic;
"modeling the defects to increase their R with decreasing T (which is
the case with silicon based defects) may result in a different stress
value for T".  This benchmark implements exactly that and confirms the
prediction: the temperature direction for the reference open flips from
``↑`` (ohmic) to ``↓`` (silicon-like R(T))."""

from repro.behav import behavioral_model
from repro.core import StressKind, optimize_defect
from repro.defects import DefectKind
from repro.defects.thermal import SILICON_LIKE_TCR, ThermalResistanceModel


def _thermal_factory(defect, stress):
    inner = behavioral_model(defect, stress=stress)
    return ThermalResistanceModel(inner, tcr=SILICON_LIKE_TCR)


def test_thermal_defect_flips_temperature_direction(benchmark,
                                                    save_report):
    def run():
        ohmic = optimize_defect(DefectKind.O3)
        thermal = optimize_defect(DefectKind.O3,
                                  model_factory=_thermal_factory)
        return ohmic, thermal

    ohmic, thermal = benchmark.pedantic(run, rounds=1, iterations=1)

    arrow = StressKind.TEMP
    save_report(
        "ablation_thermal_defect",
        f"ohmic defect:        T {ohmic.directions[arrow].arrow}  "
        f"({ohmic.nominal_border.describe()})\n"
        f"silicon-like R(T):   T {thermal.directions[arrow].arrow}  "
        f"({thermal.nominal_border.describe()})\n"
        f"paper: 'may result in a different stress value for T'")

    assert ohmic.directions[arrow].arrow == "↑"
    assert thermal.directions[arrow].arrow == "↓", \
        "a silicon-like defect must prefer the cold extreme"
    # The non-temperature axes should not flip.
    assert thermal.directions[StressKind.TCYC].arrow == \
        ohmic.directions[StressKind.TCYC].arrow
