"""Benchmark support: report sink and shared grids.

Every benchmark regenerates one paper figure/table and writes its text
rendering to ``reports/`` (repo root, the one canonical report
location) so the reproduced artefacts are inspectable after a run
(EXPERIMENTS.md references them).
"""

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent.parent / "reports"


@pytest.fixture(scope="session")
def report_dir():
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def save_report(report_dir):
    def _save(name: str, text: str) -> None:
        (report_dir / f"{name}.txt").write_text(text + "\n")
    return _save
