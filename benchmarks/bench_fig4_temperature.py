"""Fig. 4 — optimizing temperature: T = −33 / +27 / +87 °C at 200 kΩ.

Paper claims reproduced (electrical backend):

* higher temperature weakens ``w0`` monotonically (mobility loss of the
  long-channel access device),
* the read threshold is *non-monotonic*: moving away from room
  temperature in either direction promotes detecting 0 — the "rarely
  observed behaviour" caused by multiple opposing temperature
  mechanisms,
* the resulting conflict is settled by a border-resistance comparison,
  which picks the high extreme (the paper: high T reduces BR by 15 kΩ;
  this model: by a similar small margin).
"""

from repro.experiments import fig4_temperature_panels
from repro.experiments.figures import REFERENCE_DEFECT


def test_fig4_temperature_panels_electrical(benchmark, save_report):
    study = benchmark.pedantic(
        lambda: fig4_temperature_panels(backend="electrical"),
        rounds=1, iterations=1)

    save_report("fig4_temperature", study.render())

    cold, room, hot = study.w0_residuals
    assert cold < room < hot, \
        "w0 must weaken monotonically with temperature"

    vsa_cold, vsa_room, vsa_hot = study.vsa
    assert vsa_cold > vsa_room + 0.02, "cold must promote detecting 0"
    assert vsa_hot > vsa_room + 0.01, "hot must promote detecting 0"


def test_fig4_border_tiebreak_prefers_hot(benchmark, save_report):
    """BR(87°C) < BR(27°C): high temperature is the more effective
    stress despite the read-panel ambiguity."""
    from repro.analysis import border_resistance, electrical_model
    from repro.stress import NOMINAL_STRESS

    def border_at(temp_c):
        model = electrical_model(
            REFERENCE_DEFECT,
            stress=NOMINAL_STRESS.with_(temp_c=temp_c))
        return border_resistance(model, fails_high=True, r_lo=5e4,
                                 r_hi=2e6, rel_tol=0.04,
                                 sequences=("w1^6 w0 r0",)).resistance

    def run():
        return border_at(27.0), border_at(87.0)

    br27, br87 = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig4_border_tiebreak",
                f"BR(27C) = {br27:.3g} ohm\nBR(87C) = {br87:.3g} ohm\n"
                f"delta = {br27 - br87:.3g} ohm (paper: ~15 kOhm)")
    assert br87 < br27, "high temperature must reduce the border"
