"""Execution engine — cold vs warm cache on the headline sweeps.

Runs the Fig. 2 result planes and the full Table 1 twice through one
:class:`repro.engine.BatchExecutor`: the first pass simulates every
unique sequence (cold), the second recalls them from the content-
addressed cache (warm).  The report records wall time and the engine's
cycle accounting for both passes; the assertions pin the acceptance
criterion that a warm repeat simulates at least 50% fewer cycles
(in practice: none at all).
"""

import time

from repro.engine import BatchExecutor, ResultCache
from repro.experiments import fig2_result_planes, table1_optimization

WORKLOADS = (
    ("fig2 result planes (behavioral, 9 points)",
     lambda engine: fig2_result_planes(backend="behavioral", points=9,
                                       engine=engine)),
    ("table1 optimization (behavioral, full catalog)",
     lambda engine: table1_optimization(engine=engine)),
)


def _cold_warm(run):
    engine = BatchExecutor(cache=ResultCache())
    t0 = time.perf_counter()
    run(engine)
    cold_s = time.perf_counter() - t0
    cold = engine.stats.snapshot()

    t0 = time.perf_counter()
    run(engine)
    warm_s = time.perf_counter() - t0
    warm = engine.stats.delta_since(cold)
    return cold_s, cold, warm_s, warm


def test_engine_cold_vs_warm(benchmark, save_report):
    outcomes = benchmark.pedantic(
        lambda: [(name, *_cold_warm(run)) for name, run in WORKLOADS],
        rounds=1, iterations=1)

    lines = ["engine result cache: cold vs warm pass (serial execution)"]
    for name, cold_s, cold, warm_s, warm in outcomes:
        lines.append(f"\n{name}:")
        lines.append(f"  cold: {cold_s:8.3f} s   "
                     f"{cold.cycles_simulated} cycles simulated, "
                     f"{cold.cycles_saved} saved")
        lines.append(f"  warm: {warm_s:8.3f} s   "
                     f"{warm.cycles_simulated} cycles simulated, "
                     f"{warm.cycles_saved} saved "
                     f"({warm.hit_rate:.0%} hit rate)")
    save_report("engine", "\n".join(lines))

    for name, _, cold, _, warm in outcomes:
        assert cold.cycles_simulated > 0, name
        assert warm.cycles_simulated <= 0.5 * cold.cycles_simulated, \
            f"{name}: warm cache must halve the simulated cycles"
        assert warm.cycles_saved >= 0.5 * cold.cycles_simulated, name
