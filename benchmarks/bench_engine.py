"""Execution engine — cold vs warm cache on the headline sweeps.

Runs the Fig. 2 result planes and the full Table 1 twice through one
:class:`repro.engine.BatchExecutor`: the first pass simulates every
unique sequence (cold), the second recalls them from the content-
addressed cache (warm).  The report records wall time and the engine's
cycle accounting for both passes and lands in ``reports/engine.txt``
(repo root) plus a
machine-readable ``BENCH_engine.json`` twin (same schema family as
``BENCH_solver.json``/``BENCH_sparse.json``); the check pins the
acceptance criterion that a warm repeat simulates at least 50% fewer
cycles (in practice: none at all).

Run standalone (CI runs ``--check``)::

    PYTHONPATH=src python benchmarks/bench_engine.py [--check]
"""

from __future__ import annotations

import platform
import time

try:
    from benchmarks._common import emit, fail, make_parser
except ImportError:                               # run as a script
    from _common import emit, fail, make_parser

import numpy as np  # noqa: E402

from repro.engine import BatchExecutor, ResultCache  # noqa: E402
from repro.experiments import (fig2_result_planes,  # noqa: E402
                               table1_optimization)

WORKLOADS = (
    ("fig2 result planes (behavioral, 9 points)", "fig2_planes",
     lambda engine: fig2_result_planes(backend="behavioral", points=9,
                                       engine=engine)),
    ("table1 optimization (behavioral, full catalog)", "table1",
     lambda engine: table1_optimization(engine=engine)),
)


def _cold_warm(run):
    engine = BatchExecutor(cache=ResultCache())
    t0 = time.perf_counter()
    run(engine)
    cold_s = time.perf_counter() - t0
    cold = engine.stats.snapshot()

    t0 = time.perf_counter()
    run(engine)
    warm_s = time.perf_counter() - t0
    warm = engine.stats.delta_since(cold)
    return cold_s, cold, warm_s, warm


def run_benchmark() -> dict:
    workloads = []
    for name, key, run in WORKLOADS:
        cold_s, cold, warm_s, warm = _cold_warm(run)
        workloads.append({
            "name": name,
            "key": key,
            "cold_s": cold_s,
            "cold_cycles_simulated": cold.cycles_simulated,
            "cold_cycles_saved": cold.cycles_saved,
            "warm_s": warm_s,
            "warm_cycles_simulated": warm.cycles_simulated,
            "warm_cycles_saved": warm.cycles_saved,
            "warm_hit_rate": warm.hit_rate,
            "ok": (cold.cycles_simulated > 0
                   and warm.cycles_simulated
                   <= 0.5 * cold.cycles_simulated
                   and warm.cycles_saved >= 0.5 * cold.cycles_simulated),
        })
    return {
        "workloads": workloads,
        "ok": all(w["ok"] for w in workloads),
    }


def render(res: dict) -> str:
    lines = [
        "engine result cache: cold vs warm pass (serial execution)",
        f"host: {platform.platform()} / python "
        f"{platform.python_version()} / numpy {np.__version__}",
    ]
    for w in res["workloads"]:
        lines.append(f"\n{w['name']}:")
        lines.append(f"  cold: {w['cold_s']:8.3f} s   "
                     f"{w['cold_cycles_simulated']} cycles simulated, "
                     f"{w['cold_cycles_saved']} saved")
        lines.append(f"  warm: {w['warm_s']:8.3f} s   "
                     f"{w['warm_cycles_simulated']} cycles simulated, "
                     f"{w['warm_cycles_saved']} saved "
                     f"({w['warm_hit_rate']:.0%} hit rate)")
    lines.append(f"\nwarm-pass cycle savings >= 50%: "
                 f"{'ok' if res['ok'] else 'MISSED'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = make_parser(__doc__, quick=False,
                       check_parity=False).parse_args(argv)

    res = run_benchmark()
    emit("engine", render(res), res)

    if args.check and not res["ok"]:
        return fail("warm cache must halve the simulated cycles")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
