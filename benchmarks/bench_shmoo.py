"""Sec. 2 — the Shmoo-plot baseline.

Reproduces the traditional methodology the paper improves upon: a 2-D
pass/fail grid of two stresses for a device carrying the reference
defect.  Asserts the tester-visible shape (failures concentrate toward
short cycles and low supply) and measures its cost versus the paper's
method, which needs a handful of targeted simulations instead of a full
grid.
"""

from repro.experiments import shmoo_baseline


def test_shmoo_grid_behavioral(benchmark, save_report):
    study = benchmark.pedantic(
        lambda: shmoo_baseline(backend="behavioral", nx=11, ny=9),
        rounds=1, iterations=1)

    save_report("shmoo", study.render())

    plot = study.plot
    assert plot.pass_count > 0 and plot.fail_count > 0, \
        "the boundary must cross the plotted window"

    # Failures concentrate at low Vdd (left columns).
    left_fail = sum(1 for row in plot.grid if not row[0])
    right_fail = sum(1 for row in plot.grid if not row[-1])
    assert left_fail >= right_fail


def test_shmoo_cost_vs_quick_analysis(benchmark, save_report):
    """The paper's pitch: a Shmoo grid costs one test execution per grid
    point, while the simulation method needs two panels per ST."""
    from repro.analysis.interface import CycleCountingModel
    from repro.behav import behavioral_model
    from repro.core import StressKind, analyze_direction, shmoo
    from repro.experiments.figures import REFERENCE_DEFECT

    def run():
        shmoo_model = CycleCountingModel(
            behavioral_model(REFERENCE_DEFECT.with_resistance(250e3)))
        shmoo(shmoo_model, "w1^2 w0 r0",
              x_kind=StressKind.VDD,
              x_values=[2.1 + i * 0.06 for i in range(11)],
              y_kind=StressKind.TCYC,
              y_values=[50e-9 + i * 2.5e-9 for i in range(9)])

        quick_model = CycleCountingModel(
            behavioral_model(REFERENCE_DEFECT.with_resistance(250e3)))
        analyze_direction(quick_model, StressKind.VDD, 0,
                          probe_points=2)
        return shmoo_model.cycles, quick_model.cycles

    shmoo_cycles, quick_cycles = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    save_report("shmoo_cost",
                f"Shmoo grid: {shmoo_cycles} operation cycles\n"
                f"quick direction panels (one ST): {quick_cycles} cycles")
    assert quick_cycles * 3 < shmoo_cycles, \
        "the quick analysis must be far cheaper than a Shmoo grid"
