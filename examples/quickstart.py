"""Quickstart: optimize test stresses for one DRAM cell defect.

Runs the paper's full flow on the reference defect — the cell open of
Fig. 1 — and prints what a test engineer needs: the border resistance,
the direction to push every stress, and the detection condition to embed
in a march test.

Run:  python examples/quickstart.py
"""

from repro import DefectKind, optimize_defect
from repro.core import StressKind


def main() -> None:
    print("Optimizing stresses for the cell open O3 (paper Fig. 1)...\n")
    row = optimize_defect(DefectKind.O3)

    print(f"defect:            {row.defect.name}")
    print(f"nominal border:    {row.nominal_border.describe()}")
    print(f"nominal detection: {row.nominal_detection.notation()}")
    print()
    print("stress directions (how to make the test harsher):")
    for kind, call in row.directions.items():
        value = call.chosen_value
        unit = {"tcyc": "s", "duty": "", "temp_c": " degC",
                "vdd": " V"}[kind.value]
        shown = f"{value * 1e9:.0f} ns" if kind is StressKind.TCYC \
            else f"{value:g}{unit}"
        print(f"  {kind.value:7s} {call.arrow}  -> {shown:10s} "
              f"(decided by {call.decided_by})")
    print()
    print(f"stressed SC:        {row.stressed_conditions.describe()}")
    print(f"stressed border:    {row.stressed_border.describe()}")
    print(f"stressed detection: {row.stressed_detection.notation()}")
    print()
    if row.improved:
        nom = row.nominal_border.resistance
        stressed = row.stressed_border.resistance
        print(f"The SC extends the failing range: opens from "
              f"{nom / 1e3:.0f} kOhm down to {stressed / 1e3:.0f} kOhm "
              f"now fail -> higher fault coverage for the same test.")


if __name__ == "__main__":
    main()
