"""Compare the Shmoo-plot baseline with the paper's simulation method.

A production engineer tuning a test for a device with a suspected cell
open has two options:

1. **Shmoo plotting** (Sec. 2): run the test over a 2-D stress grid and
   read the pass/fail boundary off the plot — costs one full test
   execution per grid point and says nothing about *why* points fail.
2. **Defect simulation** (Sec. 4): two targeted panels per stress plus a
   couple of border searches — far fewer simulations, plus the internal
   voltages that explain the failure mechanism.

This example runs both on the same defective device and prints the cost
and conclusions side by side.

Run:  python examples/shmoo_vs_simulation.py
"""

from repro.analysis.interface import CycleCountingModel
from repro.behav import behavioral_model
from repro.core import StressKind, analyze_direction, shmoo
from repro.defects import Defect, DefectKind


def main() -> None:
    defect = Defect(DefectKind.O3, resistance=250e3)

    # --- the traditional way: a Vdd x tcyc Shmoo plot ------------------
    shmoo_model = CycleCountingModel(behavioral_model(defect))
    plot = shmoo(shmoo_model, "w1^2 w0 r0",
                 x_kind=StressKind.VDD,
                 x_values=[2.1 + i * 0.06 for i in range(11)],
                 y_kind=StressKind.TCYC,
                 y_values=[50e-9 + i * 2.5e-9 for i in range(9)])
    print(plot.render())
    print(f"\nShmoo cost: {shmoo_model.cycles} operation cycles for "
          f"{len(plot.x_values) * len(plot.y_values)} grid points")
    print("Conclusion: the device fails toward low Vdd / short tcyc — "
          "but the plot cannot say why.\n")

    # --- the paper's way: targeted panels + BR tie-breaks ---------------
    from repro.core import NOMINAL_STRESS, find_border_resistance

    sim_model = CycleCountingModel(behavioral_model(defect))
    sim_model.set_defect_resistance(250e3)
    print("Simulation-based direction analysis:")
    for kind in (StressKind.VDD, StressKind.TCYC):
        call = analyze_direction(sim_model, kind, 0, probe_points=2)
        print(f"    write panel: {call.write_panel.describe()}")
        print(f"    read panel:  {call.read_panel.describe()}")
        if call.needs_border_tiebreak:
            borders = {}
            for value in call.tiebreak_candidates:
                sc = NOMINAL_STRESS.with_value(kind, value)
                borders[value] = find_border_resistance(
                    sim_model, defect, stress=sc, rel_tol=0.1)
            sim_model.set_stress(NOMINAL_STRESS)
            sim_model.set_defect_resistance(250e3)
            chosen = min(borders, key=lambda v: borders[v].resistance
                         or float("inf"))
            print(f"  {kind.value}: panels conflict -> BR tie-break "
                  f"picks {chosen:g}")
        else:
            print(f"  {call.describe()}")
    print(f"\nSimulation cost: {sim_model.cycles} operation cycles")
    print("Conclusion: same directions, a fraction of the cost, and the "
          "panels show the mechanism (weakened w0 vs shifted Vsa).")


if __name__ == "__main__":
    main()
