"""SPICE-level deep dive: watch a defective cell fail a read.

Reproduces the paper's Fig. 3-style waveform view directly from the
electrical simulator: one read cycle of a healthy cell storing 0 next to
the same read with a 5 MOhm storage-node open, where the sense amplifier
wrongly latches a 1 because the cell cannot move its bit line in time.

Run:  python examples/electrical_deep_dive.py
"""

from repro.analysis import electrical_model
from repro.defects import Defect, DefectKind
from repro.report.ascii_plot import ascii_curves


def trace_read(resistance: float):
    """One recorded read cycle of a cell initialised to 0 V."""
    model = electrical_model(Defect(DefectKind.O3,
                                    resistance=resistance),
                             record=True)
    seq = model.run_sequence("r", init_vc=0.0)
    result = seq.results[0]
    return result, seq.outputs[0]


def main() -> None:
    print("Reading a stored 0 through the cell's access path...\n")
    for label, r_ohm in (("healthy (R ~ 0)", 1.0),
                         ("defective (R = 5 MOhm open)", 5e6)):
        result, sensed = trace_read(r_ohm)
        times = [t * 1e9 for t in result.times]
        curves = {
            "cell Vc": list(result.vc),
            "true bit line": list(result.extra["blt"]),
            "ref bit line": list(result.extra["blc"]),
        }
        print(ascii_curves(times, curves, logx=False, width=68,
                           height=14,
                           title=f"{label}: read returns {sensed}"))
        verdict = "correct" if sensed == 0 else \
            "WRONG - the open isolates the cell, the tie resolves to 1"
        print(f"  -> sensed {sensed} ({verdict})\n")


if __name__ == "__main__":
    main()
