"""Walk through the paper's Sec. 4 methodology step by step.

Reproduces the reasoning of Figs. 3-5 interactively: for each stress,
run the write panel and the read panel, show the votes, and — where the
panels conflict or are non-monotonic — settle the question with border-
resistance comparisons, exactly as the paper does for temperature and
supply voltage.

Run:  python examples/stress_direction_study.py [--electrical]
"""

import argparse

from repro.analysis import electrical_model
from repro.behav import behavioral_model
from repro.core import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressKind,
    analyze_direction,
    find_border_resistance,
)
from repro.defects import Defect, DefectKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--electrical", action="store_true",
                        help="use the SPICE-level column (slower)")
    parser.add_argument("--resistance", type=float, default=200e3,
                        help="defect resistance to analyse (ohms)")
    args = parser.parse_args()

    defect = Defect(DefectKind.O3, resistance=args.resistance)
    factory = electrical_model if args.electrical else behavioral_model
    model = factory(defect)
    model.set_defect_resistance(args.resistance)

    print(f"Analysing {defect.name} at R = {args.resistance:.3g} Ohm "
          f"({'electrical' if args.electrical else 'behavioral'} "
          f"backend)\n")

    for kind in (StressKind.TCYC, StressKind.DUTY, StressKind.TEMP,
                 StressKind.VDD):
        call = analyze_direction(model, kind, 0)
        print(f"=== {kind.value} "
              f"(range {STRESS_RANGES[kind].low:g} .. "
              f"{STRESS_RANGES[kind].high:g}) ===")
        print(" ", call.write_panel.describe())
        print(" ", call.read_panel.describe())
        if call.needs_border_tiebreak:
            print("  panels inconclusive -> border-resistance "
                  "tie-break:")
            best_value, best_border = None, None
            for value in call.tiebreak_candidates:
                sc = NOMINAL_STRESS.with_value(kind, value)
                border = find_border_resistance(model, defect,
                                                stress=sc, rel_tol=0.08)
                print(f"    {kind.value}={value:g}: "
                      f"{border.describe()}")
                if best_border is None or (
                        border.found and best_border.found
                        and border.resistance < best_border.resistance):
                    best_value, best_border = value, border
            model.set_stress(NOMINAL_STRESS)
            model.set_defect_resistance(args.resistance)
            print(f"  -> tie-break picks {kind.value}={best_value:g}")
        else:
            print(f"  -> {call.describe()}")
        print()


if __name__ == "__main__":
    main()
