"""Persist an optimization run and diff it against a golden record.

Production flow: each defect-library or technology revision re-runs the
optimizer; the JSON record is checked into the test-program repo and the
diff gates releases (a flipped stress direction means the test program
must be re-qualified).

Run:  python examples/regression_records.py
"""

import pathlib
import tempfile

from repro.core import optimize_all_defects
from repro.defects import Defect, DefectKind, Placement
from repro.dram.tech import default_tech
from repro.behav import behavioral_model
from repro.report.records import diff_tables, load_table, table_to_json

DEFECTS = (Defect(DefectKind.O3, Placement.TRUE),
           Defect(DefectKind.SG, Placement.TRUE))


def main() -> None:
    print("Running the optimizer on the current technology...")
    golden = optimize_all_defects(defects=DEFECTS)
    record = table_to_json(golden)

    out = pathlib.Path(tempfile.gettempdir()) / "repro_golden.json"
    out.write_text(record)
    print(f"golden record written to {out} "
          f"({len(record.splitlines())} lines)\n")

    # A process tweak arrives: the cell capacitor shrinks by 15 %.
    print("Re-running after a technology change (cs -15%)...")
    tweaked_tech = default_tech().with_(cs=default_tech().cs * 0.85)

    def factory(defect, stress):
        return behavioral_model(defect, stress=stress, tech=tweaked_tech)

    revised = optimize_all_defects(defects=DEFECTS,
                                   model_factory=factory)

    messages = diff_tables(load_table(record),
                           load_table(table_to_json(revised)))
    if messages:
        print("regression diff (needs re-qualification):")
        for message in messages:
            print(f"  - {message}")
    else:
        print("no significant changes — test program remains valid.")


if __name__ == "__main__":
    main()
