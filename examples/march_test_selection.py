"""Pick a march test and stress combination for a defect population.

Production scenario: incoming silicon is suspected to carry cell opens
and storage-node shorts of unknown strength.  Which march test should
run, and at which corner of the stress specification?

The example sweeps the standard march library over both defect families
at the nominal SC and at each defect's optimized SC, then prints a
recommendation.

Run:  python examples/march_test_selection.py
"""

from repro.analysis.planes import log_grid
from repro.behav import behavioral_model
from repro.core import NOMINAL_STRESS, optimize_defect
from repro.defects import Defect, DefectKind
from repro.march import STANDARD_TESTS, fault_coverage
from repro.report.tables import render_table


def factory(defect, stress):
    return behavioral_model(defect, stress=stress)


def main() -> None:
    targets = (Defect(DefectKind.O3), Defect(DefectKind.SG))

    # Per-defect optimized SCs via the paper's method.
    optimized = {}
    for defect in targets:
        row = optimize_defect(defect)
        optimized[defect.kind] = row.stressed_conditions
        print(f"{defect.name}: optimized SC = "
              f"{row.stressed_conditions.describe()}")
    print()

    rows = []
    for test in STANDARD_TESTS:
        cells = [test.name, f"{test.length}N"]
        for defect in targets:
            lo, hi = defect.kind.search_range
            grid = log_grid(lo * 2, hi / 2, 10)
            nom = fault_coverage(test, factory, defect, NOMINAL_STRESS,
                                 resistances=grid)
            opt = fault_coverage(test, factory, defect,
                                 optimized[defect.kind],
                                 resistances=grid)
            cells.append(f"{nom.coverage:.0%} -> {opt.coverage:.0%}")
        rows.append(cells)

    headers = ["test", "len"] + [d.name + " (nom -> opt)"
                                 for d in targets]
    print(render_table(headers, rows))

    # Recommendation: the shortest test whose optimized coverage matches
    # the best achieved by any test.
    def best_opt_coverage(cells):
        return min(float(c.split("-> ")[1].rstrip("%"))
                   for c in cells[2:])

    best = max(rows, key=best_opt_coverage)
    shortest = min((r for r in rows
                    if best_opt_coverage(r) >= best_opt_coverage(best)),
                   key=lambda r: int(r[1].rstrip("N")))
    print(f"\nRecommendation: run {shortest[0]} at the per-defect "
          f"optimized SCs — shortest test reaching the best coverage.")


if __name__ == "__main__":
    main()
