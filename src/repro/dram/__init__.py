"""Folded-bit-line DRAM column model.

This package is the synthetic replacement for the proprietary
design-validation memory model used in the paper (Sec. 5.1).  It contains
the same building blocks: one folded cell-array column (2×2 memory cells,
2 reference cells, precharge devices and a sense amplifier), one write
driver and one data output buffer, plus a timing generator parameterised by
the stress conditions.

Entry points:

* :func:`repro.dram.column.build_column` — build the column netlist,
* :class:`repro.dram.runner.ColumnRunner` — apply ``w0``/``w1``/``r``
  operation cycles to a (possibly defective) column and observe the cell
  voltage and data output.
"""

from repro.dram.tech import TechnologyParams, default_tech
from repro.dram.timing import CyclePlan, plan_cycle
from repro.dram.ops import Operation, OpResult, SequenceResult, parse_ops
from repro.dram.column import ColumnNetlist, DefectSite, build_column
from repro.dram.array import ArrayNetlist, build_array
from repro.dram.trim import (TrimPlan, TrimmedArrayNetlist,
                             build_trimmed_array, plan_trim,
                             set_trim_default, trim_array, trim_default)
from repro.dram.runner import ArrayRunner, ColumnRunner

__all__ = [
    "ArrayNetlist",
    "ArrayRunner",
    "ColumnNetlist",
    "ColumnRunner",
    "CyclePlan",
    "DefectSite",
    "OpResult",
    "Operation",
    "SequenceResult",
    "TechnologyParams",
    "TrimPlan",
    "TrimmedArrayNetlist",
    "build_array",
    "build_column",
    "build_trimmed_array",
    "default_tech",
    "parse_ops",
    "plan_cycle",
    "plan_trim",
    "set_trim_default",
    "trim_array",
    "trim_default",
]
