"""Operation-level driver of the electrical column model.

:class:`ColumnRunner` owns a built column netlist and applies ``w0``/``w1``/
``r`` cycles to a target cell, carrying the full node state from cycle to
cycle — the electrical-simulation workhorse behind every result plane in
the paper.
"""

from __future__ import annotations

import numpy as np

from repro.profiling import profiler
from repro.stress import NOMINAL_STRESS, StressConditions
from repro.dram.column import (DEFECT_DEVICE, ColumnNetlist, DefectSite,
                               build_column)
from repro.dram.ops import Op, Operation, OpResult, SequenceResult, parse_ops
from repro.dram.tech import TechnologyParams, default_tech
from repro.dram.timing import plan_cycle
from repro.spice.errors import NetlistError
from repro.spice.lanes import (LaneSystem, LaneWarmBank, lane_transient,
                               make_lane_system)
from repro.spice.mna import System
from repro.spice.transient import kernels_enabled, transient
from repro.spice.waveforms import Constant, Pulse


def column_idle_state(netlist: ColumnNetlist, tech: TechnologyParams,
                      stress: StressConditions, target_cell: int,
                      vc_target: float,
                      background: int = 0) -> dict[str, float]:
    """Node voltages of a quiescent column before the first cycle.

    ``vc_target`` is the *physical* storage-node voltage of the target
    cell (the paper's ``Vc``); the other cells hold the logical
    ``background`` value through the differential write convention.
    Shared by :class:`ColumnRunner` and :class:`LaneRunner` so both
    paths start every sequence from the identical state.
    """
    vdd = stress.vdd
    vpre = tech.vbl_pre(vdd)
    state = {
        "blt": vpre, "blc": vpre,
        "san": vpre, "sap": vpre,
        "snd_t": tech.v_ref(vdd, stress.temp_c),
        "snd_c": tech.v_ref(vdd, stress.temp_c),
        "dx": 0.0, "doutb": vdd, "dout": 0.0,
        "vdd": vdd, "vref": tech.v_ref(vdd, stress.temp_c),
        "vpre": vpre,
    }
    for i in range(tech.num_wordlines):
        on_true = i % 2 == 0
        physical = background if on_true else 1 - background
        state[f"sn{i}"] = float(physical) * vdd
    state[netlist.storage_node(target_cell)] = float(vc_target)
    # Internal defect nodes start at their neighbour's level.
    if netlist.circuit.has_node(f"s_int{target_cell}"):
        state[f"s_int{target_cell}"] = float(vc_target)
    return state


class ColumnRunner:
    """Apply operation cycles to one target cell of a (defective) column.

    Parameters
    ----------
    tech:
        Technology parameters; defaults to the shared synthetic technology.
    stress:
        Stress conditions applied to every cycle (mutable via
        :meth:`set_stress`).
    defect:
        Optional injected defect.
    target_cell:
        Cell operated on.  Even cells sit on the true bit line (paper's
        "true" rows), odd cells on the complementary line ("comp.").
    record:
        When True, per-cycle waveforms (cell voltage, bit lines) are kept
        on each :class:`OpResult`.
    """

    def __init__(self, *, tech: TechnologyParams | None = None,
                 stress: StressConditions = NOMINAL_STRESS,
                 defect: DefectSite | None = None,
                 target_cell: int = 0,
                 record: bool = False):
        self.tech = tech or default_tech()
        self.stress = stress
        self.target_cell = target_cell
        self.record = record
        self.netlist: ColumnNetlist = build_column(self.tech, defect)
        self._sn = self.netlist.storage_node(target_cell)
        self._system: System | None = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_stress(self, stress: StressConditions) -> None:
        self.stress = stress

    def set_defect_resistance(self, resistance: float) -> None:
        self.netlist.set_defect_resistance(resistance)
        # The device value changed in place: compiled stamp plans and the
        # step-matrix/factorization caches are stale, so rebuild lazily.
        self._system = None

    @property
    def defect(self) -> DefectSite | None:
        return self.netlist.defect

    @property
    def target_on_true(self) -> bool:
        return self.target_cell % 2 == 0

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def idle_state(self, vc_target: float,
                   background: int = 0) -> dict[str, float]:
        """Node voltages of a quiescent column before the first cycle.

        ``vc_target`` is the *physical* storage-node voltage of the target
        cell (the paper's ``Vc``); the other cells hold the logical
        ``background`` value through the differential write convention.
        """
        return column_idle_state(self.netlist, self.tech, self.stress,
                                 self.target_cell, vc_target,
                                 background=background)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_op(self, op: Op | str, state: dict[str, float],
               cell: int | None = None
               ) -> tuple[OpResult, dict[str, float]]:
        """Apply one operation cycle starting from ``state``.

        ``cell`` overrides the addressed cell for this cycle (defaults
        to the runner's target) — coupling analysis uses this to drive
        an *aggressor* cell while the defective victim floats.  The
        reported ``vc_end`` always tracks the runner's target cell.

        Returns the observed :class:`OpResult` and the node state at the
        end of the cycle (input to the next operation).
        """
        if isinstance(op, str):
            op = Op.parse(op)
        addressed = self.target_cell if cell is None else cell
        plan = plan_cycle(op, self.stress, self.tech, addressed)
        self.netlist.set_waveforms(plan.waveforms)
        dt = self.stress.tcyc * self.tech.dt_frac
        if self._system is None and kernels_enabled():
            self._system = System(self.netlist.circuit)
        res = transient(self.netlist.circuit, self.stress.tcyc, dt,
                        temp_c=self.stress.temp_c, initial=state,
                        system=self._system)
        new_state = res.final_state()

        sensed = None
        if op.operation is Operation.R:
            sensed = 1 if res.at("dout", plan.t_sample) > 0.5 * \
                self.stress.vdd else 0

        result = OpResult(op=op, vc_end=res.final(self._sn), sensed=sensed)
        if self.record:
            result.times = res.time
            result.vc = res.v(self._sn)
            result.extra = {"blt": res.v("blt"), "blc": res.v("blc"),
                            "dout": res.v("dout")}
        return result, new_state

    def run_sequence(self, ops, init_vc: float, background: int = 0
                     ) -> SequenceResult:
        """Apply a whole operation sequence from a fresh idle state.

        ``ops`` may be a string (``"w1 w1 w0 r0"``), or a list of
        :class:`Op`.
        """
        if isinstance(ops, str):
            ops = parse_ops(ops)
        ops = [Op.parse(o) if isinstance(o, str) else o for o in ops]
        state = self.idle_state(init_vc, background=background)
        results = []
        for op in ops:
            result, state = self.run_op(op, state)
            results.append(result)
        return SequenceResult(ops=ops, results=results)


class LaneRunner:
    """Run one operation sequence over many ``Rop`` lanes at once.

    The multi-lane counterpart of :class:`ColumnRunner`: one column
    netlist, one compiled :class:`System` template, and a
    :class:`~repro.spice.lanes.LaneSystem` whose per-lane static
    matrices carry the swept defect resistances.  Lanes that fail the
    batched Newton loop (after the continuation retry) come back as
    ``None`` for the caller — typically the batch executor — to re-run
    on the legacy per-lane path with its full rescue ladder.
    """

    def __init__(self, *, tech: TechnologyParams | None = None,
                 stress: StressConditions = NOMINAL_STRESS,
                 defect_kind: str = "open_sn",
                 target_cell: int = 0):
        self.tech = tech or default_tech()
        self.stress = stress
        self.target_cell = target_cell
        # Placeholder resistance: the lanes re-value the device span.
        defect = DefectSite(kind=defect_kind, cell=target_cell,
                            resistance=1.0)
        self.netlist: ColumnNetlist = build_column(self.tech, defect)
        self._sn = self.netlist.storage_node(target_cell)
        self._system = System(self.netlist.circuit)
        self._lanes: LaneSystem | None = None

    def set_stress(self, stress: StressConditions) -> None:
        self.stress = stress

    def _lane_system(self, resistances) -> LaneSystem:
        lanes = self._lanes
        if lanes is None:
            lanes = make_lane_system(self._system, resistances,
                                     DEFECT_DEVICE)
            self._lanes = lanes
        elif lanes.resistances != tuple(float(r) for r in resistances):
            lanes.set_resistances(resistances)
        return lanes

    def _stack_states(self, states) -> np.ndarray:
        """Initial solution vectors from per-lane node-voltage dicts."""
        circ = self.netlist.circuit
        x2 = np.zeros((len(states), self._system.size))
        for k, state in enumerate(states):
            for name, volts in state.items():
                x2[k, circ.node(name).index] = float(volts)
        return x2

    def run_sequences(self, ops, lanes_in, background: int = 0
                      ) -> tuple[list, dict[str, int]]:
        """Apply one operation sequence to every ``(resistance, init_vc)``
        lane.

        Returns ``(results, counters)`` where ``results[k]`` is the
        lane's :class:`SequenceResult`, or ``None`` when that lane was
        isolated mid-batch, and ``counters`` is the lane bookkeeping for
        :mod:`repro.diagnostics`.
        """
        if isinstance(ops, str):
            ops = parse_ops(ops)
        ops = [Op.parse(o) if isinstance(o, str) else o for o in ops]
        n = len(lanes_in)
        counters = {"lanes_launched": n, "lanes_isolated": 0,
                    "lanes_converged": 0, "lane_continuation_hits": 0}
        # Active lanes, compressed as lanes get isolated: positions into
        # the caller's lane list.
        active = list(range(n))
        states = [
            column_idle_state(self.netlist, self.tech, self.stress,
                              self.target_cell, init_vc,
                              background=background)
            for _, init_vc in lanes_in]
        x2 = self._stack_states(states)
        per_lane_ops: list[list[OpResult]] = [[] for _ in range(n)]

        dt = self.stress.tcyc * self.tech.dt_frac
        num_nodes = self._system.num_nodes
        for op in ops:
            if not active:
                break
            lanes = self._lane_system([lanes_in[k][0] for k in active])
            plan = plan_cycle(op, self.stress, self.tech, self.target_cell)
            self.netlist.set_waveforms(plan.waveforms)
            batch = lane_transient(lanes, self.stress.tcyc, dt,
                                   temp_c=self.stress.temp_c,
                                   method="be", x0=x2)
            counters["lane_continuation_hits"] += \
                batch.counters.get("lane_continuation_hits", 0)
            counters["lanes_isolated"] += \
                batch.counters.get("lanes_isolated", 0)
            survivors = []
            x_rows = []
            for pos, res in zip(active, batch.results):
                if res is None:
                    per_lane_ops[pos] = None
                    continue
                sensed = None
                if op.operation is Operation.R:
                    sensed = 1 if res.at("dout", plan.t_sample) > \
                        0.5 * self.stress.vdd else 0
                per_lane_ops[pos].append(
                    OpResult(op=op, vc_end=res.final(self._sn),
                             sensed=sensed))
                survivors.append(pos)
                x_rows.append(res.final_x)
            active = survivors
            if not active:
                break
            # Cycle chaining mirrors the per-lane path's final_state()
            # round trip: node voltages carry over, branch currents
            # restart at zero.
            x2 = np.zeros((len(active), self._system.size))
            for j, row in enumerate(x_rows):
                x2[j, :num_nodes] = row[:num_nodes]

        counters["lanes_converged"] = len(active)
        results = [
            SequenceResult(ops=ops, results=lane_ops)
            if lane_ops is not None else None
            for lane_ops in per_lane_ops]
        return results, counters


# ----------------------------------------------------------------------
# array-scale activation workloads
# ----------------------------------------------------------------------
#: Fraction of the cycle an array activation spends precharging before
#: the addressed word line fires.
ARRAY_PRE_FRAC = 0.2

#: Rise/fall time of the array control edges (seconds).
ARRAY_EDGE = 0.5e-9


class ArrayRunner:
    """Apply activation cycles to one victim cell of an R×C array.

    The array-scale counterpart of :class:`ColumnRunner` for the
    workloads an array without a sense path can express: ``r`` cycles
    (precharge the bit lines, fire the addressed row, observe the
    charge sharing and the defect's disturbance of the victim) and
    ``nop`` cycles (idle retention).  Write cycles need the column's
    write drivers and raise.

    The netlist is built through the trim layer
    (:func:`repro.dram.trim.trim_array`): ``trim=None`` follows the
    process-wide policy, ``"off"`` keeps the full array, ``"auto"`` /
    ``"force"`` simulate only the accessed row/column plus the defect
    neighborhood with boundary loads standing in for the pruned rest.

    Parameters
    ----------
    geometry:
        ``(rows, cols)`` of the logical array.
    address:
        Accessed ``(row, col)``; defaults to the defective cell's own
        position (the standard victim-activation scenario).
    defect:
        Optional injected :class:`~repro.dram.column.DefectSite` with
        the cell index flattened row-major over the geometry.
    trim:
        Trim policy (see :mod:`repro.dram.trim`).
    """

    def __init__(self, *, tech: TechnologyParams | None = None,
                 stress: StressConditions = NOMINAL_STRESS,
                 defect: DefectSite | None = None,
                 geometry: tuple[int, int] = (4, 4),
                 address: tuple[int, int] | None = None,
                 trim: str | None = None,
                 halo: int = 1,
                 record: bool = False):
        from repro.dram.trim import default_address, trim_array
        rows, cols = geometry
        self.tech = tech or default_tech()
        self.stress = stress
        self.rows = int(rows)
        self.cols = int(cols)
        if address is None:
            address = default_address(self.rows, self.cols, defect)
        self.address = (int(address[0]), int(address[1]))
        self.record = record
        self.netlist = trim_array(self.rows, self.cols, self.tech, defect,
                                  address=self.address, policy=trim,
                                  halo=halo)
        if defect is not None:
            self.victim = divmod(defect.cell, self.cols)
        else:
            self.victim = self.address
        self._victim_idx = self.victim[0] * self.cols + self.victim[1]
        self._sn = self.netlist.storage_node(*self.victim)
        self._system: System | None = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_stress(self, stress: StressConditions) -> None:
        self.stress = stress

    def set_defect_resistance(self, resistance: float) -> None:
        self.netlist.set_defect_resistance(resistance)
        # Values changed in place: compiled plans/factorizations are
        # stale, so the system is rebuilt lazily.
        self._system = None

    @property
    def defect(self) -> DefectSite | None:
        return self.netlist.defect

    @property
    def trimmed(self) -> bool:
        """Did the trim layer actually prune this netlist?"""
        return getattr(self.netlist.circuit, "trimmed", False)

    # ------------------------------------------------------------------
    # state and stimulus
    # ------------------------------------------------------------------
    def idle_state(self, init_vc: float,
                   background: int = 0) -> dict[str, float]:
        """Node voltages of a quiescent array before the first cycle.

        Bit lines rest at the precharge level, word lines low, every
        storage node at the logical ``background`` value — except the
        victim, which holds the physical ``init_vc``.  Works on full
        and trimmed netlists alike (pruned nodes simply do not appear).
        """
        vdd = self.stress.vdd
        vpre = self.tech.vbl_pre(vdd)
        vbg = float(background) * vdd
        state: dict[str, float] = {"vdd": vdd, "vpre": vpre}
        for name in self.netlist.circuit.node_names:
            if name.startswith("sn"):
                state[name] = vbg
            elif name.startswith("bl") or name.startswith("d_int"):
                state[name] = vpre
            elif name.startswith("s_int"):
                state[name] = vbg
        state[self._sn] = float(init_vc)
        if self.netlist.circuit.has_node(f"s_int{self._victim_idx}"):
            state[f"s_int{self._victim_idx}"] = float(init_vc)
        return state

    def cycle_waveforms(self, op: Op) -> tuple[dict, float]:
        """Control waveforms for one cycle plus the sense-sample time.

        An active (``r``) cycle precharges for ``ARRAY_PRE_FRAC`` of
        the stress cycle time, then fires the addressed word line for
        a window scaled by the stress duty cycle — so every ST axis
        (tcyc, duty, T through the simulation, Vdd through the rails
        and boosted levels) stresses the array exactly as it does the
        column.  A ``nop`` cycle holds every control low (retention).
        """
        tcyc = self.stress.tcyc
        vdd = self.stress.vdd
        vpp = self.tech.vpp(vdd)
        t_pre = ARRAY_PRE_FRAC * tcyc
        waves: dict = {"v_vdd": Constant(vdd),
                       "v_pre": Constant(self.tech.vbl_pre(vdd))}
        active = op.operation is Operation.R
        t_act = self.stress.duty * (tcyc - t_pre - 2.0 * ARRAY_EDGE)
        if active:
            waves["v_eq"] = Pulse(vpp, 0.0, delay=t_pre, rise=ARRAY_EDGE,
                                  fall=ARRAY_EDGE, width=10.0)
        else:
            waves["v_eq"] = Constant(0.0)
        for r in range(self.rows):
            if active and r == self.address[0]:
                waves[f"v_wl{r}"] = Pulse(0.0, vpp,
                                          delay=t_pre + ARRAY_EDGE,
                                          rise=ARRAY_EDGE,
                                          fall=ARRAY_EDGE, width=t_act)
            else:
                waves[f"v_wl{r}"] = Constant(0.0)
        t_sample = t_pre + 2.0 * ARRAY_EDGE + t_act
        return waves, t_sample

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_op(self, op: Op | str, state: dict[str, float]
               ) -> tuple[OpResult, dict[str, float]]:
        """Apply one cycle starting from ``state``."""
        if isinstance(op, str):
            op = Op.parse(op)
        if op.operation.is_write:
            raise NetlistError(
                "the array model has no write path; express array "
                "workloads with r/nop cycles (initial data comes from "
                "init_vc/background)")
        waves, t_sample = self.cycle_waveforms(op)
        self.netlist.set_waveforms(waves)
        dt = self.stress.tcyc * self.tech.dt_frac
        if self._system is None and kernels_enabled():
            self._system = System(self.netlist.circuit)
        res = transient(self.netlist.circuit, self.stress.tcyc, dt,
                        temp_c=self.stress.temp_c, initial=state,
                        system=self._system)
        new_state = res.final_state()

        sensed = None
        if op.operation is Operation.R:
            head = f"bl{self.address[1]}_0"
            sensed = 1 if res.at(head, t_sample) > \
                self.tech.vbl_pre(self.stress.vdd) else 0

        result = OpResult(op=op, vc_end=res.final(self._sn), sensed=sensed)
        if self.record:
            result.times = res.time
            result.vc = res.v(self._sn)
            result.extra = {"bl": res.v(f"bl{self.address[1]}_0")}
        return result, new_state

    def run_sequence(self, ops, init_vc: float, background: int = 0
                     ) -> SequenceResult:
        """Apply a whole cycle sequence from a fresh idle state."""
        if isinstance(ops, str):
            ops = parse_ops(ops)
        ops = [Op.parse(o) if isinstance(o, str) else o for o in ops]
        state = self.idle_state(init_vc, background=background)
        results = []
        for op in ops:
            result, state = self.run_op(op, state)
            results.append(result)
        return SequenceResult(ops=ops, results=results)


class ArrayLaneRunner:
    """Run one array cycle sequence over many ``Rop`` lanes at once.

    The array-scale counterpart of :class:`LaneRunner`: one (optionally
    trimmed) array netlist built around a placeholder defect, one
    compiled :class:`System` template, and a lane system whose per-lane
    statics carry the swept defect resistances — dense or sparse
    depending on what the backend policy resolves for this netlist
    (:func:`~repro.spice.lanes.make_lane_system`).  Because the
    template is compiled once, a BR bisection stops paying the
    netlist-build + plan-compile cost per probe that the serial
    :class:`ArrayRunner` path incurs through
    :meth:`ArrayRunner.set_defect_resistance`.

    A :class:`~repro.spice.lanes.LaneWarmBank` carries quasi-Newton
    factorizations and trajectories across successive batches (the
    *generations* of a bisection), warm-starting each new lane from its
    nearest converged log-R neighbour.  The bank is cleared on stress
    changes — a new stress moves every waveform and time grid, so
    nothing stored remains commensurable.
    """

    def __init__(self, *, tech: TechnologyParams | None = None,
                 stress: StressConditions = NOMINAL_STRESS,
                 defect_kind: str = "open_sn",
                 cell: int = 0,
                 geometry: tuple[int, int] = (4, 4),
                 address: tuple[int, int] | None = None,
                 trim: str | None = None,
                 record: bool = False):
        defect = DefectSite(kind=defect_kind, cell=cell, resistance=1.0)
        self._runner = ArrayRunner(tech=tech, stress=stress, defect=defect,
                                   geometry=geometry, address=address,
                                   trim=trim, record=record)
        self.tech = self._runner.tech
        self.stress = stress
        self.record = record
        self._system = System(self._runner.netlist.circuit)
        self._lanes: LaneSystem | None = None
        self._bank = LaneWarmBank()

    @property
    def trimmed(self) -> bool:
        return self._runner.trimmed

    def set_stress(self, stress: StressConditions) -> None:
        if stress != self.stress:
            self.stress = stress
            self._runner.set_stress(stress)
            self._bank.clear()

    def _lane_system(self, resistances) -> LaneSystem:
        lanes = self._lanes
        if lanes is None:
            lanes = make_lane_system(self._system, resistances,
                                     DEFECT_DEVICE)
            self._lanes = lanes
        elif lanes.resistances != tuple(float(r) for r in resistances):
            lanes.set_resistances(resistances)
        return lanes

    def _stack_states(self, states) -> np.ndarray:
        circ = self._runner.netlist.circuit
        x2 = np.zeros((len(states), self._system.size))
        for k, state in enumerate(states):
            for name, volts in state.items():
                x2[k, circ.node(name).index] = float(volts)
        return x2

    def run_sequences(self, ops, lanes_in, background: int = 0
                      ) -> tuple[list, dict[str, int]]:
        """Apply one cycle sequence to every ``(resistance, init_vc)``
        lane.

        Same contract as :meth:`LaneRunner.run_sequences`: returns
        ``(results, counters)`` with ``None`` for isolated lanes, which
        the batch executor re-runs on the serial :class:`ArrayRunner`
        path.
        """
        if isinstance(ops, str):
            ops = parse_ops(ops)
        ops = [Op.parse(o) if isinstance(o, str) else o for o in ops]
        for op in ops:
            if op.operation.is_write:
                raise NetlistError(
                    "the array model has no write path; express array "
                    "workloads with r/nop cycles (initial data comes "
                    "from init_vc/background)")
        runner = self._runner
        n = len(lanes_in)
        counters = {"lanes_launched": n, "lanes_isolated": 0,
                    "lanes_converged": 0, "lane_continuation_hits": 0,
                    "lane_warm_start_hits": 0, "lane_warm_start_misses": 0}
        active = list(range(n))
        states = [runner.idle_state(init_vc, background=background)
                  for _, init_vc in lanes_in]
        x2 = self._stack_states(states)
        per_lane_ops: list = [[] for _ in range(n)]

        dt = self.stress.tcyc * self.tech.dt_frac
        num_nodes = self._system.num_nodes
        sn = runner._sn
        head = f"bl{runner.address[1]}_0"
        vpre = self.tech.vbl_pre(self.stress.vdd)
        for oi, op in enumerate(ops):
            if not active:
                break
            lanes = self._lane_system([lanes_in[k][0] for k in active])
            waves, t_sample = runner.cycle_waveforms(op)
            runner.netlist.set_waveforms(waves)
            key = (oi, op.operation)
            hits, misses = self._bank.seed(key, lanes)
            counters["lane_warm_start_hits"] += hits
            counters["lane_warm_start_misses"] += misses
            if profiler.enabled:
                profiler.count("lanes.warm_start_hits", hits)
                profiler.count("lanes.warm_start_misses", misses)
            batch = lane_transient(lanes, self.stress.tcyc, dt,
                                   temp_c=self.stress.temp_c,
                                   method="be", x0=x2,
                                   warm=self._bank.view(key))
            for name, value in batch.counters.items():
                if name not in ("lanes_launched", "lanes_converged"):
                    counters[name] = counters.get(name, 0) + value
            survivors = []
            x_rows = []
            for row, (pos, res) in enumerate(zip(active, batch.results)):
                if res is None:
                    per_lane_ops[pos] = None
                    continue
                self._bank.store(key, lanes, row, res)
                sensed = None
                if op.operation is Operation.R:
                    sensed = 1 if res.at(head, t_sample) > vpre else 0
                result = OpResult(op=op, vc_end=res.final(sn),
                                  sensed=sensed)
                if self.record:
                    result.times = res.time
                    result.vc = res.v(sn)
                    result.extra = {"bl": res.v(head)}
                per_lane_ops[pos].append(result)
                survivors.append(pos)
                x_rows.append(res.final_x)
            active = survivors
            if not active:
                break
            # Cycle chaining mirrors ArrayRunner's final_state() round
            # trip: node voltages carry over, branch currents restart
            # at zero.
            x2 = np.zeros((len(active), self._system.size))
            for j, row in enumerate(x_rows):
                x2[j, :num_nodes] = row[:num_nodes]

        counters["lanes_converged"] = len(active)
        results = [
            SequenceResult(ops=ops, results=lane_ops)
            if lane_ops is not None else None
            for lane_ops in per_lane_ops]
        return results, counters
