"""Operation-level driver of the electrical column model.

:class:`ColumnRunner` owns a built column netlist and applies ``w0``/``w1``/
``r`` cycles to a target cell, carrying the full node state from cycle to
cycle — the electrical-simulation workhorse behind every result plane in
the paper.
"""

from __future__ import annotations

from repro.stress import NOMINAL_STRESS, StressConditions
from repro.dram.column import ColumnNetlist, DefectSite, build_column
from repro.dram.ops import Op, Operation, OpResult, SequenceResult, parse_ops
from repro.dram.tech import TechnologyParams, default_tech
from repro.dram.timing import plan_cycle
from repro.spice.mna import System
from repro.spice.transient import kernels_enabled, transient


class ColumnRunner:
    """Apply operation cycles to one target cell of a (defective) column.

    Parameters
    ----------
    tech:
        Technology parameters; defaults to the shared synthetic technology.
    stress:
        Stress conditions applied to every cycle (mutable via
        :meth:`set_stress`).
    defect:
        Optional injected defect.
    target_cell:
        Cell operated on.  Even cells sit on the true bit line (paper's
        "true" rows), odd cells on the complementary line ("comp.").
    record:
        When True, per-cycle waveforms (cell voltage, bit lines) are kept
        on each :class:`OpResult`.
    """

    def __init__(self, *, tech: TechnologyParams | None = None,
                 stress: StressConditions = NOMINAL_STRESS,
                 defect: DefectSite | None = None,
                 target_cell: int = 0,
                 record: bool = False):
        self.tech = tech or default_tech()
        self.stress = stress
        self.target_cell = target_cell
        self.record = record
        self.netlist: ColumnNetlist = build_column(self.tech, defect)
        self._sn = self.netlist.storage_node(target_cell)
        self._system: System | None = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_stress(self, stress: StressConditions) -> None:
        self.stress = stress

    def set_defect_resistance(self, resistance: float) -> None:
        self.netlist.set_defect_resistance(resistance)
        # The device value changed in place: compiled stamp plans and the
        # step-matrix/factorization caches are stale, so rebuild lazily.
        self._system = None

    @property
    def defect(self) -> DefectSite | None:
        return self.netlist.defect

    @property
    def target_on_true(self) -> bool:
        return self.target_cell % 2 == 0

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def idle_state(self, vc_target: float,
                   background: int = 0) -> dict[str, float]:
        """Node voltages of a quiescent column before the first cycle.

        ``vc_target`` is the *physical* storage-node voltage of the target
        cell (the paper's ``Vc``); the other cells hold the logical
        ``background`` value through the differential write convention.
        """
        tech, vdd = self.tech, self.stress.vdd
        vpre = tech.vbl_pre(vdd)
        state = {
            "blt": vpre, "blc": vpre,
            "san": vpre, "sap": vpre,
            "snd_t": tech.v_ref(vdd, self.stress.temp_c),
            "snd_c": tech.v_ref(vdd, self.stress.temp_c),
            "dx": 0.0, "doutb": vdd, "dout": 0.0,
            "vdd": vdd, "vref": tech.v_ref(vdd, self.stress.temp_c),
            "vpre": vpre,
        }
        for i in range(tech.num_wordlines):
            on_true = i % 2 == 0
            physical = background if on_true else 1 - background
            state[f"sn{i}"] = float(physical) * vdd
        state[self._sn] = float(vc_target)
        # Internal defect nodes start at their neighbour's level.
        circ = self.netlist.circuit
        if circ.has_node(f"s_int{self.target_cell}"):
            state[f"s_int{self.target_cell}"] = float(vc_target)
        return state

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_op(self, op: Op | str, state: dict[str, float],
               cell: int | None = None
               ) -> tuple[OpResult, dict[str, float]]:
        """Apply one operation cycle starting from ``state``.

        ``cell`` overrides the addressed cell for this cycle (defaults
        to the runner's target) — coupling analysis uses this to drive
        an *aggressor* cell while the defective victim floats.  The
        reported ``vc_end`` always tracks the runner's target cell.

        Returns the observed :class:`OpResult` and the node state at the
        end of the cycle (input to the next operation).
        """
        if isinstance(op, str):
            op = Op.parse(op)
        addressed = self.target_cell if cell is None else cell
        plan = plan_cycle(op, self.stress, self.tech, addressed)
        self.netlist.set_waveforms(plan.waveforms)
        dt = self.stress.tcyc * self.tech.dt_frac
        if self._system is None and kernels_enabled():
            self._system = System(self.netlist.circuit)
        res = transient(self.netlist.circuit, self.stress.tcyc, dt,
                        temp_c=self.stress.temp_c, initial=state,
                        system=self._system)
        new_state = res.final_state()

        sensed = None
        if op.operation is Operation.R:
            sensed = 1 if res.at("dout", plan.t_sample) > 0.5 * \
                self.stress.vdd else 0

        result = OpResult(op=op, vc_end=res.final(self._sn), sensed=sensed)
        if self.record:
            result.times = res.time
            result.vc = res.v(self._sn)
            result.extra = {"blt": res.v("blt"), "blc": res.v("blc"),
                            "dout": res.v("dout")}
        return result, new_state

    def run_sequence(self, ops, init_vc: float, background: int = 0
                     ) -> SequenceResult:
        """Apply a whole operation sequence from a fresh idle state.

        ``ops`` may be a string (``"w1 w1 w0 r0"``), or a list of
        :class:`Op`.
        """
        if isinstance(ops, str):
            ops = parse_ops(ops)
        ops = [Op.parse(o) if isinstance(o, str) else o for o in ops]
        state = self.idle_state(init_vc, background=background)
        results = []
        for op in ops:
            result, state = self.run_op(op, state)
            results.append(result)
        return SequenceResult(ops=ops, results=results)
