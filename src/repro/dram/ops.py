"""Memory operations and per-operation results.

The paper works with three operations applied to the cell under analysis:
``w0`` (write 0), ``w1`` (write 1) and ``r`` (read).  Detection conditions
additionally annotate reads with the *expected* value (``r0``/``r1``); a
fault is detected when a read returns the complement of its expectation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Operation(enum.Enum):
    """A single-cycle memory operation on the target cell.

    ``NOP`` is an idle cycle: the cell is not accessed but time passes —
    march tests use it to model operations addressed at *other* cells,
    during which a leaky/shorted cell keeps decaying.
    """

    W0 = "w0"
    W1 = "w1"
    R = "r"
    NOP = "nop"

    @property
    def is_write(self) -> bool:
        return self in (Operation.W0, Operation.W1)

    @property
    def write_value(self) -> int:
        """Logical value written (0/1); raises for reads."""
        if self is Operation.W0:
            return 0
        if self is Operation.W1:
            return 1
        raise ValueError("read operations do not write a value")


@dataclass(frozen=True)
class Op:
    """An operation plus (for reads) its expected logical value.

    ``Op.parse("r0")`` is a read expecting 0; ``Op.parse("r")`` is a read
    with no expectation (used while exploring behaviour rather than
    testing).
    """

    operation: Operation
    expected: int | None = None

    def __post_init__(self):
        if self.expected is not None:
            if self.operation is not Operation.R:
                raise ValueError("only reads carry an expected value")
            if self.expected not in (0, 1):
                raise ValueError(f"expected must be 0 or 1, "
                                 f"got {self.expected}")

    @classmethod
    def parse(cls, token: str) -> "Op":
        token = token.strip().lower()
        if token == "w0":
            return cls(Operation.W0)
        if token == "w1":
            return cls(Operation.W1)
        if token == "r":
            return cls(Operation.R)
        if token == "nop":
            return cls(Operation.NOP)
        if token == "r0":
            return cls(Operation.R, expected=0)
        if token == "r1":
            return cls(Operation.R, expected=1)
        raise ValueError(f"unknown operation token {token!r}")

    def __str__(self):
        if self.operation is Operation.R and self.expected is not None:
            return f"r{self.expected}"
        return self.operation.value


def parse_ops(text: str) -> list[Op]:
    """Parse a whitespace/comma-separated operation sequence.

    Supports repetition with ``^``: ``"w1^3 w0 r0"`` →
    ``[w1, w1, w1, w0, r0]``.
    """
    ops: list[Op] = []
    for token in text.replace(",", " ").split():
        if "^" in token:
            base, _, count = token.partition("^")
            n = int(count)
            if n < 1:
                raise ValueError(f"repetition count must be >= 1 in "
                                 f"{token!r}")
            ops.extend([Op.parse(base)] * n)
        else:
            ops.append(Op.parse(token))
    if not ops:
        raise ValueError("empty operation sequence")
    return ops


def format_ops(ops) -> str:
    """Render an operation list compactly (``w1^2 w0 r0``)."""
    out: list[str] = []
    i = 0
    ops = list(ops)
    while i < len(ops):
        j = i
        while j < len(ops) and str(ops[j]) == str(ops[i]):
            j += 1
        count = j - i
        out.append(str(ops[i]) if count == 1 else f"{ops[i]}^{count}")
        i = j
    return " ".join(out)


@dataclass
class OpResult:
    """Observed behaviour of one operation cycle.

    Attributes
    ----------
    op:
        The operation applied.
    vc_end:
        Target-cell storage voltage at the end of the cycle.
    sensed:
        For reads: the logical value produced at the data output;
        ``None`` for writes.
    detected_fault:
        True when ``op`` carries an expectation and the sensed value
        differs from it.
    times, vc:
        Optional recorded waveform of the cell voltage over the cycle
        (present when the runner is asked to record traces).
    extra:
        Optional additional recorded waveforms keyed by node name.
    """

    op: Op
    vc_end: float
    sensed: int | None = None
    times: object = None
    vc: object = None
    extra: dict = field(default_factory=dict)

    @property
    def detected_fault(self) -> bool:
        return (self.op.expected is not None and self.sensed is not None
                and self.sensed != self.op.expected)


@dataclass
class SequenceResult:
    """Results of applying an operation sequence to the target cell."""

    ops: list[Op]
    results: list[OpResult]

    @property
    def vc_after(self) -> list[float]:
        """Cell voltage after each operation."""
        return [r.vc_end for r in self.results]

    @property
    def outputs(self) -> list[int | None]:
        """Read outputs in order (``None`` entries for writes)."""
        return [r.sensed for r in self.results]

    @property
    def any_fault(self) -> bool:
        """True if any expecting read observed the wrong value."""
        return any(r.detected_fault for r in self.results)

    def describe(self) -> str:
        parts = []
        for r in self.results:
            bit = "" if r.sensed is None else f"->{r.sensed}"
            flag = "!" if r.detected_fault else ""
            parts.append(f"{r.op}{bit}{flag}(Vc={r.vc_end:.2f})")
        return " ".join(parts)
