"""Active-window netlist trimming for R×C arrays with boundary loads.

A full :func:`~repro.dram.array.build_array` netlist carries ``3·R·C``
cell nodes plus every word-/bit-line RC ladder — 787 MNA unknowns at
16×16, which even the sparse backend pays for on every Newton step.  An
activation-style workload only ever *exercises* the accessed row and
column (plus the injected defect's neighborhood); everything else is
dead weight.  This module trims the netlist to that active window, the
OpenRAM/OpenNVRAM characterizer move ("trim the netlist to remove
unnecessary logic"), while replacing every pruned device with an
aggregated boundary load so the kept nodes see the same electrical
environment.

Why the trim is (near-)exact in this device model
-------------------------------------------------
* MOSFET gates draw no current — the level-1 stamp adds the
  transconductance to the drain/source KCL rows only, so a word line is
  loaded purely by its explicit (linear) tap and gate capacitors.  A
  pruned cell on a kept word line therefore reduces *exactly* to its
  gate capacitance, folded into the tap's boundary capacitor.
* Unselected word lines are driven by ``Constant(0.0)`` sources and
  start at 0 V, so their whole RC ladder sits at 0 V for all time and
  every access transistor on a pruned row stays in its off state.
  Pruning the ladder is exact; the off transistor's residual
  sub-threshold leak into a kept bit line is replaced by an aggregated
  boundary conductance linearised at the precharge operating point
  (:func:`pruned_cell_conductance`, ~1e-19 S for the shared synthetic
  technology — bounded in DESIGN.md §5g).
* Supply, precharge and equalise rails are ideal voltage sources;
  removing their pruned loads cannot move any kept node.

The only approximation is the off-state leak linearisation, so trimmed
and full trajectories agree to solver round-off (measured ~1e-12 V,
see ``reports/trim.txt``) and border-resistance searches land within
the documented 1e-5 lane tolerance.

Policy
------
``trim="off"`` always builds the full array (the parity baseline);
``"force"`` always trims; ``"auto"`` (the default) trims only when the
plan actually prunes cells.  The process-wide default
(:func:`set_trim_default`, CLI ``--trim``) feeds :class:`~repro.engine.request.SequenceRequest`
construction; the policy is part of the request's content hash, so
trimmed and full results can never collide in the cache or the sharded
store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.array import (DEFAULT_C_WL, DEFAULT_R_BL, DEFAULT_R_WL,
                              ArrayNetlist, build_array)
from repro.dram.column import DEFECT_DEVICE, DefectSite
from repro.dram.tech import TechnologyParams, default_tech
from repro.spice.devices import Capacitor, Resistor, VoltageSource, Diode
from repro.spice.errors import NetlistError
from repro.spice.mosfet import Mosfet, mosfet_curves
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Constant

__all__ = [
    "TRIM_CHOICES", "TrimPlan", "TrimmedArrayNetlist", "plan_trim",
    "build_trimmed_array", "trim_array", "default_address",
    "pruned_cell_conductance", "set_trim_default", "trim_default",
    "resolve_trim",
]

#: Valid values of the trim policy (also the CLI ``--trim`` choices).
TRIM_CHOICES = ("off", "auto", "force")

#: Boundary conductances below this are not worth a device stamp: the
#: solver's gmin regularisation (1e-12 S) dwarfs them by seven orders
#: of magnitude either way.
MIN_BOUNDARY_CONDUCTANCE = 1e-30

_TRIM_DEFAULT = "auto"


def set_trim_default(policy: str) -> str:
    """Set the process-wide trim policy (CLI ``--trim``).

    Returns the previous value.  Workers spawned by fork inherit it
    with the rest of the module state, like the solver-backend default.
    """
    global _TRIM_DEFAULT
    if policy not in TRIM_CHOICES:
        raise NetlistError(
            f"unknown trim policy {policy!r}; choose one of "
            f"{', '.join(TRIM_CHOICES)}")
    previous = _TRIM_DEFAULT
    _TRIM_DEFAULT = policy
    return previous


def trim_default() -> str:
    """Current process-wide trim policy."""
    return _TRIM_DEFAULT


def resolve_trim(policy: str | None) -> str:
    """Validate a trim policy request (``None`` reads the default)."""
    if policy is None:
        return _TRIM_DEFAULT
    if policy not in TRIM_CHOICES:
        raise NetlistError(
            f"unknown trim policy {policy!r}; choose one of "
            f"{', '.join(TRIM_CHOICES)}")
    return policy


def default_address(rows: int, cols: int,
                    defect: DefectSite | None) -> tuple[int, int]:
    """The accessed (row, col) when the caller does not say: the
    defective cell's own position, or the origin for a clean array."""
    if defect is None:
        return (0, 0)
    if defect.cell >= rows * cols:
        raise NetlistError(
            f"defect cell {defect.cell} outside the {rows}x{cols} array")
    return divmod(defect.cell, cols)


@dataclass(frozen=True)
class TrimPlan:
    """Which rows/columns of an R×C array survive the trim.

    ``kept_rows``/``kept_cols`` are sorted and deduplicated; the kept
    cell set is their cross product.  The accessed address and (when a
    defect is injected) the defect's victim/aggressor neighborhood are
    kept by construction.
    """

    rows: int
    cols: int
    address: tuple[int, int]
    kept_rows: tuple[int, ...]
    kept_cols: tuple[int, ...]

    @property
    def cells_kept(self) -> int:
        return len(self.kept_rows) * len(self.kept_cols)

    @property
    def cells_pruned(self) -> int:
        return self.rows * self.cols - self.cells_kept

    def keeps_row(self, row: int) -> bool:
        return row in self.kept_rows

    def keeps_col(self, col: int) -> bool:
        return col in self.kept_cols

    def keeps_cell(self, row: int, col: int) -> bool:
        return self.keeps_row(row) and self.keeps_col(col)

    def describe(self) -> str:
        return (f"{self.rows}x{self.cols} -> rows {list(self.kept_rows)} "
                f"x cols {list(self.kept_cols)} "
                f"({self.cells_kept}/{self.rows * self.cols} cells kept)")


def plan_trim(rows: int, cols: int, address: tuple[int, int],
              defect: DefectSite | None = None, *,
              halo: int = 1) -> TrimPlan:
    """Plan the active window: accessed row/column plus defect halo.

    ``halo`` rows/columns are kept on each side of the defective cell
    so bridge-class defects see their victim/aggressor neighbors; the
    accessed address itself is always kept.
    """
    if rows < 1 or cols < 1:
        raise NetlistError("array needs at least one row and one column")
    if halo < 0:
        raise NetlistError("trim halo must be >= 0")
    arow, acol = address
    if not (0 <= arow < rows and 0 <= acol < cols):
        raise NetlistError(
            f"address ({arow}, {acol}) outside the {rows}x{cols} array")
    kept_rows = {arow}
    kept_cols = {acol}
    if defect is not None:
        if defect.cell >= rows * cols:
            raise NetlistError(
                f"defect cell {defect.cell} outside the "
                f"{rows}x{cols} array")
        drow, dcol = divmod(defect.cell, cols)
        for d in range(-halo, halo + 1):
            if 0 <= drow + d < rows:
                kept_rows.add(drow + d)
            if 0 <= dcol + d < cols:
                kept_cols.add(dcol + d)
    return TrimPlan(rows=rows, cols=cols, address=(arow, acol),
                    kept_rows=tuple(sorted(kept_rows)),
                    kept_cols=tuple(sorted(kept_cols)))


def pruned_cell_conductance(tech: TechnologyParams, *,
                            temp_c: float = 27.0) -> float:
    """Equivalent leakage conductance of one pruned off-state cell.

    Linearises the access transistor at the operating region a pruned
    cell actually sits in — word line at 0 V, bit line precharged,
    storage node at ground background — and returns the secant
    conductance ``I_off / V_ds``.  This is the load a kept bit line
    loses when the cell behind one of its taps is pruned.
    """
    vds = tech.vbl_pre(tech.vdd_nom)
    if vds <= 0:
        return 0.0
    ids, _gm, _gds = mosfet_curves(
        tech.access_params, tech.access_w / tech.access_l,
        vgs=0.0, vds=vds, temp_c=temp_c)
    return max(ids, 0.0) / vds


@dataclass
class TrimmedArrayNetlist(ArrayNetlist):
    """A trimmed array: full-geometry addressing over kept nodes only.

    ``rows``/``cols`` stay the *logical* geometry (cell indices, tap
    names and waveform keys match the full array), but only the nodes
    of the :class:`TrimPlan` exist.  Asking for a pruned cell's storage
    node or tap raises; reprogramming waveforms silently drops the
    constant-0 waves of pruned word lines and refuses anything that
    would actually drive a pruned row — firing a word line outside the
    active window is a trim violation, not a quiet wrong answer.
    """

    plan: TrimPlan = None  # always passed; dataclass needs a default
    #: Aggregated boundary-load bookkeeping (for diagnostics/reports).
    boundary_caps: int = 0
    boundary_leaks: int = 0

    def _require_kept(self, row: int, col: int) -> None:
        if not self.plan.keeps_cell(row, col):
            raise NetlistError(
                f"cell ({row}, {col}) was pruned by the trim plan "
                f"({self.plan.describe()}); use trim='off' to keep it")

    def storage_node(self, row: int, col: int) -> str:
        self.cell_index(row, col)
        self._require_kept(row, col)
        return f"sn{row}_{col}"

    def wordline_tap(self, row: int, col: int) -> str:
        self.cell_index(row, col)
        if not self.plan.keeps_row(row):
            raise NetlistError(
                f"word line {row} was pruned by the trim plan")
        return f"wl{row}_{col}"

    def bitline_tap(self, row: int, col: int) -> str:
        self.cell_index(row, col)
        if not self.plan.keeps_col(col):
            raise NetlistError(
                f"bit line {col} was pruned by the trim plan")
        return f"bl{col}_{row}"

    def set_waveforms(self, waveforms: dict) -> None:
        for name, wave in waveforms.items():
            if name not in self.circuit and name.startswith("v_wl"):
                row = name[4:]
                if row.isdigit() and int(row) < self.rows:
                    if isinstance(wave, Constant) and wave.level == 0.0:
                        continue  # pruned row held low: exactly the trim
                    raise NetlistError(
                        f"waveform for pruned word line {name!r} is not "
                        f"constant-0; widen the trim window or use "
                        f"trim='off'")
            self.source(name).waveform = wave


def build_trimmed_array(rows: int, cols: int,
                        tech: TechnologyParams | None = None,
                        defect: DefectSite | None = None, *,
                        address: tuple[int, int] | None = None,
                        halo: int = 1,
                        r_wl: float = DEFAULT_R_WL,
                        c_wl: float = DEFAULT_C_WL,
                        r_bl: float = DEFAULT_R_BL,
                        c_bl: float | None = None) -> TrimmedArrayNetlist:
    """Build the active-window netlist of an ``rows``×``cols`` array.

    Kept: the accessed row's and column's full RC ladders, every cell
    at a kept-row × kept-column crossing (defect routing identical to
    :func:`~repro.dram.array.build_array`), and the precharge periphery
    of the kept columns.  Pruned devices fold into boundary loads:

    * a pruned cell on a kept word line → its gate capacitance, added
      to the tap's shunt capacitor (``c_trimg*``);
    * a pruned cell on a kept bit line → its off-state access leak,
      aggregated into a tap-to-ground conductance (``r_trimleak*``);
    * pruned rows/columns (ladder, driver, precharge, cells) vanish —
      exactly, since nothing kept couples to them (see module docs).
    """
    tech = tech or default_tech()
    if defect is not None and defect.cell >= rows * cols:
        raise NetlistError(
            f"defect cell {defect.cell} outside the {rows}x{cols} array")
    if address is None:
        address = default_address(rows, cols, defect)
    plan = plan_trim(rows, cols, address, defect, halo=halo)
    if c_bl is None:
        c_bl = tech.cbl / rows
    if r_wl <= 0 or r_bl <= 0 or c_wl <= 0 or c_bl <= 0:
        raise NetlistError("line parasitics must be positive")

    c = Circuit(f"dram_array_{rows}x{cols}_trim")
    c.trimmed = True
    gnd = c.node("0")
    vdd = c.node("vdd")
    vpre = c.node("vpre")
    eq = c.node("eq")
    c.add(VoltageSource("v_vdd", vdd, gnd, Constant(tech.vdd_nom)))
    c.add(VoltageSource("v_pre", vpre, gnd,
                        Constant(tech.vbl_pre(tech.vdd_nom))))
    c.add(VoltageSource("v_eq", eq, gnd, Constant(0.0)))

    boundary_caps = 0
    boundary_leaks = 0

    # Kept word lines: full RC ladder; pruned cells reduce to their
    # gate capacitance at the tap (gates draw no current).
    for r in plan.kept_rows:
        drv = c.node(f"wl{r}d")
        c.add(VoltageSource(f"v_wl{r}", drv, gnd, Constant(0.0)))
        prev = drv
        for col in range(cols):
            tap = c.node(f"wl{r}_{col}")
            c.add(Resistor(f"r_wl{r}_{col}", prev, tap, r_wl))
            c.add(Capacitor(f"c_wl{r}_{col}", tap, gnd, c_wl))
            if not plan.keeps_col(col):
                c.add(Capacitor(f"c_trimg{r}_{col}", tap, gnd,
                                tech.cg_access))
                boundary_caps += 1
            prev = tap

    # Kept bit lines: precharge head + full RC ladder; pruned cells
    # (rows outside the window, always off) reduce to an aggregated
    # off-state leakage conductance at their tap.
    g_off = pruned_cell_conductance(tech)
    for col in plan.kept_cols:
        head = c.node(f"bl{col}_0")
        c.add(Mosfet(f"m_pre{col}", head, eq, vpre, tech.nmos,
                     w=tech.pre_w, l=tech.pre_l))
        c.add(Capacitor(f"c_bl{col}_0", head, gnd, c_bl))
        prev = head
        for r in range(1, rows):
            tap = c.node(f"bl{col}_{r}")
            c.add(Resistor(f"r_bl{col}_{r}", prev, tap, r_bl))
            c.add(Capacitor(f"c_bl{col}_{r}", tap, gnd, c_bl))
            prev = tap
        for r in range(rows):
            if not plan.keeps_row(r) \
                    and g_off > MIN_BOUNDARY_CONDUCTANCE:
                c.add(Resistor(f"r_trimleak{col}_{r}",
                               c.node(f"bl{col}_{r}"), gnd, 1.0 / g_off))
                boundary_leaks += 1

    # Kept cells: identical to the full builder, defect routing
    # included (the plan keeps the defective cell by construction).
    storage_nodes: list[str] = []
    for r in plan.kept_rows:
        for col in plan.kept_cols:
            idx = r * cols + col
            sn = c.node(f"sn{r}_{col}")
            wl_tap = c.node(f"wl{r}_{col}")
            bl_tap = c.node(f"bl{col}_{r}")
            here = defect is not None and defect.cell == idx
            kind = defect.kind if here else None

            if kind == "open_gate":
                gate = c.node(f"g_int{idx}")
                c.add(Resistor(DEFECT_DEVICE, wl_tap, gate,
                               defect.resistance))
            else:
                gate = wl_tap
            c.add(Capacitor(f"c_g{r}_{col}", gate, gnd, tech.cg_access))

            if kind == "open_bl":
                drain = c.node(f"d_int{idx}")
                c.add(Resistor(DEFECT_DEVICE, bl_tap, drain,
                               defect.resistance))
            else:
                drain = bl_tap

            if kind == "open_sn":
                src = c.node(f"s_int{idx}")
                c.add(Resistor(DEFECT_DEVICE, src, sn, defect.resistance))
            else:
                src = sn

            c.add(Mosfet(f"m_acc{r}_{col}", drain, gate, src,
                         tech.access_params,
                         w=tech.access_w, l=tech.access_l))
            c.add(Capacitor(f"c_s{r}_{col}", sn, gnd, tech.cs))
            c.add(Diode(f"d_leak{r}_{col}", gnd, sn, isat=tech.leak_isat,
                        temp_nom_c=tech.leak_tnom_c,
                        isat_tdouble=tech.leak_tdouble))

            if kind == "short_gnd":
                c.add(Resistor(DEFECT_DEVICE, sn, gnd, defect.resistance))
            elif kind == "short_vdd":
                c.add(Resistor(DEFECT_DEVICE, sn, vdd, defect.resistance))
            elif kind == "bridge_bl":
                c.add(Resistor(DEFECT_DEVICE, sn, bl_tap,
                               defect.resistance))
            elif kind == "bridge_wl":
                c.add(Resistor(DEFECT_DEVICE, sn, wl_tap,
                               defect.resistance))

            storage_nodes.append(sn.name)

    control_sources = (["v_vdd", "v_pre", "v_eq"]
                       + [f"v_wl{r}" for r in plan.kept_rows])
    return TrimmedArrayNetlist(
        circuit=c, tech=tech, defect=defect, rows=rows, cols=cols,
        storage_nodes=storage_nodes, control_sources=control_sources,
        plan=plan, boundary_caps=boundary_caps,
        boundary_leaks=boundary_leaks)


def trim_array(rows: int, cols: int,
               tech: TechnologyParams | None = None,
               defect: DefectSite | None = None, *,
               address: tuple[int, int] | None = None,
               policy: str | None = None,
               halo: int = 1,
               r_wl: float = DEFAULT_R_WL,
               c_wl: float = DEFAULT_C_WL,
               r_bl: float = DEFAULT_R_BL,
               c_bl: float | None = None) -> ArrayNetlist:
    """Build an array under the given trim policy.

    ``"off"`` (and ``None`` when the process default says so) returns
    the full :func:`~repro.dram.array.build_array` netlist; ``"force"``
    always trims; ``"auto"`` trims only when the plan prunes at least
    one cell, so degenerate geometries and windows covering the whole
    array keep the untrimmed reference.  Records the outcome in
    :mod:`repro.diagnostics` either way.
    """
    policy = resolve_trim(policy)
    parasitics = dict(r_wl=r_wl, c_wl=c_wl, r_bl=r_bl, c_bl=c_bl)
    if address is None:
        address = default_address(rows, cols, defect)
    if policy != "off":
        plan = plan_trim(rows, cols, address, defect, halo=halo)
        if policy == "force" or plan.cells_pruned > 0:
            arr = build_trimmed_array(rows, cols, tech, defect,
                                      address=address, halo=halo,
                                      **parasitics)
            full_nodes = 3 * rows * cols + rows + 3
            _record_trim({"trim_applied": 1,
                          "trim_cells_pruned": plan.cells_pruned,
                          "trim_nodes_pruned":
                              full_nodes - arr.circuit.num_nodes})
            return arr
        _record_trim({"trim_bypassed": 1})
    return build_array(rows, cols, tech, defect, **parasitics)


def _record_trim(counters: dict) -> None:
    from repro.diagnostics import diagnostics
    diagnostics().record_trim_counters(counters)
