"""Cycle timing generator.

Converts an operation plus stress conditions into the control-signal
waveforms of one memory cycle.  All instants scale with the cycle time, as
on a real tester where the whole pattern is retimed by the clock:

::

    0        eq_on   eq_off  wl_on      (write/sense window)      wl_off
    |---------|#######|-------|==================================|------|
              precharge        active window = duty * tcyc              tcyc

Shortening ``tcyc`` (or the duty cycle) shrinks the active window — the
timing-stress mechanism of Sec. 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stress import StressConditions
from repro.dram.ops import Op, Operation
from repro.dram.tech import TechnologyParams
from repro.spice.waveforms import Constant, PWL, Waveform

# Cycle-relative fractions of the control schedule.
EQ_ON_FRAC = 0.02
EQ_OFF_FRAC = 0.18
WL_ON_FRAC = 0.20
WL_OFF_MAX_FRAC = 0.97
WEN_DELAY_FRAC = 0.03
SHARE_FRAC = 0.10
CSL_DELAY_FRAC = 0.05
SAMPLE_BACKOFF_FRAC = 0.01
EDGE_FRAC = 0.008


def _gate(t_on: float, t_off: float, high: float, edge: float,
          low: float = 0.0) -> PWL:
    """A single on/off gate pulse as a PWL waveform."""
    return PWL([(t_on, low), (t_on + edge, high),
                (t_off, high), (t_off + edge, low)])


@dataclass
class CyclePlan:
    """Waveforms and key instants of one operation cycle.

    ``waveforms`` maps control-source device names (as created by
    :func:`repro.dram.column.build_column`) to their waveform for the cycle.
    """

    op: Op
    stress: StressConditions
    waveforms: dict[str, Waveform]
    t_wl_on: float
    t_wl_off: float
    t_sense: float | None
    t_sample: float | None

    @property
    def tcyc(self) -> float:
        return self.stress.tcyc

    @property
    def active_window(self) -> float:
        """Duration the word line stays high."""
        return self.t_wl_off - self.t_wl_on


def wordline_window(stress: StressConditions) -> tuple[float, float]:
    """Word-line (on, off) instants for the given stress conditions."""
    tcyc = stress.tcyc
    t_on = WL_ON_FRAC * tcyc
    window = stress.duty * tcyc
    t_off = min(t_on + window, WL_OFF_MAX_FRAC * tcyc)
    return t_on, t_off


def plan_cycle(op: Op, stress: StressConditions, tech: TechnologyParams,
               target_cell: int = 0) -> CyclePlan:
    """Build the control waveforms of one cycle.

    Parameters
    ----------
    op:
        The operation applied to the target cell.
    stress:
        The stress conditions (cycle time, duty, supply; temperature is
        applied by the simulator, not the waveforms).
    tech:
        Technology parameters (boost levels, array size).
    target_cell:
        Index of the cell operated on (0..num_wordlines-1).  Even cells sit
        on the true bit line, odd cells on the complementary one.
    """
    if not 0 <= target_cell < tech.num_wordlines:
        raise ValueError(f"target_cell out of range: {target_cell}")

    tcyc = stress.tcyc
    vdd = stress.vdd
    vpp = tech.vpp(vdd)
    edge = EDGE_FRAC * tcyc

    t_eq_on = EQ_ON_FRAC * tcyc
    t_eq_off = EQ_OFF_FRAC * tcyc
    t_wl_on, t_wl_off = wordline_window(stress)

    waves: dict[str, Waveform] = {}

    # Precharge/equalise gate.
    waves["v_eq"] = _gate(t_eq_on, t_eq_off, vpp, edge)
    waves["v_pre"] = Constant(tech.vbl_pre(vdd))
    waves["v_ref"] = Constant(tech.v_ref(vdd, stress.temp_c))
    waves["v_vdd"] = Constant(vdd)

    # Word lines: only the target's line fires.
    for i in range(tech.num_wordlines):
        if i == target_cell:
            waves[f"v_wl{i}"] = _gate(t_wl_on, t_wl_off, vpp, edge)
        else:
            waves[f"v_wl{i}"] = Constant(0.0)

    target_on_true = target_cell % 2 == 0
    is_read = op.operation is Operation.R
    is_nop = op.operation is Operation.NOP
    if is_nop:
        # Idle cycle: precharge only — no word line, no sense, no write.
        waves[f"v_wl{target_cell}"] = Constant(0.0)
        for name in ("v_rwl_t", "v_rwl_c", "v_sen", "v_wen", "v_wdt",
                     "v_wdc", "v_csl"):
            waves[name] = Constant(0.0)
        waves["v_sepb"] = Constant(vdd)
        return CyclePlan(op=op, stress=stress, waveforms=waves,
                         t_wl_on=t_wl_on, t_wl_off=t_wl_off,
                         t_sense=None, t_sample=None)

    # Dummy word lines: reading a true-BL cell fires the dummy on the
    # complementary bit line (and vice versa); writes leave both off.
    waves["v_rwl_t"] = Constant(0.0)
    waves["v_rwl_c"] = Constant(0.0)
    if is_read:
        dummy = "v_rwl_c" if target_on_true else "v_rwl_t"
        waves[dummy] = _gate(t_wl_on, t_wl_off, vpp, edge)

    t_sense = None
    t_sample = None
    if is_read:
        t_sense = t_wl_on + SHARE_FRAC * tcyc
        t_csl_on = t_sense + CSL_DELAY_FRAC * tcyc
        t_sample = t_wl_off - SAMPLE_BACKOFF_FRAC * tcyc
        waves["v_sen"] = _gate(t_sense, t_wl_off, vpp, edge)
        waves["v_sepb"] = _gate(t_sense, t_wl_off, 0.0, edge, low=vdd)
        waves["v_csl"] = _gate(t_csl_on, t_wl_off, vpp, edge)
        waves["v_wen"] = Constant(0.0)
        waves["v_wdt"] = Constant(0.0)
        waves["v_wdc"] = Constant(0.0)
    else:
        # The write driver always drives the pair differentially from the
        # logical data: blt = d*vdd, blc = (1-d)*vdd.  A cell on the
        # complementary bit line therefore stores the *inverted* physical
        # level — exactly the convention behind the paper's true/comp
        # symmetry (Table 1: comp rows have 0s and 1s interchanged).
        value = op.operation.write_value
        t_we_on = t_wl_on + WEN_DELAY_FRAC * tcyc
        waves["v_wen"] = _gate(t_we_on, t_wl_off, vpp, edge)
        waves["v_wdt"] = Constant(float(value) * vdd)
        waves["v_wdc"] = Constant(float(1 - value) * vdd)
        waves["v_sen"] = Constant(0.0)
        waves["v_sepb"] = Constant(vdd)
        waves["v_csl"] = Constant(0.0)

    return CyclePlan(op=op, stress=stress, waveforms=waves,
                     t_wl_on=t_wl_on, t_wl_off=t_wl_off,
                     t_sense=t_sense, t_sample=t_sample)
