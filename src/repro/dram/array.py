"""Parameterized R×C DRAM cell-array netlist builder.

The folded column (:mod:`repro.dram.column`) models the paper's 2×2
design-validation circuit; array-scale scenarios — neighborhood
coupling, read disturbance, multi-cell stress patterns — need
netlists two orders of magnitude larger.  :func:`build_array` builds an
R×C grid of 1T1C cells sharing *distributed* word- and bit-line
parasitics:

* per row: a word-line driver source feeding an RC ladder (series
  ``r_wl``, shunt ``c_wl`` per cell pitch) with one tap per column —
  the access-gate node of that row's cells;
* per column: a bit line as an RC ladder (series ``r_bl``, shunt
  ``c_bl`` per cell pitch) with one tap per row, headed by an NMOS
  precharge device to the precharge rail (gated by ``eq``);
* per cell: the column builder's access transistor, storage capacitor
  and (time-compressed) junction-leakage diode, on the unchanged
  device/stamp machinery.

A 6×6 array is 117 nodes, a 12×12 is 450 — the scale the sparse solver
backend (:mod:`repro.spice.backends`) exists for.  Node/branch count:
``3·R·C + R + 3`` nodes plus ``R + 3`` source branches.

Defect injection reuses :class:`~repro.dram.column.DefectSite` with the
cell index flattened row-major (``cell = row * cols + col``); all seven
Fig. 7 resistive defect kinds route exactly as in the column builder,
relative to the cell's own word-/bit-line taps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.column import DEFECT_DEVICE, DEFECT_KINDS, DefectSite
from repro.dram.tech import TechnologyParams, default_tech
from repro.spice.devices import Capacitor, Diode, Resistor, VoltageSource
from repro.spice.errors import NetlistError
from repro.spice.mosfet import Mosfet
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Constant, Pulse

__all__ = ["ArrayNetlist", "build_array", "DEFECT_KINDS", "DefectSite"]

#: Default word-line series resistance per cell pitch (ohms) — polysilicon
#: word lines are the resistive ones in a DRAM array.
DEFAULT_R_WL = 100.0

#: Default word-line shunt capacitance per cell pitch (farads).
DEFAULT_C_WL = 2e-15

#: Default bit-line series resistance per cell pitch (ohms) — metal.
DEFAULT_R_BL = 2.0


@dataclass
class ArrayNetlist:
    """The built array: circuit plus the handles analyses need."""

    circuit: Circuit
    tech: TechnologyParams
    defect: DefectSite | None
    rows: int
    cols: int
    #: Storage-node name per flattened cell index (row-major).
    storage_nodes: list[str]
    #: Control-source device names (reprogrammable between analyses).
    control_sources: list[str]

    def cell_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise NetlistError(
                f"cell ({row}, {col}) outside the "
                f"{self.rows}x{self.cols} array")
        return row * self.cols + col

    def storage_node(self, row: int, col: int) -> str:
        """Storage-node name of cell ``(row, col)``."""
        return self.storage_nodes[self.cell_index(row, col)]

    def wordline_tap(self, row: int, col: int) -> str:
        """Word-line tap node at cell ``(row, col)``."""
        self.cell_index(row, col)
        return f"wl{row}_{col}"

    def bitline_tap(self, row: int, col: int) -> str:
        """Bit-line tap node at cell ``(row, col)``."""
        self.cell_index(row, col)
        return f"bl{col}_{row}"

    def source(self, name: str) -> VoltageSource:
        dev = self.circuit[name]
        if not isinstance(dev, VoltageSource):
            raise NetlistError(f"{name!r} is not a control source")
        return dev

    def set_waveforms(self, waveforms: dict) -> None:
        """Reprogram control sources (same protocol as the column)."""
        for name, wave in waveforms.items():
            self.source(name).waveform = wave

    @property
    def defect_resistance(self) -> float | None:
        if self.defect is None:
            return None
        return self.circuit[DEFECT_DEVICE].resistance

    def set_defect_resistance(self, resistance: float) -> None:
        """Change the injected defect's resistance in place."""
        if self.defect is None:
            raise NetlistError("this array has no injected defect")
        if resistance <= 0:
            raise NetlistError("defect resistance must be positive")
        self.circuit[DEFECT_DEVICE].resistance = float(resistance)
        self.defect = self.defect.with_resistance(resistance)

    def activation_waveforms(self, row: int, *, t_pre: float = 4e-9,
                             t_act: float = 16e-9) -> dict:
        """Waveforms for one precharge-then-activate cycle on ``row``.

        Precharge (``eq`` boosted high) runs from 0 to ``t_pre``; the
        row's word line then fires to the boosted level for ``t_act``
        seconds.  Every other word line stays low.  This is the stimulus
        the sparse benchmark and the array tests drive: it exercises the
        precharge devices, every access transistor on the fired row, and
        the distributed line parasitics.
        """
        if not 0 <= row < self.rows:
            raise NetlistError(f"row {row} outside the array")
        vdd = self.tech.vdd_nom
        vpp = self.tech.vpp(vdd)
        waves = {
            "v_eq": Pulse(vpp, 0.0, delay=t_pre, rise=0.5e-9,
                          fall=0.5e-9, width=10.0),
        }
        for r in range(self.rows):
            if r == row:
                waves[f"v_wl{r}"] = Pulse(
                    0.0, vpp, delay=t_pre + 1e-9, rise=0.5e-9,
                    fall=0.5e-9, width=t_act)
            else:
                waves[f"v_wl{r}"] = Constant(0.0)
        return waves


def build_array(rows: int, cols: int,
                tech: TechnologyParams | None = None,
                defect: DefectSite | None = None, *,
                r_wl: float = DEFAULT_R_WL,
                c_wl: float = DEFAULT_C_WL,
                r_bl: float = DEFAULT_R_BL,
                c_bl: float | None = None) -> ArrayNetlist:
    """Build an ``rows``×``cols`` cell array with distributed parasitics.

    ``c_bl`` defaults to the technology's total bit-line capacitance
    split evenly over the taps, so a column of the array loads its bit
    line like the folded column does.  Pass a :class:`DefectSite` (cell
    index row-major) to inject one resistive defect.
    """
    if rows < 1 or cols < 1:
        raise NetlistError("array needs at least one row and one column")
    tech = tech or default_tech()
    if defect is not None and defect.cell >= rows * cols:
        raise NetlistError(
            f"defect cell {defect.cell} outside the {rows}x{cols} array")
    if c_bl is None:
        c_bl = tech.cbl / rows
    if r_wl <= 0 or r_bl <= 0 or c_wl <= 0 or c_bl <= 0:
        raise NetlistError("line parasitics must be positive")

    c = Circuit(f"dram_array_{rows}x{cols}")
    gnd = c.node("0")
    vdd = c.node("vdd")
    vpre = c.node("vpre")
    eq = c.node("eq")
    c.add(VoltageSource("v_vdd", vdd, gnd, Constant(tech.vdd_nom)))
    c.add(VoltageSource("v_pre", vpre, gnd,
                        Constant(tech.vbl_pre(tech.vdd_nom))))
    c.add(VoltageSource("v_eq", eq, gnd, Constant(0.0)))

    # Word lines: driver node + RC ladder with one tap per column.
    for r in range(rows):
        drv = c.node(f"wl{r}d")
        c.add(VoltageSource(f"v_wl{r}", drv, gnd, Constant(0.0)))
        prev = drv
        for col in range(cols):
            tap = c.node(f"wl{r}_{col}")
            c.add(Resistor(f"r_wl{r}_{col}", prev, tap, r_wl))
            c.add(Capacitor(f"c_wl{r}_{col}", tap, gnd, c_wl))
            prev = tap

    # Bit lines: precharge head + RC ladder with one tap per row.
    for col in range(cols):
        head = c.node(f"bl{col}_0")
        c.add(Mosfet(f"m_pre{col}", head, eq, vpre, tech.nmos,
                     w=tech.pre_w, l=tech.pre_l))
        c.add(Capacitor(f"c_bl{col}_0", head, gnd, c_bl))
        prev = head
        for r in range(1, rows):
            tap = c.node(f"bl{col}_{r}")
            c.add(Resistor(f"r_bl{col}_{r}", prev, tap, r_bl))
            c.add(Capacitor(f"c_bl{col}_{r}", tap, gnd, c_bl))
            prev = tap

    # Cells, row-major, with the column builder's defect routing relative
    # to the cell's own line taps.
    storage_nodes: list[str] = []
    for r in range(rows):
        for col in range(cols):
            idx = r * cols + col
            sn = c.node(f"sn{r}_{col}")
            wl_tap = c.node(f"wl{r}_{col}")
            bl_tap = c.node(f"bl{col}_{r}")
            here = defect is not None and defect.cell == idx
            kind = defect.kind if here else None

            if kind == "open_gate":
                gate = c.node(f"g_int{idx}")
                c.add(Resistor(DEFECT_DEVICE, wl_tap, gate,
                               defect.resistance))
            else:
                gate = wl_tap
            c.add(Capacitor(f"c_g{r}_{col}", gate, gnd, tech.cg_access))

            if kind == "open_bl":
                drain = c.node(f"d_int{idx}")
                c.add(Resistor(DEFECT_DEVICE, bl_tap, drain,
                               defect.resistance))
            else:
                drain = bl_tap

            if kind == "open_sn":
                src = c.node(f"s_int{idx}")
                c.add(Resistor(DEFECT_DEVICE, src, sn, defect.resistance))
            else:
                src = sn

            c.add(Mosfet(f"m_acc{r}_{col}", drain, gate, src,
                         tech.access_params,
                         w=tech.access_w, l=tech.access_l))
            c.add(Capacitor(f"c_s{r}_{col}", sn, gnd, tech.cs))
            c.add(Diode(f"d_leak{r}_{col}", gnd, sn, isat=tech.leak_isat,
                        temp_nom_c=tech.leak_tnom_c,
                        isat_tdouble=tech.leak_tdouble))

            if kind == "short_gnd":
                c.add(Resistor(DEFECT_DEVICE, sn, gnd, defect.resistance))
            elif kind == "short_vdd":
                c.add(Resistor(DEFECT_DEVICE, sn, vdd, defect.resistance))
            elif kind == "bridge_bl":
                c.add(Resistor(DEFECT_DEVICE, sn, bl_tap,
                               defect.resistance))
            elif kind == "bridge_wl":
                c.add(Resistor(DEFECT_DEVICE, sn, wl_tap,
                               defect.resistance))

            storage_nodes.append(sn.name)

    control_sources = (["v_vdd", "v_pre", "v_eq"]
                       + [f"v_wl{r}" for r in range(rows)])
    return ArrayNetlist(circuit=c, tech=tech, defect=defect, rows=rows,
                        cols=cols, storage_nodes=storage_nodes,
                        control_sources=control_sources)
