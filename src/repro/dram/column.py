"""Folded-bit-line column netlist builder.

Topology (matching the paper's simplified design-validation model,
Sec. 5.1):

* one folded bit-line pair ``blt``/``blc`` with explicit line capacitance,
* a 2×2 cell array: four 1T1C cells on word lines ``wl0..wl3``; even cells
  hang on the true line, odd cells on the complementary line,
* two reference (dummy) cells — one per line — recharged to the reference
  level during every precharge and fired on the line *opposite* the
  addressed cell during reads,
* NMOS precharge/equalise triple,
* a cross-coupled CMOS sense amplifier with NSET/PSET enables,
* an NMOS write driver pair, and
* a column-select pass device feeding a two-inverter data output buffer.

Every control signal is a named :class:`~repro.spice.devices.VoltageSource`
whose waveform the runner reprograms each cycle.

Defect injection is part of the builder: a :class:`DefectSite` names one of
the seven Fig. 7 resistive defect kinds plus a cell index and resistance,
and the builder routes the extra node/resistor accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.tech import TechnologyParams, default_tech
from repro.spice.devices import Capacitor, Diode, Resistor, VoltageSource
from repro.spice.errors import NetlistError
from repro.spice.mosfet import Mosfet
from repro.spice.netlist import Circuit, Node
from repro.spice.waveforms import Constant

#: Defect kinds understood by the builder (Fig. 7 of the paper).
DEFECT_KINDS = (
    "open_bl",      # O1: open between bit line and access-transistor drain
    "open_gate",    # O2: open between word line and access-transistor gate
    "open_sn",      # O3: open between access transistor and cell capacitor
    "short_gnd",    # Sg: resistive short storage node -> GND
    "short_vdd",    # Sv: resistive short storage node -> Vdd
    "bridge_bl",    # B1: bridge storage node <-> own bit line
    "bridge_wl",    # B2: bridge storage node <-> own word line
)


@dataclass(frozen=True)
class DefectSite:
    """A single resistive defect placed inside one cell.

    Attributes
    ----------
    kind:
        One of :data:`DEFECT_KINDS`.
    cell:
        Index of the afflicted cell (0..3).  Even = true bit line
        ("true" rows of Table 1), odd = complementary bit line ("comp.").
    resistance:
        Defect resistance in ohms.
    """

    kind: str
    cell: int
    resistance: float

    def __post_init__(self):
        if self.kind not in DEFECT_KINDS:
            raise NetlistError(f"unknown defect kind {self.kind!r}")
        if self.resistance <= 0:
            raise NetlistError("defect resistance must be positive")
        if self.cell < 0:
            raise NetlistError("cell index must be >= 0")

    def with_resistance(self, resistance: float) -> "DefectSite":
        return DefectSite(self.kind, self.cell, resistance)


#: Name of the injected defect resistor inside the circuit.
DEFECT_DEVICE = "r_defect"


@dataclass
class ColumnNetlist:
    """The built column: circuit plus the handles the runner needs."""

    circuit: Circuit
    tech: TechnologyParams
    defect: DefectSite | None
    #: Storage-node name per cell index.
    storage_nodes: list[str]
    #: Control-source device names (reprogrammed every cycle).
    control_sources: list[str]

    def storage_node(self, cell: int) -> str:
        return self.storage_nodes[cell]

    def source(self, name: str) -> VoltageSource:
        dev = self.circuit[name]
        if not isinstance(dev, VoltageSource):
            raise NetlistError(f"{name!r} is not a control source")
        return dev

    def set_waveforms(self, waveforms: dict) -> None:
        """Reprogram the control sources for the next cycle."""
        for name, wave in waveforms.items():
            self.source(name).waveform = wave

    @property
    def defect_resistance(self) -> float | None:
        if self.defect is None:
            return None
        return self.circuit[DEFECT_DEVICE].resistance

    def set_defect_resistance(self, resistance: float) -> None:
        """Change the injected defect's resistance in place.

        Cheap way to sweep the defect resistance without rebuilding the
        netlist (the MNA system is reassembled per analysis anyway).
        """
        if self.defect is None:
            raise NetlistError("this column has no injected defect")
        if resistance <= 0:
            raise NetlistError("defect resistance must be positive")
        self.circuit[DEFECT_DEVICE].resistance = float(resistance)
        self.defect = self.defect.with_resistance(resistance)


def _add_cell(c: Circuit, tech: TechnologyParams, index: int, bl: Node,
              defect: DefectSite | None) -> str:
    """Create cell ``index`` hanging on bit line ``bl``.

    Returns the storage-node name.  When ``defect`` targets this cell the
    corresponding extra node/resistor is routed in.
    """
    sn = c.node(f"sn{index}")
    wl = c.node(f"wl{index}")
    here = defect is not None and defect.cell == index
    kind = defect.kind if here else None

    # Word-line driver source and access-gate wiring (possibly through a
    # word-line open).
    if f"v_wl{index}" not in c:
        c.add(VoltageSource(f"v_wl{index}", wl, c.node("0"), Constant(0.0)))
    if kind == "open_gate":
        gate = c.node(f"g_int{index}")
        c.add(Resistor(DEFECT_DEVICE, wl, gate, defect.resistance))
    else:
        gate = wl
    c.add(Capacitor(f"c_g{index}", gate, c.node("0"), tech.cg_access))

    # Bit-line side of the access transistor (possibly through a bit-line
    # contact open).
    if kind == "open_bl":
        drain = c.node(f"d_int{index}")
        c.add(Resistor(DEFECT_DEVICE, bl, drain, defect.resistance))
    else:
        drain = bl

    # Storage side (possibly through the classic storage-node open, O3).
    if kind == "open_sn":
        src = c.node(f"s_int{index}")
        c.add(Resistor(DEFECT_DEVICE, src, sn, defect.resistance))
    else:
        src = sn

    c.add(Mosfet(f"m_acc{index}", drain, gate, src, tech.access_params,
                 w=tech.access_w, l=tech.access_l))
    c.add(Capacitor(f"c_s{index}", sn, c.node("0"), tech.cs))
    # Time-compressed storage-node junction leakage (see tech.py).
    c.add(Diode(f"d_leak{index}", c.node("0"), sn, isat=tech.leak_isat,
                temp_nom_c=tech.leak_tnom_c,
                isat_tdouble=tech.leak_tdouble))

    # Shorts and bridges attach directly to the storage node.
    if kind == "short_gnd":
        c.add(Resistor(DEFECT_DEVICE, sn, c.node("0"), defect.resistance))
    elif kind == "short_vdd":
        c.add(Resistor(DEFECT_DEVICE, sn, c.node("vdd"), defect.resistance))
    elif kind == "bridge_bl":
        c.add(Resistor(DEFECT_DEVICE, sn, bl, defect.resistance))
    elif kind == "bridge_wl":
        c.add(Resistor(DEFECT_DEVICE, sn, wl, defect.resistance))

    return sn.name


def _add_dummy(c: Circuit, tech: TechnologyParams, suffix: str,
               bl: Node) -> None:
    """Reference (dummy) cell on bit line ``bl``.

    The dummy stores the reference level (slightly below the precharge
    level) and is recharged through a dedicated device during every
    precharge, then fired during reads of the opposite line.
    """
    snd = c.node(f"snd_{suffix}")
    rwl = c.node(f"rwl_{suffix}")
    c.add(VoltageSource(f"v_rwl_{suffix}", rwl, c.node("0"), Constant(0.0)))
    c.add(Mosfet(f"m_dacc_{suffix}", bl, rwl, snd, tech.access_params,
                 w=tech.dummy_access_w, l=tech.access_l))
    c.add(Capacitor(f"c_sd_{suffix}", snd, c.node("0"), tech.cs))
    # Recharge path to the reference supply, gated by the equalise signal.
    c.add(Mosfet(f"m_dref_{suffix}", c.node("vref"), c.node("eq"), snd,
                 tech.nmos, w=tech.pre_w, l=tech.pre_l))


def build_column(tech: TechnologyParams | None = None,
                 defect: DefectSite | None = None) -> ColumnNetlist:
    """Build the folded column, optionally with one injected defect."""
    tech = tech or default_tech()
    if defect is not None and defect.cell >= tech.num_wordlines:
        raise NetlistError(
            f"defect cell {defect.cell} outside the {tech.num_wordlines}-"
            f"word-line array")

    c = Circuit("dram_column")
    gnd = c.node("0")
    blt = c.node("blt")
    blc = c.node("blc")
    vdd = c.node("vdd")
    vref = c.node("vref")
    vpre = c.node("vpre")
    eq = c.node("eq")

    # Supplies and references.
    c.add(VoltageSource("v_vdd", vdd, gnd, Constant(tech.vdd_nom)))
    c.add(VoltageSource("v_ref", vref, gnd, Constant(
        tech.v_ref(tech.vdd_nom))))
    c.add(VoltageSource("v_pre", vpre, gnd, Constant(
        tech.vbl_pre(tech.vdd_nom))))
    c.add(VoltageSource("v_eq", eq, gnd, Constant(0.0)))

    # Bit-line capacitance.
    c.add(Capacitor("c_blt", blt, gnd, tech.cbl))
    c.add(Capacitor("c_blc", blc, gnd, tech.cbl))

    # Cell array (even cells on blt, odd on blc).
    storage_nodes = []
    for i in range(tech.num_wordlines):
        bl = blt if i % 2 == 0 else blc
        storage_nodes.append(_add_cell(c, tech, i, bl, defect))

    # Reference cells.
    _add_dummy(c, tech, "t", blt)
    _add_dummy(c, tech, "c", blc)

    # Precharge / equalise triple.
    c.add(Mosfet("m_pre_t", blt, eq, vpre, tech.nmos,
                 w=tech.pre_w, l=tech.pre_l))
    c.add(Mosfet("m_pre_c", blc, eq, vpre, tech.nmos,
                 w=tech.pre_w, l=tech.pre_l))
    c.add(Mosfet("m_eq", blt, eq, blc, tech.nmos,
                 w=tech.pre_w, l=tech.pre_l))

    # Sense amplifier: cross-coupled inverters with NSET/PSET enables.
    san = c.node("san")
    sap = c.node("sap")
    sen = c.node("sen")
    sepb = c.node("sepb")
    c.add(VoltageSource("v_sen", sen, gnd, Constant(0.0)))
    c.add(VoltageSource("v_sepb", sepb, gnd, Constant(tech.vdd_nom)))
    c.add(Mosfet("m_sa_n1", blt, blc, san, tech.sa_nmos,
                 w=tech.sa_w_n, l=tech.sa_l))
    c.add(Mosfet("m_sa_n2", blc, blt, san, tech.sa_nmos,
                 w=tech.sa_w_n, l=tech.sa_l))
    c.add(Mosfet("m_sa_p1", blt, blc, sap, tech.sa_pmos,
                 w=tech.sa_w_p, l=tech.sa_l))
    c.add(Mosfet("m_sa_p2", blc, blt, sap, tech.sa_pmos,
                 w=tech.sa_w_p, l=tech.sa_l))
    c.add(Mosfet("m_sa_nset", san, sen, gnd, tech.sa_nmos,
                 w=4 * tech.sa_w_n, l=tech.sa_l))
    c.add(Mosfet("m_sa_pset", sap, sepb, vdd, tech.sa_pmos,
                 w=4 * tech.sa_w_p, l=tech.sa_l))
    c.add(Capacitor("c_san", san, gnd, 10e-15))
    c.add(Capacitor("c_sap", sap, gnd, 10e-15))

    # Write driver.
    wdt = c.node("wdt")
    wdc = c.node("wdc")
    wen = c.node("wen")
    c.add(VoltageSource("v_wdt", wdt, gnd, Constant(0.0)))
    c.add(VoltageSource("v_wdc", wdc, gnd, Constant(0.0)))
    c.add(VoltageSource("v_wen", wen, gnd, Constant(0.0)))
    c.add(Mosfet("m_wr_t", wdt, wen, blt, tech.nmos,
                 w=tech.wr_w, l=tech.wr_l))
    c.add(Mosfet("m_wr_c", wdc, wen, blc, tech.nmos,
                 w=tech.wr_w, l=tech.wr_l))

    # Column select + data output buffer (two inverters).
    csl = c.node("csl")
    dx = c.node("dx")
    doutb = c.node("doutb")
    dout = c.node("dout")
    c.add(VoltageSource("v_csl", csl, gnd, Constant(0.0)))
    c.add(Mosfet("m_csl", blt, csl, dx, tech.nmos,
                 w=tech.csl_w, l=tech.csl_l))
    c.add(Capacitor("c_dx", dx, gnd, 5e-15))
    c.add(Mosfet("m_buf1_p", doutb, dx, vdd, tech.pmos,
                 w=tech.buf_w_p, l=tech.buf_l))
    c.add(Mosfet("m_buf1_n", doutb, dx, gnd, tech.nmos,
                 w=tech.buf_w_n, l=tech.buf_l))
    c.add(Mosfet("m_buf2_p", dout, doutb, vdd, tech.pmos,
                 w=tech.buf_w_p, l=tech.buf_l))
    c.add(Mosfet("m_buf2_n", dout, doutb, gnd, tech.nmos,
                 w=tech.buf_w_n, l=tech.buf_l))
    c.add(Capacitor("c_doutb", doutb, gnd, 5e-15))
    c.add(Capacitor("c_dout", dout, gnd, tech.c_dout))

    control_sources = (["v_vdd", "v_ref", "v_pre", "v_eq", "v_sen",
                        "v_sepb", "v_wdt", "v_wdc", "v_wen", "v_csl",
                        "v_rwl_t", "v_rwl_c"]
                       + [f"v_wl{i}" for i in range(tech.num_wordlines)])

    return ColumnNetlist(circuit=c, tech=tech, defect=defect,
                         storage_nodes=storage_nodes,
                         control_sources=control_sources)
