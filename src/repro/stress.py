"""Stress (ST) and stress-combination (SC) definitions.

The paper uses four operational parameters as stresses (Sec. 2):

* ``tcyc`` — clock cycle time (timing stress #1),
* ``duty`` — clock duty cycle (timing stress #2); in this model the duty
  cycle scales the word-line active window within the cycle,
* ``temp_c`` — ambient temperature,
* ``vdd`` — supply voltage, with the word-line boost ``vpp`` and the
  bit-line precharge level tracking it.

A :class:`StressConditions` instance is a full SC; :data:`NOMINAL_STRESS`
matches the paper's nominal point (60 ns, 50 %, +27 °C, 2.4 V).  Each ST has
a specification range (:data:`STRESS_RANGES`) patterned after the paper's
examples (e.g. Vdd 2.1–2.7 V); optimization picks one of the two extremes
per ST.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class StressKind(enum.Enum):
    """The four stress axes used at test time."""

    TCYC = "tcyc"
    DUTY = "duty"
    TEMP = "temp_c"
    VDD = "vdd"

    @property
    def field(self) -> str:
        """Name of the corresponding :class:`StressConditions` field."""
        return self.value

    @property
    def unit(self) -> str:
        return {"tcyc": "s", "duty": "", "temp_c": "degC", "vdd": "V"}[
            self.value]


@dataclass(frozen=True)
class StressConditions:
    """One stress combination (SC): a complete operating point.

    Attributes
    ----------
    tcyc:
        Clock cycle time in seconds.
    duty:
        Clock duty cycle in (0, 1); scales the word-line active window.
    temp_c:
        Temperature in degrees Celsius.
    vdd:
        Supply voltage in volts.
    """

    tcyc: float = 60e-9
    duty: float = 0.5
    temp_c: float = 27.0
    vdd: float = 2.4

    def __post_init__(self):
        if self.tcyc <= 0:
            raise ValueError(f"tcyc must be positive, got {self.tcyc}")
        if not 0.1 <= self.duty <= 0.9:
            raise ValueError(f"duty must be within [0.1, 0.9], "
                             f"got {self.duty}")
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if not -100.0 <= self.temp_c <= 200.0:
            raise ValueError(f"temp_c out of plausible range: {self.temp_c}")

    def with_(self, **kwargs) -> "StressConditions":
        """Return a copy with some stresses replaced."""
        return replace(self, **kwargs)

    def value_of(self, kind: StressKind) -> float:
        return getattr(self, kind.field)

    def with_value(self, kind: StressKind, value: float) -> "StressConditions":
        return self.with_(**{kind.field: value})

    def describe(self) -> str:
        return (f"tcyc={self.tcyc * 1e9:.1f}ns duty={self.duty:.2f} "
                f"T={self.temp_c:+.0f}C Vdd={self.vdd:.2f}V")


#: The paper's nominal SC: tcyc = 60 ns, T = +27 °C, Vdd = 2.4 V.
NOMINAL_STRESS = StressConditions()


def nominal_stress() -> StressConditions:
    """The paper's nominal operating point (fresh instance by value)."""
    return NOMINAL_STRESS


@dataclass(frozen=True)
class StressRange:
    """The specified excursion of one ST: ``low <= nominal <= high``."""

    kind: StressKind
    low: float
    nominal: float
    high: float

    def __post_init__(self):
        if not self.low <= self.nominal <= self.high:
            raise ValueError(
                f"{self.kind}: require low <= nominal <= high, got "
                f"{self.low}, {self.nominal}, {self.high}")

    @property
    def extremes(self) -> tuple[float, float]:
        return (self.low, self.high)


#: Specification ranges patterned after the paper's examples:
#: tcyc 55–65 ns, duty 40–60 %, T −33…+87 °C, Vdd 2.1–2.7 V.
STRESS_RANGES: dict[StressKind, StressRange] = {
    StressKind.TCYC: StressRange(StressKind.TCYC, 55e-9, 60e-9, 65e-9),
    StressKind.DUTY: StressRange(StressKind.DUTY, 0.40, 0.50, 0.60),
    StressKind.TEMP: StressRange(StressKind.TEMP, -33.0, 27.0, 87.0),
    StressKind.VDD: StressRange(StressKind.VDD, 2.1, 2.4, 2.7),
}
