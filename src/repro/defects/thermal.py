"""Temperature-dependent defect resistance.

The paper's Sec. 5.2 closes with the remark that all simulated defects
used *ohmic* resistances, and that "modeling the defects to increase
their R with decreasing T (which is the case with silicon based defects)
may result in a different stress value for T".  This module implements
that extension: a wrapper that makes any column model's defect follow

    ``R(T) = R27 * (1 + tcr * (T - 27))``

with a negative ``tcr`` for silicon-like defects (resistance grows as the
die cools).  The ablation benchmark re-runs the temperature optimization
with it and shows the direction call can indeed flip — reproducing the
paper's forward-looking claim.
"""

from __future__ import annotations

from repro.analysis.interface import ColumnModel
from repro.stress import StressConditions

#: Fractional resistance change per kelvin of a silicon-like defect.
SILICON_LIKE_TCR = -0.006


class ThermalResistanceModel:
    """Wrap a column model so the defect resistance tracks temperature.

    The wrapper intercepts :meth:`set_defect_resistance` (interpreted as
    the 27 °C value) and :meth:`set_stress` (re-evaluates ``R(T)``), and
    delegates everything else, so it satisfies the same
    :class:`~repro.analysis.interface.ColumnModel` protocol and drops
    into any analysis or optimization routine.
    """

    def __init__(self, inner: ColumnModel, tcr: float = SILICON_LIKE_TCR,
                 *, r27: float | None = None):
        self._inner = inner
        self.tcr = float(tcr)
        if r27 is None:
            defect = getattr(inner, "defect", None)
            if defect is None:
                raise ValueError("inner model has no defect to scale")
            r27 = defect.resistance
        self._r27 = float(r27)
        self._apply()

    # -- resistance law -------------------------------------------------
    def resistance_at(self, temp_c: float) -> float:
        """The effective defect resistance at ``temp_c``."""
        factor = 1.0 + self.tcr * (temp_c - 27.0)
        return self._r27 * max(factor, 0.05)

    def _apply(self) -> None:
        self._inner.set_defect_resistance(
            self.resistance_at(self._inner.stress.temp_c))

    # -- ColumnModel protocol -------------------------------------------
    @property
    def stress(self) -> StressConditions:
        return self._inner.stress

    @property
    def tech(self):
        return self._inner.tech

    @property
    def target_on_true(self) -> bool:
        return getattr(self._inner, "target_on_true", True)

    @property
    def defect(self):
        return getattr(self._inner, "defect", None)

    def set_stress(self, stress: StressConditions) -> None:
        self._inner.set_stress(stress)
        self._apply()

    def set_defect_resistance(self, resistance: float) -> None:
        """Interpret ``resistance`` as the 27 °C (nominal) value."""
        self._r27 = float(resistance)
        self._apply()

    def run_sequence(self, ops, init_vc: float, background: int = 0):
        return self._inner.run_sequence(ops, init_vc=init_vc,
                                        background=background)

    def idle_state(self, vc_target: float, background: int = 0):
        return self._inner.idle_state(vc_target, background=background)

    def run_op(self, op, state):
        return self._inner.run_op(op, state)
