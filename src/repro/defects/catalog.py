"""Catalog of the simulated cell defects (paper Fig. 7).

The paper analyses seven defects — 3 opens, 2 shorts and 2 bridges — each
on the true and the complementary bit line.  :class:`DefectKind` names the
seven; :class:`Defect` adds the placement and resistance and converts to
the low-level :class:`~repro.dram.column.DefectSite` understood by the
netlist builder.

Opens *fail above* a border resistance (a stronger open is a larger
resistance); shorts and bridges *fail below* one (a stronger short is a
smaller resistance).  :attr:`DefectKind.fails_high` captures the polarity,
which the border-resistance search and the optimization criterion both
need: stressing must *extend* the failing range, i.e. push the border
down for opens and up for shorts/bridges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.column import DefectSite


class DefectClass(enum.Enum):
    """Coarse defect family."""

    OPEN = "open"
    SHORT = "short"
    BRIDGE = "bridge"


class Placement(enum.Enum):
    """Which bit line the afflicted cell hangs on."""

    TRUE = "true"
    COMP = "comp"

    @property
    def cell_index(self) -> int:
        """Default afflicted cell: 0 on the true line, 1 on the comp line."""
        return 0 if self is Placement.TRUE else 1


class DefectKind(enum.Enum):
    """The seven Fig. 7 defects."""

    O1 = "O1"   # open: bit-line contact
    O2 = "O2"   # open: word-line / gate connection
    O3 = "O3"   # open: storage-node connection (the paper's Fig. 1 example)
    SG = "Sg"   # short: storage node to GND
    SV = "Sv"   # short: storage node to Vdd
    B1 = "B1"   # bridge: storage node to own bit line
    B2 = "B2"   # bridge: storage node to own word line

    @property
    def defect_class(self) -> DefectClass:
        if self in (DefectKind.O1, DefectKind.O2, DefectKind.O3):
            return DefectClass.OPEN
        if self in (DefectKind.SG, DefectKind.SV):
            return DefectClass.SHORT
        return DefectClass.BRIDGE

    @property
    def site_kind(self) -> str:
        """The netlist-builder kind string."""
        return {
            DefectKind.O1: "open_bl",
            DefectKind.O2: "open_gate",
            DefectKind.O3: "open_sn",
            DefectKind.SG: "short_gnd",
            DefectKind.SV: "short_vdd",
            DefectKind.B1: "bridge_bl",
            DefectKind.B2: "bridge_wl",
        }[self]

    @property
    def fails_high(self) -> bool:
        """True when faults appear *above* the border resistance (opens)."""
        return self.defect_class is DefectClass.OPEN

    @property
    def search_range(self) -> tuple[float, float]:
        """Resistance range (ohms) to analyse for this kind.

        Word-line opens interact with the small gate capacitance, so their
        interesting range sits orders of magnitude higher than the other
        defects'.
        """
        if self is DefectKind.O2:
            return (100e3, 1e9)
        if self.defect_class is DefectClass.OPEN:
            return (10e3, 10e6)
        return (1e3, 30e6)

    def describe(self) -> str:
        return {
            DefectKind.O1: "open between bit line and access drain",
            DefectKind.O2: "open between word line and access gate",
            DefectKind.O3: "open between access transistor and capacitor",
            DefectKind.SG: "short from storage node to GND",
            DefectKind.SV: "short from storage node to Vdd",
            DefectKind.B1: "bridge from storage node to own bit line",
            DefectKind.B2: "bridge from storage node to own word line",
        }[self]


@dataclass(frozen=True)
class Defect:
    """A concrete defect: kind + placement + resistance."""

    kind: DefectKind
    placement: Placement = Placement.TRUE
    resistance: float = 200e3

    def __post_init__(self):
        if self.resistance <= 0:
            raise ValueError("defect resistance must be positive")

    @property
    def name(self) -> str:
        return f"{self.kind.value} ({self.placement.value})"

    @property
    def cell_index(self) -> int:
        return self.placement.cell_index

    @property
    def fails_high(self) -> bool:
        return self.kind.fails_high

    def site(self) -> DefectSite:
        """The low-level netlist injection spec."""
        return DefectSite(self.kind.site_kind, self.cell_index,
                          self.resistance)

    def with_resistance(self, resistance: float) -> "Defect":
        return Defect(self.kind, self.placement, resistance)

    def __str__(self):
        return f"{self.name} R={self.resistance:.3g}"


#: Every (kind, placement) pair of Table 1, at a representative resistance.
ALL_DEFECTS: tuple[Defect, ...] = tuple(
    Defect(kind, placement)
    for kind in DefectKind
    for placement in (Placement.TRUE, Placement.COMP)
)
