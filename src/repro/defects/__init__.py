"""The Fig. 7 defect catalog: opens, shorts and bridges.

Seven resistive defects, each placeable on the true or the complementary
bit line, matching the paper's analysis set:

* ``O1``–``O3`` — opens on signal lines within the cell,
* ``Sg``/``Sv`` — resistive shorts to GND / Vdd,
* ``B1``/``B2`` — bridges between nodes within the cell.
"""

from repro.defects.catalog import (
    ALL_DEFECTS,
    Defect,
    DefectClass,
    DefectKind,
    Placement,
)

__all__ = [
    "ALL_DEFECTS",
    "Defect",
    "DefectClass",
    "DefectKind",
    "Placement",
]
