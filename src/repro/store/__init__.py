"""Durable result storage: the sharded content-addressed store.

* :mod:`repro.store.sharded` — :class:`ShardedStore`, the
  integrity-checked, crash-safe, LRU-bounded disk tier behind
  :class:`~repro.engine.cache.ResultCache` and sweep checkpoints, plus
  its :class:`StoreStats` counters.
"""

from repro.store.sharded import FORMAT_VERSION, ShardedStore, StoreStats

__all__ = ["FORMAT_VERSION", "ShardedStore", "StoreStats"]
