"""Sharded, integrity-checked, content-addressed result store.

:class:`ShardedStore` is the durable disk tier behind
:class:`~repro.engine.cache.ResultCache` and the checkpoint/resume
machinery: a directory of pickled payloads addressed by content hash,
built so that a crashed, concurrent or bit-rotted store can never lie
to a reader.

Layout and entry format
-----------------------
Entries live under a 2-hex-prefix shard of the key
(``<root>/<key[:2]>/<key>.pkl``), so directory listings stay short at
hundreds of thousands of entries.  Every entry starts with a fixed
46-byte header::

    magic 4s | format version u16 | payload length u64 | sha256 32s

followed by the pickled payload.  Reads verify all four fields and the
payload digest before unpickling; anything that fails — truncated file,
flipped bit, foreign format version, stale pickle schema — is
*quarantined* (moved into ``<root>/corrupt/``, counted, reported through
:mod:`repro.diagnostics`) and the lookup reports a miss, so corruption
converts to recomputation, never to wrong results.

Durability and concurrency
--------------------------
Writes are atomic: a temp file in the destination shard, flushed and
fsync'd (configurable), then ``os.replace``.  Orphaned ``*.tmp`` files
left by a crash mid-write are swept on store construction and counted
(``tmp_reclaimed``).  Cross-process writers are safe by construction
(``os.replace`` either fully lands or not at all); per-shard advisory
file locks additionally serialise write/evict/quarantine races so two
processes never double-move an entry.

Eviction
--------
``max_entries``/``max_bytes`` bound the store; when a put pushes past a
bound, the least-recently-used entries (by mtime — reads touch their
entry) are evicted down to 90 % of the bound.  All activity is counted
in :class:`StoreStats`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

try:  # advisory locks are POSIX-only; the store degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: First bytes of every entry file ("RePro Store").
MAGIC = b"RPRS"

#: Bumped whenever the entry layout changes; foreign versions quarantine.
FORMAT_VERSION = 1

#: ``magic | version | payload length | payload sha256``.
_HEADER = struct.Struct("<4sHQ32s")

#: Orphaned ``*.tmp`` files older than this many seconds are reclaimed
#: at store construction (young ones may belong to a live writer).
TMP_RECLAIM_AGE = 60.0

#: Eviction drains the store to this fraction of the exceeded bound, so
#: a hot put loop does not re-trigger a full scan on every write.
EVICT_WATERMARK = 0.9


@dataclass
class StoreStats:
    """Activity counters of one :class:`ShardedStore` lifetime.

    ``hits``/``misses`` count lookups, ``writes`` completed puts,
    ``evictions`` entries removed by the LRU bound, ``quarantined``
    entries moved aside after failing integrity verification, and
    ``tmp_reclaimed`` orphaned temp files swept at construction.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    quarantined: int = 0
    tmp_reclaimed: int = 0

    def describe(self) -> str:
        """One-line rendering for ``--verbose`` / ``--profile`` output."""
        line = (f"{self.hits} hits / {self.misses} misses, "
                f"{self.writes} writes, {self.evictions} evicted")
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        if self.tmp_reclaimed:
            line += f", {self.tmp_reclaimed} tmp reclaimed"
        return line

    @property
    def eventful(self) -> bool:
        """Did anything a clean run would not show happen?"""
        return bool(self.evictions or self.quarantined
                    or self.tmp_reclaimed)


class _ShardLock:
    """Advisory exclusive lock on one shard directory (``.lock`` file).

    Reentrant within a process is *not* needed (callers never nest); the
    lock only serialises cross-process mutation of one shard.  On
    platforms without ``fcntl`` it degrades to a no-op — atomicity of
    ``os.replace`` still guarantees readers never see a torn entry.
    """

    def __init__(self, shard_dir: Path):
        self._path = shard_dir / ".lock"
        self._fd: int | None = None

    def __enter__(self) -> "_ShardLock":
        if fcntl is not None:
            try:
                self._fd = os.open(self._path,
                                   os.O_CREAT | os.O_RDWR, 0o644)
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            except OSError:
                if self._fd is not None:
                    os.close(self._fd)
                self._fd = None
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
            self._fd = None


class ShardedStore:
    """Content-addressed pickle store with integrity-checked entries.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write; an existing
        tree is scanned for size accounting and orphan reclamation).
    max_entries / max_bytes:
        Optional LRU bounds (``None`` = unbounded).  ``max_bytes``
        counts payload files only, not locks or quarantined entries.
    fsync:
        Whether every put fsyncs before publishing (default).  Turning
        it off trades crash durability of the *latest* writes for
        throughput — integrity checking still rejects any torn entry.
    tmp_max_age:
        Minimum age (seconds) before an orphaned ``*.tmp`` file is
        reclaimed at construction; younger files may belong to a
        concurrent live writer.
    """

    def __init__(self, root: str | os.PathLike, *,
                 max_entries: int | None = None,
                 max_bytes: int | None = None,
                 fsync: bool = True,
                 tmp_max_age: float = TMP_RECLAIM_AGE):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.fsync = fsync
        self.stats = StoreStats()
        self._approx_entries = 0
        self._approx_bytes = 0
        if self.root.is_dir():
            self._scan_existing(tmp_max_age)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (existing or not)."""
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def corrupt_dir(self) -> Path:
        """Where quarantined entries are moved."""
        return self.root / "corrupt"

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str):
        """The stored object for ``key``, or ``None`` on a miss.

        Every read re-verifies the header and payload digest; entries
        failing verification are quarantined and reported as misses.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                raw = fh.read()
        except OSError:
            self.stats.misses += 1
            return None
        payload = self._verify(raw)
        if payload is None:
            self._quarantine(path, self._verify_failure(raw))
            self.stats.misses += 1
            return None
        try:
            obj = pickle.loads(payload)
        except Exception:
            # The bytes are intact but the pickled schema is stale or
            # foreign — same treatment as corruption.
            self._quarantine(path, "unpicklable")
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(path)
        return obj

    def put(self, key: str, obj) -> None:
        """Atomically store ``obj`` under ``key`` (last writer wins)."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(MAGIC, FORMAT_VERSION, len(payload),
                              hashlib.sha256(payload).digest())
        path = self.path_for(key)
        shard = path.parent
        shard.mkdir(parents=True, exist_ok=True)
        with _ShardLock(shard):
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(header)
                    fh.write(payload)
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                existed = path.exists()
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return
        self.stats.writes += 1
        if not existed:
            self._approx_entries += 1
        self._approx_bytes += len(header) + len(payload)
        self._enforce_bounds()

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def keys(self) -> list[str]:
        """Keys of every entry currently on disk (unverified)."""
        return [p.name[:-4] for _, _, p in self._entries()]

    # ------------------------------------------------------------------
    # verification / quarantine
    # ------------------------------------------------------------------
    @staticmethod
    def _verify(raw: bytes) -> bytes | None:
        """The payload when ``raw`` is a valid entry, else ``None``."""
        if len(raw) < _HEADER.size:
            return None
        magic, version, length, digest = _HEADER.unpack_from(raw)
        if magic != MAGIC or version != FORMAT_VERSION:
            return None
        payload = raw[_HEADER.size:]
        if len(payload) != length:
            return None
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload

    @staticmethod
    def _verify_failure(raw: bytes) -> str:
        """Why ``raw`` failed verification (for the quarantine name)."""
        if len(raw) < _HEADER.size:
            return "truncated"
        magic, version, length, digest = _HEADER.unpack_from(raw)
        if magic != MAGIC:
            return "bad-magic"
        if version != FORMAT_VERSION:
            return f"version-{version}"
        payload = raw[_HEADER.size:]
        if len(payload) != length:
            return "truncated"
        if hashlib.sha256(payload).digest() != digest:
            return "digest-mismatch"
        return "corrupt"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a failed entry into ``corrupt/`` and count it."""
        dest_dir = self.corrupt_dir
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        dest = dest_dir / f"{path.name}.{reason}"
        n = 0
        while dest.exists():
            n += 1
            dest = dest_dir / f"{path.name}.{reason}.{n}"
        with _ShardLock(path.parent):
            try:
                size = path.stat().st_size
                os.replace(path, dest)
            except OSError:
                # A concurrent reader already quarantined (or a writer
                # replaced) this entry; nothing left to move.
                return
        self.stats.quarantined += 1
        self._approx_entries = max(0, self._approx_entries - 1)
        self._approx_bytes = max(0, self._approx_bytes - size)
        from repro.diagnostics import diagnostics
        diagnostics().record_cache_quarantine(str(path), reason)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _touch(self, path: Path) -> None:
        """Refresh the entry's LRU recency (mtime)."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _entries(self):
        """Yield ``(mtime, size, path)`` of every entry on disk."""
        try:
            shards = [p for p in self.root.iterdir()
                      if p.is_dir() and p.name != "corrupt"]
        except OSError:
            return
        for shard in shards:
            try:
                names = list(os.scandir(shard))
            except OSError:
                continue
            for entry in names:
                if not entry.name.endswith(".pkl"):
                    continue
                try:
                    st = entry.stat()
                except OSError:
                    continue
                yield st.st_mtime, st.st_size, Path(entry.path)

    def _scan_existing(self, tmp_max_age: float) -> None:
        """Initial accounting pass: sizes plus orphaned-tmp reclamation."""
        now = time.time()
        reclaimed = 0
        for shard in self.root.iterdir():
            if not shard.is_dir() or shard.name == "corrupt":
                continue
            try:
                names = list(os.scandir(shard))
            except OSError:
                continue
            for entry in names:
                try:
                    st = entry.stat()
                except OSError:
                    continue
                if entry.name.endswith(".tmp"):
                    # A crash mid-put leaves the temp file behind; the
                    # entry it was meant to become was never published.
                    if now - st.st_mtime >= tmp_max_age:
                        try:
                            os.unlink(entry.path)
                            reclaimed += 1
                        except OSError:
                            pass
                    continue
                if entry.name.endswith(".pkl"):
                    self._approx_entries += 1
                    self._approx_bytes += st.st_size
        if reclaimed:
            self.stats.tmp_reclaimed += reclaimed
            from repro.diagnostics import diagnostics
            diagnostics().record_tmp_reclaimed(reclaimed)

    def _enforce_bounds(self) -> None:
        """Evict LRU entries when a size/count bound is exceeded."""
        over_count = (self.max_entries is not None
                      and self._approx_entries > self.max_entries)
        over_bytes = (self.max_bytes is not None
                      and self._approx_bytes > self.max_bytes)
        if not (over_count or over_bytes):
            return
        entries = sorted(self._entries())          # oldest mtime first
        # Re-anchor the approximations on the exact scan.
        self._approx_entries = len(entries)
        self._approx_bytes = sum(size for _, size, _ in entries)
        target_entries = (int(self.max_entries * EVICT_WATERMARK)
                          if self.max_entries is not None else None)
        target_bytes = (int(self.max_bytes * EVICT_WATERMARK)
                        if self.max_bytes is not None else None)
        for _, size, path in entries:
            need_count = (target_entries is not None
                          and self._approx_entries > target_entries)
            need_bytes = (target_bytes is not None
                          and self._approx_bytes > target_bytes)
            if not (need_count or need_bytes):
                break
            with _ShardLock(path.parent):
                try:
                    os.unlink(path)
                except OSError:
                    continue
            self.stats.evictions += 1
            self._approx_entries -= 1
            self._approx_bytes -= size
