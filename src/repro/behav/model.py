"""Phase-integrated behavioral column model.

Each operation cycle is split at the control-signal corners defined by
:mod:`repro.dram.timing` and integrated segment-by-segment with fixed
sub-steps (midpoint rule).  Within a segment the bit line is either held
by the precharge/write driver (a boundary condition) or co-integrated with
the cell during charge sharing.  The access transistor uses the *same*
level-1 equations as the electrical model (:func:`mosfet_curves`), so both
models share one technology description.

Approximations (validated against the electrical model in the tests):

* bit lines are ideal rails while a driver holds them;
* the sense amplifier is a calibrated race — the decision samples the
  bit-line differential one latch delay after sense enable, with the
  delay scaling like the inverse SA drive current over temperature;
* after the decision the winning rail is applied to the bit line
  immediately (restore phase);
* non-target cells do not interact with the target (the electrical model
  confirms the coupling is negligible for single-defect analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stress import NOMINAL_STRESS, StressConditions
from repro.defects.catalog import Defect
from repro.dram.column import DefectSite
from repro.dram.ops import Op, Operation, OpResult, SequenceResult, parse_ops
from repro.dram.tech import TechnologyParams, default_tech
from repro.dram import timing
from repro.spice.mosfet import mosfet_curves


@dataclass
class BehavCalibration:
    """Fitted constants of the sense-decision race.

    ``latch_delay`` is the time between sense enable and the effective
    decision instant at the nominal temperature; it scales with the
    inverse of the SA NMOS drive, i.e. ``(T_K / 300.15) ** latch_texp``.
    """

    latch_delay: float = 2.6e-9
    latch_texp: float = 0.9

    def delay_at(self, temp_c: float) -> float:
        t_k = temp_c + 273.15
        return self.latch_delay * (t_k / 300.15) ** self.latch_texp


class _Phase:
    """One integration segment of a cycle."""

    __slots__ = ("t0", "t1", "wl_high", "bl_mode", "bl_level")

    def __init__(self, t0, t1, wl_high, bl_mode, bl_level=None):
        self.t0 = t0
        self.t1 = t1
        self.wl_high = wl_high
        self.bl_mode = bl_mode      # "held" or "share"
        self.bl_level = bl_level    # for "held"


class BehavioralColumn:
    """Drop-in fast replacement for :class:`ColumnRunner`.

    Accepts the same construction arguments (low-level
    :class:`DefectSite`) and exposes the same operation-level interface,
    so every analysis routine runs unchanged on either model.
    """

    #: Integration sub-step (seconds).
    DT_SUB = 0.5e-9

    def __init__(self, *, tech: TechnologyParams | None = None,
                 stress: StressConditions = NOMINAL_STRESS,
                 defect: DefectSite | None = None,
                 target_cell: int = 0,
                 calibration: BehavCalibration | None = None,
                 record: bool = False):
        self.tech = tech or default_tech()
        self.stress = stress
        self.target_cell = target_cell
        self.defect = defect
        self.calibration = calibration or BehavCalibration()
        self.record = record  # accepted for interface parity (unused)

    # ------------------------------------------------------------------
    # configuration (mirrors ColumnRunner)
    # ------------------------------------------------------------------
    def set_stress(self, stress: StressConditions) -> None:
        self.stress = stress

    def set_defect_resistance(self, resistance: float) -> None:
        if self.defect is None:
            raise ValueError("this column has no injected defect")
        self.defect = self.defect.with_resistance(resistance)

    @property
    def target_on_true(self) -> bool:
        return self.target_cell % 2 == 0

    # ------------------------------------------------------------------
    # device helpers
    # ------------------------------------------------------------------
    def _access_current(self, v_bl: float, v_cell: float, v_gate: float,
                        series_r: float, temp_c: float) -> float:
        """Current flowing bit line → cell through access + series open."""
        tech = self.tech
        w_over_l = tech.access_w / tech.access_l
        dv = v_bl - v_cell
        if dv == 0.0:
            return 0.0
        vs = min(v_bl, v_cell)
        vgs = v_gate - vs
        ids, _, _ = mosfet_curves(tech.access_params, w_over_l, vgs,
                                  abs(dv), temp_c)
        if ids <= 0.0:
            return 0.0
        # Series combination of the transistor (as its large-signal
        # conductance) and the open resistance.
        g_tx = ids / abs(dv)
        g = g_tx if series_r <= 0 else g_tx / (1.0 + g_tx * series_r)
        return g * dv

    def _leak_current(self, v_cell: float, temp_c: float) -> float:
        """Storage-node junction leakage (discharges a stored high)."""
        if v_cell <= 0.0:
            return 0.0
        tech = self.tech
        return tech.leak_isat * 2.0 ** ((temp_c - tech.leak_tnom_c)
                                        / tech.leak_tdouble)

    def _shunt_current(self, v_cell: float, v_bl: float,
                       v_wl: float) -> float:
        """Current *into* the cell node from a short/bridge defect."""
        d = self.defect
        if d is None:
            return 0.0
        r = d.resistance
        kind = d.kind
        if kind == "short_gnd":
            return (0.0 - v_cell) / r
        if kind == "short_vdd":
            return (self.stress.vdd - v_cell) / r
        if kind == "bridge_bl":
            return (v_bl - v_cell) / r
        if kind == "bridge_wl":
            return (v_wl - v_cell) / r
        return 0.0

    def _series_resistance(self) -> float:
        d = self.defect
        if d is not None and d.kind in ("open_bl", "open_sn"):
            return d.resistance
        return 0.0

    def _gate_tau(self) -> float | None:
        d = self.defect
        if d is not None and d.kind == "open_gate":
            return d.resistance * self.tech.cg_access
        return None

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------
    def _phases_for(self, op: Op, plan_times: dict) -> list[_Phase]:
        """Held-bit-line phases of a write cycle (reads and nops are
        assembled inline in :meth:`_run_cycle` because the restore level
        is only known mid-cycle)."""
        t_wl_on = plan_times["t_wl_on"]
        t_wl_off = plan_times["t_wl_off"]
        tcyc = self.stress.tcyc
        vpre = self.tech.vbl_pre(self.stress.vdd)

        level = float(op.operation.write_value) * self.stress.vdd
        if not self.target_on_true:
            level = self.stress.vdd - level
        t_we_on = plan_times["t_we_on"]
        return [
            _Phase(0.0, t_wl_on, False, "held", vpre),
            _Phase(t_wl_on, t_we_on, True, "held", vpre),
            _Phase(t_we_on, t_wl_off, True, "held", level),
            _Phase(t_wl_off, tcyc, False, "held", level),
        ]

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    def _integrate_held(self, state: dict, phase: _Phase,
                        temp_c: float) -> None:
        """Cell dynamics with the bit line held at a fixed level."""
        tech = self.tech
        cs = tech.cs
        series_r = self._series_resistance()
        gate_tau = self._gate_tau()
        vpp = tech.vpp(self.stress.vdd)
        v_wl_target = vpp if phase.wl_high else 0.0
        t = phase.t0
        while t < phase.t1 - 1e-15:
            dt = min(self.DT_SUB, phase.t1 - t)
            vc = state["vc"]
            if gate_tau is not None:
                vg = state["vg"]
                vg += (v_wl_target - vg) * (1.0 - _exp(-dt / gate_tau))
                state["vg"] = vg
            else:
                vg = v_wl_target
            i_acc = self._access_current(phase.bl_level, vc, vg, series_r,
                                         temp_c) if phase.wl_high or \
                gate_tau is not None else 0.0
            i = (i_acc + self._shunt_current(vc, phase.bl_level,
                                             v_wl_target)
                 - self._leak_current(vc, temp_c))
            state["vc"] = _clip(vc + i * dt / cs, -0.2,
                                self.stress.vdd + 0.3)
            t += dt

    def _integrate_share(self, state: dict, t0: float, t1: float,
                         temp_c: float) -> None:
        """Charge sharing: cell and bit line co-integrate; dummy too."""
        tech = self.tech
        cs, cbl = tech.cs, tech.cbl
        series_r = self._series_resistance()
        gate_tau = self._gate_tau()
        vpp = tech.vpp(self.stress.vdd)
        w_over_l_d = tech.dummy_access_w / tech.access_l
        t = t0
        while t < t1 - 1e-15:
            dt = min(self.DT_SUB, t1 - t)
            vc, vbl = state["vc"], state["vbl"]
            vdum, vblr = state["vdum"], state["vblr"]
            if gate_tau is not None:
                vg = state["vg"]
                vg += (vpp - vg) * (1.0 - _exp(-dt / gate_tau))
                state["vg"] = vg
            else:
                vg = vpp
            i_cell = self._access_current(vbl, vc, vg, series_r, temp_c)
            i_shunt = self._shunt_current(vc, vbl, vpp)
            i_leak = self._leak_current(vc, temp_c)
            # Dummy path (no defect, its own width).
            dvd = vblr - vdum
            if dvd != 0.0:
                vs = min(vblr, vdum)
                idum, _, _ = mosfet_curves(tech.access_params, w_over_l_d,
                                           vpp - vs, abs(dvd), temp_c)
                i_dum = (idum / abs(dvd)) * dvd if idum > 0 else 0.0
            else:
                i_dum = 0.0
            state["vc"] = vc + (i_cell + i_shunt - i_leak) * dt / cs
            state["vbl"] = vbl - i_cell * dt / cbl
            state["vdum"] = vdum + i_dum * dt / cs
            state["vblr"] = vblr - i_dum * dt / cbl
            t += dt

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _run_cycle(self, op: Op, state: dict) -> OpResult:
        stress, tech = self.stress, self.tech
        temp_c = stress.temp_c
        tcyc = stress.tcyc
        t_eq_off = timing.EQ_OFF_FRAC * tcyc
        t_wl_on, t_wl_off = timing.wordline_window(stress)
        plan_times = {
            "t_eq_off": t_eq_off,
            "t_wl_on": t_wl_on,
            "t_wl_off": t_wl_off,
            "t_we_on": t_wl_on + timing.WEN_DELAY_FRAC * tcyc,
        }

        sensed = None
        if op.operation is Operation.NOP:
            vpre = tech.vbl_pre(stress.vdd)
            self._integrate_held(
                state, _Phase(0.0, tcyc, False, "held", vpre), temp_c)
        elif op.operation.is_write:
            for phase in self._phases_for(op, plan_times):
                self._integrate_held(state, phase, temp_c)
        else:
            vpre = tech.vbl_pre(stress.vdd)
            # idle + precharge
            self._integrate_held(
                state, _Phase(0.0, t_wl_on, False, "held", vpre), temp_c)
            # charge share until the (race-delayed) decision instant
            t_sense = t_wl_on + timing.SHARE_FRAC * tcyc
            t_dec = min(t_sense + self.calibration.delay_at(temp_c),
                        t_wl_off)
            state["vbl"] = vpre
            state["vblr"] = vpre
            state["vdum"] = tech.v_ref(stress.vdd, temp_c)
            self._integrate_share(state, t_wl_on, t_dec, temp_c)
            stored_one = state["vbl"] > state["vblr"]
            sensed = (1 if stored_one else 0) if self.target_on_true \
                else (0 if stored_one else 1)
            # restore: the SA drives the bit line to the winning rail
            rail = stress.vdd if stored_one else 0.0
            self._integrate_held(
                state, _Phase(t_dec, t_wl_off, True, "held", rail), temp_c)
            self._integrate_held(
                state, _Phase(t_wl_off, tcyc, False, "held", rail), temp_c)

        return OpResult(op=op, vc_end=state["vc"], sensed=sensed)

    def idle_state(self, vc_target: float,
                   background: int = 0) -> dict[str, float]:
        """Interface parity with the electrical runner."""
        state = {"vc": float(vc_target), "vbl": 0.0, "vblr": 0.0,
                 "vdum": 0.0}
        if self._gate_tau() is not None:
            state["vg"] = 0.0
        return state

    def run_op(self, op: Op | str, state: dict) -> tuple[OpResult, dict]:
        if isinstance(op, str):
            op = Op.parse(op)
        result = self._run_cycle(op, state)
        return result, state

    def run_sequence(self, ops, init_vc: float, background: int = 0
                     ) -> SequenceResult:
        if isinstance(ops, str):
            ops = parse_ops(ops)
        ops = [Op.parse(o) if isinstance(o, str) else o for o in ops]
        state = self.idle_state(init_vc, background=background)
        results = []
        for op in ops:
            result, state = self.run_op(op, state)
            results.append(result)
        return SequenceResult(ops=ops, results=results)


def _exp(x: float) -> float:
    import math
    return math.exp(x) if x > -60.0 else 0.0


def _clip(x: float, lo: float, hi: float) -> float:
    return lo if x < lo else hi if x > hi else x


def behavioral_model(defect: Defect | None = None,
                     stress: StressConditions = NOMINAL_STRESS,
                     tech: TechnologyParams | None = None,
                     calibration: BehavCalibration | None = None
                     ) -> BehavioralColumn:
    """Build the behavioral column model for a high-level defect."""
    site = defect.site() if defect is not None else None
    target = defect.cell_index if defect is not None else 0
    return BehavioralColumn(tech=tech, stress=stress, defect=site,
                            target_cell=target, calibration=calibration)
