"""Fast behavioral column model, calibrated against the electrical one.

The electrical model costs ~0.15 s per operation cycle; Shmoo grids and
march-test coverage sweeps need thousands of cycles.
:class:`~repro.behav.model.BehavioralColumn` integrates the same device
physics (shared MOSFET equations, same technology parameters, same cycle
timing) phase-by-phase with closed-form boundary conditions instead of
solving the full MNA system — about three orders of magnitude faster.

The sense decision is a calibrated race: the bit-line differential is
evaluated a temperature-dependent latch delay *after* sense enable, which
reproduces the electrical model's non-monotonic read behaviour.
Calibration constants are fitted against the electrical model by
:mod:`repro.behav.calibrate` (defaults are pre-fitted for the default
technology).
"""

from repro.behav.model import BehavCalibration, BehavioralColumn, behavioral_model
from repro.behav.calibrate import calibrate_latch

__all__ = [
    "BehavCalibration",
    "BehavioralColumn",
    "behavioral_model",
    "calibrate_latch",
]
