"""Calibration of the behavioral sense-decision race.

The only free constants of the behavioral model are the SA latch delay
and its temperature exponent (everything else — device equations, timing,
capacitances — is shared with the electrical model).  They are fitted so
the behavioral ``Vsa`` matches the electrical one:

* ``latch_delay`` from the nominal-temperature threshold at a reference
  open resistance,
* ``latch_texp`` from the threshold shift between the nominal and the hot
  corner.

The packaged :class:`~repro.behav.model.BehavCalibration` defaults were
produced by this routine against the default technology; rerun it after
changing technology parameters.
"""

from __future__ import annotations

from repro.analysis.curves import sense_threshold
from repro.analysis.interface import electrical_model
from repro.behav.model import BehavCalibration, behavioral_model
from repro.stress import NOMINAL_STRESS, StressConditions
from repro.defects.catalog import Defect, DefectKind
from repro.dram.tech import TechnologyParams, default_tech


def _behav_vsa(tech: TechnologyParams, cal: BehavCalibration,
               stress: StressConditions, resistance: float) -> float | None:
    defect = Defect(DefectKind.O3, resistance=resistance)
    model = behavioral_model(defect, stress=stress, tech=tech,
                             calibration=cal)
    model.set_defect_resistance(resistance)
    return sense_threshold(model, tol=0.005)


def _electrical_vsa(tech: TechnologyParams, stress: StressConditions,
                    resistance: float) -> float | None:
    defect = Defect(DefectKind.O3, resistance=resistance)
    model = electrical_model(defect, stress=stress, tech=tech)
    model.set_defect_resistance(resistance)
    return sense_threshold(model, tol=0.005)


def calibrate_latch(tech: TechnologyParams | None = None, *,
                    resistance: float = 200e3,
                    hot_temp_c: float = 87.0,
                    delay_grid: tuple[float, ...] = (
                        1.0e-9, 1.6e-9, 2.2e-9, 2.8e-9, 3.4e-9, 4.2e-9),
                    texp_grid: tuple[float, ...] = (0.3, 0.9, 1.5, 2.2),
                    ) -> BehavCalibration:
    """Fit the race constants against the electrical model.

    Runs a small grid search minimising the squared ``Vsa`` error at the
    nominal and hot corners.  Costs a few dozen electrical read cycles.
    """
    tech = tech or default_tech()
    nominal = NOMINAL_STRESS
    hot = NOMINAL_STRESS.with_(temp_c=hot_temp_c)

    target_nom = _electrical_vsa(tech, nominal, resistance)
    target_hot = _electrical_vsa(tech, hot, resistance)
    if target_nom is None or target_hot is None:
        raise RuntimeError(
            "electrical Vsa missing at the calibration resistance; pick a "
            "resistance where the read threshold exists")

    best: BehavCalibration | None = None
    best_err = float("inf")
    for delay in delay_grid:
        for texp in texp_grid:
            cal = BehavCalibration(latch_delay=delay, latch_texp=texp)
            vn = _behav_vsa(tech, cal, nominal, resistance)
            vh = _behav_vsa(tech, cal, hot, resistance)
            if vn is None or vh is None:
                continue
            err = (vn - target_nom) ** 2 + (vh - target_hot) ** 2
            if err < best_err:
                best_err = err
                best = cal
    if best is None:
        raise RuntimeError("calibration grid produced no usable candidate")
    return best
