"""Two-cell coupling-fault analysis on the electrical column.

The 2×2 array makes neighbourhood effects observable: a bridge from a
storage node to its bit line, for example, is not only a single-cell
fault — every operation addressed at the *other* cell on the same line
drives that line rail-to-rail and disturbs the defective cell through
the bridge.  In functional terms these are the classic two-cell
primitives:

* ``CFds`` — disturb coupling: an aggressor operation flips the victim,
* ``CFst`` — state coupling: the victim misbehaves only while the
  aggressor holds a particular value.

This analysis needs per-operation cell addressing, so it runs on the
electrical model (the behavioral model is single-cell by design).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.interface import electrical_model
from repro.stress import NOMINAL_STRESS, StressConditions
from repro.defects.catalog import Defect
from repro.dram.ops import Op, Operation


class CouplingKind(enum.Enum):
    """Two-cell fault primitive families."""

    CFDS = "CFds"    # disturb: aggressor op flips the victim
    CFST = "CFst"    # state: victim fault conditioned on aggressor value


@dataclass(frozen=True)
class CouplingFault:
    """One observed two-cell primitive."""

    kind: CouplingKind
    aggressor_op: str        # e.g. "w0", "w1", "r"
    victim_value: int        # the value the victim held / should hold
    aggressor_cell: int
    victim_cell: int
    evidence: str = ""

    def notation(self) -> str:
        if self.kind is CouplingKind.CFDS:
            flip = f"{self.victim_value}->{1 - self.victim_value}"
            return (f"CFds<{self.aggressor_op}; {flip}> "
                    f"(a={self.aggressor_cell}, v={self.victim_cell})")
        return (f"CFst<{self.aggressor_op}; {self.victim_value}> "
                f"(a={self.aggressor_cell}, v={self.victim_cell})")


@dataclass
class CouplingReport:
    """All coupling primitives found for one defect resistance."""

    defect: Defect
    resistance: float
    aggressor_cell: int
    victim_cell: int
    faults: list[CouplingFault] = field(default_factory=list)

    @property
    def has_coupling(self) -> bool:
        return bool(self.faults)

    def render(self) -> str:
        head = (f"coupling analysis of {self.defect.name} at "
                f"R={self.resistance:.3g} (victim cell "
                f"{self.victim_cell}, aggressor cell "
                f"{self.aggressor_cell}):")
        if not self.faults:
            return head + "\n  none observed"
        return "\n".join([head] + ["  " + f.notation() + "  # "
                                   + f.evidence for f in self.faults])


def _victim_holds(runner, state, value: int) -> bool:
    """Does the victim's storage node encode logical ``value``?"""
    vc = state[runner.netlist.storage_node(runner.target_cell)]
    stored = 1 if vc > 0.5 * runner.stress.vdd else 0
    if runner.target_cell % 2 == 1:
        stored = 1 - stored
    return stored == value


def classify_coupling(defect: Defect, resistance: float, *,
                      aggressor_cell: int | None = None,
                      stress: StressConditions = NOMINAL_STRESS,
                      n_aggressor_ops: int = 3) -> CouplingReport:
    """Probe CFds/CFst between the defective cell and a neighbour.

    The victim is the defective cell; the default aggressor is the other
    cell on the *same bit line* (index ± 2), where the coupling paths
    (shared line, bridges) live.
    """
    victim = defect.cell_index
    if aggressor_cell is None:
        aggressor_cell = victim + 2
    runner = electrical_model(defect.with_resistance(resistance),
                              stress=stress)
    report = CouplingReport(defect, resistance, aggressor_cell, victim)
    w = {0: Op(Operation.W0), 1: Op(Operation.W1)}
    read = Op(Operation.R)

    # --- CFds: aggressor operations flip a quiescent victim ------------
    for victim_value in (0, 1):
        for agg_name, agg_op in (("w0", w[0]), ("w1", w[1]),
                                 ("r", read)):
            state = runner.idle_state(0.0)
            # establish the victim value through its own port
            _, state = runner.run_op(w[victim_value], state)
            _, state = runner.run_op(w[victim_value], state)
            if not _victim_holds(runner, state, victim_value):
                continue   # single-cell fault dominates; not coupling
            for _ in range(n_aggressor_ops):
                _, state = runner.run_op(agg_op, state,
                                         cell=aggressor_cell)
            if not _victim_holds(runner, state, victim_value):
                report.faults.append(CouplingFault(
                    CouplingKind.CFDS, agg_name, victim_value,
                    aggressor_cell, victim,
                    evidence=(f"{n_aggressor_ops}x {agg_name} at the "
                              f"aggressor flips the stored "
                              f"{victim_value}")))

    # --- CFst: victim read depends on the aggressor's state ------------
    for victim_value in (0, 1):
        outcomes = {}
        for agg_value in (0, 1):
            state = runner.idle_state(0.0)
            _, state = runner.run_op(w[agg_value], state,
                                     cell=aggressor_cell)
            _, state = runner.run_op(w[victim_value], state)
            _, state = runner.run_op(w[victim_value], state)
            result, state = runner.run_op(read, state)
            outcomes[agg_value] = result.sensed
        if outcomes[0] != outcomes[1]:
            bad_state = 0 if outcomes[0] != victim_value else 1
            report.faults.append(CouplingFault(
                CouplingKind.CFST, f"state={bad_state}", victim_value,
                aggressor_cell, victim,
                evidence=(f"read of {victim_value} returns "
                          f"{outcomes[bad_state]} only while the "
                          f"aggressor holds {bad_state}")))
    return report
