"""Threshold and settlement curves over the defect resistance.

Two curve families drive the whole methodology:

* ``Vsa(Rop)`` — the sense-amplifier threshold: the cell voltage above
  which a single read returns 1.  Estimated by bisection on the initial
  cell voltage.  For strong opens the read returns 1 for *every* cell
  voltage (the paper's stored-0-read-as-1 behaviour); the curve records
  ``None`` there.
* settlement curves — the cell voltage after each of ``n`` successive
  same-value writes, starting from the opposite rail; the ``(1) w0``
  member of this family intersected with ``Vsa`` defines the border
  resistance.

Both sweeps run through :func:`repro.engine.batch_run`: the whole
resistance grid is one batch (settlement), and the per-resistance
bisections advance in lock-step so each bisection iteration is one batch
of independent read probes (``Vsa``).  On an engine-backed model the
batches are deduplicated, memoized and optionally spread over worker
processes; on a plain model they replay the classic per-point loop and
produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.interface import ColumnModel, stored_level
from repro.dram.ops import Op, Operation, format_ops
from repro.engine.failures import is_failed
from repro.engine.model import BatchItem, batch_run


def sense_threshold(model: ColumnModel, *, lo: float = 0.0,
                    hi: float | None = None, tol: float = 0.01,
                    background: int = 0) -> float | None:
    """Bisect the cell voltage where a single read flips from 0 to 1.

    Returns ``None`` when the read returns the same value across the whole
    ``[lo, hi]`` range (no threshold — e.g. a very strong open always
    reads 1).
    """
    if hi is None:
        hi = model.stress.vdd
    on_true = getattr(model, "target_on_true", True)

    def read_bit(vc: float) -> int:
        """Sensed *physical* state for an initial cell voltage."""
        seq = model.run_sequence("r", init_vc=vc, background=background)
        out = seq.outputs[0]
        return out if on_true else 1 - out

    bit_lo = read_bit(lo)
    bit_hi = read_bit(hi)
    if bit_lo == bit_hi:
        return None
    # Reads are monotone in the stored voltage: low -> 0, high -> 1.
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if read_bit(mid) == 1:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


@dataclass
class VsaCurve:
    """``Vsa`` sampled over a resistance grid (``None`` = always reads 1).

    Under fault isolation a grid point whose probes failed is a *hole*:
    its threshold is ``None`` **and** its index appears in ``failed`` —
    distinguishing "no threshold exists" (strong open) from "could not
    be measured".  ``n_failed`` counts every failed probe, including
    mid-bisection failures that merely degraded accuracy.
    """

    resistances: list[float]
    thresholds: list[float | None]
    failed: tuple[int, ...] = ()
    n_failed: int = 0

    def is_hole(self, i: int) -> bool:
        """True when grid point ``i`` could not be measured."""
        return i in self.failed

    def at(self, resistance: float) -> float | None:
        """Log-linear interpolation of the threshold (None near gaps)."""
        import math
        rs, vs = self.resistances, self.thresholds
        if resistance <= rs[0]:
            return vs[0]
        if resistance >= rs[-1]:
            return vs[-1]
        for i in range(len(rs) - 1):
            if rs[i] <= resistance <= rs[i + 1]:
                if vs[i] is None or vs[i + 1] is None:
                    return None
                frac = (math.log(resistance / rs[i])
                        / math.log(rs[i + 1] / rs[i]))
                return vs[i] + frac * (vs[i + 1] - vs[i])
        return None


def vsa_curve(model: ColumnModel, resistances: Sequence[float], *,
              tol: float = 0.01, on_error: str | None = None) -> VsaCurve:
    """Sample ``Vsa`` over ``resistances`` (paper Fig. 2c bold curve).

    All resistances bisect in lock-step: each iteration issues one batch
    of single-read probes (one per still-active resistance), so the grid
    parallelises even though each bisection is sequential in itself.
    The probe schedule per resistance is identical to calling
    :func:`sense_threshold` point by point.

    Under fault isolation (``on_error="isolate"``, or an engine default
    of the same) failed probes degrade instead of crashing the sweep: a
    failed *endpoint* probe turns the grid point into a hole (recorded
    in ``failed``), a failed *mid-bisection* probe freezes that point's
    bracket and reports its midpoint at reduced accuracy.
    """
    resistances = list(resistances)
    on_true = getattr(model, "target_on_true", True)
    vdd = model.stress.vdd
    n_failed = 0

    def read_bits(points: list[tuple[float, float]]
                  ) -> list[int | None]:
        """Sensed physical bits per (resistance, Vc) probe (None=failed)."""
        nonlocal n_failed
        items = [BatchItem(ops="r", init_vc=vc, resistance=r)
                 for r, vc in points]
        results = batch_run(model, items, on_error=on_error)
        bits: list[int | None] = []
        for seq in results:
            if is_failed(seq):
                n_failed += 1
                bits.append(None)
            else:
                bits.append(seq.outputs[0] if on_true
                            else 1 - seq.outputs[0])
        return bits

    bits_lo = read_bits([(r, 0.0) for r in resistances])
    bits_hi = read_bits([(r, vdd) for r in resistances])

    thresholds: list[float | None] = [None] * len(resistances)
    holes: set[int] = set()
    bounds = {}
    for i, (blo, bhi) in enumerate(zip(bits_lo, bits_hi)):
        if blo is None or bhi is None:
            holes.add(i)
            continue
        if blo == bhi:
            continue
        if vdd - 0.0 > tol:
            bounds[i] = (0.0, vdd)
        else:
            thresholds[i] = 0.5 * vdd
    # Reads are monotone in the stored voltage: low -> 0, high -> 1.
    while bounds:
        active = sorted(bounds)
        mids = {i: 0.5 * (bounds[i][0] + bounds[i][1]) for i in active}
        bits = read_bits([(resistances[i], mids[i]) for i in active])
        for i, bit in zip(active, bits):
            lo, hi = bounds[i]
            if bit is None:
                # Failed probe: keep the bracket we have and report its
                # midpoint — degraded accuracy beats a dead sweep.
                del bounds[i]
                thresholds[i] = 0.5 * (lo + hi)
                continue
            if bit == 1:
                hi = mids[i]
            else:
                lo = mids[i]
            if hi - lo > tol:
                bounds[i] = (lo, hi)
            else:
                del bounds[i]
                thresholds[i] = 0.5 * (lo + hi)
    return VsaCurve(resistances, thresholds,
                    failed=tuple(sorted(holes)), n_failed=n_failed)


@dataclass
class SettleCurve:
    """Cell voltage after each of ``n`` successive writes, per resistance.

    ``levels[i][k]`` is the voltage after the ``k+1``-th write at
    ``resistances[i]``.  Under fault isolation a failed grid point's row
    is ``None`` (a hole); ``n_failed`` counts them.
    """

    value: int                       # the written logical value
    resistances: list[float]
    levels: list[list[float] | None]

    @property
    def n_failed(self) -> int:
        """Grid points that produced no result (holes)."""
        return sum(1 for row in self.levels if row is None)

    def after(self, n_writes: int) -> list[float | None]:
        """The ``(n) w`` curve: voltage after the n-th write, over R.

        Holes propagate as ``None`` entries.
        """
        return [None if row is None else row[n_writes - 1]
                for row in self.levels]


def settle_curve(model: ColumnModel, value: int,
                 resistances: Sequence[float], *, n_ops: int = 2,
                 from_full: bool = True,
                 on_error: str | None = None) -> SettleCurve:
    """Successive-write settlement (paper Fig. 2a/2b curve families).

    Writes ``value`` ``n_ops`` times starting from the opposite rail
    (``from_full=True``, the paper's initialisation) or from the
    written-value rail.  The whole resistance grid executes as one
    engine batch; under fault isolation failed points come back as
    ``None`` rows (holes) instead of aborting the sweep.
    """
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    init = stored_level(model, 1 - value if from_full else value)
    op = Op(Operation.W0 if value == 0 else Operation.W1)
    ops = format_ops([op] * n_ops)
    items = [BatchItem(ops=ops, init_vc=init, resistance=r)
             for r in resistances]
    levels = [None if is_failed(seq) else seq.vc_after
              for seq in batch_run(model, items, on_error=on_error)]
    return SettleCurve(value, list(resistances), levels)
