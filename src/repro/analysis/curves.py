"""Threshold and settlement curves over the defect resistance.

Two curve families drive the whole methodology:

* ``Vsa(Rop)`` — the sense-amplifier threshold: the cell voltage above
  which a single read returns 1.  Estimated by bisection on the initial
  cell voltage.  For strong opens the read returns 1 for *every* cell
  voltage (the paper's stored-0-read-as-1 behaviour); the curve records
  ``None`` there.
* settlement curves — the cell voltage after each of ``n`` successive
  same-value writes, starting from the opposite rail; the ``(1) w0``
  member of this family intersected with ``Vsa`` defines the border
  resistance.

Both sweeps run through :func:`repro.engine.batch_run`: the whole
resistance grid is one batch (settlement), and the per-resistance
bisections advance in lock-step so each bisection iteration is one batch
of independent read probes (``Vsa``).  On an engine-backed model the
batches are deduplicated, memoized and optionally spread over worker
processes; on a plain model they replay the classic per-point loop and
produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.interface import ColumnModel, stored_level
from repro.dram.ops import Op, Operation, format_ops
from repro.engine.failures import is_failed
from repro.engine.model import BatchItem, batch_run
from repro.profiling import profiler


def sense_threshold(model: ColumnModel, *, lo: float = 0.0,
                    hi: float | None = None, tol: float = 0.01,
                    background: int = 0) -> float | None:
    """Bisect the cell voltage where a single read flips from 0 to 1.

    Returns ``None`` when the read returns the same value across the whole
    ``[lo, hi]`` range (no threshold — e.g. a very strong open always
    reads 1).
    """
    if hi is None:
        hi = model.stress.vdd
    on_true = getattr(model, "target_on_true", True)

    def read_bit(vc: float) -> int:
        """Sensed *physical* state for an initial cell voltage."""
        seq = model.run_sequence("r", init_vc=vc, background=background)
        out = seq.outputs[0]
        return out if on_true else 1 - out

    bit_lo = read_bit(lo)
    bit_hi = read_bit(hi)
    if bit_lo == bit_hi:
        return None
    # Reads are monotone in the stored voltage: low -> 0, high -> 1.
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if read_bit(mid) == 1:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


@dataclass
class VsaCurve:
    """``Vsa`` sampled over a resistance grid (``None`` = always reads 1).

    Under fault isolation a grid point whose probes failed is a *hole*:
    its threshold is ``None`` **and** its index appears in ``failed`` —
    distinguishing "no threshold exists" (strong open) from "could not
    be measured".  ``n_failed`` counts every failed probe, including
    mid-bisection failures that merely degraded accuracy.
    """

    resistances: list[float]
    thresholds: list[float | None]
    failed: tuple[int, ...] = ()
    n_failed: int = 0

    def is_hole(self, i: int) -> bool:
        """True when grid point ``i`` could not be measured."""
        return i % len(self.resistances) in self.failed

    def at(self, resistance: float) -> float | None:
        """Log-linear interpolation of the threshold (None near gaps).

        A degraded-sweep hole carries no information: queries that would
        clamp to a hole endpoint or interpolate against a hole neighbour
        return ``None`` rather than extrapolate.  Exact grid hits read
        the sample directly, so a valid point next to a hole stays
        queryable.
        """
        import math
        rs, vs = self.resistances, self.thresholds
        for i, r in enumerate(rs):
            if resistance == r:
                return None if self.is_hole(i) else vs[i]
        if resistance <= rs[0]:
            return None if self.is_hole(0) else vs[0]
        if resistance >= rs[-1]:
            return None if self.is_hole(len(rs) - 1) else vs[-1]
        for i in range(len(rs) - 1):
            if rs[i] < resistance < rs[i + 1]:
                if (self.is_hole(i) or self.is_hole(i + 1)
                        or vs[i] is None or vs[i + 1] is None):
                    return None
                frac = (math.log(resistance / rs[i])
                        / math.log(rs[i + 1] / rs[i]))
                return vs[i] + frac * (vs[i + 1] - vs[i])
        return None


def vsa_curve(model: ColumnModel, resistances: Sequence[float], *,
              tol: float = 0.01, on_error: str | None = None) -> VsaCurve:
    """Sample ``Vsa`` over ``resistances`` (paper Fig. 2c bold curve).

    All resistances bisect in lock-step: each iteration issues one batch
    of single-read probes (one per still-active resistance), so the grid
    parallelises even though each bisection is sequential in itself.
    The probe schedule per resistance is identical to calling
    :func:`sense_threshold` point by point.

    Under fault isolation (``on_error="isolate"``, or an engine default
    of the same) failed probes degrade instead of crashing the sweep: a
    failed *endpoint* probe turns the grid point into a hole (recorded
    in ``failed``), a failed *mid-bisection* probe freezes that point's
    bracket and reports its midpoint at reduced accuracy.
    """
    with profiler.section("sweep.vsa"):
        return _vsa_curve(model, resistances, tol=tol, on_error=on_error)


def _vsa_curve(model: ColumnModel, resistances: Sequence[float], *,
               tol: float, on_error: str | None) -> VsaCurve:
    resistances = list(resistances)
    on_true = getattr(model, "target_on_true", True)
    vdd = model.stress.vdd
    n_failed = 0

    def read_bits(points: list[tuple[float, float]]
                  ) -> list[int | None]:
        """Sensed physical bits per (resistance, Vc) probe (None=failed)."""
        nonlocal n_failed
        items = [BatchItem(ops="r", init_vc=vc, resistance=r)
                 for r, vc in points]
        results = batch_run(model, items, on_error=on_error)
        bits: list[int | None] = []
        for seq in results:
            if is_failed(seq):
                n_failed += 1
                bits.append(None)
            else:
                bits.append(seq.outputs[0] if on_true
                            else 1 - seq.outputs[0])
        return bits

    bits_lo = read_bits([(r, 0.0) for r in resistances])
    bits_hi = read_bits([(r, vdd) for r in resistances])

    thresholds: list[float | None] = [None] * len(resistances)
    holes: set[int] = set()
    bounds = {}
    for i, (blo, bhi) in enumerate(zip(bits_lo, bits_hi)):
        if blo is None or bhi is None:
            holes.add(i)
            continue
        if blo == bhi:
            continue
        if vdd - 0.0 > tol:
            bounds[i] = (0.0, vdd)
        else:
            thresholds[i] = 0.5 * vdd
    # Reads are monotone in the stored voltage: low -> 0, high -> 1.
    while bounds:
        active = sorted(bounds)
        mids = {i: 0.5 * (bounds[i][0] + bounds[i][1]) for i in active}
        bits = read_bits([(resistances[i], mids[i]) for i in active])
        for i, bit in zip(active, bits):
            lo, hi = bounds[i]
            if bit is None:
                # Failed probe: keep the bracket we have and report its
                # midpoint — degraded accuracy beats a dead sweep.
                del bounds[i]
                thresholds[i] = 0.5 * (lo + hi)
                continue
            if bit == 1:
                hi = mids[i]
            else:
                lo = mids[i]
            if hi - lo > tol:
                bounds[i] = (lo, hi)
            else:
                del bounds[i]
                thresholds[i] = 0.5 * (lo + hi)
    return VsaCurve(resistances, thresholds,
                    failed=tuple(sorted(holes)), n_failed=n_failed)


@dataclass
class SettleCurve:
    """Cell voltage after each of ``n`` successive writes, per resistance.

    ``levels[i][k]`` is the voltage after the ``k+1``-th write at
    ``resistances[i]``.  Under fault isolation a failed grid point's row
    is ``None`` (a hole); ``n_failed`` counts them.
    """

    value: int                       # the written logical value
    resistances: list[float]
    levels: list[list[float] | None]

    @property
    def n_failed(self) -> int:
        """Grid points that produced no result (holes)."""
        return sum(1 for row in self.levels if row is None)

    def after(self, n_writes: int) -> list[float | None]:
        """The ``(n) w`` curve: voltage after the n-th write, over R.

        Holes propagate as ``None`` entries.  ``n_writes`` counts from 1
        (the paper's ``(1) w0`` curve); a non-positive count would
        silently wrap to the *last* write through negative indexing, so
        it is rejected instead.
        """
        if n_writes < 1:
            raise ValueError(f"n_writes counts from 1, got {n_writes}")
        return [None if row is None else row[n_writes - 1]
                for row in self.levels]


def settle_curve(model: ColumnModel, value: int,
                 resistances: Sequence[float], *, n_ops: int = 2,
                 from_full: bool = True,
                 on_error: str | None = None) -> SettleCurve:
    """Successive-write settlement (paper Fig. 2a/2b curve families).

    Writes ``value`` ``n_ops`` times starting from the opposite rail
    (``from_full=True``, the paper's initialisation) or from the
    written-value rail.  The whole resistance grid executes as one
    engine batch; under fault isolation failed points come back as
    ``None`` rows (holes) instead of aborting the sweep.
    """
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    with profiler.section("sweep.settle"):
        init = stored_level(model, 1 - value if from_full else value)
        op = Op(Operation.W0 if value == 0 else Operation.W1)
        ops = format_ops([op] * n_ops)
        items = [BatchItem(ops=ops, init_vc=init, resistance=r)
                 for r in resistances]
        levels = [None if is_failed(seq) else seq.vc_after
                  for seq in batch_run(model, items, on_error=on_error)]
        return SettleCurve(value, list(resistances), levels)


# ----------------------------------------------------------------------
# adaptive border-crossing search
# ----------------------------------------------------------------------

#: Sentinel margin of a grid point that could not be measured (hole).
_HOLE = object()


@dataclass
class BorderScan:
    """Outcome of :func:`border_crossing_scan`.

    ``border`` is the first-``w0``-settle × ``Vsa`` crossing resistance
    (``None`` when the curves do not cross in the grid); ``probed``
    lists the grid indices whose margin was actually simulated, in
    probe order — the dense sweep would have evaluated every index, so
    ``len(probed)`` against ``len(resistances)`` is the saving.
    """

    resistances: list[float]
    border: float | None
    probed: list[int]

    @property
    def n_probed(self) -> int:
        return len(self.probed)


def border_crossing_scan(model: ColumnModel,
                         resistances: Sequence[float], *,
                         n_writes: int = 2, vsa_tol: float = 0.01,
                         coarse: int | None = None, dense: bool = False,
                         on_error: str | None = None,
                         prior: float | None = None) -> BorderScan:
    """Find the ``(1) w0`` settle × ``Vsa`` crossing with sparse probes.

    The BR of an open sits where the voltage a single ``w0`` leaves on
    the cell first exceeds the sense threshold
    (:meth:`~repro.analysis.planes.ResultPlanes.border_estimate`).  A
    dense plane sweep measures every grid point to locate that single
    crossing; this scan probes a coarse log-spaced lattice
    (``coarse`` points, default ``~sqrt(n)``) to bracket the first sign
    change of the margin ``w0_settle - Vsa``, then bisects grid
    *indices* inside the bracket — ``O(sqrt n + log n)`` probed points
    instead of ``n``, with the identical final interpolation between
    the same two adjacent grid points, so the reported BR matches the
    dense sweep wherever the margin is monotone (the paper's defects
    are).  Each probed point runs the same settle/``Vsa`` request
    schedule as the dense sweep, so probes share cache entries with any
    plane run.

    Points whose simulation fails under isolation are holes: the scan
    sidesteps them to the nearest measurable index inside the current
    bracket, mirroring the dense sweep's hole bridging.  ``dense=True``
    probes every index in order (the reference path for parity tests).

    ``prior`` is an optional border estimate (e.g. from the surrogate
    tier): the scan then starts at the grid index nearest the prior and
    gallops outward to bracket the margin's first sign change, skipping
    the coarse lattice entirely — under a monotone margin the bracketed
    pair is the same adjacent grid pair the lattice path converges to,
    so the interpolated BR is identical.  Holes encountered on the
    guided path abandon it for the standard lattice scan (margins are
    memoized, so guided probes are reused, never wasted).
    """
    with profiler.section("sweep.border_scan"):
        return _border_crossing_scan(model, resistances,
                                     n_writes=n_writes, vsa_tol=vsa_tol,
                                     coarse=coarse, dense=dense,
                                     on_error=on_error, prior=prior)


def _border_crossing_scan(model, resistances, *, n_writes, vsa_tol,
                          coarse, dense, on_error,
                          prior=None) -> BorderScan:
    import math

    from repro.analysis.planes import _interp_crossing

    rs = list(resistances)
    n = len(rs)
    if n < 2:
        raise ValueError("need at least 2 grid points")
    margins: dict[int, object] = {}
    probed: list[int] = []
    # Speculative batching: when the model's engine stacks lanes, probe
    # several grid indices per round — they differ only in resistance,
    # so their settle/Vsa requests batch into multi-lane transients.
    # With lanes off (the default) every probe stays a single request
    # and the scan behaves exactly as before.
    engine = getattr(model, "engine", None)
    speculate = (not dense and engine is not None
                 and getattr(engine, "effective_lanes", lambda: 0)() >= 2)

    def prefetch(idxs) -> None:
        """Measure several margins in one settle/Vsa batch."""
        todo = [i for i in dict.fromkeys(idxs) if i not in margins]
        if not todo:
            return
        probed.extend(todo)
        settle = settle_curve(model, 0, [rs[i] for i in todo],
                              n_ops=n_writes, on_error=on_error)
        w0s = settle.after(1)
        vsa = _vsa_curve(model, [rs[i] for i in todo], tol=vsa_tol,
                         on_error=on_error)
        for j, i in enumerate(todo):
            if w0s[j] is None or vsa.is_hole(j):
                m: object = _HOLE
            elif vsa.thresholds[j] is None:
                m = 1.0
            else:
                m = w0s[j] - vsa.thresholds[j]
            margins[i] = m

    def margin(i: int):
        """Memoized margin at grid index ``i`` (``_HOLE`` = no data).

        ``Vsa``-less points (strong opens: every read returns 1) count
        as crossings with the dense sweep's sentinel margin of +1.0.
        """
        if i in margins:
            return margins[i]
        probed.append(i)
        settle = settle_curve(model, 0, [rs[i]], n_ops=n_writes,
                              on_error=on_error)
        w0 = settle.after(1)[0]
        vsa = _vsa_curve(model, [rs[i]], tol=vsa_tol, on_error=on_error)
        if w0 is None or vsa.is_hole(0):
            m: object = _HOLE
        elif vsa.thresholds[0] is None:
            m = 1.0
        else:
            m = w0 - vsa.thresholds[0]
        margins[i] = m
        return m

    if (prior is not None and not dense
            and all(x < y for x, y in zip(rs, rs[1:]))):
        bracket = _prior_crossing_bracket(rs, margin, prior)
        if bracket is not None:
            prev, hit = bracket
            if hit is None:
                return BorderScan(rs, None, probed)
            if prev is None:
                return BorderScan(rs, rs[hit], probed)
            return BorderScan(
                rs, _interp_crossing(rs[prev], margins[prev], rs[hit],
                                     margins[hit]),
                probed)
        # A hole interrupted the guided walk: fall through to the
        # lattice scan, which reuses every memoized margin.

    if dense:
        # The reference path measures the whole grid up front, exactly
        # like a full settle/Vsa curve sweep, then scans for the
        # crossing — its probe count is the dense baseline the adaptive
        # mode is judged against.
        lattice = list(range(n))
        for i in lattice:
            margin(i)
    else:
        k = coarse if coarse is not None else max(2, math.isqrt(n - 1) + 1)
        k = max(2, min(k, n))
        lattice = sorted({round(j * (n - 1) / (k - 1)) for j in range(k)})

    if speculate:
        # One multi-lane batch for the whole coarse lattice: the early
        # break below saves serial probes, but with lanes the lattice
        # costs barely more than its most stubborn point.
        prefetch(lattice)

    prev = None   # last measurable lattice index below the crossing
    hit = None    # first lattice index at/above the crossing
    for i in lattice:
        m = margin(i)
        if m is _HOLE:
            continue
        if m >= 0.0:
            hit = i
            break
        prev = i
    if hit is None:
        return BorderScan(rs, None, probed)

    if not dense:
        # Bisect grid indices inside the bracket; holes displace the
        # midpoint to the nearest measurable index still inside.
        a = prev if prev is not None else -1
        b = hit
        while b - a > 1:
            mid = (a + b) // 2
            if speculate and mid not in margins:
                # Prefetch the midpoint plus both children midpoints
                # (the next level either way the comparison goes) as
                # lanes of one batch.
                kids = [mid]
                if mid - a > 1:
                    kids.append((a + mid) // 2)
                if b - mid > 1:
                    kids.append((mid + b) // 2)
                prefetch(kids)
            m = margin(mid)
            if m is _HOLE:
                m = None
                for step in range(1, b - a):
                    for cand in (mid + step, mid - step):
                        if a < cand < b and margin(cand) is not _HOLE:
                            mid, m = cand, margin(cand)
                            break
                    if m is not None:
                        break
                if m is None:
                    break   # the whole bracket interior is holes
            if m >= 0.0:
                b = mid
            else:
                a = mid
                prev = mid
        hit = b

    m_hit = margins[hit]
    if prev is None:
        return BorderScan(rs, rs[hit], probed)
    return BorderScan(
        rs, _interp_crossing(rs[prev], margins[prev], rs[hit], m_hit),
        probed)


def _prior_crossing_bracket(rs, margin, prior):
    """Bracket the margin's sign change starting from a prior estimate.

    Probes the grid index nearest ``prior``, gallops (doubling steps)
    toward the crossing until a negative/non-negative pair brackets it,
    then bisects indices to adjacency.  Returns ``(prev, hit)`` —
    ``hit is None`` means no crossing anywhere, ``prev is None`` means
    the crossing sits at the very first grid point — or ``None`` when a
    hole interrupts the walk (caller falls back to the lattice scan).
    Under a monotone margin the result is exactly the lattice scan's.
    """
    import bisect as _bisect

    n = len(rs)
    j = min(max(_bisect.bisect_left(rs, prior), 0), n - 1)
    m = margin(j)
    if m is _HOLE:
        return None
    if m >= 0.0:
        # Crossing at or below j: gallop down for a negative margin.
        b, a = j, None
        step, i = 1, j - 1
        while i >= 0:
            m = margin(i)
            if m is _HOLE:
                return None
            if m < 0.0:
                a = i
                break
            b = i
            i -= step
            step *= 2
        if a is None:
            if b != 0:
                m0 = margin(0)
                if m0 is _HOLE:
                    return None
                if m0 >= 0.0:
                    return (None, 0)
                a = 0
            else:
                return (None, 0)
    else:
        # Crossing above j: gallop up for a non-negative margin.
        a, b = j, None
        step, i = 1, j + 1
        while i <= n - 1:
            m = margin(i)
            if m is _HOLE:
                return None
            if m >= 0.0:
                b = i
                break
            a = i
            i += step
            step *= 2
        if b is None:
            if a != n - 1:
                mn = margin(n - 1)
                if mn is _HOLE:
                    return None
                if mn < 0.0:
                    return (None, None)
                b = n - 1
            else:
                return (None, None)
    while b - a > 1:
        mid = (a + b) // 2
        m = margin(mid)
        if m is _HOLE:
            return None
        if m >= 0.0:
            b = mid
        else:
            a = mid
    return (a, b)
