"""Threshold and settlement curves over the defect resistance.

Two curve families drive the whole methodology:

* ``Vsa(Rop)`` — the sense-amplifier threshold: the cell voltage above
  which a single read returns 1.  Estimated by bisection on the initial
  cell voltage.  For strong opens the read returns 1 for *every* cell
  voltage (the paper's stored-0-read-as-1 behaviour); the curve records
  ``None`` there.
* settlement curves — the cell voltage after each of ``n`` successive
  same-value writes, starting from the opposite rail; the ``(1) w0``
  member of this family intersected with ``Vsa`` defines the border
  resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.interface import ColumnModel, stored_level
from repro.dram.ops import Op, Operation


def sense_threshold(model: ColumnModel, *, lo: float = 0.0,
                    hi: float | None = None, tol: float = 0.01,
                    background: int = 0) -> float | None:
    """Bisect the cell voltage where a single read flips from 0 to 1.

    Returns ``None`` when the read returns the same value across the whole
    ``[lo, hi]`` range (no threshold — e.g. a very strong open always
    reads 1).
    """
    if hi is None:
        hi = model.stress.vdd
    on_true = getattr(model, "target_on_true", True)

    def read_bit(vc: float) -> int:
        """Sensed *physical* state for an initial cell voltage."""
        seq = model.run_sequence("r", init_vc=vc, background=background)
        out = seq.outputs[0]
        return out if on_true else 1 - out

    bit_lo = read_bit(lo)
    bit_hi = read_bit(hi)
    if bit_lo == bit_hi:
        return None
    # Reads are monotone in the stored voltage: low -> 0, high -> 1.
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if read_bit(mid) == 1:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


@dataclass
class VsaCurve:
    """``Vsa`` sampled over a resistance grid (``None`` = always reads 1)."""

    resistances: list[float]
    thresholds: list[float | None]

    def at(self, resistance: float) -> float | None:
        """Log-linear interpolation of the threshold (None near gaps)."""
        import math
        rs, vs = self.resistances, self.thresholds
        if resistance <= rs[0]:
            return vs[0]
        if resistance >= rs[-1]:
            return vs[-1]
        for i in range(len(rs) - 1):
            if rs[i] <= resistance <= rs[i + 1]:
                if vs[i] is None or vs[i + 1] is None:
                    return None
                frac = (math.log(resistance / rs[i])
                        / math.log(rs[i + 1] / rs[i]))
                return vs[i] + frac * (vs[i + 1] - vs[i])
        return None


def vsa_curve(model: ColumnModel, resistances: Sequence[float], *,
              tol: float = 0.01) -> VsaCurve:
    """Sample ``Vsa`` over ``resistances`` (paper Fig. 2c bold curve)."""
    thresholds = []
    for r in resistances:
        model.set_defect_resistance(r)
        thresholds.append(sense_threshold(model, tol=tol))
    return VsaCurve(list(resistances), thresholds)


@dataclass
class SettleCurve:
    """Cell voltage after each of ``n`` successive writes, per resistance.

    ``levels[i][k]`` is the voltage after the ``k+1``-th write at
    ``resistances[i]``.
    """

    value: int                       # the written logical value
    resistances: list[float]
    levels: list[list[float]]

    def after(self, n_writes: int) -> list[float]:
        """The ``(n) w`` curve: voltage after the n-th write, over R."""
        return [row[n_writes - 1] for row in self.levels]


def settle_curve(model: ColumnModel, value: int,
                 resistances: Sequence[float], *, n_ops: int = 2,
                 from_full: bool = True) -> SettleCurve:
    """Successive-write settlement (paper Fig. 2a/2b curve families).

    Writes ``value`` ``n_ops`` times starting from the opposite rail
    (``from_full=True``, the paper's initialisation) or from the
    written-value rail.
    """
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    init = stored_level(model, 1 - value if from_full else value)
    op = Op(Operation.W0 if value == 0 else Operation.W1)
    levels = []
    for r in resistances:
        model.set_defect_resistance(r)
        seq = model.run_sequence([op] * n_ops, init_vc=init)
        levels.append(seq.vc_after)
    return SettleCurve(value, list(resistances), levels)
