"""Result planes — the paper's Fig. 2 / Fig. 6 representation.

Three planes are generated per (defect, stress combination):

* ``w0`` plane — cell voltage after each of ``n`` successive ``w0``
  operations starting from the high rail, over the resistance grid;
* ``w1`` plane — dual, starting from GND;
* ``r`` plane — the ``Vsa(Rop)`` threshold curve plus read-sequence traces
  seeded slightly below and slightly above the threshold (the paper uses
  ±0.2 V).

The planes expose the two curves whose intersection defines the border
resistance: the first-``w0`` settlement curve and ``Vsa``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.curves import SettleCurve, VsaCurve, settle_curve, vsa_curve
from repro.analysis.interface import ColumnModel
from repro.dram.ops import Op, Operation, format_ops
from repro.engine.failures import is_failed
from repro.engine.model import BatchItem, batch_run
from repro.profiling import profiler


def log_grid(lo: float, hi: float, points: int) -> list[float]:
    """A logarithmic resistance grid."""
    if lo <= 0 or hi <= lo or points < 2:
        raise ValueError("require 0 < lo < hi and points >= 2")
    ratio = (hi / lo) ** (1.0 / (points - 1))
    return [lo * ratio ** i for i in range(points)]


@dataclass
class WritePlane:
    """One write plane: successive-write settlement plus the midpoint."""

    settle: SettleCurve
    vmp: float   # the stored-0/1 midpoint voltage (Vdd/2 convention)

    @property
    def resistances(self) -> list[float]:
        return self.settle.resistances

    @property
    def n_failed(self) -> int:
        """Grid points that produced no result (holes)."""
        return self.settle.n_failed

    def curve(self, n: int) -> list[float | None]:
        """The ``(n) w`` curve of the plane (``None`` entries = holes)."""
        return self.settle.after(n)


@dataclass
class ReadPlane:
    """The read plane: ``Vsa`` plus read traces seeded around it.

    ``traces`` maps a seed label (``"below"``/``"above"``) to, per
    resistance, the list of cell voltages after each successive read.
    A ``None`` entry means ``Vsa`` does not exist at that resistance.
    """

    vsa: VsaCurve
    seed_offset: float
    n_reads: int
    traces: dict[str, list[list[float] | None]] = field(default_factory=dict)
    sensed: dict[str, list[list[int] | None]] = field(default_factory=dict)
    n_failed_traces: int = 0

    @property
    def n_failed(self) -> int:
        """Failed probes in this plane (Vsa probes + read traces)."""
        return self.vsa.n_failed + self.n_failed_traces


@dataclass
class ResultPlanes:
    """All three planes for one (defect, SC) — the paper's Fig. 2/6."""

    resistances: list[float]
    w0: WritePlane
    w1: WritePlane
    r: ReadPlane

    @property
    def n_failed(self) -> int:
        """Total failed probes across the three planes (sweep holes)."""
        return self.w0.n_failed + self.w1.n_failed + self.r.n_failed

    def border_estimate(self) -> float | None:
        """BR estimate: first crossing of the ``(1) w0`` curve over ``Vsa``.

        Scans the grid for the first resistance where the voltage left by
        a single ``w0`` (from a fully-charged cell) exceeds the sense
        threshold — i.e. where the written 0 is read back as 1.  Log
        interpolation refines between grid points.  Returns ``None`` when
        the curves do not cross in the grid (no border in range).  Grid
        points lost to simulation failures (holes) are bridged: the scan
        interpolates across them from the neighbouring valid points.
        """
        w0_curve = self.w0.curve(1)
        vsa = self.r.vsa.thresholds
        rs = self.resistances
        prev_r: float | None = None
        prev_margin = None
        for i, r in enumerate(rs):
            # A hole (failed probe) carries no information: bridge it.
            if w0_curve[i] is None or self.r.vsa.is_hole(i):
                continue
            # Beyond the end of the Vsa curve every read returns 1: any
            # stored 0 is faulty there.
            margin = (None if vsa[i] is None
                      else w0_curve[i] - vsa[i])
            if vsa[i] is None:
                return rs[i] if prev_margin is None else \
                    _interp_crossing(prev_r, prev_margin, rs[i], 1.0)
            if margin >= 0:
                if prev_margin is None:
                    return r
                return _interp_crossing(prev_r, prev_margin, r, margin)
            prev_r, prev_margin = r, margin
        return None


def _interp_crossing(r0: float, m0: float, r1: float, m1: float) -> float:
    """Log-interpolate the resistance where the margin crosses zero."""
    if m1 == m0:
        return r1
    frac = -m0 / (m1 - m0)
    frac = min(max(frac, 0.0), 1.0)
    return r0 * (r1 / r0) ** frac


def result_planes(model: ColumnModel, resistances: Sequence[float], *,
                  n_writes: int = 2, n_reads: int = 3,
                  seed_offset: float = 0.2,
                  vsa_tol: float = 0.01,
                  on_error: str | None = None) -> ResultPlanes:
    """Generate the three result planes over a resistance grid.

    Follows the paper's recipe: write planes start from the opposite rail;
    the read plane establishes ``Vsa`` first, then applies ``n_reads``
    successive reads from ``Vsa - seed_offset`` and ``Vsa + seed_offset``.

    The three sweeps are expressed as engine batches: each write plane is
    one batched ``map`` over the resistance grid, ``Vsa`` bisections run
    in lock-step (see :func:`repro.analysis.curves.vsa_curve`), and the
    seeded read traces of both labels form one final batch.

    Under fault isolation (``on_error="isolate"``, or an engine default
    of the same) non-convergent grid points become holes instead of
    aborting the study; ``ResultPlanes.n_failed`` reports how many.
    """
    resistances = list(resistances)
    vdd = model.stress.vdd
    vmp = 0.5 * vdd

    w0 = WritePlane(settle_curve(model, 0, resistances, n_ops=n_writes,
                                 on_error=on_error), vmp)
    w1 = WritePlane(settle_curve(model, 1, resistances, n_ops=n_writes,
                                 on_error=on_error), vmp)

    vsa = vsa_curve(model, resistances, tol=vsa_tol, on_error=on_error)
    read_ops = format_ops([Op(Operation.R)] * n_reads)
    points: list[tuple[str, BatchItem]] = []
    for r, threshold in zip(resistances, vsa.thresholds):
        if threshold is None:
            continue
        for label, sign in (("below", -1.0), ("above", 1.0)):
            seed = min(max(threshold + sign * seed_offset, 0.0), vdd)
            points.append((label, BatchItem(ops=read_ops, init_vc=seed,
                                            resistance=r)))
    with profiler.section("sweep.traces"):
        runs = iter(batch_run(model, [item for _, item in points],
                              on_error=on_error))

    n_failed_traces = 0
    traces: dict[str, list[list[float] | None]] = {"below": [], "above": []}
    sensed: dict[str, list[list[int] | None]] = {"below": [], "above": []}
    for threshold in vsa.thresholds:
        for label in ("below", "above"):
            if threshold is None:
                traces[label].append(None)
                sensed[label].append(None)
                continue
            seq = next(runs)
            if is_failed(seq):
                n_failed_traces += 1
                traces[label].append(None)
                sensed[label].append(None)
                continue
            traces[label].append(seq.vc_after)
            sensed[label].append([s for s in seq.outputs])

    read_plane = ReadPlane(vsa=vsa, seed_offset=seed_offset,
                           n_reads=n_reads, traces=traces, sensed=sensed,
                           n_failed_traces=n_failed_traces)
    return ResultPlanes(resistances=resistances, w0=w0, w1=w1, r=read_plane)
