"""Fault analysis: result planes, sense thresholds, border resistance.

Implements Section 3 of the paper on top of any column model (electrical
or behavioral):

* :mod:`repro.analysis.interface` — the :class:`ColumnModel` protocol and
  the electrical-model factory,
* :mod:`repro.analysis.curves` — ``Vsa(Rop)`` threshold curves and
  write-settlement curves,
* :mod:`repro.analysis.planes` — the three result planes of Fig. 2/6,
* :mod:`repro.analysis.border` — border-resistance (BR) identification,
* :mod:`repro.analysis.detection` — detection-condition derivation,
* :mod:`repro.analysis.faults` — functional fault-primitive classification.
"""

from repro.analysis.interface import ColumnModel, electrical_model
from repro.analysis.curves import (
    BorderScan,
    SettleCurve,
    VsaCurve,
    border_crossing_scan,
    sense_threshold,
    settle_curve,
    vsa_curve,
)
from repro.analysis.planes import ReadPlane, ResultPlanes, WritePlane, result_planes
from repro.analysis.border import BorderResult, border_resistance
from repro.analysis.detection import (
    DetectionCondition,
    derive_detection_condition,
)
from repro.analysis.faults import FaultPrimitive, classify_fault_primitives
from repro.analysis.dictionary import (
    FaultDictionary,
    build_fault_dictionary,
)
from repro.analysis.retention import RetentionResult, retention_cycles
from repro.analysis.coupling import (
    CouplingFault,
    CouplingKind,
    CouplingReport,
    classify_coupling,
)

__all__ = [
    "BorderResult",
    "BorderScan",
    "ColumnModel",
    "CouplingFault",
    "CouplingKind",
    "CouplingReport",
    "DetectionCondition",
    "FaultDictionary",
    "FaultPrimitive",
    "ReadPlane",
    "ResultPlanes",
    "RetentionResult",
    "SettleCurve",
    "VsaCurve",
    "WritePlane",
    "border_crossing_scan",
    "border_resistance",
    "build_fault_dictionary",
    "classify_coupling",
    "classify_fault_primitives",
    "derive_detection_condition",
    "electrical_model",
    "result_planes",
    "retention_cycles",
    "sense_threshold",
    "settle_curve",
    "vsa_curve",
]
