"""The column-model protocol shared by analysis and optimization.

Two implementations exist:

* the *electrical* model — :class:`repro.dram.runner.ColumnRunner` driving
  the SPICE-level column (ground truth, slower),
* the *behavioral* model — :class:`repro.behav.model.BehavioralColumn`
  (closed-form per-phase integration, ~100× faster; used for wide sweeps,
  Shmoo grids and march-test evaluation).

Analysis and optimization code accepts anything satisfying
:class:`ColumnModel`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.stress import NOMINAL_STRESS, StressConditions
from repro.defects.catalog import Defect
from repro.dram.ops import SequenceResult
from repro.dram.runner import ColumnRunner
from repro.dram.tech import TechnologyParams


@runtime_checkable
class ColumnModel(Protocol):
    """What analysis code needs from a column simulation."""

    stress: StressConditions
    tech: TechnologyParams

    def set_stress(self, stress: StressConditions) -> None: ...

    def set_defect_resistance(self, resistance: float) -> None: ...

    def run_sequence(self, ops, init_vc: float,
                     background: int = 0) -> SequenceResult: ...

    def idle_state(self, vc_target: float,
                   background: int = 0) -> dict: ...

    def run_op(self, op, state: dict) -> tuple: ...


class CycleCountingModel:
    """Transparent wrapper counting simulated operation cycles.

    Used by the methodology benchmarks to compare the *cost* of the
    paper's quick direction analysis against brute-force plane generation
    — the paper's efficiency claim in Sec. 4.
    """

    def __init__(self, inner: ColumnModel):
        self._inner = inner
        self.cycles = 0

    @property
    def stress(self) -> StressConditions:
        return self._inner.stress

    @property
    def tech(self):
        return self._inner.tech

    @property
    def target_on_true(self) -> bool:
        return getattr(self._inner, "target_on_true", True)

    @property
    def defect(self):
        return getattr(self._inner, "defect", None)

    def set_stress(self, stress: StressConditions) -> None:
        self._inner.set_stress(stress)

    def set_defect_resistance(self, resistance: float) -> None:
        self._inner.set_defect_resistance(resistance)

    def run_sequence(self, ops, init_vc: float, background: int = 0):
        result = self._inner.run_sequence(ops, init_vc=init_vc,
                                          background=background)
        self.cycles += len(result.results)
        return result

    def idle_state(self, vc_target: float, background: int = 0):
        return self._inner.idle_state(vc_target, background=background)

    def run_op(self, op, state):
        self.cycles += 1
        return self._inner.run_op(op, state)


def stored_level(model: ColumnModel, value: int,
                 stress: StressConditions | None = None) -> float:
    """Physical storage voltage encoding logical ``value`` on the target.

    Cells on the complementary bit line store inverted data (differential
    write convention), so logical 1 there is 0 V at the node.  ``stress``
    overrides the model's current stress combination — batched sweeps use
    it to derive per-point rails without mutating the model.
    """
    on_true = getattr(model, "target_on_true", True)
    stored = value if on_true else 1 - value
    vdd = (stress or model.stress).vdd
    return float(stored) * vdd


def opposite_rail_init(model: ColumnModel, ops,
                       stress: StressConditions | None = None) -> float:
    """Initial cell voltage opposing the first write of a sequence.

    The paper initialises the floating cell to the rail *opposite* the
    first written value so that write is maximally stressed.  Sequences
    starting with a read default to mid-rail.  ``stress`` overrides the
    model's stress as in :func:`stored_level`.
    """
    first = ops[0]
    if not first.operation.is_write:
        return 0.5 * (stress or model.stress).vdd
    return stored_level(model, 1 - first.operation.write_value, stress)


def electrical_model(defect: Defect | None = None,
                     stress: StressConditions = NOMINAL_STRESS,
                     tech: TechnologyParams | None = None,
                     record: bool = False) -> ColumnRunner:
    """Build the electrical (SPICE-level) column model for a defect."""
    site = defect.site() if defect is not None else None
    target = defect.cell_index if defect is not None else 0
    return ColumnRunner(tech=tech, stress=stress, defect=site,
                        target_cell=target, record=record)
