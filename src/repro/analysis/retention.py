"""Data-retention analysis of defective cells.

Shorts, bridges and (time-compressed) junction leakage discharge a cell
*between* accesses; production tests target them with pause ("delay")
elements.  This module measures how long a defective cell retains its
data: the largest number of idle cycles after which a read still returns
the written value.

The measurement explains the divergence D1 documented in EXPERIMENTS.md:
for shorts whose border sits in this retention-dominated regime, a longer
cycle time is the more stressful timing, because every cycle of a march
test is also a retention interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interface import ColumnModel, stored_level
from repro.dram.ops import Op, Operation


@dataclass(frozen=True)
class RetentionResult:
    """Retention of one logical value at one operating point."""

    value: int
    #: Largest idle-cycle count after which the value still reads back,
    #: or ``None`` when even ``max_cycles`` retains it.
    cycles: int | None
    #: True when the value is lost immediately (no retention at all).
    immediate_loss: bool
    max_cycles: int

    @property
    def retains_forever(self) -> bool:
        """Within the probed horizon, the cell never lost the value."""
        return self.cycles is None and not self.immediate_loss

    def time_seconds(self, tcyc: float) -> float | None:
        """Retention expressed as wall-clock time."""
        if self.cycles is None:
            return None
        return self.cycles * tcyc

    def describe(self) -> str:
        if self.immediate_loss:
            return f"value {self.value}: lost immediately"
        if self.retains_forever:
            return (f"value {self.value}: retained beyond "
                    f"{self.max_cycles} idle cycles")
        return f"value {self.value}: retained for {self.cycles} cycles"


def _reads_back(model: ColumnModel, value: int, idle_cycles: int,
                charge_ops: int) -> bool:
    """Write ``value``, idle, read — does it survive?"""
    w = Op(Operation.W0 if value == 0 else Operation.W1)
    ops = [w] * charge_ops + [Op(Operation.NOP)] * idle_cycles \
        + [Op(Operation.R, expected=value)]
    init = stored_level(model, 1 - value)
    return not model.run_sequence(ops, init_vc=init).any_fault


def retention_cycles(model: ColumnModel, value: int, *,
                     max_cycles: int = 256,
                     charge_ops: int = 2) -> RetentionResult:
    """Bisect the idle-cycle count at which ``value`` is lost.

    Monotonicity (more idle time, more decay) is assumed; the endpoints
    are checked to classify the degenerate outcomes.
    """
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    if not _reads_back(model, value, 0, charge_ops):
        return RetentionResult(value, None, True, max_cycles)
    if _reads_back(model, value, max_cycles, charge_ops):
        return RetentionResult(value, None, False, max_cycles)
    lo, hi = 0, max_cycles      # lo retains, hi loses
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _reads_back(model, value, mid, charge_ops):
            lo = mid
        else:
            hi = mid
    return RetentionResult(value, lo, False, max_cycles)
