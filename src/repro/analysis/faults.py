"""Functional fault-primitive classification.

Maps a defect's electrical misbehaviour onto the standard single-cell
functional fault primitives of the memory-testing literature (van de
Goor's notation), which is how detection conditions become march tests:

* ``SAF0``/``SAF1`` — stuck-at: the cell cannot hold the other value even
  after repeated writes,
* ``TF_UP``/``TF_DOWN`` — transition fault: a single transition write
  fails (but repeated writes succeed),
* ``RDF0``/``RDF1`` — read destructive fault: the read returns the wrong
  value *and* flips the cell,
* ``IRF0``/``IRF1`` — incorrect read fault: wrong value, cell preserved,
* ``DRDF0``/``DRDF1`` — deceptive read destructive fault: correct value,
  but the read flips the cell (caught by a second read),
* ``WDF0``/``WDF1`` — write destructive fault: a non-transition write
  flips the cell.

Classification drives the model with forced initial cell voltages, so the
cell *state* (not just the external behaviour) is observable — exactly the
diagnostic power the paper says Shmoo plots lack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.interface import ColumnModel
from repro.dram.ops import Op, Operation


class FaultPrimitive(enum.Enum):
    """Single-cell functional fault primitives."""

    SAF0 = "SAF0"       # stuck at 0
    SAF1 = "SAF1"       # stuck at 1
    TF_UP = "TF<0/1>"   # up-transition fails
    TF_DOWN = "TF<1/0>"  # down-transition fails
    RDF0 = "RDF0"
    RDF1 = "RDF1"
    IRF0 = "IRF0"
    IRF1 = "IRF1"
    DRDF0 = "DRDF0"
    DRDF1 = "DRDF1"
    WDF0 = "WDF0"
    WDF1 = "WDF1"


@dataclass
class FaultClassification:
    """The primitives observed for one defect resistance, with evidence."""

    resistance: float
    primitives: set[FaultPrimitive] = field(default_factory=set)
    evidence: dict[FaultPrimitive, str] = field(default_factory=dict)

    @property
    def is_faulty(self) -> bool:
        return bool(self.primitives)

    def describe(self) -> str:
        if not self.primitives:
            return f"R={self.resistance:.3g}: fault-free"
        names = ", ".join(sorted(p.value for p in self.primitives))
        return f"R={self.resistance:.3g}: {names}"


def _stores(vc: float, value: int, vdd: float) -> bool:
    """Does a physical cell voltage correspond to logical ``value``?

    Uses the mid-point voltage (Vdd/2) as the state boundary, per the
    paper's ``Vmp`` convention.
    """
    return (vc > 0.5 * vdd) == bool(value)


def classify_fault_primitives(model: ColumnModel, resistance: float,
                              ) -> FaultClassification:
    """Probe the standard fault primitives at one defect resistance.

    The target cell sits on a known bit line; logical values map to
    physical levels through the model's differential write convention, so
    state checks convert the observed storage voltage back to a logical
    value first.
    """
    model.set_defect_resistance(resistance)
    vdd = model.stress.vdd
    out = FaultClassification(resistance)
    # Physical level that encodes logical d for the target cell.
    target_on_true = getattr(model, "target_on_true", True)

    def physical(value: int) -> float:
        stored = value if target_on_true else 1 - value
        return float(stored) * vdd

    def logical(vc: float) -> int:
        stored = 1 if vc > 0.5 * vdd else 0
        return stored if target_on_true else 1 - stored

    w = {0: Op(Operation.W0), 1: Op(Operation.W1)}
    r = Op(Operation.R)

    for d in (0, 1):
        # --- stuck-at: repeated writes of d never establish d ------------
        seq = model.run_sequence([w[d]] * 6 + [r], init_vc=physical(1 - d))
        if logical(seq.vc_after[-2]) != d and seq.outputs[-1] != d:
            prim = FaultPrimitive.SAF0 if d == 1 else FaultPrimitive.SAF1
            out.primitives.add(prim)
            out.evidence[prim] = (f"w{d}^6 leaves cell at "
                                  f"{seq.vc_after[-2]:.2f} V, reads "
                                  f"{seq.outputs[-1]}")

        # --- transition fault: one write fails, repeated writes work -----
        one = model.run_sequence([w[d]], init_vc=physical(1 - d))
        many_ok = logical(seq.vc_after[4]) == d or seq.outputs[-1] == d
        if logical(one.vc_after[0]) != d and many_ok:
            prim = (FaultPrimitive.TF_UP if d == 1
                    else FaultPrimitive.TF_DOWN)
            out.primitives.add(prim)
            out.evidence[prim] = (f"single w{d} leaves "
                                  f"{one.vc_after[0]:.2f} V")

        # --- read faults: two successive reads from a solid state --------
        reads = model.run_sequence([r, r], init_vc=physical(d))
        first_ok = reads.outputs[0] == d
        state_after_first = logical(reads.vc_after[0])
        if not first_ok:
            prim = ((FaultPrimitive.RDF0 if d == 0 else FaultPrimitive.RDF1)
                    if state_after_first != d else
                    (FaultPrimitive.IRF0 if d == 0 else FaultPrimitive.IRF1))
            out.primitives.add(prim)
            out.evidence[prim] = (f"read of {d} returns {reads.outputs[0]}, "
                                  f"cell then holds "
                                  f"{reads.vc_after[0]:.2f} V")
        elif state_after_first != d:
            prim = (FaultPrimitive.DRDF0 if d == 0
                    else FaultPrimitive.DRDF1)
            out.primitives.add(prim)
            out.evidence[prim] = (f"read of {d} correct but cell flips to "
                                  f"{reads.vc_after[0]:.2f} V "
                                  f"(2nd read: {reads.outputs[1]})")

        # --- write destructive: non-transition write flips the cell ------
        same = model.run_sequence([w[d]], init_vc=physical(d))
        if logical(same.vc_after[0]) != d:
            prim = FaultPrimitive.WDF0 if d == 0 else FaultPrimitive.WDF1
            out.primitives.add(prim)
            out.evidence[prim] = (f"non-transition w{d} leaves "
                                  f"{same.vc_after[0]:.2f} V")

    return out
