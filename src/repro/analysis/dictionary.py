"""Fault dictionary: from observed fault primitives back to defects.

Shmoo plots, the paper notes, have "limited diagnostic ability to relate
the externally observed memory failure to the internal faulty behavior".
Simulation closes the loop: sweeping every catalog defect over its
resistance range and recording the fault primitives it produces yields a
*fault dictionary*; matching a failing device's observed primitives
against it ranks the candidate defects — classic dictionary-based
diagnosis applied to the paper's defect set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.faults import FaultPrimitive, classify_fault_primitives
from repro.analysis.interface import ColumnModel
from repro.analysis.planes import log_grid
from repro.core.stresses import NOMINAL_STRESS, StressConditions
from repro.defects.catalog import ALL_DEFECTS, Defect


@dataclass(frozen=True)
class DictionaryEntry:
    """One (defect, resistance) row of the dictionary."""

    defect: Defect
    primitives: frozenset[FaultPrimitive]

    @property
    def is_faulty(self) -> bool:
        return bool(self.primitives)

    def signature(self) -> str:
        return ",".join(sorted(p.value for p in self.primitives))


@dataclass
class FaultDictionary:
    """Signature → candidate defects lookup."""

    stress: StressConditions
    entries: list[DictionaryEntry] = field(default_factory=list)

    @property
    def faulty_entries(self) -> list[DictionaryEntry]:
        return [e for e in self.entries if e.is_faulty]

    def signatures(self) -> set[frozenset[FaultPrimitive]]:
        return {e.primitives for e in self.faulty_entries}

    def diagnose(self, observed: Sequence[FaultPrimitive],
                 top: int = 3) -> list[tuple[Defect, float]]:
        """Rank candidate defects by signature similarity (Jaccard).

        Exact matches score 1.0; an empty observation matches nothing.
        Entries of the same defect kind/placement are merged, keeping
        the best-scoring resistance.
        """
        observed_set = frozenset(observed)
        if not observed_set:
            return []
        best: dict[tuple, tuple[Defect, float]] = {}
        for entry in self.faulty_entries:
            union = observed_set | entry.primitives
            inter = observed_set & entry.primitives
            score = len(inter) / len(union)
            key = (entry.defect.kind, entry.defect.placement)
            if key not in best or score > best[key][1]:
                best[key] = (entry.defect, score)
        ranked = sorted(best.values(), key=lambda pair: -pair[1])
        return [pair for pair in ranked[:top] if pair[1] > 0.0]

    def render(self) -> str:
        lines = [f"fault dictionary @ {self.stress.describe()} "
                 f"({len(self.faulty_entries)} faulty entries):"]
        for entry in self.faulty_entries:
            lines.append(f"  {entry.defect.name} "
                         f"R={entry.defect.resistance:.3g}: "
                         f"{entry.signature()}")
        return "\n".join(lines)


def build_fault_dictionary(
        model_factory: Callable[[Defect, StressConditions], ColumnModel],
        *, defects: Sequence[Defect] = ALL_DEFECTS,
        points_per_defect: int = 4,
        stress: StressConditions = NOMINAL_STRESS) -> FaultDictionary:
    """Sweep the catalog and classify primitives at each point."""
    dictionary = FaultDictionary(stress)
    for defect in defects:
        lo, hi = defect.kind.search_range
        for r_ohm in log_grid(lo * 2, hi / 2, points_per_defect):
            model = model_factory(defect.with_resistance(r_ohm), stress)
            result = classify_fault_primitives(model, r_ohm)
            dictionary.entries.append(DictionaryEntry(
                defect.with_resistance(r_ohm),
                frozenset(result.primitives)))
    return dictionary
