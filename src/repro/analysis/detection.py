"""Detection-condition derivation.

A *detection condition* is the shortest single-cell operation sequence
whose expecting read observes the defect's faulty behaviour at a given
resistance — e.g. the paper's ``⇑(..., w1, w1, w0, r0, ...)`` for the cell
open, growing to more ``w1`` operations under a heavy stress combination
(Fig. 6, observation 2).

The search enumerates a canonical family in order of increasing length:

1. ``w d, r d`` and ``w d, r d, r d, ...``   (stuck/read faults),
2. ``w d̄ ^k, w d, r d`` for growing ``k``    (transition faults needing a
   charged cell — the paper's main pattern),
3. ``w d̄ ^k, w d, r d, r d``                 (write-back assisted faults).

for both data polarities ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interface import ColumnModel, opposite_rail_init
from repro.dram.ops import Op, format_ops, parse_ops


@dataclass(frozen=True)
class DetectionCondition:
    """A fault-detecting operation sequence for one defect resistance."""

    ops: tuple[Op, ...]
    resistance: float
    #: index of the read that observed the fault
    failing_read: int
    #: the value that read expected (the observed value is its complement)
    expected: int

    @property
    def length(self) -> int:
        return len(self.ops)

    def notation(self) -> str:
        """March-element-style rendering, e.g. ``⇕(w1^2 w0 r0)``."""
        return f"⇕({format_ops(self.ops)})"

    def describe(self) -> str:
        return (f"{self.notation()} detects at R={self.resistance:.3g} "
                f"(read #{self.failing_read} returns "
                f"{1 - self.expected} instead of {self.expected})")


def _candidates(max_charge: int, max_reads: int):
    """Yield candidate sequences, shortest first."""
    # Length-1 writes + reads without a charge phase.
    for n_reads in range(1, max_reads + 1):
        for d in (0, 1):
            yield f"w{d} " + " ".join([f"r{d}"] * n_reads)
    # Charge phase + single flip write + reads.
    for k in range(1, max_charge + 1):
        for n_reads in (1, 2):
            for d in (0, 1):
                charge = f"w{1 - d}^{k}"
                reads = " ".join([f"r{d}"] * n_reads)
                yield f"{charge} w{d} {reads}"


def derive_detection_condition(model: ColumnModel, resistance: float, *,
                               max_charge: int = 8, max_reads: int = 3
                               ) -> DetectionCondition | None:
    """Find the shortest canonical sequence detecting a fault at ``R``.

    A real march test cannot assume the cell's initial state, so a
    candidate only qualifies when it detects the fault from *both* initial
    rails — which is what forces the charge prefix (the paper: "the two
    w1 operations are necessary to charge [the cell] fully").

    Returns ``None`` when no candidate detects anything (the defect is
    benign at this resistance under the model's stress conditions).
    """
    model.set_defect_resistance(resistance)
    vdd = model.stress.vdd
    best: DetectionCondition | None = None
    for text in _candidates(max_charge, max_reads):
        ops = parse_ops(text)
        if best is not None and len(ops) >= best.length:
            continue
        seq = model.run_sequence(ops, init_vc=opposite_rail_init(model,
                                                                 ops))
        failing = next((i for i, r in enumerate(seq.results)
                        if r.detected_fault), None)
        if failing is None:
            continue
        # Must also detect from the favourable rail (state-independent).
        other = model.run_sequence(ops, init_vc=vdd
                                   - opposite_rail_init(model, ops))
        if not other.any_fault:
            continue
        cond = DetectionCondition(tuple(ops), resistance, failing,
                                  seq.results[failing].op.expected)
        if best is None or cond.length < best.length:
            best = cond
    return best
