"""Border-resistance (BR) identification.

BR is the resistive value of a defect at which the memory starts to show
faulty behaviour (Sec. 3, citing [Al-Ars02]).  Opens fail *above* their
border; shorts and bridges fail *below* it.  The search bisects in log
space over a detection predicate: "does this operation sequence observe a
functional fault at resistance R?".

The default predicate uses a saturating charge phase (several ``w1``/``w0``
operations) so the detection is not limited by incomplete charging — the
paper's Sec. 4.4 makes the same adjustment when the stress combination
weakens writes.

Bisection is inherently sequential, so the engine's contribution here is
memoization rather than parallelism: on an engine-backed model
(:class:`repro.engine.EngineModel`) every probe is content-addressed, so
repeated border searches — the quick direction analysis, tie-breaks and
full-plane generation all probe overlapping points — skip resimulation.
The probe battery keeps its short-circuit semantics (later sequences are
not simulated once one detects a fault), matching the hand-rolled search
cycle for cycle on a cold cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.interface import ColumnModel, opposite_rail_init
from repro.dram.ops import parse_ops
from repro.spice.errors import SpiceError

#: Operation sequences probed by the default fault predicate.  The pair
#: covers both data polarities; the saturating charge prefix follows the
#: paper's "two w1 are necessary ... " observation generalised to heavy
#: stress (Fig. 6 needs even more).
DEFAULT_PROBE_SEQUENCES = (
    "w1^6 w0 r0 r0",
    "w0^6 w1 r1 r1",
    "w1 r1 r1 r1",
    "w0 r0 r0 r0",
)


def default_fault_predicate(model: ColumnModel,
                            sequences: Sequence[str] = DEFAULT_PROBE_SEQUENCES
                            ) -> Callable[[float], bool]:
    """Build ``faulty(R)`` running a battery of detection sequences."""
    parsed = [parse_ops(s) for s in sequences]

    def faulty(resistance: float) -> bool:
        model.set_defect_resistance(resistance)
        for ops in parsed:
            init = opposite_rail_init(model, ops)
            if model.run_sequence(ops, init_vc=init).any_fault:
                return True
        return False

    return faulty


@dataclass(frozen=True)
class BorderResult:
    """Outcome of a border search.

    Attributes
    ----------
    resistance:
        The border value, or ``None`` when the whole range behaves
        uniformly (see ``always_faulty``).
    fails_high:
        True when faults live above the border (opens).
    always_faulty / never_faulty:
        Degenerate outcomes: the entire searched range is faulty (the
        border lies below it) or fault-free (above it).
    r_lo, r_hi:
        The searched range.
    n_failed_probes:
        Probes lost to simulation failures during the search (only
        nonzero under ``on_error="isolate"``); the result may then be
        coarser than ``rel_tol``, or undetermined when an endpoint was
        unprobeable.
    """

    resistance: float | None
    fails_high: bool
    always_faulty: bool
    never_faulty: bool
    r_lo: float
    r_hi: float
    n_failed_probes: int = 0

    @property
    def found(self) -> bool:
        return self.resistance is not None

    @property
    def degraded(self) -> bool:
        """True when failed probes may have reduced accuracy."""
        return self.n_failed_probes > 0

    def failing_range(self) -> tuple[float, float] | None:
        """The resistance interval producing faults (within the search)."""
        if self.always_faulty:
            return (self.r_lo, self.r_hi)
        if not self.found:
            return None
        if self.fails_high:
            return (self.resistance, self.r_hi)
        return (self.r_lo, self.resistance)

    def describe(self) -> str:
        note = (f" ({self.n_failed_probes} failed probes)"
                if self.n_failed_probes else "")
        if self.always_faulty:
            return (f"faulty everywhere in [{self.r_lo:.3g}, "
                    f"{self.r_hi:.3g}]{note}")
        if not self.found:
            if self.n_failed_probes and not self.never_faulty:
                return (f"border undetermined in [{self.r_lo:.3g}, "
                        f"{self.r_hi:.3g}]{note}")
            return f"no fault in [{self.r_lo:.3g}, {self.r_hi:.3g}]{note}"
        arrow = ">" if self.fails_high else "<"
        return f"faulty for R {arrow} {self.resistance:.3g} ohm{note}"


#: Relative nudges tried around a resistance whose probe failed before
#: the search gives up on that probe point.
_PROBE_NUDGES = (1.0, 1.03, 1.0 / 1.03)


def border_resistance(model: ColumnModel, *, fails_high: bool,
                      r_lo: float, r_hi: float,
                      predicate: Callable[[float], bool] | None = None,
                      sequences: Sequence[str] | None = None,
                      rel_tol: float = 0.05,
                      on_error: str = "raise",
                      prior: float | None = None) -> BorderResult:
    """Bisect the border resistance in ``[r_lo, r_hi]`` (log space).

    ``fails_high`` selects the polarity (True for opens).  A custom
    ``predicate`` (or sequence battery) overrides the default probe.
    The predicate is assumed monotone in R in the paper's sense; the
    endpoints are checked and degenerate outcomes reported explicitly.

    ``prior`` is an optional border estimate (e.g. from the surrogate
    tier).  The search then jumps straight to the bisection leaf that
    would contain it and verifies the leaf's two endpoints; under a
    monotone predicate a verified leaf pins every branch the plain
    bisection would have taken, so the returned border is **bitwise
    identical** at a fraction of the probes (see
    :func:`_prior_guided_search`).  A wrong prior only costs extra
    probes — every return path either verifies against real probes or
    falls back to the plain loop (reusing probe outcomes), never
    trusting the estimate itself.  Priors are ignored under
    ``on_error="isolate"``, where nudged/failed probes would make the
    probe-for-probe accounting diverge from the serial search.

    ``on_error="isolate"`` makes the search survive probes whose
    simulation fails: a failed probe point is retried at slightly nudged
    resistances, an unprobeable midpoint stops the refinement (the
    result brackets around it at reduced accuracy), and an unprobeable
    endpoint yields an undetermined result — all reported through
    ``n_failed_probes`` instead of an exception.
    """
    if r_lo <= 0 or r_hi <= r_lo:
        raise ValueError("require 0 < r_lo < r_hi")
    if on_error not in ("raise", "isolate"):
        raise ValueError(f"unknown on_error policy {on_error!r}")
    if predicate is None:
        predicate = default_fault_predicate(
            model, sequences or DEFAULT_PROBE_SEQUENCES)

    if (prior is not None and on_error == "raise"
            and math.isfinite(prior) and prior > 0):
        memo: dict[float, bool] = {}
        raw_predicate = predicate

        def memo_predicate(r: float) -> bool:
            if r not in memo:
                memo[r] = raw_predicate(r)
            return memo[r]

        result = _prior_guided_search(
            memo_predicate, fails_high=fails_high, r_lo=r_lo, r_hi=r_hi,
            rel_tol=rel_tol, prior=prior)
        if result is not None:
            return result
        # Guided search gave up (non-monotone probe outcomes or too many
        # rounds): run the plain loop below, reusing every probe already
        # taken.
        predicate = memo_predicate

    n_failed = 0

    def probe(resistance: float) -> bool | None:
        """``predicate`` hardened against simulation failures."""
        nonlocal n_failed
        if on_error == "raise":
            return predicate(resistance)
        for nudge in _PROBE_NUDGES:
            r = min(max(resistance * nudge, r_lo), r_hi)
            try:
                return predicate(r)
            except SpiceError as exc:
                n_failed += 1
                _log_failed_probe(r, exc)
        return None

    lo_faulty = probe(r_lo)
    hi_faulty = probe(r_hi)
    if lo_faulty is None or hi_faulty is None:
        # An endpoint cannot be classified: the polarity of the whole
        # range is unknown, so the search is undetermined.
        return BorderResult(None, fails_high, always_faulty=False,
                            never_faulty=False, r_lo=r_lo, r_hi=r_hi,
                            n_failed_probes=n_failed)
    faulty_end = r_hi if fails_high else r_lo
    clean_end = r_lo if fails_high else r_hi
    faulty_at_faulty_end = hi_faulty if fails_high else lo_faulty
    faulty_at_clean_end = lo_faulty if fails_high else hi_faulty

    if faulty_at_clean_end:
        return BorderResult(None, fails_high, always_faulty=True,
                            never_faulty=False, r_lo=r_lo, r_hi=r_hi,
                            n_failed_probes=n_failed)
    if not faulty_at_faulty_end:
        return BorderResult(None, fails_high, always_faulty=False,
                            never_faulty=True, r_lo=r_lo, r_hi=r_hi,
                            n_failed_probes=n_failed)

    lo, hi = (clean_end, faulty_end) if fails_high else (faulty_end,
                                                         clean_end)
    # Invariant depends on polarity: for opens lo is clean / hi faulty;
    # for shorts lo is faulty / hi clean.
    while hi / lo > 1.0 + rel_tol:
        mid = math.sqrt(lo * hi)
        mid_faulty = probe(mid)
        if mid_faulty is None:
            # The midpoint is unprobeable even after nudging: stop
            # refining and bracket around it — a coarser border beats
            # an aborted search.
            break
        if fails_high:
            if mid_faulty:
                hi = mid
            else:
                lo = mid
        else:
            if mid_faulty:
                lo = mid
            else:
                hi = mid
    return BorderResult(math.sqrt(lo * hi), fails_high,
                        always_faulty=False, never_faulty=False,
                        r_lo=r_lo, r_hi=r_hi, n_failed_probes=n_failed)


#: Rounds of leaf re-aiming before a prior-guided search falls back to
#: the plain bisection.  Each non-verifying round probes at least one
#: new lattice point strictly inside the open bracket, so the bound is
#: only ever reached on pathological (non-monotone) predicates.
_PRIOR_MAX_ROUNDS = 64


def _prior_guided_search(predicate: Callable[[float], bool], *,
                         fails_high: bool, r_lo: float, r_hi: float,
                         rel_tol: float,
                         prior: float) -> BorderResult | None:
    """Verify the bisection leaf a prior points at; return its border.

    The plain loop halves the *log-width* of its bracket every step
    (``mid = sqrt(lo * hi)``), so the set of brackets it can terminate
    in — the "leaves" — is a fixed lattice independent of probe
    outcomes.  This search descends to the leaf containing ``prior``
    using the identical float arithmetic, then probes only the leaf's
    two endpoints.  If the low endpoint is clean and the high endpoint
    faulty (polarity-adjusted), monotonicity pins every branch the
    plain loop would have taken: each midpoint it discarded upward lies
    ≥ the verified faulty endpoint, each kept lies ≤ the clean one, so
    the plain loop reaches *this exact bracket* and returns
    ``sqrt(lo * hi)`` — reproduced here bitwise, typically from 2
    probes instead of ~10.

    A miss re-aims at the geometric middle of the tightest known
    clean/faulty bracket and repeats, converging like a bisection over
    leaves.  Returns ``None`` (caller falls back to the plain loop,
    memo intact) when probe outcomes contradict monotonicity or the
    round cap is hit — so a bad prior degrades to the serial cost,
    never to a wrong answer.
    """
    # Work in a polarity-free frame: g(r) is False on the clean-for-
    # opens side (low R) and True above the border, for both kinds.
    def g(r: float) -> bool:
        f = predicate(r)
        return f if fails_high else (not f)

    g_false_max: float | None = None   # largest r observed g(r) False
    g_true_min: float | None = None    # smallest r observed g(r) True

    def classify(r: float) -> bool:
        nonlocal g_false_max, g_true_min
        if g_false_max is not None and r <= g_false_max:
            return False
        if g_true_min is not None and r >= g_true_min:
            return True
        val = g(r)
        if val:
            g_true_min = r if g_true_min is None else min(g_true_min, r)
        else:
            g_false_max = r if g_false_max is None else max(g_false_max, r)
        return val

    target = min(max(prior, r_lo), r_hi)
    step = 1.0   # gallop width in leaves while only one bound is known
    for _ in range(_PRIOR_MAX_ROUNDS):
        lo, hi = r_lo, r_hi
        while hi / lo > 1.0 + rel_tol:
            mid = math.sqrt(lo * hi)
            if target < mid:
                hi = mid
            else:
                lo = mid
        glo = classify(lo)
        ghi = classify(hi)
        if not glo and ghi:
            return BorderResult(math.sqrt(lo * hi), fails_high,
                                always_faulty=False, never_faulty=False,
                                r_lo=r_lo, r_hi=r_hi)
        if (glo and lo == r_lo) or (not ghi and hi == r_hi):
            # The range looks degenerate (border below r_lo or above
            # r_hi).  Replicate the plain search's endpoint probes and
            # its precedence exactly — ``predicate`` memoizes, so a
            # leaf endpoint that coincides with a range endpoint costs
            # nothing extra.
            lo_faulty = predicate(r_lo)
            hi_faulty = predicate(r_hi)
            faulty_at_clean_end = lo_faulty if fails_high else hi_faulty
            faulty_at_faulty_end = hi_faulty if fails_high else lo_faulty
            if faulty_at_clean_end:
                return BorderResult(None, fails_high, always_faulty=True,
                                    never_faulty=False, r_lo=r_lo,
                                    r_hi=r_hi)
            if not faulty_at_faulty_end:
                return BorderResult(None, fails_high, always_faulty=False,
                                    never_faulty=True, r_lo=r_lo,
                                    r_hi=r_hi)
            return None   # endpoints contradict the leaf probes
        if (g_false_max is not None and g_true_min is not None
                and g_false_max >= g_true_min):
            return None   # probes contradict monotonicity
        leaf_ratio = hi / lo
        if g_false_max is not None and g_true_min is not None:
            # Bracketed: bisect the gap geometrically.  Adjacent leaves
            # share endpoints bitwise (both sides recompute them at the
            # common ancestor split), so re-descending reuses probes
            # through the memoizing predicate.
            target = math.sqrt(g_false_max * g_true_min)
        elif g_true_min is not None:
            # Only faulty-side evidence: gallop down, doubling the
            # leaf-count step, until the clean side is found.
            target = max(g_true_min / leaf_ratio ** step, r_lo)
            step *= 2.0
        else:
            target = min(g_false_max * leaf_ratio ** step, r_hi)
            step *= 2.0
    return None


def _log_failed_probe(resistance: float, exc: SpiceError) -> None:
    from repro.diagnostics import get_logger
    get_logger("analysis").warning(
        "border probe failed at R=%.3g ohm (%s: %s)", resistance,
        type(exc).__name__, exc)
