"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Reproduce the paper's Table 1 over the full defect catalog.
``optimize O3 [--comp] [--electrical]``
    Optimize one defect and print the row.
``planes [--stressed] [--electrical]``
    Render the Fig. 2 / Fig. 6 result planes.
``shmoo [--resistance R]``
    Render the Sec. 2 Shmoo baseline.
``coverage``
    March-test coverage at nominal vs optimized SC (Sec. 5.2).
``array [--geometry R C] [--trim off|auto|force]``
    Array-scale activation-disturbance borders per defect kind
    (ROADMAP "Scale the DUT"): one victim in an R×C array, activated
    by its own row, border resistance bisected per kind.  ``--trim``
    controls the active-window netlist trimming (default ``auto``:
    simulate only the accessed row/column plus the defect neighborhood
    with calibrated boundary loads; see DESIGN.md section 5g).

The sweep-heavy commands (``table1``, ``planes``, ``coverage``) accept
``--workers N`` (process-pool fan-out), ``--lanes N`` (stack same-
topology sweep points into batched multi-lane transients), ``--no-cache``
(disable the content-addressed result cache), ``--surrogate
off|prior|serve`` (surrogate-first answer tier with uncertainty-gated
electrical fallback; see DESIGN.md section 5i), ``--verbose`` (engine
statistics on stderr) and ``--profile`` (wall-clock timings of the
solver hot paths and sweep phases plus kernel/lane/surrogate counters
on stderr).
Results are identical for any worker count; only stderr and wall time
change.  Lane results match the per-lane path within the documented
fp tolerance (see DESIGN.md section 5d).

Resilience flags (same commands): ``--isolate`` turns non-convergent
points into reported holes instead of aborting the run, ``--timeout S``
bounds each simulation's wall clock, ``--max-retries N`` bounds crash
retries, and ``--log-level LEVEL`` controls run diagnostics on stderr.
A per-run failure/rescue/retry summary is printed to stderr whenever
anything eventful happened (clean runs print nothing extra).

Durability flags (same commands): ``--checkpoint DIR`` journals every
completed simulation to ``DIR`` and keeps the results in a sharded,
integrity-checked store there; ``--resume`` restarts an interrupted
checkpointed run, recovering journaled work from the store instead of
re-simulating it (the skip counts appear in the stderr diagnostics;
stdout is byte-identical to an uninterrupted run).
"""

from __future__ import annotations

import argparse
import sys


def _setup_engine(args) -> None:
    """Install the process-wide engine from the CLI flags."""
    from repro.diagnostics import configure_logging, reset_diagnostics
    from repro.engine import configure_default_engine
    from repro.profiling import profiler
    configure_logging(getattr(args, "log_level", "warning"))
    reset_diagnostics()
    profiler.reset()
    profiler.enabled = bool(getattr(args, "profile", False))
    if getattr(args, "resume", False) \
            and not getattr(args, "checkpoint", None):
        print("--resume requires --checkpoint DIR", file=sys.stderr)
        raise SystemExit(2)
    configure_default_engine(
        workers=getattr(args, "workers", 1),
        cache=not getattr(args, "no_cache", False),
        on_error="isolate" if getattr(args, "isolate", False) else "raise",
        timeout=getattr(args, "timeout", None),
        max_retries=getattr(args, "max_retries", 2),
        lanes=getattr(args, "lanes", None),
        backend=getattr(args, "backend", None),
        trim=getattr(args, "trim", None),
        checkpoint=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
        surrogate=getattr(args, "surrogate", None))


def _report_engine(args) -> None:
    """Engine statistics (``--verbose``) and run diagnostics to stderr."""
    if getattr(args, "verbose", False):
        from repro.engine import default_engine
        print(default_engine().stats.describe(), file=sys.stderr)
    from repro.diagnostics import diagnostics
    diagnostics().report(sys.stderr)
    if getattr(args, "profile", False):
        from repro.engine import default_engine
        from repro.profiling import profiler
        print(profiler.summary(), file=sys.stderr)
        stats = default_engine().stats
        print(f"cache: {stats.memory_hits} memory hits, "
              f"{stats.disk_hits} disk hits, {stats.misses} misses"
              + (f"; store: {stats.store.describe()}"
                 if stats.store is not None else ""),
              file=sys.stderr)
        kernels = diagnostics().solver_kernels
        if kernels:
            print("solver kernels: "
                  + ", ".join(f"{k} x{n}"
                              for k, n in sorted(kernels.items())),
                  file=sys.stderr)
        lanes = diagnostics().lane_counters
        if lanes:
            print("lane kernel: "
                  + ", ".join(f"{k} x{n}"
                              for k, n in sorted(lanes.items())),
                  file=sys.stderr)
        trims = diagnostics().trim_counters
        if trims:
            print("netlist trim: "
                  + ", ".join(f"{k} x{n}"
                              for k, n in sorted(trims.items())),
                  file=sys.stderr)
        surr = diagnostics().surrogate_counters
        if surr:
            print("surrogate tier: "
                  + ", ".join(f"{k} x{n}"
                              for k, n in sorted(surr.items())),
                  file=sys.stderr)


def _cmd_table1(args) -> int:
    from repro.experiments import table1_optimization
    backend = "electrical" if args.electrical else "behavioral"
    _setup_engine(args)
    table = table1_optimization(
        backend=backend, workers=args.workers, engine=True,
        on_error="isolate" if args.isolate else "raise")
    print(table.render())
    _report_engine(args)
    return 0


def _cmd_optimize(args) -> int:
    from repro.core import optimize_defect
    from repro.defects import DefectKind, Placement
    from repro.experiments.figures import make_model

    try:
        kind = DefectKind(args.defect)
    except ValueError:
        names = ", ".join(k.value for k in DefectKind)
        print(f"unknown defect {args.defect!r}; choose one of: {names}",
              file=sys.stderr)
        return 2
    placement = Placement.COMP if args.comp else Placement.TRUE
    backend = "electrical" if args.electrical else "behavioral"
    row = optimize_defect(
        kind, placement=placement,
        model_factory=lambda d, s: make_model(d, s, backend))
    print(row.describe())
    for call in row.directions.values():
        print(f"  {call.describe()}")
    return 0


def _cmd_planes(args) -> int:
    from repro.experiments import fig2_result_planes, fig6_stressed_planes
    backend = "electrical" if args.electrical else "behavioral"
    fn = fig6_stressed_planes if args.stressed else fig2_result_planes
    _setup_engine(args)
    study = fn(backend=backend, points=args.points, engine=True)
    print(study.render())
    _report_engine(args)
    return 0


def _cmd_shmoo(args) -> int:
    from repro.experiments import shmoo_baseline
    study = shmoo_baseline(resistance=args.resistance)
    print(study.render())
    return 0


def _cmd_coverage(args) -> int:
    from repro.experiments import march_coverage_comparison
    _setup_engine(args)
    study = march_coverage_comparison(r_points=args.points,
                                      workers=args.workers, engine=True)
    print(study.render())
    _report_engine(args)
    return 0


def _cmd_array(args) -> int:
    from repro.dram.column import DEFECT_KINDS
    from repro.experiments import array_disturb_study
    rows, cols = args.geometry
    if rows < 1 or cols < 1:
        print(f"--geometry needs positive dimensions, got "
              f"{rows}x{cols}", file=sys.stderr)
        return 2
    kinds = args.kinds.split(",") if args.kinds else DEFECT_KINDS
    unknown = [k for k in kinds if k not in DEFECT_KINDS]
    if unknown:
        print(f"unknown defect kind(s) {', '.join(unknown)}; choose "
              f"from: {', '.join(DEFECT_KINDS)}", file=sys.stderr)
        return 2
    _setup_engine(args)
    # engine=None routes through the default engine _setup_engine just
    # configured (cache, workers, trim policy).
    study = array_disturb_study(geometry=(rows, cols), kinds=kinds)
    print(study.render())
    _report_engine(args)
    return 0


def _add_engine_options(p: argparse.ArgumentParser) -> None:
    from repro.diagnostics import LOG_LEVELS
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes for simulation fan-out")
    p.add_argument("--lanes", type=int, default=None, metavar="N",
                   help="stack up to N same-topology sweep points "
                        "(column or array, dense or sparse as the "
                        "backend resolves) into one batched multi-lane "
                        "transient; bisection drivers then probe "
                        "speculatively and warm-start across "
                        "generations (0 disables; default: off)")
    p.add_argument("--backend", choices=("auto", "dense", "sparse"),
                   default=None,
                   help="linear-solver backend: 'dense' forces the "
                        "bitwise-reference dense LU, 'sparse' forces "
                        "CSR/SuperLU where available, 'auto' (default) "
                        "picks by system size and sparsity")
    p.add_argument("--trim", choices=("off", "auto", "force"),
                   default=None,
                   help="active-window netlist trimming for array-scale "
                        "simulations: 'auto' (the array default) prunes "
                        "unselected rows/columns into boundary loads, "
                        "'off' simulates the full array, 'force' trims "
                        "even degenerate windows (no effect on the "
                        "seed 2x2 column commands)")
    p.add_argument("--surrogate", choices=("off", "prior", "serve"),
                   default=None,
                   help="surrogate-first answer tier: 'prior' seeds "
                        "electrical border bisections from calibrated "
                        "per-defect surrogates (identical results, "
                        "fewer probes), 'serve' additionally answers "
                        "low-uncertainty border/direction queries "
                        "surrogate-only with electrical fallback; "
                        "every fallback is journaled as a calibration "
                        "point (default: off)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-addressed result cache")
    p.add_argument("--checkpoint", metavar="DIR", default=None,
                   help="make the run durable: journal every completed "
                        "simulation to DIR and keep results in a "
                        "sharded integrity-checked store there")
    p.add_argument("--resume", action="store_true",
                   help="recover a prior interrupted run from the "
                        "--checkpoint directory, skipping journaled "
                        "work (reported in the run diagnostics)")
    p.add_argument("--verbose", action="store_true",
                   help="print engine statistics to stderr")
    p.add_argument("--profile", action="store_true",
                   help="time the solver hot paths and print a profile "
                        "summary to stderr after the run")
    p.add_argument("--isolate", action="store_true",
                   help="keep going past failed simulations; report "
                        "them as holes instead of aborting")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-simulation wall-clock bound in seconds "
                        "(parallel runs only)")
    p.add_argument("--max-retries", type=int, default=2, metavar="N",
                   help="pool re-drives for items hit by a worker "
                        "crash before running them serially")
    p.add_argument("--log-level", choices=sorted(LOG_LEVELS),
                   default="warning",
                   help="diagnostics verbosity on stderr")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DRAM test-stress optimization (DATE 2003 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="reproduce Table 1")
    p.add_argument("--electrical", action="store_true")
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("optimize", help="optimize one defect")
    p.add_argument("defect", help="O1 O2 O3 Sg Sv B1 B2")
    p.add_argument("--comp", action="store_true",
                   help="complementary bit line")
    p.add_argument("--electrical", action="store_true")
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser("planes", help="Fig. 2/6 result planes")
    p.add_argument("--stressed", action="store_true",
                   help="use the Fig. 6 stress combination")
    p.add_argument("--electrical", action="store_true")
    p.add_argument("--points", type=int, default=8)
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_planes)

    p = sub.add_parser("shmoo", help="Sec. 2 Shmoo baseline")
    p.add_argument("--resistance", type=float, default=250e3)
    p.set_defaults(fn=_cmd_shmoo)

    p = sub.add_parser("coverage", help="Sec. 5.2 march coverage")
    p.add_argument("--points", type=int, default=10)
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_coverage)

    p = sub.add_parser("array",
                       help="array-scale activation-disturbance borders")
    p.add_argument("--geometry", type=int, nargs=2, default=(6, 6),
                   metavar=("R", "C"),
                   help="array rows and columns (default: 6 6)")
    p.add_argument("--kinds", default=None,
                   help="comma-separated defect kinds (default: all "
                        "array-routed kinds)")
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_array)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
