"""Monte-Carlo robustness of the stress-direction calls.

The paper's method derives directions from a single (typical-corner)
technology model.  Before committing a production test program, an
engineer wants to know whether those directions survive process
variation.  This module perturbs the technology parameters that dominate
the mechanisms — thresholds, cell/bit-line capacitance, reference offset,
leakage — re-runs the border comparison per sample, and reports how often
each direction call holds.

Sampling is deterministic per seed (``numpy.random.default_rng``) so
reports are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.interface import ColumnModel
from repro.core.border import find_border_resistance, more_effective
from repro.core.stresses import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
)
from repro.defects.catalog import Defect
from repro.dram.tech import TechnologyParams, default_tech
from repro.engine import BatchExecutor, ResultCache, default_engine, \
    parallel_map, set_default_engine


@dataclass(frozen=True)
class VariationSpec:
    """Relative 1-sigma spreads of the varied technology parameters."""

    vth_sigma: float = 0.04          # threshold voltages
    cap_sigma: float = 0.05          # cs / cbl
    offset_sigma: float = 0.10       # reference offset
    leak_sigma: float = 0.30         # junction leakage (log-normal-ish)

    def sample(self, base: TechnologyParams,
               rng: np.random.Generator) -> TechnologyParams:
        """One perturbed technology instance."""
        def rel(sigma):
            return float(1.0 + sigma * rng.standard_normal())

        nmos = base.nmos.with_(
            vth0=max(base.nmos.vth0 * rel(self.vth_sigma), 0.1))
        pmos = base.pmos.with_(
            vth0=max(base.pmos.vth0 * rel(self.vth_sigma), 0.1))
        return base.with_(
            nmos=nmos,
            pmos=pmos,
            access_vth0=max(base.access_vth0 * rel(self.vth_sigma), 0.2),
            cs=base.cs * max(rel(self.cap_sigma), 0.5),
            cbl=base.cbl * max(rel(self.cap_sigma), 0.5),
            v_ref_offset=max(base.v_ref_offset * rel(self.offset_sigma),
                             0.01),
            leak_isat=base.leak_isat
            * float(np.exp(self.leak_sigma * rng.standard_normal())),
        )


@dataclass
class DirectionRobustness:
    """Per-sample agreement of one ST's direction call."""

    kind: StressKind
    reference_value: float
    agree: int = 0
    disagree: int = 0
    undecided: int = 0

    @property
    def samples(self) -> int:
        return self.agree + self.disagree + self.undecided

    @property
    def confidence(self) -> float:
        """Fraction of decided samples agreeing with the reference."""
        decided = self.agree + self.disagree
        return self.agree / decided if decided else 0.0

    def describe(self) -> str:
        return (f"{self.kind.value}: {self.agree}/{self.samples} agree "
                f"({self.undecided} undecided), confidence "
                f"{self.confidence:.0%}")


@dataclass
class MonteCarloReport:
    """Robustness of a defect's direction calls under variation.

    ``failed_samples`` counts perturbed technologies whose analysis
    failed outright under ``on_error="isolate"``; those samples carry
    no votes, so confidence is computed over the survivors.
    """

    defect: Defect
    seed: int
    samples: int
    robustness: dict[StressKind, DirectionRobustness] = \
        field(default_factory=dict)
    border_samples: list[float] = field(default_factory=list)
    failed_samples: int = 0

    def render(self) -> str:
        lines = [f"Monte-Carlo ({self.samples} samples, seed "
                 f"{self.seed}) for {self.defect.name}:"]
        if self.border_samples:
            arr = np.asarray(self.border_samples)
            lines.append(
                f"  nominal border: median {np.median(arr):.3g} ohm, "
                f"spread [{arr.min():.3g}, {arr.max():.3g}]")
        lines.extend("  " + r.describe()
                     for r in self.robustness.values())
        if self.failed_samples:
            lines.append(f"  {self.failed_samples} samples failed to "
                         f"simulate and were dropped")
        return "\n".join(lines)


def _border_winner(model_factory, defect: Defect,
                   base: StressConditions, tech: TechnologyParams,
                   kind: StressKind, rel_tol: float,
                   on_error: str = "raise") -> float | None:
    """Border-winning ST value on one technology (None = tie)."""
    model = model_factory(defect, base, tech)
    rng_range = STRESS_RANGES[kind]
    borders = {}
    for value in rng_range.extremes:
        sc = base.with_value(kind, value)
        borders[value] = find_border_resistance(model, defect, stress=sc,
                                                rel_tol=rel_tol,
                                                on_error=on_error)
    lo, hi = rng_range.extremes
    if more_effective(defect, borders[lo], borders[hi]):
        return lo
    if more_effective(defect, borders[hi], borders[lo]):
        return hi
    return None


def _mc_sample_task(args):
    """One Monte-Carlo sample (module-level: picklable for the pool).

    Under ``on_error="isolate"`` a sample whose analysis still fails
    returns ``winners=None`` so the parent can drop it (counted in
    ``MonteCarloReport.failed_samples``) instead of losing the run.
    """
    tech, model_factory, defect, base, kinds, rel_tol, on_error = args
    previous = default_engine()
    engine = BatchExecutor(cache=ResultCache(), workers=1)
    set_default_engine(engine)
    try:
        model = model_factory(defect, base, tech)
        border = find_border_resistance(model, defect, stress=base,
                                        rel_tol=rel_tol,
                                        on_error=on_error)
        winners = {kind: _border_winner(model_factory, defect, base,
                                        tech, kind, rel_tol, on_error)
                   for kind in kinds}
    except Exception:
        if on_error != "isolate":
            raise
        return None, None, engine.stats
    finally:
        set_default_engine(previous)
    return (border.resistance if border.found else None, winners,
            engine.stats)


def direction_robustness(
        model_factory: Callable[[Defect, StressConditions,
                                 TechnologyParams], ColumnModel],
        defect: Defect, *,
        kinds=(StressKind.TCYC, StressKind.TEMP, StressKind.VDD),
        samples: int = 12, seed: int = 2003,
        variation: VariationSpec | None = None,
        base: StressConditions = NOMINAL_STRESS,
        rel_tol: float = 0.08,
        workers: int = 1,
        on_error: str = "raise") -> MonteCarloReport:
    """Check how often the typical-corner directions survive variation.

    ``model_factory(defect, stress, tech)`` must build a column model on
    a *specific* technology instance.  The reference direction per ST is
    the border comparison on the unperturbed technology; each sample
    re-runs the comparison on a perturbed one.

    All technologies are drawn from the rng *before* any analysis runs,
    so the sampled population is byte-identical regardless of
    ``workers``; with ``workers > 1`` the per-sample comparisons fan out
    over a process pool (``model_factory`` must then be picklable).

    ``on_error="isolate"`` drops samples whose analysis fails (reported
    as ``failed_samples``) instead of aborting the study; the reference
    comparison on the unperturbed technology still raises — without it
    there is nothing to compare against.
    """
    variation = variation or VariationSpec()
    rng = np.random.default_rng(seed)
    base_tech = default_tech()

    report = MonteCarloReport(defect, seed, samples)
    reference = {kind: _border_winner(model_factory, defect, base,
                                      base_tech, kind, rel_tol)
                 for kind in kinds}
    for kind in kinds:
        report.robustness[kind] = DirectionRobustness(
            kind, reference[kind] if reference[kind] is not None
            else float("nan"))

    techs = [variation.sample(base_tech, rng) for _ in range(samples)]
    if workers <= 1:
        for tech in techs:
            try:
                model = model_factory(defect, base, tech)
                border = find_border_resistance(model, defect,
                                                stress=base,
                                                rel_tol=rel_tol,
                                                on_error=on_error)
                winners = {kind: _border_winner(model_factory, defect,
                                                base, tech, kind,
                                                rel_tol, on_error)
                           for kind in kinds}
            except Exception as exc:
                if on_error != "isolate":
                    raise
                _record_failed_sample(defect, exc)
                report.failed_samples += 1
                continue
            if border.found:
                report.border_samples.append(border.resistance)
            for kind in kinds:
                _tally(report.robustness[kind], winners[kind],
                       reference[kind])
        return report

    tasks = [(tech, model_factory, defect, base, tuple(kinds), rel_tol,
              on_error)
             for tech in techs]
    stats = default_engine().stats
    for border_r, winners, worker_stats in parallel_map(
            _mc_sample_task, tasks, workers=workers):
        if winners is None:
            _record_failed_sample(defect, None)
            report.failed_samples += 1
            stats.merge(worker_stats)
            continue
        if border_r is not None:
            report.border_samples.append(border_r)
        for kind in kinds:
            _tally(report.robustness[kind], winners[kind],
                   reference[kind])
        stats.merge(worker_stats)
    return report


def _record_failed_sample(defect: Defect, exc: Exception | None) -> None:
    from repro.diagnostics import diagnostics, get_logger
    # exc is None when the failure happened inside a worker process (the
    # exception itself stayed there; only the outcome crossed back).
    error_type = type(exc).__name__ if exc is not None else "SampleError"
    detail = str(exc) if exc is not None else "failed in worker"
    diagnostics().record_failure(error_type,
                                 f"mc sample for {defect.name}: {detail}")
    get_logger("core").warning("monte-carlo sample for %s failed "
                               "(%s: %s)", defect.name, error_type,
                               detail)


def _tally(rob: DirectionRobustness, winner: float | None,
           reference: float | None) -> None:
    if winner is None or reference is None:
        rob.undecided += 1
    elif winner == reference:
        rob.agree += 1
    else:
        rob.disagree += 1
