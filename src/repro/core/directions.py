"""Quick stress-direction analysis (paper Sec. 4.1–4.3).

Instead of generating full result planes for every ST value, the paper
deduces the stressful direction of each ST from two cheap panels:

* the **write panel** — one write of the fault-relevant value from the
  opposite rail per ST value: the value that leaves the cell *less*
  written is more stressful for the write;
* the **read panel** — the sense threshold ``Vsa`` per ST value: moving
  ``Vsa`` toward the faulty side stresses the read.

When the two panels agree (or one shows no impact) the direction is
decided outright — e.g. timing: shorter ``tcyc`` weakens the write and
leaves ``Vsa`` unchanged.  When they conflict (supply voltage) or the
read panel is non-monotonic (temperature), the analysis flags a border-
resistance tie-break, exactly as the paper does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.curves import sense_threshold
from repro.analysis.interface import ColumnModel, stored_level
from repro.core.stresses import (
    STRESS_RANGES,
    StressConditions,
    StressKind,
    StressRange,
)
from repro.dram.ops import Op, Operation
from repro.engine.model import BatchItem, batch_run

#: Metric changes smaller than this count as "no impact" (volts).
NO_IMPACT_TOL = 0.015


class Vote(enum.Enum):
    """What one panel says about an ST extreme."""

    LOW = "low"
    HIGH = "high"
    NONE = "none"          # no impact
    NON_MONOTONE = "non-monotone"


@dataclass
class PanelResult:
    """Metric values of one panel over the probed ST values."""

    metric_name: str
    values: list[float]                # the probed ST values
    metrics: list[float | None]        # metric per value (None = no Vsa)
    vote: Vote

    def describe(self) -> str:
        pairs = ", ".join(
            f"{v:.3g}→{'-' if m is None else format(m, '.3f')}"
            for v, m in zip(self.values, self.metrics))
        return f"{self.metric_name}: {pairs} (vote: {self.vote.value})"


@dataclass
class DirectionCall:
    """The decided direction for one ST."""

    kind: StressKind
    chosen_value: float
    decided_by: str                    # "write", "read", "agreement", "border"
    write_panel: PanelResult
    read_panel: PanelResult
    needs_border_tiebreak: bool
    #: candidates left for the tie-break (ST values)
    tiebreak_candidates: list[float] = field(default_factory=list)

    @property
    def arrow(self) -> str:
        """Compact direction glyph relative to nominal."""
        nominal = STRESS_RANGES[self.kind].nominal
        if self.chosen_value > nominal:
            return "↑"
        if self.chosen_value < nominal:
            return "↓"
        return "·"

    def describe(self) -> str:
        return (f"{self.kind.value}: choose {self.chosen_value:.3g} "
                f"{self.arrow} (by {self.decided_by})")


@dataclass
class DirectionReport:
    """Direction calls for every ST of a defect."""

    fault_value: int
    calls: dict[StressKind, DirectionCall]

    def stressed_conditions(self, base: StressConditions
                            ) -> StressConditions:
        """Compose the SC from the decided directions."""
        sc = base
        for kind, call in self.calls.items():
            sc = sc.with_value(kind, call.chosen_value)
        return sc


def write_residual(model: ColumnModel, value: int) -> float:
    """Cell voltage left by a single write of ``value`` from the
    opposite rail — the write-panel metric (Fig. 3/4/5 top panels)."""
    op = Op(Operation.W0 if value == 0 else Operation.W1)
    init = stored_level(model, 1 - value)
    seq = model.run_sequence([op], init_vc=init)
    return seq.vc_after[0]


def analyze_write_panel(model: ColumnModel, kind: StressKind,
                        values, fault_value: int,
                        base: StressConditions,
                        tol: float = NO_IMPACT_TOL) -> PanelResult:
    """Probe the write of the fault-relevant value across ST values.

    The *stressful* extreme leaves the cell less-written: for a ``w0``
    fault a **higher** residual; for ``w1`` a **lower** one (in stored-
    level terms — complementary cells are handled by ``stored_level``).

    The probed values form one engine batch (the per-value rails track
    each probed stress, exactly as the sequential sweep saw them).
    """
    op = Op(Operation.W0 if fault_value == 0 else Operation.W1)
    items = []
    for v in values:
        sc = base.with_value(kind, v)
        items.append(BatchItem(ops=str(op),
                               init_vc=stored_level(model, 1 - fault_value,
                                                    sc),
                               stress=sc))
    metrics = [seq.vc_after[0] for seq in batch_run(model, items)]

    # In physical terms a weaker write leaves the cell *closer to the
    # opposite stored rail*.
    target = stored_level(model, 1 - fault_value)
    weakness = [abs(m - target) for m in metrics]
    vote = _vote_from_metric(values, [-w for w in weakness], tol)
    return PanelResult("write residual", list(values), metrics, vote)


def analyze_read_panel(model: ColumnModel, kind: StressKind,
                       values, fault_value: int,
                       base: StressConditions,
                       tol: float = NO_IMPACT_TOL,
                       vsa_tol: float = 0.008) -> PanelResult:
    """Probe the sense threshold across ST values.

    The stressful extreme moves ``Vsa`` toward mis-reading the fault
    value: for a ``w0`` fault, **down** (less room to detect 0); for a
    ``w1`` fault, **up**.
    """
    metrics = []
    for v in values:
        model.set_stress(base.with_value(kind, v))
        metrics.append(sense_threshold(model, tol=vsa_tol))
    model.set_stress(base)

    usable = [m for m in metrics if m is not None]
    if len(usable) != len(metrics):
        # Vsa vanished at some value — treat as maximally shifted there.
        vote = Vote.NON_MONOTONE
        return PanelResult("Vsa", list(values), metrics, vote)
    # Faulty direction: for a physical-0 fault the stress LOWERS Vsa; the
    # metric "badness" is -Vsa then.  fault_value here is the *stored*
    # level attacked, so map through the model's placement.
    on_true = getattr(model, "target_on_true", True)
    stored_fault = fault_value if on_true else 1 - fault_value
    badness = [-m if stored_fault == 0 else m for m in usable]
    vote = _vote_from_metric(values, badness, tol)
    return PanelResult("Vsa", list(values), metrics, vote)


def _vote_from_metric(values, badness, tol) -> Vote:
    """Vote from a 'more is more stressful' metric over ordered values."""
    lo, hi = badness[0], badness[-1]
    spread = max(badness) - min(badness)
    if spread < tol:
        return Vote.NONE
    interior_max = max(badness[1:-1], default=None)
    interior_min = min(badness[1:-1], default=None)
    if interior_max is not None and (
            interior_max > max(lo, hi) + tol
            or interior_min < min(lo, hi) - tol):
        return Vote.NON_MONOTONE
    if abs(hi - lo) < tol:
        return Vote.NON_MONOTONE
    return Vote.HIGH if hi > lo else Vote.LOW


def analyze_direction(model: ColumnModel, kind: StressKind,
                      fault_value: int, *,
                      base: StressConditions | None = None,
                      stress_range: StressRange | None = None,
                      probe_points: int = 3) -> DirectionCall:
    """Run both panels for one ST and decide (or flag a tie-break).

    Decision rules (paper Sec. 4):

    * panels agree on an extreme → that extreme ("agreement"),
    * one panel votes, the other has no impact → the voting panel,
    * conflict or non-monotonicity → BR tie-break between the extremes
      (plus the nominal value when the read panel is non-monotonic).
    """
    base = base or StressConditions()
    rng = stress_range or STRESS_RANGES[kind]
    if probe_points < 2:
        raise ValueError("need at least the two extremes")
    values = [rng.low, rng.nominal, rng.high] if probe_points >= 3 \
        else [rng.low, rng.high]

    wp = analyze_write_panel(model, kind, values, fault_value, base)
    rp = analyze_read_panel(model, kind, values, fault_value, base)

    def extreme(vote: Vote) -> float | None:
        if vote is Vote.LOW:
            return rng.low
        if vote is Vote.HIGH:
            return rng.high
        return None

    w_choice, r_choice = extreme(wp.vote), extreme(rp.vote)

    if w_choice is not None and (r_choice is None
                                 and rp.vote is Vote.NONE):
        return DirectionCall(kind, w_choice, "write", wp, rp, False)
    if r_choice is not None and (w_choice is None
                                 and wp.vote is Vote.NONE):
        return DirectionCall(kind, r_choice, "read", wp, rp, False)
    if w_choice is not None and r_choice is not None:
        if w_choice == r_choice:
            return DirectionCall(kind, w_choice, "agreement", wp, rp,
                                 False)
        # Conflict (the paper's Vdd case): BR tie-break on the extremes.
        return DirectionCall(kind, w_choice, "border", wp, rp, True,
                             tiebreak_candidates=[rng.low, rng.high])
    # Non-monotone read (the paper's temperature case): tie-break between
    # the write panel's pick and the nominal value.
    candidates = [rng.nominal]
    if w_choice is not None:
        candidates.append(w_choice)
    else:
        candidates.extend([rng.low, rng.high])
    chosen = candidates[-1]
    return DirectionCall(kind, chosen, "border", wp, rp, True,
                         tiebreak_candidates=candidates)
