"""Stress-optimization methodology — the paper's primary contribution.

This package implements Sections 2 and 4 of the paper:

* :mod:`repro.core.stresses` — stress (ST) and stress-combination (SC)
  datatypes, including the nominal point and specified ranges,
* :mod:`repro.core.directions` — the quick direction analysis of
  Sec. 4.1–4.3 (one write panel + one read panel per ST value),
* :mod:`repro.core.border` — border-resistance identification per SC and
  the "larger failing range" effectiveness criterion,
* :mod:`repro.core.optimizer` — the full per-defect optimization flow
  that produces Table-1 rows,
* :mod:`repro.core.shmoo` — the Shmoo-plot baseline of Sec. 2.
"""

from repro.core.stresses import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
    StressRange,
    nominal_stress,
)
from repro.core.directions import (
    DirectionCall,
    DirectionReport,
    PanelResult,
    Vote,
    analyze_direction,
    analyze_read_panel,
    analyze_write_panel,
    write_residual,
)
from repro.core.border import (
    border_improvement,
    failing_range_score,
    find_border_adaptive,
    find_border_resistance,
    more_effective,
)
from repro.core.optimizer import (
    DEFAULT_ST_KINDS,
    OptimizationRow,
    OptimizationTable,
    optimize_all_defects,
    optimize_defect,
    probe_resistance,
)
from repro.core.sensitivity import (
    SensitivityReport,
    StressSensitivity,
    stress_sensitivity,
)
from repro.core.shmoo import ShmooPlot, shmoo
from repro.core.statistical import (
    StatisticalResult,
    corner_combinations,
    statistical_optimization,
)

__all__ = [
    "DEFAULT_ST_KINDS",
    "DirectionCall",
    "DirectionReport",
    "NOMINAL_STRESS",
    "OptimizationRow",
    "OptimizationTable",
    "PanelResult",
    "STRESS_RANGES",
    "SensitivityReport",
    "ShmooPlot",
    "StatisticalResult",
    "StressConditions",
    "StressKind",
    "StressRange",
    "StressSensitivity",
    "Vote",
    "corner_combinations",
    "analyze_direction",
    "analyze_read_panel",
    "analyze_write_panel",
    "border_improvement",
    "failing_range_score",
    "find_border_adaptive",
    "find_border_resistance",
    "more_effective",
    "nominal_stress",
    "optimize_all_defects",
    "optimize_defect",
    "probe_resistance",
    "shmoo",
    "statistical_optimization",
    "stress_sensitivity",
    "write_residual",
]
