"""Canonical public home of the ST/SC datatypes.

The implementation lives in :mod:`repro.stress` (a leaf module, so the
low-level packages — dram, behav, analysis — can import it without
triggering this package's heavier initialisation).  This module re-exports
it under the documented ``repro.core`` namespace.
"""

from repro.stress import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
    StressRange,
    nominal_stress,
)

__all__ = [
    "NOMINAL_STRESS",
    "STRESS_RANGES",
    "StressConditions",
    "StressKind",
    "StressRange",
    "nominal_stress",
]
