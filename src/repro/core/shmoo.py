"""Shmoo plotting — the traditional optimization baseline (paper Sec. 2).

A Shmoo plot applies one test to the memory over a 2-D grid of two
stresses and records pass/fail per grid point.  The paper uses it as the
method its simulation approach improves upon: Shmoo plots show *where*
the device fails but not *why* (no internal observability), and cost one
full test execution per grid point.

This module reproduces the technique over the simulated memory so the
benchmarks can compare the two methodologies head-to-head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.interface import ColumnModel, opposite_rail_init
from repro.core.stresses import StressConditions, StressKind
from repro.dram.ops import format_ops, parse_ops
from repro.engine.model import BatchItem, batch_run


@dataclass
class ShmooPlot:
    """Pass/fail grid over two stress axes.

    ``grid[iy][ix]`` is True when the test PASSED at
    ``(x_values[ix], y_values[iy])``.
    """

    x_kind: StressKind
    y_kind: StressKind
    x_values: list[float]
    y_values: list[float]
    grid: list[list[bool]]
    test: str

    @property
    def fail_count(self) -> int:
        return sum(1 for row in self.grid for ok in row if not ok)

    @property
    def pass_count(self) -> int:
        return sum(1 for row in self.grid for ok in row if ok)

    def passed(self, ix: int, iy: int) -> bool:
        return self.grid[iy][ix]

    def render(self, pass_char: str = ".", fail_char: str = "X") -> str:
        """ASCII Shmoo rendering, y decreasing downward like a tester."""
        lines = [f"Shmoo: {self.test}   "
                 f"(x: {self.x_kind.value}, y: {self.y_kind.value})"]
        width = max(len(_fmt(v)) for v in self.y_values)
        for iy in reversed(range(len(self.y_values))):
            cells = "".join(pass_char if ok else fail_char
                            for ok in self.grid[iy])
            lines.append(f"{_fmt(self.y_values[iy]):>{width}} |{cells}|")
        axis = " " * (width + 2) + "".join("-" for _ in self.x_values)
        lines.append(axis)
        lines.append(" " * (width + 2)
                     + f"{_fmt(self.x_values[0])} .. "
                       f"{_fmt(self.x_values[-1])}")
        return "\n".join(lines)


def _fmt(v: float) -> str:
    if abs(v) >= 1e-3 or v == 0:
        return f"{v:.3g}"
    return f"{v * 1e9:.3g}n"


def shmoo(model: ColumnModel, test: str, *,
          x_kind: StressKind, x_values: Sequence[float],
          y_kind: StressKind, y_values: Sequence[float],
          base: StressConditions | None = None) -> ShmooPlot:
    """Run ``test`` at every grid point and record pass/fail.

    ``test`` is an operation-sequence string (e.g. ``"w1^2 w0 r0"``); a
    point *fails* when any expecting read observes the wrong value —
    which for a defective device is what the test designer wants.

    The whole grid executes as one engine batch — every point is an
    independent simulation, so the Shmoo parallelises perfectly on an
    engine-backed model.
    """
    if x_kind is y_kind:
        raise ValueError("x and y must be different stresses")
    base = base or model.stress
    ops = parse_ops(test)
    canonical = format_ops(ops)
    items = []
    for y in y_values:
        for x in x_values:
            sc = base.with_value(x_kind, x).with_value(y_kind, y)
            items.append(BatchItem(ops=canonical,
                                   init_vc=opposite_rail_init(model, ops,
                                                              sc),
                                   stress=sc))
    outcomes = iter(batch_run(model, items))
    grid = [[not next(outcomes).any_fault for _ in x_values]
            for _ in y_values]
    return ShmooPlot(x_kind, y_kind, list(x_values), list(y_values),
                     grid, test)
