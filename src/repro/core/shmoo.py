"""Shmoo plotting — the traditional optimization baseline (paper Sec. 2).

A Shmoo plot applies one test to the memory over a 2-D grid of two
stresses and records pass/fail per grid point.  The paper uses it as the
method its simulation approach improves upon: Shmoo plots show *where*
the device fails but not *why* (no internal observability), and cost one
full test execution per grid point.

This module reproduces the technique over the simulated memory so the
benchmarks can compare the two methodologies head-to-head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.interface import ColumnModel, opposite_rail_init
from repro.core.stresses import StressConditions, StressKind
from repro.dram.ops import format_ops, parse_ops
from repro.engine.failures import is_failed
from repro.engine.model import BatchItem, batch_run


@dataclass
class ShmooPlot:
    """Pass/fail grid over two stress axes.

    ``grid[iy][ix]`` is True when the test PASSED at
    ``(x_values[ix], y_values[iy])``, False when it failed, and ``None``
    when the simulation of that point itself failed (a hole, only
    produced under ``on_error="isolate"``).
    """

    x_kind: StressKind
    y_kind: StressKind
    x_values: list[float]
    y_values: list[float]
    grid: list[list[bool | None]]
    test: str

    @property
    def fail_count(self) -> int:
        return sum(1 for row in self.grid for ok in row if ok is False)

    @property
    def pass_count(self) -> int:
        return sum(1 for row in self.grid for ok in row if ok is True)

    @property
    def n_failed(self) -> int:
        """Grid points whose simulation produced no result (holes)."""
        return sum(1 for row in self.grid for ok in row if ok is None)

    def passed(self, ix: int, iy: int) -> bool | None:
        return self.grid[iy][ix]

    def render(self, pass_char: str = ".", fail_char: str = "X",
               hole_char: str = "?") -> str:
        """ASCII Shmoo rendering, y decreasing downward like a tester."""
        lines = [f"Shmoo: {self.test}   "
                 f"(x: {self.x_kind.value}, y: {self.y_kind.value})"]
        width = max(len(_fmt(v)) for v in self.y_values)
        for iy in reversed(range(len(self.y_values))):
            cells = "".join(hole_char if ok is None
                            else pass_char if ok else fail_char
                            for ok in self.grid[iy])
            lines.append(f"{_fmt(self.y_values[iy]):>{width}} |{cells}|")
        axis = " " * (width + 2) + "".join("-" for _ in self.x_values)
        lines.append(axis)
        lines.append(" " * (width + 2)
                     + f"{_fmt(self.x_values[0])} .. "
                       f"{_fmt(self.x_values[-1])}")
        if self.n_failed:
            lines.append(f"({self.n_failed} grid points did not "
                         f"simulate: '{hole_char}')")
        return "\n".join(lines)


def _fmt(v: float) -> str:
    if abs(v) >= 1e-3 or v == 0:
        return f"{v:.3g}"
    return f"{v * 1e9:.3g}n"


def shmoo(model: ColumnModel, test: str, *,
          x_kind: StressKind, x_values: Sequence[float],
          y_kind: StressKind, y_values: Sequence[float],
          base: StressConditions | None = None,
          on_error: str | None = None) -> ShmooPlot:
    """Run ``test`` at every grid point and record pass/fail.

    ``test`` is an operation-sequence string (e.g. ``"w1^2 w0 r0"``); a
    point *fails* when any expecting read observes the wrong value —
    which for a defective device is what the test designer wants.

    The whole grid executes as one engine batch — every point is an
    independent simulation, so the Shmoo parallelises perfectly on an
    engine-backed model.  Under fault isolation
    (``on_error="isolate"``, or an engine default of the same) a grid
    point whose simulation fails becomes a ``None`` hole instead of
    aborting the plot.
    """
    if x_kind is y_kind:
        raise ValueError("x and y must be different stresses")
    base = base or model.stress
    ops = parse_ops(test)
    canonical = format_ops(ops)
    items = []
    for y in y_values:
        for x in x_values:
            sc = base.with_value(x_kind, x).with_value(y_kind, y)
            items.append(BatchItem(ops=canonical,
                                   init_vc=opposite_rail_init(model, ops,
                                                              sc),
                                   stress=sc))
    outcomes = iter(batch_run(model, items, on_error=on_error))
    grid: list[list[bool | None]] = []
    for _ in y_values:
        row: list[bool | None] = []
        for _ in x_values:
            seq = next(outcomes)
            row.append(None if is_failed(seq) else not seq.any_fault)
        grid.append(row)
    return ShmooPlot(x_kind, y_kind, list(x_values), list(y_values),
                     grid, test)
