"""Statistical stress-combination optimization — the prior-art baseline.

The paper's introduction criticises earlier studies ([Schanstra99],
[Goto97]) for optimizing stresses *statistically*: run a test over a
defect population at every candidate SC and pick the single combination
with the best aggregate coverage.  Such "general conclusions … are not
representative of the behaviour of a particular defect".

This module implements that baseline faithfully so the benchmarks can
compare it against the paper's per-defect method:

* the candidate SCs are the corner combinations of the specified ST
  ranges (2^k corners),
* the defect population samples every catalog defect over its resistance
  range,
* the score of an SC is the number of (defect, resistance) points at
  which a probe test detects a fault.

The headline result reproduced by ``bench_statistical_baseline``: the
single statistically-best SC matches the per-defect optimum for *most*
defects but is strictly worse for the defects whose best direction
disagrees with the majority (e.g. the Vdd direction of ``Sg``) — which
is exactly the paper's argument for per-defect optimization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.interface import ColumnModel, opposite_rail_init
from repro.analysis.planes import log_grid
from repro.core.stresses import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
)
from repro.defects.catalog import ALL_DEFECTS, Defect
from repro.dram.ops import parse_ops
from repro.engine import BatchExecutor, ResultCache, default_engine, \
    parallel_map, set_default_engine

#: Probe battery used to score SCs.  Besides the border-search family it
#: includes delay (nop) variants that sensitise retention-flavoured
#: defects — those prefer *longer* cycles, which is what creates the
#: per-defect conflicts the aggregate SC cannot satisfy.
PROBE_SEQUENCES = ("w1^4 w0 r0", "w0^4 w1 r1", "w1 r1 r1", "w0 r0 r0",
                   "w1 nop^3 r1", "w0 nop^3 r0")


def corner_combinations(kinds: Sequence[StressKind] = tuple(StressKind),
                        base: StressConditions = NOMINAL_STRESS
                        ) -> list[StressConditions]:
    """All 2^k extreme-corner SCs of the given stress axes."""
    corners = []
    axes = [(kind, STRESS_RANGES[kind].extremes) for kind in kinds]
    for values in itertools.product(*(ext for _, ext in axes)):
        sc = base
        for (kind, _), value in zip(axes, values):
            sc = sc.with_value(kind, value)
        corners.append(sc)
    return corners


@dataclass
class PopulationPoint:
    """One member of the defect population."""

    defect: Defect

    @property
    def label(self) -> str:
        return f"{self.defect.name} R={self.defect.resistance:.3g}"


def sample_population(defects: Sequence[Defect] = ALL_DEFECTS,
                      points_per_defect: int = 5,
                      model_factory: Callable[[Defect, StressConditions],
                                              ColumnModel] | None = None,
                      focus_span: float = 3.0) -> list[PopulationPoint]:
    """Sample each defect's resistance range.

    Without a ``model_factory`` the whole search range is log-sampled.
    With one, the population focuses on each defect's *marginal band* —
    ``[BR/focus_span, BR*focus_span]`` around the nominal border — which
    is both the realistic escape population (gross defects are caught at
    any SC) and the band where the SC choice actually matters.
    """
    from repro.core.border import find_border_resistance

    population = []
    for defect in defects:
        lo, hi = defect.kind.search_range
        if model_factory is not None:
            model = model_factory(defect, NOMINAL_STRESS)
            border = find_border_resistance(model, defect,
                                            stress=NOMINAL_STRESS,
                                            sequences=PROBE_SEQUENCES,
                                            rel_tol=0.1)
            if border.found:
                lo = max(lo, border.resistance / focus_span)
                hi = min(hi, border.resistance * focus_span)
        for r_ohm in log_grid(lo, hi, points_per_defect):
            population.append(
                PopulationPoint(defect.with_resistance(r_ohm)))
    return population


def _detects(model: ColumnModel) -> bool:
    for text in PROBE_SEQUENCES:
        ops = parse_ops(text)
        init = opposite_rail_init(model, ops)
        if model.run_sequence(ops, init_vc=init).any_fault:
            return True
    return False


@dataclass
class StatisticalResult:
    """Outcome of the statistical (aggregate) optimization."""

    candidates: list[StressConditions]
    #: detected counts per candidate SC (aligned with ``candidates``)
    scores: list[int]
    population_size: int
    #: per-(candidate, defect-name) detected counts
    per_defect: dict[str, list[int]] = field(default_factory=dict)

    @property
    def best_index(self) -> int:
        return max(range(len(self.scores)), key=self.scores.__getitem__)

    @property
    def best_sc(self) -> StressConditions:
        return self.candidates[self.best_index]

    @property
    def best_score(self) -> int:
        return self.scores[self.best_index]

    def best_for_defect(self, name: str) -> StressConditions:
        """The SC that would have been best for one defect alone."""
        counts = self.per_defect[name]
        return self.candidates[max(range(len(counts)),
                                   key=counts.__getitem__)]

    def aggregate_loss(self, name: str) -> int:
        """Detections lost on ``name`` by using the aggregate-best SC."""
        counts = self.per_defect[name]
        return max(counts) - counts[self.best_index]

    def describe(self) -> str:
        lines = [f"statistical optimization over "
                 f"{len(self.candidates)} corner SCs, population "
                 f"{self.population_size}:",
                 f"  best SC: {self.best_sc.describe()} "
                 f"({self.best_score}/{self.population_size} detected)"]
        for name in sorted(self.per_defect):
            loss = self.aggregate_loss(name)
            if loss:
                lines.append(f"  {name}: aggregate SC loses {loss} "
                             f"detection(s) vs its own best")
        return "\n".join(lines)


def _detect_row_task(args) -> tuple[list[bool], object]:
    """Score one population point over every candidate SC.

    Module-level so :func:`repro.engine.parallel_map` can ship it to a
    process pool; installs a fresh serial engine in the worker so a
    pooled parent cannot recurse into nested pools.
    """
    defect, candidates, model_factory = args
    previous = default_engine()
    engine = BatchExecutor(cache=ResultCache(), workers=1)
    set_default_engine(engine)
    try:
        row = [_detects(model_factory(defect, sc)) for sc in candidates]
    finally:
        set_default_engine(previous)
    return row, engine.stats


def statistical_optimization(
        model_factory: Callable[[Defect, StressConditions], ColumnModel],
        *, defects: Sequence[Defect] = ALL_DEFECTS,
        kinds: Sequence[StressKind] = (StressKind.VDD, StressKind.TCYC,
                                       StressKind.TEMP),
        points_per_defect: int = 5,
        base: StressConditions = NOMINAL_STRESS,
        workers: int = 1) -> StatisticalResult:
    """Run the prior-art aggregate optimization.

    Every (population point × candidate SC) probe is independent, so
    ``workers > 1`` fans the per-point scoring out over a process pool;
    scores are tallied in population order either way, so the result is
    identical to the serial run.
    """
    candidates = corner_combinations(kinds, base)
    population = sample_population(defects, points_per_defect,
                                   model_factory=model_factory)
    scores = [0] * len(candidates)
    per_defect: dict[str, list[int]] = {}

    if workers <= 1:
        rows = []
        for point in population:
            rows.append([_detects(model_factory(point.defect, sc))
                         for sc in candidates])
    else:
        tasks = [(point.defect, candidates, model_factory)
                 for point in population]
        stats = default_engine().stats
        rows = []
        for row, worker_stats in parallel_map(_detect_row_task, tasks,
                                              workers=workers):
            rows.append(row)
            stats.merge(worker_stats)

    for point, row in zip(population, rows):
        name = point.defect.name
        counts = per_defect.setdefault(name, [0] * len(candidates))
        for i, detected in enumerate(row):
            if detected:
                scores[i] += 1
                counts[i] += 1
    return StatisticalResult(candidates, scores, len(population),
                             per_defect)
