"""Border-resistance identification per stress combination.

Thin wrapper over :mod:`repro.analysis.border` that knows about defect
polarity and the optimization criterion of Sec. 3:

    *Optimizing a given ST should modify the value of BR in that
    direction which maximizes the resistance range that results in a
    detectable functional fault.*

i.e. an SC is better when it pushes the border **down** for opens
(failing range is above BR) and **up** for shorts/bridges (failing range
is below BR).
"""

from __future__ import annotations

from repro.analysis.border import BorderResult, border_resistance
from repro.analysis.curves import BorderScan, border_crossing_scan
from repro.analysis.interface import ColumnModel
from repro.analysis.planes import log_grid
from repro.core.stresses import StressConditions
from repro.defects.catalog import Defect


def find_border_resistance(model: ColumnModel, defect: Defect, *,
                           stress: StressConditions | None = None,
                           sequences=None,
                           rel_tol: float = 0.05,
                           on_error: str = "raise",
                           prior: float | None = None,
                           surrogate=None) -> BorderResult:
    """BR of ``defect`` under ``stress`` (or the model's current SC).

    ``on_error="isolate"`` lets the search survive failed probes (see
    :func:`repro.analysis.border.border_resistance`).

    ``prior`` seeds the bisection bracket (same exact-result guarantee
    as :func:`repro.analysis.border.border_resistance`).  ``surrogate``
    selects the answer-tier policy: ``None`` consults the process-wide
    active tier (:func:`repro.surrogate.active_tier`), ``False`` forces
    a plain electrical search, a :class:`~repro.surrogate.SurrogateTier`
    overrides.  With a tier engaged, serve mode may answer surrogate-only
    under its uncertainty bound; otherwise the tier supplies the prior
    and journals the electrical result as a calibration point.
    """
    if stress is not None:
        model.set_stress(stress)
    r_lo, r_hi = defect.kind.search_range

    tier = None
    if surrogate is not False:
        from repro.surrogate.tier import resolve_tier
        tier = resolve_tier(surrogate)
        if tier is not None and (sequences is not None
                                 or not tier.applies_to(model)):
            tier = None
    query_stress = stress if stress is not None else \
        getattr(model, "stress", None)
    if tier is not None and query_stress is not None:
        served = tier.serve_br(defect, query_stress,
                               rel_tol=rel_tol)
        if served is not None:
            return served
        if prior is None:
            prior = tier.br_prior(defect, query_stress, rel_tol=rel_tol)

    result = border_resistance(model, fails_high=defect.fails_high,
                               r_lo=r_lo, r_hi=r_hi, sequences=sequences,
                               rel_tol=rel_tol, on_error=on_error,
                               prior=prior)
    if tier is not None and query_stress is not None:
        tier.record_br(defect, query_stress, result, rel_tol=rel_tol)
    return result


def find_border_adaptive(model: ColumnModel, defect: Defect, *,
                         stress: StressConditions | None = None,
                         points: int = 24,
                         resistances=None,
                         n_writes: int = 2, vsa_tol: float = 0.01,
                         on_error: str | None = None,
                         prior: float | None = None) -> BorderScan:
    """Adaptive BR via the ``(1) w0`` settle × ``Vsa`` crossing.

    The curve-crossing counterpart of a dense
    :func:`~repro.analysis.planes.result_planes` +
    ``border_estimate()`` run: the same ``points``-point log grid over
    the defect's search range, but only a coarse lattice plus an index
    bisection is simulated (see
    :func:`~repro.analysis.curves.border_crossing_scan`), so the BR
    comes back at dense-grid resolution for a fraction of the transient
    solves.  ``resistances`` overrides the grid entirely (``points`` is
    then ignored).  ``prior`` (a resistance estimate, e.g. from the
    surrogate tier) starts the scan's bracketing at the nearest grid
    index instead of the coarse lattice — same crossing, fewer probes.
    """
    if stress is not None:
        model.set_stress(stress)
    if resistances is None:
        r_lo, r_hi = defect.kind.search_range
        resistances = log_grid(r_lo, r_hi, points)
    return border_crossing_scan(model, resistances, n_writes=n_writes,
                                vsa_tol=vsa_tol, on_error=on_error,
                                prior=prior)


def border_improvement(defect: Defect, nominal: BorderResult,
                       stressed: BorderResult) -> float | None:
    """Signed improvement of the failing range (ohms; positive = better).

    For opens the improvement is ``BR_nom - BR_str`` (border pushed
    down); for shorts/bridges it is ``BR_str - BR_nom``.  Degenerate
    results map to ±infinity-ish sentinels:

    * stressed always-faulty → the whole range fails → best possible,
    * stressed never-faulty → worst possible,
    * ``None`` when the nominal result is degenerate both ways (nothing
      to compare).
    """
    if nominal.always_faulty and stressed.always_faulty:
        return 0.0
    if stressed.always_faulty:
        return float("inf")
    if stressed.never_faulty:
        return float("-inf")
    if not (nominal.found and stressed.found):
        return None
    delta = nominal.resistance - stressed.resistance
    return delta if defect.fails_high else -delta


def more_effective(defect: Defect, a: BorderResult,
                   b: BorderResult) -> bool:
    """True when border ``a`` indicates a larger failing range than ``b``."""
    score_a = failing_range_score(defect, a)
    score_b = failing_range_score(defect, b)
    return score_a > score_b


def failing_range_score(defect: Defect, border: BorderResult) -> float:
    """Scalar 'size of the failing range' (larger = more effective SC).

    Opens score by how *low* the border sits, shorts/bridges by how
    high; degenerate outcomes map to ±inf.
    """
    if border.always_faulty:
        return float("inf")
    if border.never_faulty or not border.found:
        return float("-inf")
    return -border.resistance if defect.fails_high else border.resistance


# backwards-compatible private alias
_range_score = failing_range_score
