"""Quantitative stress sensitivity of the border resistance.

The paper's direction analysis answers *which way* to push each ST; a
test engineer negotiating tester limits also wants to know *how much* a
stress buys.  This module estimates the sensitivity

    ``S(kind) = d(BR) / d(ST)``

by central finite differences of the border resistance around a stress
point, normalised per "specified excursion" (the ST's low→high span), so
the sensitivities of different stresses are directly comparable:

    ``S_norm(kind) = (BR(high) - BR(low)) / BR(nominal)``

A negative normalised sensitivity for an open means pushing the ST from
low to high *shrinks* the border (extends the failing range upward... see
:meth:`StressSensitivity.favours_high`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.interface import ColumnModel
from repro.core.border import find_border_resistance
from repro.core.stresses import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
)
from repro.defects.catalog import Defect


@dataclass(frozen=True)
class StressSensitivity:
    """Border sensitivity of one defect to one stress axis."""

    kind: StressKind
    defect: Defect
    br_low: float | None
    br_nominal: float | None
    br_high: float | None

    @property
    def defined(self) -> bool:
        return None not in (self.br_low, self.br_nominal, self.br_high)

    @property
    def normalised(self) -> float | None:
        """``(BR(high) - BR(low)) / BR(nominal)`` over the spec range."""
        if not self.defined:
            return None
        return (self.br_high - self.br_low) / self.br_nominal

    @property
    def favours_high(self) -> bool | None:
        """True when the high extreme extends the failing range."""
        if not self.defined:
            return None
        if self.defect.fails_high:   # opens: smaller border is better
            return self.br_high < self.br_low
        return self.br_high > self.br_low

    def describe(self) -> str:
        if not self.defined:
            return f"{self.kind.value}: border not found at some value"
        pick = "high" if self.favours_high else "low"
        return (f"{self.kind.value}: BR {self.br_low:.3g} / "
                f"{self.br_nominal:.3g} / {self.br_high:.3g} ohm "
                f"(low/nom/high), normalised {self.normalised:+.2%}, "
                f"favours {pick}")


@dataclass
class SensitivityReport:
    """Sensitivities of one defect over all stress axes."""

    defect: Defect
    sensitivities: dict[StressKind, StressSensitivity]

    def ranked(self) -> list[StressSensitivity]:
        """Most influential stress first (by |normalised| sensitivity)."""
        defined = [s for s in self.sensitivities.values() if s.defined]
        return sorted(defined, key=lambda s: -abs(s.normalised))

    def render(self) -> str:
        lines = [f"border sensitivity of {self.defect.name}:"]
        lines.extend("  " + s.describe() for s in self.ranked())
        return "\n".join(lines)


def stress_sensitivity(
        model_factory: Callable[[Defect, StressConditions], ColumnModel],
        defect: Defect, *,
        kinds=tuple(StressKind),
        base: StressConditions = NOMINAL_STRESS,
        rel_tol: float = 0.04) -> SensitivityReport:
    """Finite-difference BR sensitivities over the specified ST ranges."""
    model = model_factory(defect, base)

    def border_at(sc: StressConditions) -> float | None:
        result = find_border_resistance(model, defect, stress=sc,
                                        rel_tol=rel_tol)
        return result.resistance if result.found else None

    br_nominal = border_at(base)
    out: dict[StressKind, StressSensitivity] = {}
    for kind in kinds:
        rng = STRESS_RANGES[kind]
        br_low = border_at(base.with_value(kind, rng.low))
        br_high = border_at(base.with_value(kind, rng.high))
        out[kind] = StressSensitivity(kind, defect, br_low, br_nominal,
                                      br_high)
    return SensitivityReport(defect, out)
