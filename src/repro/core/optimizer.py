"""The full per-defect stress-optimization flow (paper Sec. 4 + Table 1).

For one defect:

1. identify the nominal border resistance (BR),
2. derive the nominal detection condition just inside the failing range,
3. run the quick direction analysis per ST (write/read panels), falling
   back to BR tie-breaks on conflicts and non-monotonicities,
4. compose the stress combination (SC) from the chosen extremes,
5. re-identify BR under the SC and re-derive the detection condition
   (which may need more charge operations — Fig. 6).

:func:`optimize_all_defects` runs the flow over the whole Fig. 7 catalog
and renders the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.border import BorderResult
from repro.analysis.detection import (
    DetectionCondition,
    derive_detection_condition,
)
from repro.analysis.interface import ColumnModel, electrical_model
from repro.core.border import find_border_resistance, more_effective
from repro.core.directions import DirectionCall, analyze_direction
from repro.core.stresses import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
)
from repro.defects.catalog import ALL_DEFECTS, Defect, DefectKind, Placement
from repro.engine import BatchExecutor, FailedResult, ResultCache, \
    default_engine, parallel_map, set_default_engine

#: Default ST axes optimized, in the paper's Table-1 column order.
DEFAULT_ST_KINDS = (StressKind.VDD, StressKind.TCYC, StressKind.DUTY,
                    StressKind.TEMP)


def _default_model_factory(defect: Defect,
                           stress: StressConditions) -> ColumnModel:
    """Behavioral by default — see :mod:`repro.behav`."""
    from repro.behav import behavioral_model
    return behavioral_model(defect, stress=stress)


def probe_resistance(defect: Defect, border: BorderResult,
                     margin: float = 1.3) -> float:
    """A resistance just inside the failing range of a border result."""
    r_lo, r_hi = defect.kind.search_range
    if border.always_faulty:
        return (r_lo * r_hi) ** 0.5
    if not border.found:
        return r_hi if defect.fails_high else r_lo
    raw = border.resistance * margin if defect.fails_high \
        else border.resistance / margin
    return min(max(raw, r_lo), r_hi)


@dataclass
class OptimizationRow:
    """One Table-1 row: a defect's full optimization outcome."""

    defect: Defect
    nominal_border: BorderResult
    nominal_detection: DetectionCondition | None
    fault_value: int
    directions: dict[StressKind, DirectionCall]
    stressed_conditions: StressConditions
    stressed_border: BorderResult
    stressed_detection: DetectionCondition | None
    tiebreak_borders: dict[StressKind, dict[float, BorderResult]] = \
        field(default_factory=dict)

    @property
    def n_failed_probes(self) -> int:
        """Probes lost to simulation failures across this row's searches."""
        total = (self.nominal_border.n_failed_probes
                 + self.stressed_border.n_failed_probes)
        for per_value in self.tiebreak_borders.values():
            total += sum(b.n_failed_probes for b in per_value.values())
        return total

    @property
    def improved(self) -> bool:
        """Did the SC extend the failing resistance range?"""
        nom, st = self.nominal_border, self.stressed_border
        if st.always_faulty:
            return not nom.always_faulty
        if not (nom.found and st.found):
            return False
        if self.defect.fails_high:
            return st.resistance < nom.resistance
        return st.resistance > nom.resistance

    def direction_arrows(self) -> dict[StressKind, str]:
        return {k: c.arrow for k, c in self.directions.items()}

    def describe(self) -> str:
        arrows = " ".join(f"{k.value}{c.arrow}"
                          for k, c in self.directions.items())
        nom = self.nominal_border.describe()
        st = self.stressed_border.describe()
        det = (self.stressed_detection.notation()
               if self.stressed_detection else "-")
        return (f"{self.defect.name}: nominal {nom}; stress {arrows}; "
                f"stressed {st}; detection {det}")


def optimize_defect(defect: Defect | DefectKind, *,
                    placement: Placement = Placement.TRUE,
                    model_factory: Callable[[Defect, StressConditions],
                                            ColumnModel] | None = None,
                    base_stress: StressConditions = NOMINAL_STRESS,
                    st_kinds=DEFAULT_ST_KINDS,
                    br_rel_tol: float = 0.05,
                    on_error: str = "raise") -> OptimizationRow:
    """Run the full optimization flow for one defect.

    ``defect`` may be a bare :class:`DefectKind` (combined with
    ``placement``) or a fully-specified :class:`Defect`.
    ``model_factory`` selects the simulation backend (behavioral by
    default; pass :func:`repro.analysis.electrical_model` for the
    SPICE-level column).  ``on_error="isolate"`` makes the border
    searches survive failed probes at reduced accuracy.
    """
    if isinstance(defect, DefectKind):
        defect = Defect(defect, placement)
    factory = model_factory or _default_model_factory
    model = factory(defect, base_stress)

    # 1. nominal border + detection condition
    nominal_border = find_border_resistance(model, defect,
                                            stress=base_stress,
                                            rel_tol=br_rel_tol,
                                            on_error=on_error)
    r_probe = probe_resistance(defect, nominal_border)
    model.set_stress(base_stress)
    nominal_detection = derive_detection_condition(model, r_probe)

    # 2. fault polarity: the value whose storage the defect destroys
    fault_value = (nominal_detection.expected
                   if nominal_detection is not None else 0)

    # 3. per-ST direction analysis at the probe resistance
    model.set_defect_resistance(r_probe)
    from repro.surrogate.tier import resolve_tier
    tier = resolve_tier(None)
    if tier is not None and not (tier.serves and tier.applies_to(model)):
        tier = None
    directions: dict[StressKind, DirectionCall] = {}
    tiebreaks: dict[StressKind, dict[float, BorderResult]] = {}
    for kind in st_kinds:
        if tier is not None:
            served = tier.serve_direction(defect, kind, fault_value,
                                          base=base_stress,
                                          r_probe=r_probe,
                                          rel_tol=br_rel_tol)
            if served is not None:
                directions[kind] = served
                continue
        call = analyze_direction(model, kind, fault_value,
                                 base=base_stress)
        if call.needs_border_tiebreak:
            per_value: dict[float, BorderResult] = {}
            best_value, best_border = None, None
            for value in call.tiebreak_candidates:
                sc = base_stress.with_value(kind, value)
                # A tie-break the surrogate could not separate must be
                # decided by real electrical borders — the prior view
                # keeps the bracket seeding (and journals the results)
                # without surrogate-only serving.
                border = find_border_resistance(
                    model, defect, stress=sc, rel_tol=br_rel_tol,
                    on_error=on_error,
                    surrogate=tier.prior_view() if tier is not None
                    else None)
                per_value[value] = border
                if best_border is None or more_effective(defect, border,
                                                         best_border):
                    best_value, best_border = value, border
            call.chosen_value = best_value
            tiebreaks[kind] = per_value
            model.set_defect_resistance(r_probe)
        directions[kind] = call

    # 4. compose the SC and re-analyse under it
    stressed = base_stress
    for kind, call in directions.items():
        stressed = stressed.with_value(kind, call.chosen_value)
    stressed_border = find_border_resistance(model, defect,
                                             stress=stressed,
                                             rel_tol=br_rel_tol,
                                             on_error=on_error)

    # 5. stressed detection condition, derived inside the newly-failing
    #    range (between the stressed and nominal borders when possible)
    r_str = probe_resistance(defect, stressed_border)
    if nominal_border.found and stressed_border.found:
        r_str = (nominal_border.resistance
                 * stressed_border.resistance) ** 0.5
    model.set_stress(stressed)
    stressed_detection = derive_detection_condition(model, r_str)

    model.set_stress(base_stress)
    return OptimizationRow(
        defect=defect,
        nominal_border=nominal_border,
        nominal_detection=nominal_detection,
        fault_value=fault_value,
        directions=directions,
        stressed_conditions=stressed,
        stressed_border=stressed_border,
        stressed_detection=stressed_detection,
        tiebreak_borders=tiebreaks,
    )


@dataclass
class OptimizationTable:
    """The full Table 1: one row per (defect kind, placement).

    ``failures`` holds a :class:`~repro.engine.failures.FailedResult`
    per defect whose whole flow failed under ``on_error="isolate"``
    (those defects have no row); clean runs leave it empty.
    """

    rows: list[OptimizationRow]
    failures: list[FailedResult] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        """Defects dropped from the table by simulation failures."""
        return len(self.failures)

    @property
    def n_failed_probes(self) -> int:
        """Failed probes absorbed by the surviving rows' searches."""
        return sum(row.n_failed_probes for row in self.rows)

    def row(self, kind: DefectKind, placement: Placement
            ) -> OptimizationRow:
        for row in self.rows:
            if (row.defect.kind is kind
                    and row.defect.placement is placement):
                return row
        raise KeyError(f"no row for {kind} {placement}")

    def render(self) -> str:
        """Text rendering in the shape of the paper's Table 1."""
        from repro.report.tables import render_optimization_table
        return render_optimization_table(self)


def _defect_failure(defect: Defect, exc: Exception) -> FailedResult:
    """A structured record for a defect whose whole flow failed."""
    return FailedResult(
        error_type=type(exc).__name__, message=str(exc),
        rescue_trail=tuple(getattr(exc, "rescue_trail", None) or ()),
        request_summary=f"optimize {defect.name}")


def _optimize_task(args) -> tuple[OptimizationRow | FailedResult, object]:
    """Worker body of the per-defect fan-out (module-level: picklable).

    Each worker gets a fresh serial default engine — the parent may be
    running a pool already, and nested pools would oversubscribe.  The
    per-worker engine stats are returned so the parent can merge them.
    """
    defect, model_factory, base_stress, st_kinds, br_rel_tol, \
        on_error = args
    previous = default_engine()
    engine = BatchExecutor(cache=ResultCache(), workers=1)
    set_default_engine(engine)
    try:
        row = optimize_defect(defect, model_factory=model_factory,
                              base_stress=base_stress, st_kinds=st_kinds,
                              br_rel_tol=br_rel_tol, on_error=on_error)
    except Exception as exc:
        if on_error != "isolate":
            raise
        return _defect_failure(defect, exc), engine.stats
    finally:
        set_default_engine(previous)
    return row, engine.stats


def optimize_all_defects(*, model_factory=None,
                         base_stress: StressConditions = NOMINAL_STRESS,
                         st_kinds=DEFAULT_ST_KINDS,
                         br_rel_tol: float = 0.05,
                         defects=ALL_DEFECTS,
                         workers: int = 1,
                         on_error: str = "raise") -> OptimizationTable:
    """Run the optimization flow over the Fig. 7 catalog (Table 1).

    Every defect's flow is independent, so ``workers > 1`` fans the
    per-defect × per-ST work out over a process pool (``model_factory``
    must then be picklable — a module-level function or
    ``functools.partial``; closures fall back to the serial loop).  Row
    order, and therefore the rendered table, is identical either way.

    ``on_error="isolate"`` contains failures at two levels: probe
    failures degrade the affected border search, and a defect whose
    flow still fails is dropped into ``OptimizationTable.failures``
    instead of aborting the whole table.
    """
    if workers <= 1:
        rows: list[OptimizationRow] = []
        failures: list[FailedResult] = []
        for d in defects:
            try:
                rows.append(optimize_defect(d, model_factory=model_factory,
                                            base_stress=base_stress,
                                            st_kinds=st_kinds,
                                            br_rel_tol=br_rel_tol,
                                            on_error=on_error))
            except Exception as exc:
                if on_error != "isolate":
                    raise
                failures.append(_defect_failure(
                    d if isinstance(d, Defect) else Defect(d), exc))
        _record_failures(failures)
        return OptimizationTable(rows, failures=failures)
    tasks = [(d, model_factory, base_stress, st_kinds, br_rel_tol,
              on_error)
             for d in defects]
    outcomes = parallel_map(_optimize_task, tasks, workers=workers)
    stats = default_engine().stats
    rows = []
    failures = []
    for outcome, worker_stats in outcomes:
        if isinstance(outcome, FailedResult):
            failures.append(outcome)
        else:
            rows.append(outcome)
        stats.merge(worker_stats)
    _record_failures(failures)
    return OptimizationTable(rows, failures=failures)


def _record_failures(failures: list[FailedResult]) -> None:
    from repro.diagnostics import diagnostics
    for failure in failures:
        diagnostics().record_failure(failure.error_type,
                                     failure.describe())
