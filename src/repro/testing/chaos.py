"""Deterministic fault injection for the durability layer.

Durability claims ("kill-and-resume reproduces identical output",
"corruption never poisons results", "concurrent writers never lose
entries") are only as good as the faults they were tested against.
This module injects those faults *deterministically*, so a chaos test
that fails fails the same way every time:

* :class:`ChaosPlan` — a seed-driven per-request fault schedule.  The
  fault drawn for a request depends only on ``(seed, content hash)``,
  and each drawn fault fires **once** (claimed through an atomic marker
  file in ``state_dir``, so the claim holds across worker processes and
  pool respawns — a crashed request succeeds when retried instead of
  crash-looping forever).
* :func:`chaos_execute` / :func:`chaos_work_fn` — a drop-in
  ``work_fn`` for :class:`~repro.engine.executor.BatchExecutor` that
  injects worker crashes (``os._exit``), forced
  :class:`~repro.spice.errors.ConvergenceError` and timeout stalls in
  front of the real :func:`~repro.engine.executor.execute_request`.
* :func:`corrupt_entry` / :func:`corrupt_store` — damage
  :class:`~repro.store.sharded.ShardedStore` entries on disk
  (truncation, bit flips, garbage, foreign format version) the way a
  crashed writer or rotting disk would.
* :func:`run_cli_killed_mid_sweep` — spawn a checkpointed
  ``python -m repro`` sweep and SIGKILL/SIGTERM it mid-run, triggered
  by journal growth so the kill lands at a deterministic amount of
  completed work regardless of machine speed.
"""

from __future__ import annotations

import functools
import hashlib
import os
import signal
import struct
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.engine.executor import execute_request
from repro.spice.errors import ConvergenceError
from repro.store.sharded import _HEADER, MAGIC, ShardedStore

#: Fault kinds a :class:`ChaosPlan` can draw.
FAULT_CRASH = "crash"
FAULT_CONVERGENCE = "convergence"
FAULT_STALL = "stall"

#: Exit code of an injected worker crash (distinctive in pool logs).
CRASH_EXIT_CODE = 23

#: Corruption modes of :func:`corrupt_entry`.
CORRUPT_TRUNCATE = "truncate"
CORRUPT_BITFLIP = "bitflip"
CORRUPT_GARBAGE = "garbage"
CORRUPT_VERSION = "version"
CORRUPT_MODES = (CORRUPT_TRUNCATE, CORRUPT_BITFLIP, CORRUPT_GARBAGE,
                 CORRUPT_VERSION)


def _uniform(seed: int, *parts: str) -> float:
    """Deterministic uniform draw in [0, 1) from a seed and strings."""
    digest = hashlib.sha256(
        ":".join([str(seed), *parts]).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class ChaosPlan:
    """Seed-driven fault schedule over request content hashes.

    Rates partition the unit interval: a request's uniform draw selects
    crash, then convergence, then stall, in that order.  ``state_dir``
    holds the once-only claim markers; it must be shared by every
    process of the run (the plan itself is picklable and crosses the
    pool boundary inside a ``functools.partial``).
    """

    state_dir: str
    seed: int = 0
    crash_rate: float = 0.0
    convergence_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 30.0
    once: bool = True

    def draw(self, key: str) -> str | None:
        """The fault scheduled for ``key`` (independent of history)."""
        u = _uniform(self.seed, key)
        if u < self.crash_rate:
            return FAULT_CRASH
        u -= self.crash_rate
        if u < self.convergence_rate:
            return FAULT_CONVERGENCE
        u -= self.convergence_rate
        if u < self.stall_rate:
            return FAULT_STALL
        return None

    def should_inject(self, key: str) -> str | None:
        """The fault to fire *now* for ``key`` — claims the once-only
        marker, so retries of a faulted request run clean."""
        fault = self.draw(key)
        if fault is None:
            return None
        if self.once and not self._claim(key, fault):
            return None
        return fault

    def _claim(self, key: str, fault: str) -> bool:
        path = os.path.join(self.state_dir, f"{key[:32]}.{fault}")
        try:
            os.makedirs(self.state_dir, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        os.close(fd)
        return True


def chaos_execute(plan: ChaosPlan, request):
    """Execute one request through the plan's scheduled fault (if any).

    Module-level and driven by a picklable plan, so
    ``functools.partial(chaos_execute, plan)`` ships to pool workers.
    """
    fault = plan.should_inject(request.content_hash)
    if fault == FAULT_CRASH:
        os._exit(CRASH_EXIT_CODE)
    if fault == FAULT_CONVERGENCE:
        raise ConvergenceError("chaos: injected non-convergence",
                               rescue_trail=("chaos",))
    if fault == FAULT_STALL:
        time.sleep(plan.stall_seconds)
    return execute_request(request)


def chaos_work_fn(plan: ChaosPlan):
    """The ``work_fn`` for a :class:`BatchExecutor` under this plan."""
    return functools.partial(chaos_execute, plan)


# ----------------------------------------------------------------------
# store corruption
# ----------------------------------------------------------------------
def corrupt_entry(store: ShardedStore, key: str,
                  mode: str = CORRUPT_TRUNCATE, seed: int = 0) -> None:
    """Damage the on-disk entry for ``key`` in place.

    ``truncate`` cuts the file mid-payload (torn write), ``bitflip``
    flips one payload bit (silent media corruption), ``garbage``
    replaces the whole file with random bytes, ``version`` rewrites the
    header's format version (a foreign/future store wrote the entry).
    """
    if mode not in CORRUPT_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}")
    path = store.path_for(key)
    raw = bytearray(path.read_bytes())
    if mode == CORRUPT_TRUNCATE:
        keep = max(1, int(len(raw) * _uniform(seed, key, "cut")))
        raw = raw[:keep]
    elif mode == CORRUPT_BITFLIP:
        span = len(raw) - _HEADER.size
        offset = _HEADER.size + int(span * _uniform(seed, key, "pos")) \
            if span > 0 else 0
        offset = min(offset, len(raw) - 1)
        raw[offset] ^= 1 << int(8 * _uniform(seed, key, "bit"))
    elif mode == CORRUPT_GARBAGE:
        digest = hashlib.sha256(f"{seed}:{key}:junk".encode()).digest()
        raw = bytearray((digest * (len(raw) // 32 + 1))[:len(raw)])
    elif mode == CORRUPT_VERSION:
        version = struct.unpack_from("<H", raw, 4)[0]
        struct.pack_into("<H", raw, 4, (version + 1) & 0xFFFF)
        raw[:4] = MAGIC                 # header otherwise intact
    path.write_bytes(bytes(raw))


def corrupt_store(store: ShardedStore, rate: float = 1.0, *,
                  seed: int = 0, modes=CORRUPT_MODES) -> list[str]:
    """Corrupt a deterministic ``rate`` fraction of the store's entries,
    cycling through ``modes``; returns the damaged keys."""
    damaged = []
    for key in sorted(store.keys()):
        if _uniform(seed, key, "select") >= rate:
            continue
        mode = modes[len(damaged) % len(modes)]
        corrupt_entry(store, key, mode=mode, seed=seed)
        damaged.append(key)
    return damaged


# ----------------------------------------------------------------------
# mid-sweep process kills
# ----------------------------------------------------------------------
@dataclass
class InterruptedRun:
    """Outcome of :func:`run_cli_killed_mid_sweep`."""

    returncode: int
    stdout: str
    stderr: str
    interrupted: bool       # the signal landed before natural exit
    journal_records: int    # journal length when the signal was sent


def run_cli_killed_mid_sweep(cli_args, checkpoint_dir, *,
                             kill_after_records: int = 20,
                             sig: int = signal.SIGKILL,
                             timeout: float = 300.0,
                             poll: float = 0.02,
                             env: dict | None = None) -> InterruptedRun:
    """Run ``python -m repro <cli_args>`` and signal it mid-sweep.

    The kill triggers when the checkpoint journal reaches
    ``kill_after_records`` records — a progress-based trigger, so the
    interruption lands at the same amount of completed work on a fast
    or a slow machine.  ``cli_args`` must include ``--checkpoint`` with
    ``checkpoint_dir`` (asserted), otherwise there is no journal to
    watch.  If the sweep finishes before the trigger, the run is
    returned with ``interrupted=False`` — callers decide whether that
    voids their scenario.
    """
    cli_args = [str(a) for a in cli_args]
    assert "--checkpoint" in cli_args, \
        "a mid-sweep kill needs a journal to watch"
    journal = Path(checkpoint_dir) / "journal.jsonl"
    run_env = dict(os.environ if env is None else env)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *cli_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=run_env)
    deadline = time.monotonic() + timeout
    interrupted = False
    records = 0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        try:
            records = journal.read_bytes().count(b"\n")
        except OSError:
            records = 0
        if records >= kill_after_records:
            proc.send_signal(sig)
            interrupted = True
            break
        time.sleep(poll)
    else:
        proc.kill()
    try:
        stdout, stderr = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        stdout, stderr = proc.communicate()
    return InterruptedRun(returncode=proc.returncode, stdout=stdout,
                          stderr=stderr, interrupted=interrupted,
                          journal_records=records)
