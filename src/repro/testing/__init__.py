"""Test-support harnesses shipped with the package.

* :mod:`repro.testing.chaos` — deterministic, seed-driven fault
  injection (worker crashes, entry corruption, forced non-convergence,
  stalls, mid-sweep signals) for proving the durability layer.
"""

from repro.testing.chaos import (
    CORRUPT_MODES,
    ChaosPlan,
    chaos_execute,
    chaos_work_fn,
    corrupt_entry,
    corrupt_store,
    run_cli_killed_mid_sweep,
)

__all__ = [
    "CORRUPT_MODES",
    "ChaosPlan",
    "chaos_execute",
    "chaos_work_fn",
    "corrupt_entry",
    "corrupt_store",
    "run_cli_killed_mid_sweep",
]
