"""Reproductions of the paper's Table 1 and the section-level studies."""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.analysis.planes import log_grid
from repro.core import (
    NOMINAL_STRESS,
    OptimizationTable,
    ShmooPlot,
    StressConditions,
    StressKind,
    optimize_all_defects,
    shmoo,
)
from repro.defects import ALL_DEFECTS, Defect, DefectKind
from repro.experiments.figures import REFERENCE_DEFECT, make_model
from repro.march import MarchTest, STANDARD_TESTS, fault_coverage
from repro.report.tables import render_table


def table1_optimization(*, backend: str = "behavioral",
                        defects=ALL_DEFECTS,
                        br_rel_tol: float = 0.05,
                        workers: int = 1,
                        engine=None,
                        on_error: str = "raise") -> OptimizationTable:
    """Table 1: per-defect directions, borders and detection conditions.

    The behavioral backend reproduces the whole table in seconds; pass
    ``backend="electrical"`` (and usually a subset of ``defects``) for a
    SPICE-level run.  ``workers > 1`` fans the per-defect flows out over
    a process pool; ``engine`` routes every simulation through the
    result cache (see :func:`repro.experiments.figures.make_model`).
    The rendered table is identical for any worker count.
    ``on_error="isolate"`` keeps the table alive across failing defects
    (see :func:`repro.core.optimizer.optimize_all_defects`).
    """
    factory = functools.partial(make_model, backend=backend,
                                engine=engine)
    return optimize_all_defects(model_factory=factory, defects=defects,
                                br_rel_tol=br_rel_tol, workers=workers,
                                on_error=on_error)


@dataclass
class ShmooStudy:
    """The Sec. 2 baseline: a Shmoo plot of the reference defect."""

    plot: ShmooPlot
    grid_points: int
    test: str

    def render(self) -> str:
        return self.plot.render()


def shmoo_baseline(*, backend: str = "behavioral",
                   defect: Defect = REFERENCE_DEFECT,
                   resistance: float = 250e3,
                   test: str = "w1^2 w0 r0",
                   nx: int = 9, ny: int = 7,
                   engine=None) -> ShmooStudy:
    """A tcyc × Vdd Shmoo plot of a defective device (paper Sec. 2).

    The defect resistance defaults to just above the nominal border so
    the pass/fail boundary lands inside the plotted window.  With an
    engine-backed model the whole grid executes as one batch.
    """
    model = make_model(defect.with_resistance(resistance), NOMINAL_STRESS,
                       backend, engine=engine)
    x_values = [2.1 + i * (2.7 - 2.1) / (nx - 1) for i in range(nx)]
    y_values = [50e-9 + i * (70e-9 - 50e-9) / (ny - 1) for i in range(ny)]
    plot = shmoo(model, test,
                 x_kind=StressKind.VDD, x_values=x_values,
                 y_kind=StressKind.TCYC, y_values=y_values)
    return ShmooStudy(plot, nx * ny, test)


@dataclass
class CoverageStudy:
    """March-test coverage at nominal vs optimized SC (Sec. 5.2)."""

    defect: Defect
    nominal: StressConditions
    optimized: StressConditions
    rows: list[tuple[str, float, float]]   # (test, cov_nom, cov_opt)

    def render(self) -> str:
        table = [(name, f"{nom:.0%}", f"{opt:.0%}",
                  "+" if opt > nom else ("=" if opt == nom else "-"))
                 for name, nom, opt in self.rows]
        return (f"march coverage on {self.defect.name} "
                f"(optimized SC: {self.optimized.describe()})\n"
                + render_table(["test", "nominal", "optimized", "Δ"],
                               table))

    @property
    def improved_count(self) -> int:
        return sum(1 for _, nom, opt in self.rows if opt > nom)


def march_coverage_comparison(*, backend: str = "behavioral",
                              defect: Defect = Defect(DefectKind.O3),
                              optimized: StressConditions | None = None,
                              tests: tuple[MarchTest, ...] = STANDARD_TESTS,
                              r_points: int = 16,
                              r_lo: float | None = None,
                              r_hi: float | None = None,
                              workers: int = 1,
                              engine=None) -> CoverageStudy:
    """Coverage of the standard march tests, nominal vs optimized SC.

    The grid must be fine enough to resolve the border shift the SC
    produces; override ``r_lo``/``r_hi`` to focus on the band around the
    nominal border.  ``workers > 1`` parallelises the per-resistance
    march runs of each (test, SC) pair.
    """
    optimized = optimized or NOMINAL_STRESS.with_(
        vdd=2.1, tcyc=55e-9, duty=0.40, temp_c=87.0)
    lo, hi = defect.kind.search_range
    grid = log_grid(r_lo or lo * 2, r_hi or hi / 2, r_points)
    factory = functools.partial(make_model, backend=backend,
                                engine=engine)
    rows = []
    for test in tests:
        nom = fault_coverage(test, factory, defect, NOMINAL_STRESS,
                             resistances=grid, workers=workers)
        opt = fault_coverage(test, factory, defect, optimized,
                             resistances=grid, workers=workers)
        rows.append((test.name, nom.coverage, opt.coverage))
    return CoverageStudy(defect, NOMINAL_STRESS, optimized, rows)
