"""One entry point per paper figure/table.

Each function reproduces one experiment of the paper's evaluation and
returns a structured result with a ``render()`` text form.  The
benchmarks in ``benchmarks/`` time these functions and print their
renderings; the examples drive them interactively.

================  ==============================================
paper item        function
================  ==============================================
Fig. 2            :func:`fig2_result_planes`
Fig. 3            :func:`fig3_timing_panels`
Fig. 4            :func:`fig4_temperature_panels`
Fig. 5            :func:`fig5_voltage_panels`
Fig. 6            :func:`fig6_stressed_planes`
Table 1           :func:`table1_optimization`
Sec. 2 (Shmoo)    :func:`shmoo_baseline`
Sec. 5.2 (cov.)   :func:`march_coverage_comparison`
================  ==============================================
"""

from repro.experiments.array import (
    ArrayStudy,
    activation_disturb_br,
    array_disturb_study,
)
from repro.experiments.figures import (
    PanelStudy,
    fig2_result_planes,
    fig3_timing_panels,
    fig4_temperature_panels,
    fig5_voltage_panels,
    fig6_stressed_planes,
)
from repro.experiments.tables import (
    march_coverage_comparison,
    shmoo_baseline,
    table1_optimization,
)

__all__ = [
    "ArrayStudy",
    "PanelStudy",
    "activation_disturb_br",
    "array_disturb_study",
    "fig2_result_planes",
    "fig3_timing_panels",
    "fig4_temperature_panels",
    "fig5_voltage_panels",
    "fig6_stressed_planes",
    "march_coverage_comparison",
    "shmoo_baseline",
    "table1_optimization",
]
