"""Reproductions of the paper's figures (Figs. 2–6).

Every function takes a ``backend`` argument: ``"electrical"`` runs the
SPICE-level column (the paper's methodology, slower), ``"behavioral"``
the calibrated fast model.  Grid sizes are parameters so the benchmarks
can trade fidelity for runtime explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import electrical_model, result_planes, sense_threshold
from repro.analysis.planes import ResultPlanes, log_grid
from repro.core import NOMINAL_STRESS, StressConditions
from repro.core.directions import write_residual
from repro.defects import Defect, DefectKind
from repro.report.ascii_plot import ascii_curves


def make_model(defect: Defect, stress: StressConditions,
               backend: str = "electrical", *, engine=None):
    """Model factory shared by the experiment entry points.

    ``engine`` selects the execution path: ``None``/``False`` builds the
    plain column model (the seed behaviour), ``True`` wraps it in an
    engine-backed :class:`repro.engine.EngineModel` on the process-wide
    default engine, and a :class:`repro.engine.BatchExecutor` instance
    binds the model to that specific engine.
    """
    if backend not in ("electrical", "behavioral"):
        raise ValueError(f"unknown backend {backend!r}")
    if engine is not None and engine is not False:
        from repro.engine import BatchExecutor, EngineModel
        bound = engine if isinstance(engine, BatchExecutor) else None
        return EngineModel(defect, stress=stress, backend=backend,
                           engine=bound)
    if backend == "electrical":
        return electrical_model(defect, stress=stress)
    from repro.behav import behavioral_model
    return behavioral_model(defect, stress=stress)


#: The paper's reference defect: the cell open of Fig. 1 at 200 kΩ.
REFERENCE_DEFECT = Defect(DefectKind.O3, resistance=200e3)

#: The stressed SC of Fig. 6 (Vdd = 2.1 V, tcyc = 55 ns, T = +87 °C).
FIG6_STRESS = NOMINAL_STRESS.with_(vdd=2.1, tcyc=55e-9, temp_c=87.0)


# ----------------------------------------------------------------------
# Fig. 2 / Fig. 6 — result planes
# ----------------------------------------------------------------------
@dataclass
class PlanesStudy:
    """Result planes plus the border estimate they imply."""

    stress: StressConditions
    planes: ResultPlanes
    border: float | None

    def render(self) -> str:
        from repro.report.ascii_plot import ascii_plane
        parts = [f"SC: {self.stress.describe()}",
                 f"border estimate (w0 x Vsa crossing): "
                 f"{'-' if self.border is None else format(self.border, '.3g')} ohm",
                 ascii_plane(self.planes, "w0"),
                 ascii_plane(self.planes, "w1"),
                 ascii_plane(self.planes, "r")]
        if self.planes.n_failed:
            parts.insert(
                2, f"({self.planes.n_failed} probes failed to simulate; "
                   f"the planes have holes)")
        return "\n\n".join(parts)


def fig2_result_planes(*, backend: str = "electrical",
                       points: int = 9,
                       r_lo: float = 30e3, r_hi: float = 2e6,
                       n_writes: int = 2,
                       stress: StressConditions = NOMINAL_STRESS,
                       defect: Defect = REFERENCE_DEFECT,
                       engine=None,
                       on_error: str | None = None) -> PlanesStudy:
    """Fig. 2: the three result planes of the cell open at nominal SC.

    ``on_error="isolate"`` turns non-convergent grid points into holes
    (``planes.n_failed``) instead of aborting the study; ``None``
    inherits the executing engine's policy.
    """
    model = make_model(defect, stress, backend, engine=engine)
    grid = log_grid(r_lo, r_hi, points)
    planes = result_planes(model, grid, n_writes=n_writes,
                           on_error=on_error)
    return PlanesStudy(stress, planes, planes.border_estimate())


def fig6_stressed_planes(*, backend: str = "electrical",
                         points: int = 9,
                         r_lo: float = 30e3, r_hi: float = 2e6,
                         n_writes: int = 2,
                         defect: Defect = REFERENCE_DEFECT,
                         engine=None,
                         on_error: str | None = None) -> PlanesStudy:
    """Fig. 6: the same planes under the stressed SC."""
    return fig2_result_planes(backend=backend, points=points, r_lo=r_lo,
                              r_hi=r_hi, n_writes=n_writes,
                              stress=FIG6_STRESS, defect=defect,
                              engine=engine, on_error=on_error)


# ----------------------------------------------------------------------
# Figs. 3-5 — single-ST panels
# ----------------------------------------------------------------------
@dataclass
class PanelStudy:
    """One ST's write/read panels over its probed values (Figs. 3–5)."""

    st_name: str
    values: list[float]
    w0_residuals: list[float]   # Vc after a single w0 from the high rail
    vsa: list[float | None]     # sense threshold per value
    stress_base: StressConditions
    defect: Defect
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for v, w, s in zip(self.values, self.w0_residuals, self.vsa):
            rows.append(f"  {self.st_name}={v:.4g}: Vc(after w0)={w:.3f} V"
                        f"   Vsa={'-' if s is None else format(s, '.3f')} V")
        head = (f"Panels for {self.st_name} — defect {self.defect.name} "
                f"R={self.defect.resistance:.3g}")
        return "\n".join([head] + rows + [f"  note: {n}"
                                          for n in self.notes])


def _st_panels(st_name: str, field_name: str, values, *,
               backend: str, defect: Defect,
               base: StressConditions, engine=None) -> PanelStudy:
    model = make_model(defect, base, backend, engine=engine)
    model.set_defect_resistance(defect.resistance)
    w0s, vsas = [], []
    for v in values:
        model.set_stress(base.with_(**{field_name: v}))
        w0s.append(write_residual(model, 0))
        vsas.append(sense_threshold(model, tol=0.008))
    return PanelStudy(st_name, list(values), w0s, vsas, base, defect)


def fig3_timing_panels(*, backend: str = "electrical",
                       tcycs=(60e-9, 55e-9),
                       defect: Defect = REFERENCE_DEFECT,
                       base: StressConditions = NOMINAL_STRESS,
                       engine=None) -> PanelStudy:
    """Fig. 3: tcyc 60 → 55 ns weakens ``w0``; ``Vsa`` barely moves."""
    study = _st_panels("tcyc", "tcyc", tcycs, backend=backend,
                       defect=defect, base=base, engine=engine)
    study.notes.append("paper: shorter tcyc leaves Vc higher after w0; "
                       "timing has no impact on Vsa")
    return study


def fig4_temperature_panels(*, backend: str = "electrical",
                            temps=(-33.0, 27.0, 87.0),
                            defect: Defect = REFERENCE_DEFECT,
                            base: StressConditions = NOMINAL_STRESS,
                            engine=None) -> PanelStudy:
    """Fig. 4: hot weakens ``w0``; ``Vsa`` is non-monotonic in T."""
    study = _st_panels("T", "temp_c", temps, backend=backend,
                       defect=defect, base=base, engine=engine)
    study.notes.append("paper: Vc after w0 rises with T; the read detects "
                       "1 only at +27C (Vsa minimum at room temperature)")
    return study


def fig5_voltage_panels(*, backend: str = "electrical",
                        vdds=(2.1, 2.4, 2.7),
                        defect: Defect = REFERENCE_DEFECT,
                        base: StressConditions = NOMINAL_STRESS,
                        engine=None) -> PanelStudy:
    """Fig. 5: higher Vdd weakens ``w0`` but helps reads — conflicting
    votes that the paper resolves with a BR comparison."""
    study = _st_panels("Vdd", "vdd", vdds, backend=backend,
                       defect=defect, base=base, engine=engine)
    study.notes.append("paper: conflict -> BR tie-break; Vdd=2.1 V gives "
                       "the lowest border resistance")
    return study


def render_vsa_vs_temperature(study: PanelStudy) -> str:
    """Auxiliary plot of the Fig. 4 threshold curve."""
    usable = [(v, s) for v, s in zip(study.values, study.vsa)
              if s is not None]
    if len(usable) < 2:
        return "(Vsa undefined across the probed range)"
    xs = [v for v, _ in usable]
    ys = [s for _, s in usable]
    return ascii_curves(xs, {"Vsa": ys}, logx=False, width=40, height=10,
                        title="Vsa vs temperature")
