"""Array-scale activation-disturbance study (ROADMAP "Scale the DUT").

The seed 2×2 column cannot express neighborhood coupling: a defective
cell sitting in a sea of unselected neighbors, disturbed by activating
its own (or an adjacent) row.  The R×C array builder plus the trimming
layer make that affordable — this module turns it into the same
border-resistance currency the column experiments speak:

* :func:`activation_disturb_br` — bisect the defect resistance where
  one activation cycle's end-of-cycle victim voltage crosses the
  midpoint between its healthy-side and defective-side extremes (the
  array analogue of the column's sensed-based border search);
* :func:`array_disturb_study` — the per-kind sweep behind the CLI's
  ``array`` command, rendered as a table.

Every simulation goes through :class:`~repro.engine.SequenceRequest`
with the array ``geometry``/``trim`` fields, so results are cached,
trimmed/full runs never collide, and the trim policy is a pure
accuracy/speed knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.column import DEFECT_KINDS, DefectSite
from repro.engine import SequenceRequest, default_engine
from repro.report.tables import render_table
from repro.stress import NOMINAL_STRESS, StressConditions

#: Resistance decade window bracketing every array-routed border.
DEFAULT_R_LO = 1e3
DEFAULT_R_HI = 1e9


def _vc_end(engine, *, kind: str, cell: int, resistance: float,
            geometry, address, trim, ops: str, init_vc: float,
            stress: StressConditions, tech) -> float:
    request = SequenceRequest.build(
        ops, init_vc, backend="electrical",
        defect=DefectSite(kind, cell, resistance), stress=stress,
        tech=tech, geometry=geometry, address=address, trim=trim)
    return engine.run(request).results[-1].vc_end


def activation_disturb_br(kind: str, *, geometry: tuple[int, int],
                          cell: int | None = None,
                          address: tuple[int, int] | None = None,
                          trim: str | None = None,
                          ops: str = "r",
                          init_vc: float | None = None,
                          stress: StressConditions = NOMINAL_STRESS,
                          tech=None,
                          engine=None,
                          r_lo: float = DEFAULT_R_LO,
                          r_hi: float = DEFAULT_R_HI,
                          rel_tol: float = 0.05) -> float:
    """Border resistance of one defect kind under array activation.

    Bisects (in log-resistance) the point where the victim's
    end-of-sequence voltage crosses the midpoint between its value at
    ``r_lo`` (defect fully expressed for shorts/bridges, healed for
    opens) and at ``r_hi``.  ``rel_tol`` bounds the returned border's
    relative width, matching the column optimizer's convention.

    ``cell`` defaults to the array's center cell so the trimming
    neighborhood is fully interior; ``init_vc`` defaults to a stored
    ``1`` (``stress.vdd``), the worst case for activation disturbance.
    """
    rows, cols = geometry
    if cell is None:
        cell = (rows // 2) * cols + cols // 2
    if init_vc is None:
        init_vc = stress.vdd
    if engine is None:
        engine = default_engine()

    def f(resistance: float) -> float:
        return _vc_end(engine, kind=kind, cell=cell,
                       resistance=resistance, geometry=geometry,
                       address=address, trim=trim, ops=ops,
                       init_vc=init_vc, stress=stress, tech=tech)

    v_lo, v_hi = f(r_lo), f(r_hi)
    if math.isclose(v_lo, v_hi, abs_tol=1e-6):
        raise ValueError(
            f"defect {kind!r} shows no resistance dependence on "
            f"[{r_lo:.3g}, {r_hi:.3g}] ohm (Δvc={abs(v_hi - v_lo):.2e})")
    v_mid = 0.5 * (v_lo + v_hi)
    lo, hi = r_lo, r_hi
    below = v_lo < v_mid
    while hi / lo > 1.0 + rel_tol:
        mid = math.sqrt(lo * hi)
        if (f(mid) < v_mid) == below:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


@dataclass
class ArrayStudy:
    """Per-kind activation-disturbance borders of one array geometry."""

    geometry: tuple[int, int]
    trim: str
    stress: StressConditions
    rows: list[tuple[str, int, float]]     # (kind, cell, border)

    def render(self) -> str:
        table = [(kind, str(cell), f"{br:.4g}")
                 for kind, cell, br in self.rows]
        return (f"array activation disturbance, "
                f"{self.geometry[0]}x{self.geometry[1]} "
                f"(trim={self.trim}, {self.stress.describe()})\n"
                + render_table(["defect", "cell", "BR [ohm]"], table))


def array_disturb_study(*, geometry: tuple[int, int] = (6, 6),
                        kinds=DEFECT_KINDS,
                        trim: str | None = None,
                        stress: StressConditions = NOMINAL_STRESS,
                        tech=None,
                        engine=None,
                        rel_tol: float = 0.05) -> ArrayStudy:
    """Border resistances of every array-routed defect kind.

    The array-scale counterpart of the per-defect Table-1 rows: for
    each kind, one victim at the array center, activated by its own
    row, border bisected to ``rel_tol``.  ``trim=None`` follows the
    process-wide policy (CLI ``--trim``).
    """
    from repro.dram.trim import resolve_trim
    if engine is None:
        engine = default_engine()
    resolved = resolve_trim(trim)
    rows_n, cols_n = geometry
    cell = (rows_n // 2) * cols_n + cols_n // 2
    rows = []
    for kind in kinds:
        br = activation_disturb_br(kind, geometry=geometry, cell=cell,
                                   trim=resolved, stress=stress,
                                   tech=tech, engine=engine,
                                   rel_tol=rel_tol)
        rows.append((kind, cell, br))
    return ArrayStudy(geometry=tuple(geometry), trim=resolved,
                      stress=stress, rows=rows)
