"""Array-scale activation-disturbance study (ROADMAP "Scale the DUT").

The seed 2×2 column cannot express neighborhood coupling: a defective
cell sitting in a sea of unselected neighbors, disturbed by activating
its own (or an adjacent) row.  The R×C array builder plus the trimming
layer make that affordable — this module turns it into the same
border-resistance currency the column experiments speak:

* :func:`activation_disturb_br` — bisect the defect resistance where
  one activation cycle's end-of-cycle victim voltage crosses the
  midpoint between its healthy-side and defective-side extremes (the
  array analogue of the column's sensed-based border search);
* :func:`array_disturb_study` — the per-kind sweep behind the CLI's
  ``array`` command, rendered as a table.

Every simulation goes through :class:`~repro.engine.SequenceRequest`
with the array ``geometry``/``trim`` fields, so results are cached,
trimmed/full runs never collide, and the trim policy is a pure
accuracy/speed knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.column import DEFECT_KINDS, DefectSite
from repro.engine import SequenceRequest, default_engine
from repro.report.tables import render_table
from repro.stress import NOMINAL_STRESS, StressConditions

#: Resistance decade window bracketing every array-routed border.
DEFAULT_R_LO = 1e3
DEFAULT_R_HI = 1e9


def _vc_end(engine, *, kind: str, cell: int, resistance: float,
            geometry, address, trim, ops: str, init_vc: float,
            stress: StressConditions, tech) -> float:
    request = SequenceRequest.build(
        ops, init_vc, backend="electrical",
        defect=DefectSite(kind, cell, resistance), stress=stress,
        tech=tech, geometry=geometry, address=address, trim=trim)
    return engine.run(request).results[-1].vc_end


#: Speculation depth of the lane-batched bisection: each generation
#: prefetches the full binary subdivision tree of the current bracket to
#: this depth (``2**depth - 1`` probes covering the next ``depth``
#: bisection levels) as lanes of one batched transient.  Depth 2 is the
#: sweet spot measured in ``benchmarks/bench_array_lanes.py``: 3 probes
#: per 2 consumed levels (1.5x speculative waste) against the batched
#: transient's per-probe amortization; deeper trees waste more probes
#: than the wider batch recovers.
SPECULATE_DEPTH = 2


def _midpoint_tree(lo: float, hi: float, depth: int) -> list[float]:
    """Every log-midpoint the next ``depth`` bisection levels of
    ``[lo, hi]`` could probe, whichever way each comparison goes.

    Built by the *same* recursive ``sqrt(lo * hi)`` arithmetic the
    serial loop uses, so each value is bitwise the probe the bisection
    would compute — the speculative path answers the identical
    questions, it just asks them ``depth`` levels at a time.
    """
    if depth <= 0:
        return []
    mid = math.sqrt(lo * hi)
    out = [mid]
    if depth > 1:
        out += _midpoint_tree(lo, mid, depth - 1)
        out += _midpoint_tree(mid, hi, depth - 1)
    return out


def activation_disturb_br(kind: str, *, geometry: tuple[int, int],
                          cell: int | None = None,
                          address: tuple[int, int] | None = None,
                          trim: str | None = None,
                          ops: str = "r",
                          init_vc: float | None = None,
                          stress: StressConditions = NOMINAL_STRESS,
                          tech=None,
                          engine=None,
                          r_lo: float = DEFAULT_R_LO,
                          r_hi: float = DEFAULT_R_HI,
                          rel_tol: float = 0.05) -> float:
    """Border resistance of one defect kind under array activation.

    Bisects (in log-resistance) the point where the victim's
    end-of-sequence voltage crosses the midpoint between its value at
    ``r_lo`` (defect fully expressed for shorts/bridges, healed for
    opens) and at ``r_hi``.  ``rel_tol`` bounds the returned border's
    relative width, matching the column optimizer's convention.

    ``cell`` defaults to the array's center cell so the trimming
    neighborhood is fully interior; ``init_vc`` defaults to a stored
    ``1`` (``stress.vdd``), the worst case for activation disturbance.

    When the engine's lane width admits batching
    (:meth:`~repro.engine.BatchExecutor.effective_lanes` ≥ 2), each
    bisection generation *speculatively* probes the full midpoint tree
    of the current bracket (:data:`SPECULATE_DEPTH` levels at once):
    the probes differ only in defect resistance, so they stack as lanes
    of one batched transient, and successive generations warm-start
    from the previous one's converged trajectories.  The tree contains
    exactly the candidate midpoints the serial loop would compute
    (see :func:`_midpoint_tree`), so the bisection consumes identical
    probe values and returns the identical border.
    """
    rows, cols = geometry
    if cell is None:
        cell = (rows // 2) * cols + cols // 2
    if init_vc is None:
        init_vc = stress.vdd
    if engine is None:
        engine = default_engine()

    speculate = getattr(engine, "effective_lanes", lambda: 0)() >= 2
    memo: dict[float, float] = {}

    def prefetch(resistances) -> None:
        todo = [r for r in dict.fromkeys(resistances) if r not in memo]
        if not todo:
            return
        requests = [SequenceRequest.build(
            ops, init_vc, backend="electrical",
            defect=DefectSite(kind, cell, r), stress=stress,
            tech=tech, geometry=geometry, address=address, trim=trim)
            for r in todo]
        for r, result in zip(todo, engine.map(requests)):
            memo[r] = result.results[-1].vc_end

    def f(resistance: float) -> float:
        if speculate:
            prefetch([resistance])
            return memo[resistance]
        return _vc_end(engine, kind=kind, cell=cell,
                       resistance=resistance, geometry=geometry,
                       address=address, trim=trim, ops=ops,
                       init_vc=init_vc, stress=stress, tech=tech)

    if speculate:
        prefetch([r_lo, r_hi] + _midpoint_tree(r_lo, r_hi,
                                               SPECULATE_DEPTH))
    v_lo, v_hi = f(r_lo), f(r_hi)
    if math.isclose(v_lo, v_hi, abs_tol=1e-6):
        raise ValueError(
            f"defect {kind!r} shows no resistance dependence on "
            f"[{r_lo:.3g}, {r_hi:.3g}] ohm (Δvc={abs(v_hi - v_lo):.2e})")
    v_mid = 0.5 * (v_lo + v_hi)
    lo, hi = r_lo, r_hi
    below = v_lo < v_mid
    while hi / lo > 1.0 + rel_tol:
        mid = math.sqrt(lo * hi)
        if speculate and mid not in memo:
            # Never speculate past the bisection's own horizon: each
            # level halves the log-bracket, so the levels left follow
            # from the current width against the tolerance.
            left = math.ceil(math.log2(
                math.log(hi / lo) / math.log(1.0 + rel_tol)))
            prefetch(_midpoint_tree(lo, hi,
                                    min(SPECULATE_DEPTH, max(1, left))))
        if (f(mid) < v_mid) == below:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


@dataclass
class ArrayStudy:
    """Per-kind activation-disturbance borders of one array geometry."""

    geometry: tuple[int, int]
    trim: str
    stress: StressConditions
    rows: list[tuple[str, int, float]]     # (kind, cell, border)

    def render(self) -> str:
        table = [(kind, str(cell), f"{br:.4g}")
                 for kind, cell, br in self.rows]
        return (f"array activation disturbance, "
                f"{self.geometry[0]}x{self.geometry[1]} "
                f"(trim={self.trim}, {self.stress.describe()})\n"
                + render_table(["defect", "cell", "BR [ohm]"], table))


def array_disturb_study(*, geometry: tuple[int, int] = (6, 6),
                        kinds=DEFECT_KINDS,
                        trim: str | None = None,
                        stress: StressConditions = NOMINAL_STRESS,
                        tech=None,
                        engine=None,
                        rel_tol: float = 0.05) -> ArrayStudy:
    """Border resistances of every array-routed defect kind.

    The array-scale counterpart of the per-defect Table-1 rows: for
    each kind, one victim at the array center, activated by its own
    row, border bisected to ``rel_tol``.  ``trim=None`` follows the
    process-wide policy (CLI ``--trim``).
    """
    from repro.dram.trim import resolve_trim
    if engine is None:
        engine = default_engine()
    resolved = resolve_trim(trim)
    rows_n, cols_n = geometry
    cell = (rows_n // 2) * cols_n + cols_n // 2
    rows = []
    for kind in kinds:
        br = activation_disturb_br(kind, geometry=geometry, cell=cell,
                                   trim=resolved, stress=stress,
                                   tech=tech, engine=engine,
                                   rel_tol=rel_tol)
        rows.append((kind, cell, br))
    return ArrayStudy(geometry=tuple(geometry), trim=resolved,
                      stress=stress, rows=rows)
