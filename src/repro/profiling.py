"""Lightweight opt-in wall-clock profiler for the simulation hot paths.

A module-level singleton (:data:`profiler`) keeps named accumulators of
elapsed seconds and event counts.  It is **off by default** — the hot
loops guard every measurement on ``profiler.enabled`` so the disabled
cost is one attribute check — and is switched on by the ``--profile``
CLI flag, which prints :meth:`Profiler.summary` to stderr after the run.
"""

from __future__ import annotations

import time


class Profiler:
    """Named wall-clock accumulators plus event counters."""

    __slots__ = ("enabled", "times", "counts")

    def __init__(self) -> None:
        self.enabled = False
        self.times: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def reset(self) -> None:
        """Drop all accumulated measurements (keeps the enabled flag)."""
        self.times.clear()
        self.counts.clear()

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under ``name``."""
        self.times[name] = self.times.get(name, 0.0) + seconds

    def count(self, name: str, n: int = 1) -> None:
        """Accumulate an event count under ``name``."""
        self.counts[name] = self.counts.get(name, 0) + n

    def section(self, name: str):
        """Context manager timing a block (only when enabled)."""
        return _Section(self, name)

    def summary(self) -> str:
        """Human-readable table of accumulated times and counts."""
        lines = ["profile summary"]
        if self.times:
            width = max(len(k) for k in self.times)
            for name in sorted(self.times, key=self.times.get,
                               reverse=True):
                lines.append(f"  {name:<{width}}  "
                             f"{self.times[name] * 1e3:10.2f} ms")
        if self.counts:
            width = max(len(k) for k in self.counts)
            for name in sorted(self.counts):
                lines.append(f"  {name:<{width}}  "
                             f"{self.counts[name]:>10d}")
        if len(lines) == 1:
            lines.append("  (no samples)")
        return "\n".join(lines)


class _Section:
    __slots__ = ("_prof", "_name", "_t0")

    def __init__(self, prof: Profiler, name: str):
        self._prof = prof
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        if self._prof.enabled:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._prof.enabled:
            self._prof.add(self._name, time.perf_counter() - self._t0)


#: Process-wide profiler used by the hot loops.
profiler = Profiler()
