"""Simulation execution engine: content-addressed cache + batch executor.

Every evaluation in the paper is a fan-out of independent
operation-sequence simulations over resistance and stress grids.  This
package gives all of them one execution funnel:

* :mod:`repro.engine.request` — :class:`SequenceRequest`, a frozen
  description of one simulation with a deterministic content hash;
* :mod:`repro.engine.cache` — :class:`ResultCache`, an in-memory LRU
  plus optional on-disk store with hit/miss/cycles-saved accounting;
* :mod:`repro.engine.executor` — :class:`BatchExecutor`, ``run``/``map``
  over a process pool (serial at ``workers=1``), with per-item fault
  isolation (timeouts, crash retries, ``on_error="isolate"``), plus the
  generic :func:`parallel_map` fan-out helper and the process-wide
  default engine;
* :mod:`repro.engine.failures` — :class:`FailedResult`, the structured
  record a fault-isolated batch returns for items that produced no
  result, and the :func:`is_failed` hole test;
* :mod:`repro.engine.model` — :class:`EngineModel`, an engine-backed
  implementation of the ``ColumnModel`` protocol, and
  :func:`batch_run`, the batched sweep primitive with a serial fallback
  for plain models;
* :mod:`repro.engine.journal` — :class:`SweepJournal` and
  :class:`SweepCheckpoint`, the append-only completion journal and
  checkpoint directory that make interrupted sweeps resumable
  (``--checkpoint``/``--resume``).
"""

from repro.engine.cache import EngineStats, ResultCache
from repro.engine.executor import (
    BatchExecutor,
    configure_default_engine,
    default_engine,
    execute_request,
    parallel_map,
    set_default_engine,
)
from repro.engine.failures import FailedResult, is_failed
from repro.engine.journal import SweepCheckpoint, SweepJournal
from repro.engine.model import BatchItem, EngineModel, batch_run
from repro.engine.request import SequenceRequest, tech_fingerprint

__all__ = [
    "BatchExecutor",
    "BatchItem",
    "EngineModel",
    "EngineStats",
    "FailedResult",
    "ResultCache",
    "SequenceRequest",
    "SweepCheckpoint",
    "SweepJournal",
    "batch_run",
    "configure_default_engine",
    "default_engine",
    "execute_request",
    "is_failed",
    "parallel_map",
    "set_default_engine",
    "tech_fingerprint",
]
