"""Batch execution of sequence requests: memoized, optionally parallel.

:class:`BatchExecutor` is the single funnel every sweep layer drives its
simulations through:

* :meth:`BatchExecutor.run` — execute (or recall) one request;
* :meth:`BatchExecutor.map` — execute a whole fan-out, deduplicated
  against itself and the cache, with the misses spread over a
  ``concurrent.futures.ProcessPoolExecutor`` when ``workers > 1``.

Worker processes receive only the picklable :class:`SequenceRequest`
value objects and *reconstruct* the column model locally — netlists
never cross a process boundary.  Each process keeps a small model cache
keyed by (backend, technology, defect kind, cell), so a sweep that
varies only the resistance or the stress reuses one built netlist, just
like the hand-rolled sweeps did.

:func:`parallel_map` is the generic fan-out helper for coarser units of
work (whole per-defect optimizations, Monte-Carlo samples, march runs);
it degrades to a serial loop when the workload cannot be pickled, so
closures keep working.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.dram.ops import SequenceResult, parse_ops
from repro.engine.cache import EngineStats, ResultCache
from repro.engine.request import SequenceRequest

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Per-process cache of built column models, keyed by everything that
#: requires a rebuild (resistance and stress are mutable in place).
_PROCESS_MODELS: dict = {}


def _model_for(request: SequenceRequest):
    """Build (or reuse) the column model that serves ``request``."""
    key = (request.backend, request.tech, request.defect_kind,
           request.cell)
    model = _PROCESS_MODELS.get(key)
    if model is None:
        site = request.site()
        if request.backend == "electrical":
            from repro.dram.runner import ColumnRunner
            model = ColumnRunner(tech=request.tech, stress=request.stress,
                                 defect=site, target_cell=request.cell)
        elif request.backend == "behavioral":
            from repro.behav.model import BehavioralColumn
            model = BehavioralColumn(tech=request.tech,
                                     stress=request.stress,
                                     defect=site,
                                     target_cell=request.cell)
        else:
            raise ValueError(f"unknown backend {request.backend!r}")
        _PROCESS_MODELS[key] = model
    model.set_stress(request.stress)
    if request.resistance is not None:
        model.set_defect_resistance(request.resistance)
    return model


def execute_request(request: SequenceRequest) -> SequenceResult:
    """Simulate one request from scratch (no cache involved).

    Module-level so process pools can ship it to workers by reference.
    """
    model = _model_for(request)
    return model.run_sequence(parse_ops(request.ops),
                              init_vc=request.init_vc,
                              background=request.background)


class BatchExecutor:
    """Run sequence requests through a shared cache, serially or fanned
    out over worker processes.

    Parameters
    ----------
    cache:
        The :class:`ResultCache` to consult/feed.  ``None`` disables
        memoization entirely (every request simulates).
    workers:
        Default process count for :meth:`map`; ``1`` (or less) keeps
        everything in-process, which is also the fallback when a batch
        has at most one miss to execute.
    """

    def __init__(self, cache: ResultCache | None = None,
                 workers: int = 1):
        self.cache = cache
        self.workers = max(1, int(workers))
        # Cycle accounting lives on the cache when there is one, so
        # stats survive executor turnover; otherwise track locally.
        self._stats = cache.stats if cache is not None else EngineStats()

    @property
    def stats(self) -> EngineStats:
        """Hit/miss/cycle counters of this engine."""
        return self._stats

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, request: SequenceRequest) -> SequenceResult:
        """Execute one request, consulting the cache first."""
        if self.cache is not None:
            cached = self.cache.get(request)
            if cached is not None:
                return cached
        result = execute_request(request)
        if self.cache is not None:
            self.cache.put(request, result)
        else:
            self._stats.misses += 1
            self._stats.cycles_simulated += request.cycles
        return result

    def map(self, requests: Sequence[SequenceRequest],
            workers: int | None = None) -> list[SequenceResult]:
        """Execute a batch, returning results aligned with ``requests``.

        Duplicate requests (same content hash) are simulated once.
        Cache misses run in a process pool when more than one remains
        and ``workers > 1``; results always come back in input order,
        so serial and parallel execution are interchangeable.
        """
        requests = list(requests)
        workers = self.workers if workers is None else max(1, int(workers))
        results: dict[str, SequenceResult] = {}
        pending: list[SequenceRequest] = []
        for request in requests:
            key = request.content_hash
            if key in results:
                # Duplicate within the batch: count as a saved hit.
                self._stats.hits += 1
                self._stats.cycles_saved += request.cycles
                continue
            if self.cache is not None:
                cached = self.cache.get(request)
                if cached is not None:
                    results[key] = cached
                    continue
            results[key] = None  # reserve input order / dedupe slot
            pending.append(request)

        if pending:
            if workers > 1 and len(pending) > 1:
                with ProcessPoolExecutor(
                        max_workers=min(workers, len(pending))) as pool:
                    executed = list(pool.map(execute_request, pending))
            else:
                executed = [execute_request(r) for r in pending]
            for request, result in zip(pending, executed):
                results[request.content_hash] = result
                if self.cache is not None:
                    self.cache.put(request, result)
                else:
                    self._stats.misses += 1
                    self._stats.cycles_simulated += request.cycles

        return [results[r.content_hash] for r in requests]


# ----------------------------------------------------------------------
# default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: BatchExecutor | None = None


def default_engine() -> BatchExecutor:
    """The process-wide engine (created on first use: cached, serial)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = BatchExecutor(cache=ResultCache())
    return _DEFAULT_ENGINE


def set_default_engine(engine: BatchExecutor | None) -> None:
    """Replace the process-wide engine (``None`` resets to lazy default)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def configure_default_engine(*, workers: int = 1, cache: bool = True,
                             max_entries: int = 100_000,
                             disk_dir=None) -> BatchExecutor:
    """Build and install the process-wide engine (CLI entry point)."""
    store = ResultCache(max_entries=max_entries, disk_dir=disk_dir) \
        if cache else None
    engine = BatchExecutor(cache=store, workers=workers)
    set_default_engine(engine)
    return engine


# ----------------------------------------------------------------------
# generic fan-out
# ----------------------------------------------------------------------
def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T],
                 workers: int = 1) -> list[_R]:
    """Map ``fn`` over ``items``, in worker processes when possible.

    Falls back to a serial in-process loop when ``workers <= 1``, when
    there is nothing to parallelise, or when the function/items cannot
    be pickled (closures over models, lambdas) — so callers can expose a
    ``workers`` knob without restricting what their users pass in.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items))
    except (pickle.PicklingError, AttributeError, TypeError):
        return [fn(item) for item in items]
