"""Batch execution of sequence requests: memoized, parallel, fault-isolated.

:class:`BatchExecutor` is the single funnel every sweep layer drives its
simulations through:

* :meth:`BatchExecutor.run` — execute (or recall) one request;
* :meth:`BatchExecutor.map` — execute a whole fan-out, deduplicated
  against itself and the cache, with the misses spread over a
  ``concurrent.futures.ProcessPoolExecutor`` when ``workers > 1``.

Worker processes receive only the picklable :class:`SequenceRequest`
value objects and *reconstruct* the column model locally — netlists
never cross a process boundary.  Each process keeps a small model cache
keyed by (backend, technology, defect kind, cell), so a sweep that
varies only the resistance or the stress reuses one built netlist, just
like the hand-rolled sweeps did.

Fault isolation (the resilience layer):

* every batch item is its own future, so one bad request cannot poison
  the pool-wide ``map``;
* ``timeout`` bounds the wall-clock wait per request — a wedged solve
  comes back as a structured failure, never a hang;
* a crashed worker (``BrokenProcessPool``) triggers a pool respawn and a
  bounded, backed-off re-drive of the unfinished items; repeat offenders
  fall back to in-process serial execution;
* ``on_error="isolate"`` converts item failures into
  :class:`~repro.engine.failures.FailedResult` records holding the
  exception type, message, rescue trail and attempt count, aligned with
  the input order; ``on_error="raise"`` (the default) propagates the
  first failure exactly like the classic code path.

:func:`parallel_map` is the generic fan-out helper for coarser units of
work (whole per-defect optimizations, Monte-Carlo samples, march runs);
when the workload cannot be pickled (closures, lambdas) it logs a
warning and re-runs *only the unfinished items* serially, so completed
worker results are never thrown away.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.diagnostics import diagnostics, get_logger
from repro.dram.ops import SequenceResult, parse_ops
from repro.engine.cache import EngineStats, ResultCache
from repro.engine.failures import FailedResult, is_failed
from repro.engine.request import SequenceRequest, tech_fingerprint

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Per-process cache of built column models, keyed by everything that
#: requires a rebuild (resistance and stress are mutable in place).
_PROCESS_MODELS: dict = {}

#: Base delay (seconds) of the exponential backoff between retry rounds.
RETRY_BACKOFF = 0.1

#: Sentinel marking a batch slot that has not produced an outcome yet.
_UNSET = object()


def _model_for(request: SequenceRequest):
    """Build (or reuse) the model (column or array) serving ``request``."""
    key = (request.backend, request.tech, request.defect_kind,
           request.cell, request.geometry, request.address, request.trim)
    model = _PROCESS_MODELS.get(key)
    if model is None:
        site = request.site()
        if request.geometry is not None:
            if request.backend != "electrical":
                raise ValueError(
                    f"array requests support only the electrical "
                    f"backend, not {request.backend!r}")
            from repro.dram.runner import ArrayRunner
            model = ArrayRunner(tech=request.tech, stress=request.stress,
                                defect=site, geometry=request.geometry,
                                address=request.address,
                                trim=request.trim)
        elif request.backend == "electrical":
            from repro.dram.runner import ColumnRunner
            model = ColumnRunner(tech=request.tech, stress=request.stress,
                                 defect=site, target_cell=request.cell)
        elif request.backend == "behavioral":
            from repro.behav.model import BehavioralColumn
            model = BehavioralColumn(tech=request.tech,
                                     stress=request.stress,
                                     defect=site,
                                     target_cell=request.cell)
        else:
            raise ValueError(f"unknown backend {request.backend!r}")
        _PROCESS_MODELS[key] = model
    model.set_stress(request.stress)
    if request.resistance is not None:
        model.set_defect_resistance(request.resistance)
    return model


def execute_request(request: SequenceRequest) -> SequenceResult:
    """Simulate one request from scratch (no cache involved).

    Module-level so process pools can ship it to workers by reference.
    """
    model = _model_for(request)
    return model.run_sequence(parse_ops(request.ops),
                              init_vc=request.init_vc,
                              background=request.background)


def _lane_group_key(request: SequenceRequest):
    """Grouping key of the batched-lane path: everything that must match
    for requests to share one stacked transient (only resistance and
    initial cell voltage may vary across lanes).  Geometry, address and
    trim policy are part of the key so array requests only batch when
    they share one (identically trimmed) netlist topology."""
    return (request.defect_kind, request.cell, request.ops,
            request.background, request.stress,
            request.geometry, request.address, request.trim,
            tech_fingerprint(request.tech))


def _lane_groups(pending: Sequence[SequenceRequest], width: int
                 ) -> tuple[list[list[SequenceRequest]],
                            list[SequenceRequest]]:
    """Split a batch into same-topology lane groups and a remainder.

    Electrical requests with a defect resistance are laneable — the
    resistance is the per-lane axis.  Column requests stack the seed
    column topology (:class:`~repro.dram.runner.LaneRunner`); array
    requests with identical geometry/address/trim stack their shared
    (possibly trimmed) array topology
    (:class:`~repro.dram.runner.ArrayLaneRunner`), dense or sparse as
    the backend policy resolves.  Groups are chunked to at most
    ``width`` lanes; chunks of a single request are not worth a stacked
    transient and stay on the classic path.
    """
    by_key: dict = {}
    for i, request in enumerate(pending):
        if request.backend != "electrical" or request.resistance is None:
            continue
        by_key.setdefault(_lane_group_key(request), []).append(i)
    groups: list[list[SequenceRequest]] = []
    grouped: set[int] = set()
    for idxs in by_key.values():
        for start in range(0, len(idxs), width):
            chunk = idxs[start:start + width]
            if len(chunk) >= 2:
                groups.append([pending[i] for i in chunk])
                grouped.update(chunk)
    rest = [r for i, r in enumerate(pending) if i not in grouped]
    return groups, rest


def execute_lane_group(requests: Sequence[SequenceRequest]
                       ) -> tuple[list, dict[str, int]]:
    """Run one same-topology group of requests as stacked lanes.

    Returns per-request :class:`SequenceResult` slots (``None`` where a
    lane was isolated and must re-run on the legacy path) plus the lane
    counters.  Shares :data:`_PROCESS_MODELS` under a ``"lanes"`` key so
    repeated sweeps reuse the built netlist and compiled plans.
    """
    first = requests[0]
    key = ("lanes", first.tech, first.defect_kind, first.cell,
           first.geometry, first.address, first.trim)
    model = _PROCESS_MODELS.get(key)
    if model is None:
        if first.geometry is not None:
            from repro.dram.runner import ArrayLaneRunner
            model = ArrayLaneRunner(tech=first.tech, stress=first.stress,
                                    defect_kind=first.defect_kind,
                                    cell=first.cell,
                                    geometry=first.geometry,
                                    address=first.address,
                                    trim=first.trim)
        else:
            from repro.dram.runner import LaneRunner
            model = LaneRunner(tech=first.tech, stress=first.stress,
                               defect_kind=first.defect_kind,
                               target_cell=first.cell)
        _PROCESS_MODELS[key] = model
    model.set_stress(first.stress)
    lanes_in = [(r.resistance, r.init_vc) for r in requests]
    return model.run_sequences(parse_ops(first.ops), lanes_in,
                               background=first.background)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on wedged or dead workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass


class BatchExecutor:
    """Run sequence requests through a shared cache, serially or fanned
    out over worker processes.

    Parameters
    ----------
    cache:
        The :class:`ResultCache` to consult/feed.  ``None`` disables
        memoization entirely (every request simulates).
    workers:
        Default process count for :meth:`map`; ``1`` (or less) keeps
        everything in-process, which is also the fallback when a batch
        has at most one miss to execute.
    on_error:
        Default failure policy for :meth:`map`: ``"raise"`` propagates
        the first item failure (classic behaviour), ``"isolate"``
        returns a :class:`FailedResult` in the failing slots instead.
    timeout:
        Per-request wall-clock bound (seconds) in the parallel path;
        ``None`` waits forever.  Expiry produces a failure (record or
        exception per ``on_error``) and a pool respawn, never a hang.
    max_retries:
        How many times an item interrupted by a worker crash is
        re-driven in a fresh pool before falling back to in-process
        serial execution.
    work_fn:
        The unit of work mapped over requests (default
        :func:`execute_request`); must be a picklable module-level
        callable.  Exposed for alternative backends and fault-injection
        tests.
    lanes:
        Batched-lane width for :meth:`map`: same-topology electrical
        misses that differ only in defect resistance / initial voltage
        are stacked into one multi-lane transient of at most this many
        lanes (see :mod:`repro.spice.lanes`).  ``0`` or ``1`` disables
        lane grouping; ``None`` (the default) defers to the process-wide
        :func:`repro.spice.transient.lanes_default` at map time.  Lane
        groups run in-process — for the small sweeps this repo runs,
        the stacked kernel beats shipping requests to worker processes,
        so laneable work is carved out *before* the pool sees it.
    journal:
        Optional :class:`~repro.engine.journal.SweepJournal`: every
        completed request appends one fsync'd record *after* its result
        landed in the cache's durable store, and every isolated failure
        records its hole.  A journal opened with ``resume=True`` lets
        an interrupted sweep skip already-journaled work (see
        :mod:`repro.engine.journal` for the recovery semantics).
    """

    def __init__(self, cache: ResultCache | None = None,
                 workers: int = 1, *, on_error: str = "raise",
                 timeout: float | None = None, max_retries: int = 2,
                 work_fn: Callable = execute_request,
                 lanes: int | None = None,
                 journal=None):
        if on_error not in ("raise", "isolate"):
            raise ValueError(f"unknown on_error policy {on_error!r}")
        self.cache = cache
        self.workers = max(1, int(workers))
        self.on_error = on_error
        self.timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.lanes = None if lanes is None else max(0, int(lanes))
        self.journal = journal
        self._work = work_fn
        # Cycle accounting lives on the cache when there is one, so
        # stats survive executor turnover; otherwise track locally.
        self._stats = cache.stats if cache is not None else EngineStats()

    @property
    def stats(self) -> EngineStats:
        """Hit/miss/cycle counters of this engine."""
        return self._stats

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, request: SequenceRequest) -> SequenceResult:
        """Execute one request, consulting the cache first."""
        key = request.content_hash
        if self.cache is not None:
            cached = self.cache.get(request)
            if cached is not None:
                self._note_recovery(key, hit=True)
                return cached
        self._note_recovery(key, hit=False)
        result = self._work(request)
        if self.cache is not None:
            self.cache.put(request, result)
        else:
            self._stats.misses += 1
            self._stats.cycles_simulated += request.cycles
        self._journal_ok(key)
        return result

    def map(self, requests: Sequence[SequenceRequest],
            workers: int | None = None, *, on_error: str | None = None,
            timeout: float | None = None,
            max_retries: int | None = None) -> list:
        """Execute a batch, returning results aligned with ``requests``.

        Duplicate requests (same content hash) are simulated once.
        Cache misses run in a process pool when more than one remains
        and ``workers > 1``; results always come back in input order,
        so serial and parallel execution are interchangeable.  Under
        ``on_error="isolate"`` failed slots hold
        :class:`FailedResult` records (shared by duplicates) and are
        never written to the cache.
        """
        requests = list(requests)
        workers = self.workers if workers is None else max(1, int(workers))
        on_error = self.on_error if on_error is None else on_error
        if on_error not in ("raise", "isolate"):
            raise ValueError(f"unknown on_error policy {on_error!r}")
        timeout = self.timeout if timeout is None else timeout
        max_retries = self.max_retries if max_retries is None \
            else max(0, int(max_retries))

        results: dict[str, object] = {}
        pending: list[SequenceRequest] = []
        for request in requests:
            key = request.content_hash
            if key in results:
                # Duplicate within the batch: count as a saved hit.
                self._stats.hits += 1
                self._stats.cycles_saved += request.cycles
                continue
            hole = self._journal_hole(key, on_error)
            if hole is not None:
                # A resumed journal says this request already failed:
                # replay the hole instead of burning cycles on it.
                results[key] = hole
                continue
            if self.cache is not None:
                cached = self.cache.get(request)
                if cached is not None:
                    self._note_recovery(key, hit=True)
                    results[key] = cached
                    continue
            self._note_recovery(key, hit=False)
            results[key] = None  # reserve input order / dedupe slot
            pending.append(request)

        if pending:
            outcomes: dict[str, object] = {}
            rest = pending
            width = self._lane_width()
            if width >= 2:
                groups, rest = _lane_groups(pending, width)
                for group in groups:
                    for request, result in zip(
                            group, self._run_lane_group(group, on_error)):
                        outcomes[request.content_hash] = result
            if rest:
                if workers > 1 and len(rest) > 1:
                    executed = self._execute_pool(rest, workers, on_error,
                                                  timeout, max_retries)
                else:
                    executed = [self._execute_serial(r, on_error)
                                for r in rest]
                for request, result in zip(rest, executed):
                    outcomes[request.content_hash] = result
            for request in pending:
                key = request.content_hash
                result = outcomes[key]
                results[key] = result
                if is_failed(result):
                    self._stats.failures += 1
                    diagnostics().record_failure(result.error_type,
                                                 result.describe())
                    if self.journal is not None:
                        self.journal.record_failure(key, result)
                    continue
                if self.cache is not None:
                    self.cache.put(request, result)
                else:
                    self._stats.misses += 1
                    self._stats.cycles_simulated += request.cycles
                self._journal_ok(key)

        return [results[r.content_hash] for r in requests]

    # ------------------------------------------------------------------
    # journal integration (checkpoint/resume)
    # ------------------------------------------------------------------
    def _journal_ok(self, key: str) -> None:
        """Record a completed request (after its durable store put)."""
        if self.journal is not None:
            self.journal.record_ok(key)

    def _journal_hole(self, key: str, on_error: str):
        """The replayed :class:`FailedResult` for a journaled failure.

        Only applies under ``on_error="isolate"`` — a raising sweep
        wants the failure re-attempted, not replayed.  Returns ``None``
        when the journal has nothing (or something else) to say.
        """
        if self.journal is None or on_error != "isolate":
            return None
        record = self.journal.recovered(key)
        if record is None or record.get("status") != "failed":
            return None
        self.journal.claim(key)
        hole = self.journal.recovered_failure(record)
        self._stats.failures += 1
        diagnostics().record_journal_hole(hole.describe())
        return hole

    def _note_recovery(self, key: str, *, hit: bool) -> None:
        """Account a resumed request: recovered on a cache hit, missing
        from the store (re-run) otherwise."""
        if self.journal is None:
            return
        record = self.journal.claim(key)
        if record is None or record.get("status") != "ok":
            return
        if hit:
            diagnostics().record_journal_recovery()
        else:
            diagnostics().record_journal_missing(key)

    # ------------------------------------------------------------------
    # execution internals
    # ------------------------------------------------------------------
    def _lane_width(self) -> int:
        """Effective lane width for this map call.

        Lane grouping only applies to the standard electrical work
        unit: a custom ``work_fn`` (fault injection, alternative
        backends) must see every request, so it disables the carve-out.
        """
        if self._work is not execute_request:
            return 0
        if self.lanes is not None:
            return self.lanes
        from repro.spice.transient import lanes_default
        return lanes_default()

    def effective_lanes(self) -> int:
        """The lane width :meth:`map` would use right now.

        Exposed so batch-aware drivers (speculative BR bisection, the
        border scan) can decide whether prefetching probes into one
        ``map`` call will actually stack — with a width below 2 the
        carve-out never fires and speculation would only waste
        simulations.
        """
        return self._lane_width()

    def _run_lane_group(self, group: Sequence[SequenceRequest],
                        on_error: str) -> list:
        """Execute one lane group, falling back per-lane on trouble.

        Isolated lanes (``None`` slots) re-run on the legacy serial
        path with its full rescue ladder; an exception from the stacked
        kernel itself demotes the whole group to serial execution — the
        lane kernel is an accelerator, never a new failure mode.
        """
        try:
            lane_results, counters = execute_lane_group(group)
        except Exception as exc:
            get_logger("engine").warning(
                "lane group of %d failed (%s: %s); running serially",
                len(group), type(exc).__name__, exc)
            return [self._execute_serial(r, on_error) for r in group]
        diagnostics().record_lane_counters(counters)
        self._stats.lane_groups += 1
        self._stats.lane_sparse_groups += \
            counters.get("lane_sparse_groups", 0) and 1
        self._stats.lane_warm_hits += \
            counters.get("lane_warm_start_hits", 0)
        self._stats.lane_warm_misses += \
            counters.get("lane_warm_start_misses", 0)
        out = []
        for request, result in zip(group, lane_results):
            if result is None:
                out.append(self._execute_serial(request, on_error))
            else:
                out.append(result)
        return out

    def _execute_serial(self, request: SequenceRequest, on_error: str,
                        *, prior_attempts: int = 0):
        """Run one request in-process (also the repeat-offender path)."""
        try:
            return self._work(request)
        except Exception as exc:
            if on_error == "raise":
                raise
            return FailedResult.from_exception(
                request, exc, attempts=prior_attempts + 1)

    def _execute_pool(self, pending: Sequence[SequenceRequest],
                      workers: int, on_error: str,
                      timeout: float | None,
                      max_retries: int) -> list:
        """Drive ``pending`` through per-item futures with crash/timeout
        recovery.  Returns outcomes aligned with ``pending``."""
        log = get_logger("engine")
        n = len(pending)
        outcomes: list = [_UNSET] * n
        attempts = [0] * n
        todo = list(range(n))
        rounds = 0
        while todo:
            rounds += 1
            if rounds > 1:
                self._stats.retries += len(todo)
                diagnostics().record_retry(len(todo))
                time.sleep(min(RETRY_BACKOFF * 2 ** (rounds - 2), 2.0))
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(todo)))
            dirty = False                  # pool needs a hard teardown
            error: BaseException | None = None   # deferred re-raise
            rerun: list[int] = []
            futures = []
            for i in todo:
                attempts[i] += 1
                futures.append((i, pool.submit(self._work, pending[i])))
            for i, fut in futures:
                if error is not None or dirty:
                    # The pool is compromised (or we are about to
                    # raise): salvage finished work, reschedule the
                    # rest.
                    if fut.done() and not fut.cancelled():
                        exc = fut.exception()
                        if exc is None:
                            outcomes[i] = fut.result()
                        elif isinstance(exc, BrokenProcessPool):
                            rerun.append(i)
                        elif on_error == "isolate":
                            outcomes[i] = FailedResult.from_exception(
                                pending[i], exc, attempts=attempts[i])
                        elif error is None:
                            error = exc
                    else:
                        fut.cancel()
                        rerun.append(i)
                    continue
                try:
                    outcomes[i] = fut.result(timeout=timeout)
                except FuturesTimeoutError:
                    # The worker may be wedged: fail the item, rebuild
                    # the pool for whatever is still outstanding.
                    dirty = True
                    log.warning("request timed out after %.3gs "
                                "(attempt %d)", timeout, attempts[i])
                    if on_error == "isolate":
                        outcomes[i] = FailedResult(
                            error_type="TimeoutError",
                            message=f"no result within {timeout:.3g}s",
                            attempts=attempts[i],
                            request_summary=self._summarize(pending[i]))
                    else:
                        error = TimeoutError(
                            f"batch request produced no result within "
                            f"{timeout:.3g}s")
                except BrokenProcessPool:
                    dirty = True
                    diagnostics().record_worker_crash()
                    log.warning("worker crashed mid-batch (attempt %d); "
                                "respawning pool", attempts[i])
                    rerun.append(i)
                except Exception as exc:
                    if on_error == "isolate":
                        outcomes[i] = FailedResult.from_exception(
                            pending[i], exc, attempts=attempts[i])
                    else:
                        error = exc
            if dirty or error is not None:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
            if error is not None:
                raise error
            todo = []
            for i in rerun:
                if attempts[i] > max_retries:
                    # Repeat offender: last chance in-process, where a
                    # crash cannot take other items with it.
                    log.warning("request survived %d pool attempts "
                                "without a result; running serially",
                                attempts[i])
                    outcomes[i] = self._execute_serial(
                        pending[i], on_error,
                        prior_attempts=attempts[i])
                else:
                    todo.append(i)
        return outcomes

    @staticmethod
    def _summarize(request) -> str | None:
        describe = getattr(request, "describe", None)
        if callable(describe):
            try:
                return describe()
            except Exception:
                return repr(request)
        return None


# ----------------------------------------------------------------------
# default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: BatchExecutor | None = None


def default_engine() -> BatchExecutor:
    """The process-wide engine (created on first use: cached, serial)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = BatchExecutor(cache=ResultCache())
    return _DEFAULT_ENGINE


def set_default_engine(engine: BatchExecutor | None) -> None:
    """Replace the process-wide engine (``None`` resets to lazy default)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def configure_default_engine(*, workers: int = 1, cache: bool = True,
                             max_entries: int = 100_000,
                             disk_dir=None, on_error: str = "raise",
                             timeout: float | None = None,
                             max_retries: int = 2,
                             lanes: int | None = None,
                             backend: str | None = None,
                             trim: str | None = None,
                             checkpoint=None,
                             resume: bool = False,
                             surrogate: str | None = None
                             ) -> BatchExecutor:
    """Build and install the process-wide engine (CLI entry point).

    ``backend`` (when given) sets the process-wide solver-backend
    default (:func:`repro.spice.backends.set_backend_default`); workers
    spawned by fork inherit it with the rest of the module state.
    ``trim`` likewise sets the process-wide netlist-trimming default
    (:func:`repro.dram.trim.set_trim_default`) consumed by array
    requests built without an explicit policy.

    ``checkpoint`` (a directory) makes the run durable: results land in
    a sharded integrity-checked store there and every completion is
    journaled (see :mod:`repro.engine.journal`); it overrides
    ``cache=False``/``disk_dir`` because durability *is* the cache's
    disk tier.  ``resume=True`` additionally recovers a prior
    interrupted run's journal, skipping already-completed work.
    """
    if backend is not None:
        from repro.spice.backends import set_backend_default
        set_backend_default(backend)
    if trim is not None:
        from repro.dram.trim import set_trim_default
        set_trim_default(trim)
    journal = None
    if checkpoint is not None:
        from repro.engine.journal import SweepCheckpoint
        ckpt = SweepCheckpoint(checkpoint, resume=resume)
        store = ckpt.cache(max_entries=max_entries)
        journal = ckpt.journal
    elif cache:
        store = ResultCache(max_entries=max_entries, disk_dir=disk_dir)
    else:
        store = None
    engine = BatchExecutor(cache=store, workers=workers,
                           on_error=on_error, timeout=timeout,
                           max_retries=max_retries, lanes=lanes,
                           journal=journal)
    set_default_engine(engine)
    from repro.surrogate.tier import SurrogateTier, set_active_tier
    if surrogate in (None, "off"):
        set_active_tier(None)
    else:
        durable = store.store if store is not None else None
        set_active_tier(SurrogateTier(surrogate, store=durable,
                                      stats=engine.stats))
    return engine


# ----------------------------------------------------------------------
# generic fan-out
# ----------------------------------------------------------------------
def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T],
                 workers: int = 1) -> list[_R]:
    """Map ``fn`` over ``items``, in worker processes when possible.

    Falls back to an in-process loop when ``workers <= 1``, when there
    is nothing to parallelise, or when the function/items cannot be
    pickled (closures over models, lambdas) — so callers can expose a
    ``workers`` knob without restricting what their users pass in.  The
    pickling fallback is *partial*: items that already completed in
    workers keep their results, only the unfinished remainder re-runs
    serially, and the degradation is logged as a warning.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: list = [_UNSET] * len(items)
    try:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(items))) as pool:
            futures = [(i, pool.submit(fn, item))
                       for i, item in enumerate(items)]
            for i, fut in futures:
                results[i] = fut.result()
        return results
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        missing = [i for i, r in enumerate(results) if r is _UNSET]
        get_logger("engine").warning(
            "parallel fan-out cannot cross the process boundary (%s: "
            "%s); running %d of %d items serially in-process",
            type(exc).__name__, exc, len(missing), len(items))
        for i in missing:
            results[i] = fn(items[i])
        return results
