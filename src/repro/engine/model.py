"""Engine-backed column model and the batched sweep primitive.

:class:`EngineModel` satisfies the :class:`~repro.analysis.interface
.ColumnModel` protocol, so every existing analysis routine runs on it
unchanged — but its ``run_sequence`` routes through the
:class:`~repro.engine.executor.BatchExecutor`, which memoises identical
simulations and can fan batches out over worker processes.  Sweep code
that knows its whole fan-out up front expresses it as a list of
:class:`BatchItem` overrides and calls :func:`batch_run`, which executes
the batch through the engine when the model supports it and falls back
to the classic mutate-and-run loop for plain models (including wrappers
like :class:`~repro.analysis.interface.CycleCountingModel`).

State-chained work (march tests, coupling analysis) keeps using
``idle_state``/``run_op``; those delegate to a lazily-built inner model,
bypassing the cache — per-sequence memoization has no meaning for a
voltage state threaded across hundreds of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.defects.catalog import Defect
from repro.dram.ops import Op, SequenceResult, format_ops, parse_ops
from repro.dram.tech import TechnologyParams, default_tech
from repro.engine.executor import BatchExecutor, default_engine
from repro.engine.request import SequenceRequest
from repro.stress import NOMINAL_STRESS, StressConditions


@dataclass(frozen=True)
class BatchItem:
    """One element of a sweep fan-out: a sequence plus optional overrides.

    ``resistance``/``stress`` override the model's current defect
    resistance and stress combination for this item only — exactly what
    the resistance grids, ST panels and Shmoo grids vary per point.
    """

    ops: str
    init_vc: float
    background: int = 0
    resistance: float | None = None
    stress: StressConditions | None = None

    @classmethod
    def of(cls, ops, init_vc: float, *, background: int = 0,
           resistance: float | None = None,
           stress: StressConditions | None = None) -> "BatchItem":
        """Build an item, canonicalising ``ops`` (string or Op list)."""
        if not isinstance(ops, str):
            ops = format_ops([Op.parse(o) if isinstance(o, str) else o
                              for o in ops])
        return cls(ops=ops, init_vc=float(init_vc),
                   background=int(background), resistance=resistance,
                   stress=stress)


class EngineModel:
    """A column model whose sequence runs are content-addressed.

    Drop-in for :class:`~repro.dram.runner.ColumnRunner` /
    :class:`~repro.behav.model.BehavioralColumn` wherever the
    ``ColumnModel`` protocol is expected.  Construction is cheap: the
    underlying netlist is only built (inside the executing process) when
    a simulation actually runs.

    Parameters
    ----------
    defect:
        High-level catalog defect (or ``None`` for a clean column).
    stress:
        Initial stress combination.
    backend:
        ``"electrical"`` or ``"behavioral"``.
    tech:
        Technology parameters (default: the shared synthetic tech).
    engine:
        Executor to run through; ``None`` binds to the process-wide
        default engine at call time.
    """

    def __init__(self, defect: Defect | None = None,
                 stress: StressConditions = NOMINAL_STRESS,
                 backend: str = "behavioral", *,
                 tech: TechnologyParams | None = None,
                 engine: BatchExecutor | None = None):
        if backend not in ("electrical", "behavioral"):
            raise ValueError(f"unknown backend {backend!r}")
        self.tech = tech or default_tech()
        self.stress = stress
        self.defect = defect
        self.backend = backend
        self._engine = engine
        self._inner = None

    # ------------------------------------------------------------------
    # engine plumbing
    # ------------------------------------------------------------------
    @property
    def engine(self) -> BatchExecutor:
        """The executor serving this model."""
        return self._engine if self._engine is not None \
            else default_engine()

    def request(self, ops, init_vc: float, *, background: int = 0,
                resistance: float | None = None,
                stress: StressConditions | None = None
                ) -> SequenceRequest:
        """The content-addressed request one ``run_sequence`` maps to."""
        defect = self.defect
        if resistance is not None:
            if defect is None:
                raise ValueError("this column has no injected defect")
            defect = defect.with_resistance(resistance)
        return SequenceRequest.build(
            ops, init_vc, backend=self.backend, defect=defect,
            stress=stress if stress is not None else self.stress,
            tech=self.tech, background=background)

    def batch(self, items, *, on_error: str | None = None
              ) -> list[SequenceResult]:
        """Execute a whole fan-out of :class:`BatchItem` through the
        engine (deduplicated, cached, parallel when configured).

        ``on_error=None`` inherits the engine's failure policy;
        ``"isolate"`` returns :class:`~repro.engine.failures
        .FailedResult` holes instead of raising on a failed item.
        """
        requests = [self.request(item.ops, item.init_vc,
                                 background=item.background,
                                 resistance=item.resistance,
                                 stress=item.stress)
                    for item in items]
        return self.engine.map(requests, on_error=on_error)

    # ------------------------------------------------------------------
    # ColumnModel protocol
    # ------------------------------------------------------------------
    @property
    def target_on_true(self) -> bool:
        """Whether the target cell hangs on the true bit line."""
        cell = self.defect.cell_index if self.defect is not None else 0
        return cell % 2 == 0

    def set_stress(self, stress: StressConditions) -> None:
        """Change the stress combination for subsequent runs."""
        self.stress = stress
        if self._inner is not None:
            self._inner.set_stress(stress)

    def set_defect_resistance(self, resistance: float) -> None:
        """Change the injected defect's resistance."""
        if self.defect is None:
            raise ValueError("this column has no injected defect")
        self.defect = self.defect.with_resistance(resistance)
        if self._inner is not None:
            self._inner.set_defect_resistance(resistance)

    def run_sequence(self, ops, init_vc: float, background: int = 0
                     ) -> SequenceResult:
        """Run one operation sequence through the engine (memoized)."""
        return self.engine.run(
            self.request(ops, init_vc, background=background))

    def idle_state(self, vc_target: float, background: int = 0) -> dict:
        """Quiescent node state (delegates to the inner model)."""
        return self._inner_model().idle_state(vc_target,
                                              background=background)

    def run_op(self, op, state: dict, **kwargs) -> tuple:
        """One chained operation cycle (delegates, uncached)."""
        return self._inner_model().run_op(op, state, **kwargs)

    def _inner_model(self):
        """The concrete column model behind the protocol extras."""
        if self._inner is None:
            site = self.defect.site() if self.defect is not None else None
            cell = self.defect.cell_index if self.defect is not None \
                else 0
            if self.backend == "electrical":
                from repro.dram.runner import ColumnRunner
                self._inner = ColumnRunner(tech=self.tech,
                                           stress=self.stress,
                                           defect=site, target_cell=cell)
            else:
                from repro.behav.model import BehavioralColumn
                self._inner = BehavioralColumn(tech=self.tech,
                                               stress=self.stress,
                                               defect=site,
                                               target_cell=cell)
        return self._inner


def batch_run(model, items, *, on_error: str | None = None
              ) -> list[SequenceResult]:
    """Run a fan-out of :class:`BatchItem` on any column model.

    Engine-backed models execute the whole batch at once (dedupe, cache,
    process pool); plain models replay the classic loop — apply the
    overrides, run, restore the base stress — so wrapped/counting models
    observe exactly the calls the hand-rolled sweeps made.

    ``on_error=None`` inherits the executing engine's failure policy
    (plain models raise, the classic behaviour); ``"isolate"`` returns a
    :class:`~repro.engine.failures.FailedResult` in the failing slots so
    a sweep survives non-convergent points as holes.
    """
    items = list(items)
    if hasattr(model, "batch"):
        return model.batch(items, on_error=on_error)
    from repro.engine.failures import FailedResult
    results = []
    base_stress = model.stress
    for item in items:
        if item.stress is not None:
            model.set_stress(item.stress)
        if item.resistance is not None:
            model.set_defect_resistance(item.resistance)
        try:
            results.append(model.run_sequence(parse_ops(item.ops),
                                              init_vc=item.init_vc,
                                              background=item.background))
        except Exception as exc:
            if on_error != "isolate":
                if item.stress is not None:
                    model.set_stress(base_stress)
                raise
            failure = FailedResult.from_exception(item, exc)
            from repro.diagnostics import diagnostics
            diagnostics().record_failure(failure.error_type,
                                         failure.describe())
            results.append(failure)
        if item.stress is not None:
            model.set_stress(base_stress)
    return results
