"""Content-addressed description of one operation-sequence simulation.

Every evaluation in the paper — result planes, border bisection, quick
direction panels, Table-1 optimization — reduces to fan-outs of the same
primitive: *simulate one operation sequence on one (defective) column
under one stress combination*.  :class:`SequenceRequest` captures that
primitive as a frozen value object with a deterministic content hash, so
identical simulations can be recognised across callers, cached, and
shipped to worker processes without the netlist ever leaving the process
that needs it.

The hash covers everything the simulation outcome depends on:

* the simulation backend (``"electrical"`` or ``"behavioral"``),
* the full technology parameter set (hashed recursively, so Monte-Carlo
  technology perturbations never collide with the typical corner),
* the defect kind, afflicted cell and resistance,
* the stress combination (tcyc, duty, temperature, Vdd),
* the canonical operation string, the initial cell voltage and the
  logical background.

Floats are rendered with ``repr`` (shortest round-trip form), so equal
doubles always produce equal payloads and the hash is stable across
processes and platforms.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import cached_property

from repro.defects.catalog import Defect
from repro.dram.column import DefectSite
from repro.dram.ops import format_ops, parse_ops
from repro.dram.tech import TechnologyParams, default_tech
from repro.stress import StressConditions

#: Bumped whenever the simulation semantics change incompatibly, so stale
#: on-disk cache entries can never be returned for new code.
SCHEMA_VERSION = 1


def _canonical(value):
    """JSON-serialisable canonical form of a payload value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def tech_fingerprint(tech: TechnologyParams) -> str:
    """Deterministic short hash of a full technology parameter set."""
    payload = json.dumps(_canonical(tech), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class SequenceRequest:
    """One simulation, fully described and content-addressable.

    Attributes
    ----------
    backend:
        ``"electrical"`` (SPICE-level column) or ``"behavioral"``.
    tech:
        The complete technology parameter set the column is built from.
    defect_kind:
        Netlist-level defect kind string (``"open_sn"`` …), or ``None``
        for a defect-free column.
    cell:
        Index of the afflicted/target cell.
    resistance:
        Defect resistance in ohms (``None`` for defect-free columns).
    stress:
        The stress combination applied to every cycle.
    ops:
        Canonical operation string (``"w1^2 w0 r0"``).
    init_vc:
        Initial physical storage voltage of the target cell.
    background:
        Logical value held by the other cells of the column.
    geometry:
        ``None`` for the seed 2×2 column (the default DUT), or an
        ``(rows, cols)`` pair to simulate an R×C array through
        :class:`~repro.dram.runner.ArrayRunner` instead.
    address:
        Accessed ``(row, col)`` of an array request (``None`` lets the
        runner default to the defective cell's own position).
    trim:
        Netlist trimming policy of an array request —
        ``"off"``/``"auto"``/``"force"``
        (see :mod:`repro.dram.trim`).  Part of the content hash for
        array requests, so trimmed and full results never collide in
        the cache or the verified store.
    tier:
        Which answer tier produced (or owns) the entry this request
        addresses.  ``"sim"`` — the default — is a real simulation
        result; ``"surrogate-cal"`` addresses a surrogate-tier
        calibration journal stored alongside the simulation entries
        (see :mod:`repro.surrogate.store`).  Non-default tiers get
        their own hash axis, so surrogate artifacts can never collide
        with simulation results.
    """

    backend: str
    tech: TechnologyParams
    defect_kind: str | None
    cell: int
    resistance: float | None
    stress: StressConditions
    ops: str
    init_vc: float
    background: int = 0
    geometry: tuple[int, int] | None = None
    address: tuple[int, int] | None = None
    trim: str = "off"
    tier: str = "sim"

    @classmethod
    def build(cls, ops, init_vc: float, *, backend: str,
              defect: Defect | DefectSite | None,
              stress: StressConditions,
              tech: TechnologyParams | None = None,
              background: int = 0,
              geometry: tuple[int, int] | None = None,
              address: tuple[int, int] | None = None,
              trim: str | None = None) -> "SequenceRequest":
        """Build a request from high-level pieces.

        ``ops`` may be a string or a list of :class:`~repro.dram.ops.Op`;
        it is canonicalised through ``format_ops`` either way, so
        ``"w1 w1"`` and ``[w1, w1]`` address the same cache entry.
        ``defect`` may be the high-level catalog :class:`Defect` or the
        netlist-level :class:`DefectSite`.

        ``geometry`` turns the request into an array simulation;
        ``trim=None`` then resolves to the process-wide default
        (:func:`repro.dram.trim.trim_default`).  Column requests always
        carry ``trim="off"`` so their hashes stay unchanged.
        """
        if isinstance(ops, str):
            ops = parse_ops(ops)
        if isinstance(defect, Defect):
            site = defect.site()
        else:
            site = defect
        if geometry is not None:
            from repro.dram.trim import resolve_trim
            geometry = (int(geometry[0]), int(geometry[1]))
            trim = resolve_trim(trim)
            if address is not None:
                address = (int(address[0]), int(address[1]))
        else:
            if address is not None:
                raise ValueError("address requires geometry")
            if trim not in (None, "off"):
                raise ValueError("trim requires geometry (the seed 2x2 "
                                 "column is never trimmed)")
            trim = "off"
        return cls(
            backend=backend,
            tech=tech or default_tech(),
            defect_kind=site.kind if site is not None else None,
            cell=site.cell if site is not None else 0,
            resistance=site.resistance if site is not None else None,
            stress=stress,
            ops=format_ops(ops),
            init_vc=float(init_vc),
            background=int(background),
            geometry=geometry,
            address=address,
            trim=trim,
        )

    @property
    def cycles(self) -> int:
        """Number of operation cycles this request simulates."""
        return len(parse_ops(self.ops))

    @cached_property
    def content_hash(self) -> str:
        """Deterministic hex digest addressing this simulation."""
        payload = {
            "schema": SCHEMA_VERSION,
            "backend": self.backend,
            "tech": _canonical(self.tech),
            "defect_kind": self.defect_kind,
            "cell": self.cell,
            "resistance": _canonical(self.resistance)
            if self.resistance is not None else None,
            "stress": _canonical(self.stress),
            "ops": self.ops,
            "init_vc": repr(self.init_vc),
            "background": self.background,
        }
        # Array fields only enter the payload when used, so every column
        # request keeps the hash it had before arrays existed (cache and
        # verified-store entries stay addressable).
        if self.geometry is not None or self.trim != "off":
            payload["geometry"] = (list(self.geometry)
                                   if self.geometry is not None else None)
            payload["address"] = (list(self.address)
                                  if self.address is not None else None)
            payload["trim"] = self.trim
        # The tier axis likewise only enters for non-simulation entries,
        # so every pre-existing hash is preserved.
        if self.tier != "sim":
            payload["tier"] = self.tier
        payload = json.dumps(payload, sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def site(self) -> DefectSite | None:
        """The netlist-level defect this request injects (or ``None``)."""
        if self.defect_kind is None:
            return None
        return DefectSite(self.defect_kind, self.cell, self.resistance)

    def describe(self) -> str:
        """One-line human-readable summary."""
        defect = ("clean" if self.defect_kind is None else
                  f"{self.defect_kind}@{self.cell} "
                  f"R={self.resistance:.3g}")
        dut = ""
        if self.geometry is not None:
            dut = (f" {self.geometry[0]}x{self.geometry[1]} "
                   f"trim={self.trim}")
        return (f"[{self.backend}]{dut} {defect} {self.stress.describe()} "
                f"ops='{self.ops}' Vc0={self.init_vc:.3f}")
