"""Checkpoint/resume for long sweeps: append-only journal + durable store.

A sweep at array scale is hours of work; without durability it dies
with the process.  Two small pieces make any engine-driven sweep
restartable:

* :class:`SweepJournal` — an append-only JSONL file with one fsync'd
  record per *completed* (or, under ``on_error="isolate"``, *failed*)
  request key.  The journal is the authoritative "this work is done"
  list: a record is only appended after the result landed in the
  durable store, so a crash between the two leaves at worst an
  unjournaled (but still cached) result, never a journaled lie.
* :class:`SweepCheckpoint` — a directory bundling the journal with a
  :class:`~repro.store.sharded.ShardedStore` holding the result
  payloads, plus the :class:`~repro.engine.cache.ResultCache` wiring.

Resume semantics (``resume=True``): previously journaled work is
recognised inside :meth:`BatchExecutor.map <repro.engine.executor
.BatchExecutor.map>` / ``run`` —

* journaled-ok requests are served from the store and counted as
  ``journal_recovered`` in :mod:`repro.diagnostics`;
* journaled-ok requests whose store entry was lost or quarantined are
  re-simulated and counted as ``journal_missing`` (corruption degrades
  to recomputation, never to a wrong or absent result);
* journaled failures are replayed as :class:`~repro.engine.failures
  .FailedResult` holes under ``on_error="isolate"`` (counted as
  ``journal_holes``) and re-attempted under ``on_error="raise"``.

A journal opened *without* ``resume`` on an existing file rotates the
old journal to ``<name>.bak`` — checkpoint directories are reusable,
and forgetting ``--resume`` never destroys the durable store.

Torn tails (a crash mid-append) are tolerated on load: any trailing
line that does not parse is dropped, losing at most the single record
being written when the process died.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.cache import ResultCache
from repro.engine.failures import FailedResult
from repro.store.sharded import ShardedStore

#: Bumped when the journal record layout changes incompatibly; foreign
#: versions are ignored on load (their work re-runs).
JOURNAL_VERSION = 1


class SweepJournal:
    """Append-only JSONL journal of completed/failed request keys.

    Parameters
    ----------
    path:
        The journal file.  Parent directories are created.
    resume:
        Load existing records for recovery instead of rotating the file
        away.  Loaded records are *claimed* one by one as the executor
        recognises their requests; unclaimed records stay valid for a
        later resume.
    fsync:
        fsync after every appended record (default).  Each record is a
        single ``os.write`` on an ``O_APPEND`` descriptor, so records
        from forked workers interleave without tearing.
    """

    def __init__(self, path: str | os.PathLike, *, resume: bool = False,
                 fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._written: set[str] = set()
        self._resumed: dict[str, dict] = {}
        if self.path.exists():
            if resume:
                self._resumed = self._load()
                self._written = set(self._resumed)
            elif self.path.stat().st_size > 0:
                os.replace(self.path, self.path.with_name(
                    self.path.name + ".bak"))
        self._fd = os.open(self.path,
                           os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_ok(self, key: str) -> None:
        """Journal one completed request (call *after* the store put)."""
        self._append({"v": JOURNAL_VERSION, "key": key, "status": "ok"})

    def record_failure(self, key: str, failure: FailedResult) -> None:
        """Journal one isolated failure so resume can replay the hole."""
        self._append({
            "v": JOURNAL_VERSION, "key": key, "status": "failed",
            "error_type": failure.error_type,
            "message": failure.message,
            "attempts": failure.attempts,
            "rescue_trail": list(failure.rescue_trail),
            "request_summary": failure.request_summary,
        })

    def _append(self, record: dict) -> None:
        key = record["key"]
        if key in self._written:
            return
        self._written.add(key)
        data = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        os.write(self._fd, data)
        if self.fsync:
            os.fsync(self._fd)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @property
    def resumed(self) -> int:
        """Number of not-yet-claimed records loaded at resume."""
        return len(self._resumed)

    def recovered(self, key: str) -> dict | None:
        """The loaded record for ``key`` (``None`` when not resumed)."""
        return self._resumed.get(key)

    def claim(self, key: str) -> dict | None:
        """Pop and return the loaded record for ``key`` (once).

        Claiming a *failed* record re-opens the key for journaling: a
        re-attempted request appends its fresh outcome, which wins over
        the stale failure on the next load (last record wins).
        """
        record = self._resumed.pop(key, None)
        if record is not None and record.get("status") == "failed":
            self._written.discard(key)
        return record

    def recovered_failure(self, record: dict) -> FailedResult:
        """Rebuild the :class:`FailedResult` a journaled failure held."""
        return FailedResult(
            error_type=record.get("error_type", "UnknownError"),
            message=record.get("message", ""),
            attempts=int(record.get("attempts", 1)),
            rescue_trail=tuple(record.get("rescue_trail") or ()),
            request_summary=record.get("request_summary"))

    def _load(self) -> dict[str, dict]:
        records: dict[str, dict] = {}
        try:
            raw = self.path.read_bytes()
        except OSError:
            return records
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # Torn tail from a crash mid-append (or foreign bytes):
                # drop the record, its work simply re-runs.
                continue
            if not isinstance(record, dict) \
                    or record.get("v") != JOURNAL_VERSION:
                continue
            key = record.get("key")
            if isinstance(key, str) and record.get("status") in (
                    "ok", "failed"):
                records[key] = record          # last record wins
        return records

    def close(self) -> None:
        """Release the journal descriptor (records already durable)."""
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None


class SweepCheckpoint:
    """A checkpoint directory: durable store + completion journal.

    Layout::

        <dir>/journal.jsonl       append-only completion journal
        <dir>/journal.jsonl.bak   previous journal (non-resume reopen)
        <dir>/store/              sharded integrity-checked result store
        <dir>/store/corrupt/      quarantined entries

    Build one with ``resume=True`` to recover a prior run's progress;
    :meth:`cache` returns a :class:`ResultCache` whose disk tier is the
    checkpoint's store, ready to hand to a
    :class:`~repro.engine.executor.BatchExecutor` together with
    :attr:`journal`.
    """

    def __init__(self, directory: str | os.PathLike, *,
                 resume: bool = False, fsync: bool = True,
                 max_entries: int | None = None,
                 max_bytes: int | None = None):
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.store = ShardedStore(self.dir / "store", fsync=fsync,
                                  max_entries=max_entries,
                                  max_bytes=max_bytes)
        self.journal = SweepJournal(self.dir / "journal.jsonl",
                                    resume=resume, fsync=fsync)
        self.resume = resume

    def cache(self, max_entries: int = 100_000) -> ResultCache:
        """A result cache whose disk tier is this checkpoint's store."""
        return ResultCache(max_entries=max_entries, store=self.store)

    def close(self) -> None:
        """Release the journal descriptor."""
        self.journal.close()
