"""Structured failure records for fault-isolated batch execution.

Under ``on_error="isolate"`` the :class:`~repro.engine.executor
.BatchExecutor` returns a :class:`FailedResult` in the slot of every
request that could not be completed — instead of poisoning the whole
batch with an exception.  The record carries everything a sweep layer
needs to report the hole: the exception type and message, the solver's
rescue trail (which fallbacks were attempted before giving up), the
attempt count (1 plus the number of crash retries) and a one-line
request summary.

Sweep code distinguishes holes from results with :func:`is_failed`,
which is duck-typed on the ``failed`` marker so records survive a trip
through a process boundary regardless of import identity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FailedResult:
    """One batch slot that produced no result.

    Attributes
    ----------
    error_type:
        Exception class name (``"ConvergenceError"``, ``"TimeoutError"``,
        ``"BrokenProcessPool"``...).
    message:
        The exception's message.
    attempts:
        How many times the executor drove the request (1 + retries).
    rescue_trail:
        Rescue stages the solver attempted before failing (taken from
        the exception's ``rescue_trail`` attribute when present).
    request_summary:
        ``request.describe()`` when available — identifies the hole.
    """

    error_type: str
    message: str
    attempts: int = 1
    rescue_trail: tuple[str, ...] = ()
    request_summary: str | None = None

    #: Marker for :func:`is_failed` (survives pickling across processes).
    failed = True

    @classmethod
    def from_exception(cls, request, exc: BaseException, *,
                       attempts: int = 1) -> "FailedResult":
        """Build a record from the exception one request died with."""
        trail = tuple(getattr(exc, "rescue_trail", ()) or ())
        summary = None
        describe = getattr(request, "describe", None)
        if callable(describe):
            try:
                summary = describe()
            except Exception:
                summary = repr(request)
        elif request is not None:
            summary = repr(request)
        return cls(error_type=type(exc).__name__, message=str(exc),
                   attempts=attempts, rescue_trail=trail,
                   request_summary=summary)

    def describe(self) -> str:
        """One-line rendering for logs and summaries."""
        trail = f" after {'>'.join(self.rescue_trail)}" \
            if self.rescue_trail else ""
        target = f" [{self.request_summary}]" if self.request_summary \
            else ""
        return (f"FAILED {self.error_type}{trail} "
                f"(attempt {self.attempts}): {self.message}{target}")


def is_failed(result) -> bool:
    """True when a batch slot holds a :class:`FailedResult` hole."""
    return getattr(result, "failed", False) is True
