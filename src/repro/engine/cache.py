"""Content-addressed result cache for sequence simulations.

:class:`ResultCache` memoises :class:`~repro.dram.ops.SequenceResult`
objects under the :class:`~repro.engine.request.SequenceRequest` content
hash.  Two tiers:

* an in-memory LRU (bounded by ``max_entries``) — the working set of a
  sweep session;
* an optional on-disk tier backed by a
  :class:`~repro.store.sharded.ShardedStore` (2-hex-prefix sharded,
  integrity-checked, crash-safe) — survives the process, so repeated
  CLI invocations, checkpointed sweeps and separate analysis passes
  share simulation work.

Invalidation is structural: the request hash covers the backend, the
full technology fingerprint and the stress combination, so changing any
of them simply addresses a different entry.  The schema version baked
into the hash retires every stale entry when simulation semantics
change; the store's own format version retires entries written by an
incompatible store layout (they are quarantined on read).

Cached results are shared objects — callers must treat a returned
:class:`SequenceResult` as immutable.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.dram.ops import SequenceResult
from repro.engine.request import SequenceRequest
from repro.store.sharded import ShardedStore, StoreStats


@dataclass
class EngineStats:
    """Hit/miss and cycle accounting of one cache (or engine) lifetime.

    ``cycles_simulated`` counts the operation cycles actually executed;
    ``cycles_saved`` the cycles that cache hits avoided — together they
    quantify the memoization win (the paper's cost metric is operation
    cycles, see :class:`repro.analysis.interface.CycleCountingModel`).

    ``hits`` is the total over both tiers; ``disk_hits`` the subset
    served by the on-disk store, so ``memory_hits`` is the difference.
    When the cache has a disk tier, ``store`` references its live
    :class:`~repro.store.sharded.StoreStats` (eviction / quarantine /
    reclaim counters); snapshots and deltas carry counters only.
    """

    hits: int = 0
    misses: int = 0
    cycles_saved: int = 0
    cycles_simulated: int = 0
    disk_hits: int = 0
    failures: int = 0
    retries: int = 0
    lane_groups: int = 0
    lane_sparse_groups: int = 0
    lane_warm_hits: int = 0
    lane_warm_misses: int = 0
    surrogate_hits: int = 0
    surrogate_fallbacks: int = 0
    surrogate_refits: int = 0
    store: StoreStats | None = field(default=None, init=False,
                                     compare=False, repr=False)

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def memory_hits(self) -> int:
        """Hits served by the in-memory tier (total minus disk)."""
        return self.hits - self.disk_hits

    def snapshot(self) -> "EngineStats":
        """A frozen copy (for before/after deltas)."""
        return EngineStats(self.hits, self.misses, self.cycles_saved,
                           self.cycles_simulated, self.disk_hits,
                           self.failures, self.retries,
                           self.lane_groups, self.lane_sparse_groups,
                           self.lane_warm_hits, self.lane_warm_misses,
                           self.surrogate_hits, self.surrogate_fallbacks,
                           self.surrogate_refits)

    def delta_since(self, before: "EngineStats") -> "EngineStats":
        """Stats accumulated since ``before`` was snapshotted."""
        return EngineStats(
            self.hits - before.hits,
            self.misses - before.misses,
            self.cycles_saved - before.cycles_saved,
            self.cycles_simulated - before.cycles_simulated,
            self.disk_hits - before.disk_hits,
            self.failures - before.failures,
            self.retries - before.retries,
            self.lane_groups - before.lane_groups,
            self.lane_sparse_groups - before.lane_sparse_groups,
            self.lane_warm_hits - before.lane_warm_hits,
            self.lane_warm_misses - before.lane_warm_misses,
            self.surrogate_hits - before.surrogate_hits,
            self.surrogate_fallbacks - before.surrogate_fallbacks,
            self.surrogate_refits - before.surrogate_refits,
        )

    def merge(self, other: "EngineStats") -> None:
        """Fold another stats object (e.g. from a worker) into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.cycles_saved += other.cycles_saved
        self.cycles_simulated += other.cycles_simulated
        self.disk_hits += other.disk_hits
        self.failures += getattr(other, "failures", 0)
        self.retries += getattr(other, "retries", 0)
        self.lane_groups += getattr(other, "lane_groups", 0)
        self.lane_sparse_groups += getattr(other, "lane_sparse_groups", 0)
        self.lane_warm_hits += getattr(other, "lane_warm_hits", 0)
        self.lane_warm_misses += getattr(other, "lane_warm_misses", 0)
        self.surrogate_hits += getattr(other, "surrogate_hits", 0)
        self.surrogate_fallbacks += getattr(other, "surrogate_fallbacks", 0)
        self.surrogate_refits += getattr(other, "surrogate_refits", 0)

    #: Section order of :meth:`describe`.  New counter groups must slot
    #: into this sequence (and its regression test) rather than append
    #: wherever — a stable order keeps ``--verbose``/``--profile`` output
    #: diffable across engine layers.
    DESCRIBE_ORDER = ("engine", "tiers", "failures", "lanes", "surrogate",
                      "store")

    def describe(self) -> str:
        """One-line rendering for ``--verbose`` output.

        Sections always render in :data:`DESCRIBE_ORDER` — the base
        engine totals, then the memory/disk tier split, failure/retry
        counters, lane-kernel counters, surrogate-tier counters and the
        disk store's eviction/quarantine summary.  Each optional section
        only appears when its counters are nonzero, so a clean run
        renders exactly as it always did.
        """
        line = (f"engine: {self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.0%} hit rate), "
                f"{self.cycles_simulated} cycles simulated, "
                f"{self.cycles_saved} cycles saved")
        if self.disk_hits:
            line += (f"; tiers: {self.memory_hits} memory / "
                     f"{self.disk_hits} disk")
        if self.failures or self.retries:
            line += (f", {self.failures} failed, "
                     f"{self.retries} retried")
        if self.lane_groups:
            line += (f"; lanes: {self.lane_groups} groups "
                     f"({self.lane_sparse_groups} sparse), "
                     f"{self.lane_warm_hits} warm hits / "
                     f"{self.lane_warm_misses} misses")
        if (self.surrogate_hits or self.surrogate_fallbacks
                or self.surrogate_refits):
            line += (f"; surrogate: {self.surrogate_hits} served / "
                     f"{self.surrogate_fallbacks} fallbacks, "
                     f"{self.surrogate_refits} refits")
        if self.store is not None and self.store.eventful:
            line += f"; store: {self.store.describe()}"
        return line


class ResultCache:
    """LRU + optional sharded disk store keyed by the request hash.

    Parameters
    ----------
    max_entries:
        Bound of the in-memory tier; the least-recently-used entry is
        evicted beyond it.
    disk_dir:
        Optional directory for the persistent tier; constructs a
        :class:`~repro.store.sharded.ShardedStore` there (atomic
        fsync'd writes, per-entry sha256 verification, quarantine of
        corrupt entries, orphaned-tmp reclamation).
    store:
        An already-built store to use as the disk tier (overrides
        ``disk_dir``) — this is how sweep checkpoints share their
        durable store with the cache.
    max_disk_entries / max_disk_bytes:
        LRU bounds of the disk tier (``None`` = unbounded); only used
        when the store is built here (``disk_dir``).
    """

    def __init__(self, max_entries: int = 100_000,
                 disk_dir: str | os.PathLike | None = None, *,
                 store: ShardedStore | None = None,
                 max_disk_entries: int | None = None,
                 max_disk_bytes: int | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        if store is None and disk_dir is not None:
            store = ShardedStore(disk_dir,
                                 max_entries=max_disk_entries,
                                 max_bytes=max_disk_bytes)
        self.store = store
        self.disk_dir = Path(store.root) if store is not None else None
        self.stats = EngineStats()
        self.stats.store = store.stats if store is not None else None
        self._entries: OrderedDict[str, SequenceResult] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, request: SequenceRequest) -> SequenceResult | None:
        """The cached result for ``request``, or ``None`` on a miss.

        A miss is *not* counted here — the executor records it when it
        actually simulates, so probing and simulating stay in sync.
        """
        key = request.content_hash
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.cycles_saved += request.cycles
            return result
        result = self._disk_get(key)
        if result is not None:
            self._remember(key, result)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self.stats.cycles_saved += request.cycles
            return result
        return None

    def put(self, request: SequenceRequest, result: SequenceResult,
            *, simulated: bool = True) -> None:
        """Store ``result`` under ``request``'s hash.

        ``simulated`` distinguishes fresh simulation work (counted as a
        miss plus its cycles) from merely re-homing a result computed
        elsewhere.
        """
        key = request.content_hash
        if simulated:
            self.stats.misses += 1
            self.stats.cycles_simulated += request.cycles
        self._remember(key, result)
        self._disk_put(key, result)

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier is left alone)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _remember(self, key: str, result: SequenceResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def _disk_path(self, key: str) -> Path | None:
        if self.store is None:
            return None
        return self.store.path_for(key)

    def _disk_get(self, key: str) -> SequenceResult | None:
        if self.store is None:
            return None
        return self.store.get(key)

    def _disk_put(self, key: str, result: SequenceResult) -> None:
        if self.store is None:
            return
        self.store.put(key, result)
