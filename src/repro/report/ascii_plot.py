"""ASCII rendering of curves and result planes.

Good enough to eyeball a result plane in a terminal or a log file; the
benchmarks embed these renderings in their reports so the reproduced
figures are directly inspectable.
"""

from __future__ import annotations

import math
from typing import Sequence


def ascii_curves(x: Sequence[float], curves: dict[str, Sequence[float | None]],
                 *, width: int = 64, height: int = 18,
                 logx: bool = True, title: str = "",
                 y_label: str = "V") -> str:
    """Plot one or more y(x) curves on a character grid.

    Each curve gets the first character of its label as its mark; ``None``
    samples are skipped.
    """
    xs = list(x)
    if not xs:
        raise ValueError("empty x grid")
    ys = [v for series in curves.values() for v in series if v is not None]
    if not ys:
        raise ValueError("no finite samples to plot")
    y_lo, y_hi = min(ys), max(ys)
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0

    def xpos(v: float) -> int:
        if logx:
            lo, hi = math.log(xs[0]), math.log(xs[-1])
            t = (math.log(v) - lo) / (hi - lo) if hi > lo else 0.0
        else:
            lo, hi = xs[0], xs[-1]
            t = (v - lo) / (hi - lo) if hi > lo else 0.0
        return min(int(t * (width - 1)), width - 1)

    def ypos(v: float) -> int:
        t = (v - y_lo) / (y_hi - y_lo)
        return min(int(t * (height - 1)), height - 1)

    grid = [[" "] * width for _ in range(height)]
    for label, series in curves.items():
        mark = label[0]
        for xv, yv in zip(xs, series):
            if yv is None:
                continue
            grid[height - 1 - ypos(yv)][xpos(xv)] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:8.2f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:8.2f} +" + "-" * width + "+")
    lines.append(" " * 10 + f"{xs[0]:.3g}" + " " * (width - 12)
                 + f"{xs[-1]:.3g}")
    legend = "   ".join(f"{label[0]} = {label}" for label in curves)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def ascii_plane(planes, which: str = "w0", **kwargs) -> str:
    """Render one plane of a :class:`ResultPlanes` (``w0``/``w1``/``r``)."""
    rs = planes.resistances
    if which in ("w0", "w1"):
        plane = planes.w0 if which == "w0" else planes.w1
        curves = {}
        # Holes (failed grid points) leave None rows; size the curve
        # family from the first row that simulated.
        n = next((len(row) for row in plane.settle.levels
                  if row is not None), 0)
        for k in range(1, n + 1):
            curves[f"{k}) after {which} #{k}"] = plane.curve(k)
        curves["Vmp midpoint"] = [plane.vmp] * len(rs)
        title = f"Plane of {which} (Vc after successive {which})"
        return ascii_curves(rs, curves, title=title, **kwargs)
    if which == "r":
        curves = {"Vsa threshold": planes.r.vsa.thresholds}
        title = "Plane of r (sense threshold Vsa vs defect R)"
        return ascii_curves(rs, curves, title=title, **kwargs)
    raise ValueError(f"unknown plane {which!r}")
