"""Reporting: text tables and ASCII plots for analysis artefacts."""

from repro.report.tables import (
    render_optimization_table,
    render_table,
)
from repro.report.ascii_plot import ascii_curves, ascii_plane

__all__ = [
    "ascii_curves",
    "ascii_plane",
    "render_optimization_table",
    "render_table",
]
