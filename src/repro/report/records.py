"""JSON-serialisable records of optimization results.

A production flow runs the optimizer once per defect library revision
and ships the outcome (directions, borders, detection conditions) to the
test program; this module provides a stable, human-readable JSON schema
for that hand-off, plus the inverse for regression-diffing two runs.

Only the *outcome* is serialised (not the panels or tie-break borders):
the schema is what a test-program generator consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.optimizer import OptimizationRow, OptimizationTable
from repro.core.stresses import StressConditions, StressKind

SCHEMA_VERSION = 1


def _border_to_dict(border) -> dict[str, Any]:
    return {
        "resistance": border.resistance,
        "fails_high": border.fails_high,
        "always_faulty": border.always_faulty,
        "never_faulty": border.never_faulty,
    }


def _sc_to_dict(sc: StressConditions) -> dict[str, float]:
    return {"tcyc": sc.tcyc, "duty": sc.duty, "temp_c": sc.temp_c,
            "vdd": sc.vdd}


def row_to_dict(row: OptimizationRow) -> dict[str, Any]:
    """One Table-1 row as plain data."""
    return {
        "defect": {
            "kind": row.defect.kind.value,
            "placement": row.defect.placement.value,
        },
        "fault_value": row.fault_value,
        "nominal_border": _border_to_dict(row.nominal_border),
        "stressed_border": _border_to_dict(row.stressed_border),
        "directions": {
            kind.value: {
                "value": call.chosen_value,
                "arrow": call.arrow,
                "decided_by": call.decided_by,
            }
            for kind, call in row.directions.items()
        },
        "stressed_conditions": _sc_to_dict(row.stressed_conditions),
        "nominal_detection": (None if row.nominal_detection is None
                              else [str(o)
                                    for o in row.nominal_detection.ops]),
        "stressed_detection": (None if row.stressed_detection is None
                               else [str(o)
                                     for o in row.stressed_detection.ops]),
        "improved": row.improved,
    }


def table_to_json(table: OptimizationTable, *, indent: int = 2) -> str:
    """Serialise a whole optimization table."""
    payload = {
        "schema": SCHEMA_VERSION,
        "rows": [row_to_dict(row) for row in table.rows],
    }
    return json.dumps(payload, indent=indent)


@dataclass(frozen=True)
class RecordedRow:
    """The consumer-side view of one serialised row."""

    kind: str
    placement: str
    fault_value: int
    nominal_border: float | None
    stressed_border: float | None
    directions: dict[str, dict[str, Any]]
    stressed_conditions: StressConditions
    nominal_detection: list[str] | None
    stressed_detection: list[str] | None
    improved: bool

    @property
    def name(self) -> str:
        return f"{self.kind} ({self.placement})"

    def direction_arrow(self, kind: StressKind) -> str:
        return self.directions[kind.value]["arrow"]


def load_table(text: str) -> list[RecordedRow]:
    """Parse a serialised table back into consumer records."""
    payload = json.loads(text)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported record schema {payload.get('schema')!r}")
    rows = []
    for raw in payload["rows"]:
        rows.append(RecordedRow(
            kind=raw["defect"]["kind"],
            placement=raw["defect"]["placement"],
            fault_value=raw["fault_value"],
            nominal_border=raw["nominal_border"]["resistance"],
            stressed_border=raw["stressed_border"]["resistance"],
            directions=raw["directions"],
            stressed_conditions=StressConditions(
                **raw["stressed_conditions"]),
            nominal_detection=raw["nominal_detection"],
            stressed_detection=raw["stressed_detection"],
            improved=raw["improved"],
        ))
    return rows


def diff_tables(old: list[RecordedRow],
                new: list[RecordedRow]) -> list[str]:
    """Human-readable regression diff between two recorded runs.

    Reports direction flips and border movements beyond 20 % — the
    changes a test engineer must re-review.
    """
    by_name_old = {r.name: r for r in old}
    messages = []
    for row in new:
        base = by_name_old.get(row.name)
        if base is None:
            messages.append(f"{row.name}: new row")
            continue
        for kind, info in row.directions.items():
            old_arrow = base.directions.get(kind, {}).get("arrow")
            if old_arrow is not None and old_arrow != info["arrow"]:
                messages.append(
                    f"{row.name}: {kind} direction changed "
                    f"{old_arrow} -> {info['arrow']}")
        for label, old_v, new_v in (
                ("nominal border", base.nominal_border,
                 row.nominal_border),
                ("stressed border", base.stressed_border,
                 row.stressed_border)):
            if old_v and new_v and abs(new_v / old_v - 1.0) > 0.2:
                messages.append(
                    f"{row.name}: {label} moved {old_v:.3g} -> "
                    f"{new_v:.3g}")
    for base in old:
        if not any(r.name == base.name for r in new):
            messages.append(f"{base.name}: row removed")
    return messages
