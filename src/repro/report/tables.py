"""Plain-text table rendering."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 *, pad: int = 2) -> str:
    """Monospace table with left-aligned columns."""
    headers = [str(h) for h in headers]
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = " " * pad

    def line(cells):
        return sep.join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_resistance(ohms: float | None) -> str:
    """Engineering-style resistance (``213k``, ``1.5M``, ``-``)."""
    if ohms is None:
        return "-"
    if ohms >= 1e9:
        return f"{ohms / 1e9:.3g}G"
    if ohms >= 1e6:
        return f"{ohms / 1e6:.3g}M"
    if ohms >= 1e3:
        return f"{ohms / 1e3:.3g}k"
    return f"{ohms:.3g}"


def _border_cell(border) -> str:
    if border.always_faulty:
        return "all fail"
    if border.never_faulty:
        return "none"
    arrow = ">" if border.fails_high else "<"
    return f"R{arrow}{format_resistance(border.resistance)}"


def render_optimization_table(table) -> str:
    """Render an :class:`~repro.core.optimizer.OptimizationTable` like the
    paper's Table 1."""
    from repro.core.stresses import StressKind

    kinds = list(next(iter(table.rows)).directions.keys()) if table.rows \
        else list(StressKind)
    headers = (["Defect", "Nom. border R"]
               + [k.value for k in kinds]
               + ["Str. border R", "Str. detection condition"])
    rows = []
    for row in table.rows:
        det = (row.stressed_detection.notation()
               if row.stressed_detection else "-")
        rows.append(
            [row.defect.name, _border_cell(row.nominal_border)]
            + [row.directions[k].arrow for k in kinds]
            + [_border_cell(row.stressed_border), det])
    rendered = render_table(headers, rows)
    failures = getattr(table, "failures", None)
    if failures:
        lines = [rendered, f"{len(failures)} defects failed to optimize:"]
        lines.extend(f"  {f.describe()}" for f in failures)
        rendered = "\n".join(lines)
    return rendered
