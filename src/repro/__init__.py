"""repro — stress optimization for DRAM cell defect testing.

A full reproduction of Z. Al-Ars, A.J. van de Goor, J. Braun and D. Richter,
"Optimizing Stresses for Testing DRAM Cell Defects Using Electrical
Simulation", DATE 2003.

The package bundles every subsystem the paper depends on:

* :mod:`repro.spice` — a SPICE-class transient circuit simulator,
* :mod:`repro.dram` — a folded-bit-line DRAM column model,
* :mod:`repro.defects` — the Fig. 7 defect catalog and netlist injection,
* :mod:`repro.analysis` — result planes, sense thresholds, border
  resistance, detection conditions,
* :mod:`repro.core` — the paper's stress-optimization methodology,
* :mod:`repro.behav` — a calibrated fast behavioral column model,
* :mod:`repro.march` — march tests and coverage evaluation,
* :mod:`repro.report` — ASCII plots and experiment tables.
"""

__version__ = "1.0.0"

from repro.stress import (
    NOMINAL_STRESS,
    STRESS_RANGES,
    StressConditions,
    StressKind,
    nominal_stress,
)
from repro.defects import ALL_DEFECTS, Defect, DefectKind, Placement


def optimize_defect(*args, **kwargs):
    """Convenience re-export of :func:`repro.core.optimize_defect`."""
    from repro.core import optimize_defect as impl
    return impl(*args, **kwargs)


def optimize_all_defects(*args, **kwargs):
    """Convenience re-export of :func:`repro.core.optimize_all_defects`."""
    from repro.core import optimize_all_defects as impl
    return impl(*args, **kwargs)


__all__ = [
    "ALL_DEFECTS",
    "Defect",
    "DefectKind",
    "NOMINAL_STRESS",
    "Placement",
    "STRESS_RANGES",
    "StressConditions",
    "StressKind",
    "__version__",
    "nominal_stress",
    "optimize_all_defects",
    "optimize_defect",
]
