"""Linear and weakly-nonlinear circuit devices.

All devices follow the stamping protocol documented in
:mod:`repro.spice.netlist`.  Capacitors use companion models (backward Euler
or trapezoidal); diodes are exponential junctions linearised per Newton
iteration and are used for storage-node junction leakage in the DRAM model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.spice.errors import NetlistError
from repro.spice.netlist import Device, Node, Stamper
from repro.spice.waveforms import Constant, Waveform

#: Boltzmann constant over electron charge (V/K).
K_OVER_Q = 8.617333262e-5

#: Clamp for exponential arguments to keep Newton iterates finite.
_EXP_CLAMP = 80.0


def thermal_voltage(temp_c: float) -> float:
    """kT/q in volts at ``temp_c`` degrees Celsius."""
    return K_OVER_Q * (temp_c + 273.15)


def _as_waveform(value) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return Constant(float(value))


class Resistor(Device):
    """A linear resistor.

    Resistance must be positive; use a large value (e.g. 1e15) to model an
    essentially-open connection rather than infinity.
    """

    def __init__(self, name: str, a: Node, b: Node, resistance: float):
        super().__init__(name, (a, b))
        if not resistance > 0:
            raise NetlistError(
                f"resistor {name!r}: resistance must be > 0, got {resistance}")
        self.resistance = float(resistance)

    @property
    def a(self) -> Node:
        return self.node_list[0]

    @property
    def b(self) -> Node:
        return self.node_list[1]

    def stamp_static(self, st: Stamper) -> None:
        st.conductance(self.a, self.b, 1.0 / self.resistance)

    def current(self, x) -> float:
        """Current a→b for a given solution vector."""
        va = 0.0 if self.a.is_ground else x[self.a.index]
        vb = 0.0 if self.b.is_ground else x[self.b.index]
        return (va - vb) / self.resistance


class Capacitor(Device):
    """A linear capacitor with optional initial condition.

    In transient analysis the capacitor is replaced by its companion model:

    * backward Euler: ``geq = C/dt``, ``ieq = geq * v_prev``
    * trapezoidal:    ``geq = 2C/dt``, ``ieq = geq * v_prev + i_prev``

    where ``i_prev`` (trapezoidal only) is the device current at the previous
    accepted time point, tracked internally.
    """

    def __init__(self, name: str, a: Node, b: Node, capacitance: float,
                 ic: float | None = None):
        super().__init__(name, (a, b))
        if not capacitance > 0:
            raise NetlistError(
                f"capacitor {name!r}: capacitance must be > 0, "
                f"got {capacitance}")
        self.capacitance = float(capacitance)
        self.ic = ic
        self._i_prev = 0.0  # trapezoidal history

    @property
    def a(self) -> Node:
        return self.node_list[0]

    @property
    def b(self) -> Node:
        return self.node_list[1]

    def reset_history(self) -> None:
        self._i_prev = 0.0

    def stamp_dynamic(self, st: Stamper) -> None:
        dt = st.ctx.dt
        if dt is None:  # DC: capacitor is an open circuit
            return
        v_prev = st.v_prev(self.a) - st.v_prev(self.b)
        if st.ctx.method == "trap":
            geq = 2.0 * self.capacitance / dt
            ieq = geq * v_prev + self._i_prev
        else:  # backward Euler
            geq = self.capacitance / dt
            ieq = geq * v_prev
        st.conductance(self.a, self.b, geq)
        # Companion current source pushes ieq into node a (out of b).
        st.current(self.b, self.a, ieq)

    def _branch_voltage(self, x) -> float:
        va = 0.0 if self.a.is_ground else x[self.a.index]
        vb = 0.0 if self.b.is_ground else x[self.b.index]
        return va - vb

    def accept_step(self, x_prev, x_now, dt: float, method: str) -> None:
        """Update integration history after a step is accepted.

        For the trapezoidal rule the device current satisfies
        ``i_now = 2C/dt * (v_now - v_prev) - i_prev``.
        """
        if method != "trap":
            return
        v_prev = self._branch_voltage(x_prev)
        v_now = self._branch_voltage(x_now)
        self._i_prev = (2.0 * self.capacitance / dt * (v_now - v_prev)
                        - self._i_prev)


class VoltageSource(Device):
    """An independent voltage source driven by a waveform (or DC level)."""

    needs_branch = True

    def __init__(self, name: str, p: Node, n: Node, waveform):
        super().__init__(name, (p, n))
        self.waveform = _as_waveform(waveform)
        self._branch: int | None = None

    @property
    def p(self) -> Node:
        return self.node_list[0]

    @property
    def n(self) -> Node:
        return self.node_list[1]

    def bind_branch(self, branch: int) -> None:
        self._branch = branch

    def stamp_static(self, st: Stamper) -> None:
        st.incidence(self.p, self.n, self._branch)

    def stamp_source(self, st: Stamper) -> None:
        st.branch_rhs(self._branch, self.waveform.value(st.ctx.time))

    def branch_current(self, x, num_nodes: int) -> float:
        """Current flowing p→n *through* the source in solution ``x``."""
        return x[num_nodes + self._branch]


class CurrentSource(Device):
    """An independent current source: ``value(t)`` flows from p to n."""

    def __init__(self, name: str, p: Node, n: Node, waveform):
        super().__init__(name, (p, n))
        self.waveform = _as_waveform(waveform)

    @property
    def p(self) -> Node:
        return self.node_list[0]

    @property
    def n(self) -> Node:
        return self.node_list[1]

    def stamp_source(self, st: Stamper) -> None:
        st.current(self.p, self.n, self.waveform.value(st.ctx.time))


def diode_iv_vec(v: np.ndarray, vt: np.ndarray, isat: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`Diode.iv` over per-device parameter arrays.

    ``vt`` is the temperature-resolved ``emission * kT/q`` and ``isat``
    the temperature-resolved saturation current.  Element-for-element
    bitwise-identical to the scalar method: the exponential goes through
    the same scalar ``math.exp`` (numpy's SIMD ``exp`` differs in the
    last ulp) while the surrounding arithmetic is vectorized.
    """
    arg = np.minimum(v / vt, _EXP_CLAMP)
    e = np.fromiter((math.exp(float(a)) for a in arg), float, len(arg))
    i = isat * (e - 1.0)
    gd = isat * e / vt
    return i, gd


class Diode(Device):
    """An exponential junction diode with temperature-dependent saturation.

    ``i = isat(T) * (exp(v / (n*vt)) - 1)``, with the saturation current
    doubling every ``isat_tdouble`` kelvin above the nominal temperature.
    Used (reverse biased) as the storage-node junction-leakage element.
    """

    def __init__(self, name: str, anode: Node, cathode: Node,
                 isat: float = 1e-14, emission: float = 1.0,
                 temp_nom_c: float = 27.0, isat_tdouble: float = 10.0):
        super().__init__(name, (anode, cathode))
        if isat <= 0:
            raise NetlistError(f"diode {name!r}: isat must be > 0")
        self.isat = float(isat)
        self.emission = float(emission)
        self.temp_nom_c = float(temp_nom_c)
        self.isat_tdouble = float(isat_tdouble)

    @property
    def anode(self) -> Node:
        return self.node_list[0]

    @property
    def cathode(self) -> Node:
        return self.node_list[1]

    def isat_at(self, temp_c: float) -> float:
        """Saturation current at ``temp_c``."""
        return self.isat * 2.0 ** ((temp_c - self.temp_nom_c)
                                   / self.isat_tdouble)

    def iv(self, v: float, temp_c: float) -> tuple[float, float]:
        """Return ``(i, gd)`` at junction voltage ``v``."""
        vt = self.emission * thermal_voltage(temp_c)
        isat = self.isat_at(temp_c)
        arg = min(v / vt, _EXP_CLAMP)
        e = math.exp(arg)
        i = isat * (e - 1.0)
        gd = isat * e / vt
        return i, gd

    def stamp_nonlinear(self, st: Stamper) -> None:
        v = st.v(self.anode) - st.v(self.cathode)
        i, gd = self.iv(v, st.ctx.temp_c)
        # Linearise: i ≈ i0 + gd (v - v0)  →  conductance gd plus the
        # residual current (i0 - gd*v0) from anode to cathode.
        st.conductance(self.anode, self.cathode, gd)
        st.current(self.anode, self.cathode, i - gd * v)
